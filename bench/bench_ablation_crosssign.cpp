// Ablation — the cross-sign registry (Appendix D.1 design choice).
//
// The paper suppresses issuer-subject mismatches caused by cross-signing by
// consulting Zeek's validation verdicts and CA disclosures. This ablation
// runs the matcher over the cross-signed public chains of the corpus with
// and without the registry and counts the false "broken chain" verdicts the
// registry prevents.
#include "bench_common.hpp"

#include "chain/matcher.hpp"

int main() {
  using namespace certchain;
  bench::print_header(
      "Ablation: cross-sign registry on vs off",
      "How many textual issuer-subject mismatches are false positives caused "
      "by cross-signing (App. D.1)");

  bench::StudyContext context = bench::build_context();
  const chain::CrossSignRegistry& registry = context.scenario->world.cross_signs();

  std::size_t cross_signed_chains = 0;
  std::size_t false_broken_without_registry = 0;
  std::size_t broken_with_registry = 0;
  std::size_t suppressed_pairs = 0;

  for (const auto& endpoint : context.scenario->endpoints) {
    if (endpoint.label != "public/cross-signed") continue;
    ++cross_signed_chains;
    const chain::MatchResult without = chain::match_chain(endpoint.chain, nullptr);
    const chain::MatchResult with = chain::match_chain(endpoint.chain, &registry);
    if (!without.all_matched()) ++false_broken_without_registry;
    if (!with.all_matched()) ++broken_with_registry;
    for (const chain::PairMatch& pair : with.pairs) {
      if (pair.via_cross_sign) ++suppressed_pairs;
    }
  }

  util::TextTable table({"Metric", "Registry OFF", "Registry ON"});
  table.add_row({"cross-signed chains analyzed", std::to_string(cross_signed_chains),
                 std::to_string(cross_signed_chains)});
  table.add_row({"reported broken", std::to_string(false_broken_without_registry),
                 std::to_string(broken_with_registry)});
  std::printf("%s\n", table.render().c_str());
  std::printf("mismatch pairs suppressed as known cross-signs: %zu\n",
              suppressed_pairs);
  std::printf("Takeaway: without the registry every cross-signed delivery "
              "reads as a broken chain — the false-positive class the paper's "
              "methodology explicitly corrects for.\n");
  return 0;
}
