// Ablation — calibrated vs emergent establishment.
//
// The headline corpus decides the `established` column with per-endpoint
// probabilities calibrated to the paper's per-bucket rates. This ablation
// re-runs the same traffic with establishment decided by *actual client
// validation* under a browser/strict/permissive client mix, and compares the
// per-bucket hybrid establishment rates both ways against the paper. The
// point: the paper's ordering (complete > contains > no-path) emerges from
// chain structure + store contents alone — it is not an artifact of the
// calibration.
#include "bench_common.hpp"

#include "zeek/joiner.hpp"

namespace {

struct BucketRates {
  double complete = 0;
  double contains = 0;
  double no_path = 0;
};

BucketRates hybrid_rates(const certchain::core::StudyReport& report) {
  return BucketRates{
      report.hybrid.usage_complete.establish_rate(),
      report.hybrid.usage_contains.establish_rate(),
      report.hybrid.usage_no_path.establish_rate(),
  };
}

}  // namespace

int main() {
  using namespace certchain;
  bench::print_header(
      "Ablation: calibrated vs emergent establishment",
      "Re-running the corpus with `established` decided by real client "
      "validation under a browser/strict/permissive mix");

  bench::StudyContext context = bench::build_context();
  const BucketRates calibrated = hybrid_rates(context.report);

  // Re-run the same endpoints/seed with the emergent model.
  netsim::TrafficConfig traffic = context.scenario->traffic;
  traffic.establishment = netsim::EstablishmentModel::kEmergent;
  traffic.stores = &context.scenario->world.stores();
  traffic.host_store = &context.scenario->world.host_store();
  const netsim::CampusSimulator simulator(context.scenario->endpoints);
  const netsim::GeneratedLogs emergent_logs = simulator.run(traffic);

  const core::StudyPipeline pipeline(
      context.scenario->world.stores(), context.scenario->world.ct_logs(),
      context.scenario->vendors, &context.scenario->world.cross_signs());
  const core::StudyReport emergent_report =
      pipeline.run(core::StudyInput::records(emergent_logs));
  const BucketRates emergent = hybrid_rates(emergent_report);

  bench::print_section("Hybrid establishment rates by structure bucket");
  util::TextTable table({"Bucket", "Paper %", "Calibrated %", "Emergent %"});
  table.add_row({"complete matched path", "97.69",
                 bench::pct(calibrated.complete, 1.0),
                 bench::pct(emergent.complete, 1.0)});
  table.add_row({"contains complete path", "92.04",
                 bench::pct(calibrated.contains, 1.0),
                 bench::pct(emergent.contains, 1.0)});
  table.add_row({"no complete matched path", "57.42",
                 bench::pct(calibrated.no_path, 1.0),
                 bench::pct(emergent.no_path, 1.0)});
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "client mix: %.0f%% browser-like, %.0f%% strict, %.0f%% permissive\n\n",
      100 * traffic.client_mix.browser_fraction,
      100 * traffic.client_mix.strict_fraction,
      100 * traffic.client_mix.permissive_fraction);

  const bool ordering = emergent.complete > emergent.contains &&
                        emergent.contains > emergent.no_path;
  std::printf("Paper's establishment ordering (complete > contains > no-path) "
              "under emergent validation: %s\n",
              ordering ? "EMERGES" : "does NOT emerge");
  std::printf(
      "Reading: unnecessary certificates and missing anchors depress the\n"
      "acceptance of exactly the structures the paper found failing — the\n"
      "mechanism behind Sec. 4.2's establishment gradient.\n");
  return 0;
}
