// Ablation — the leaf-plausibility test (Sec. 4.2 vs Sec. 4.3 design choice).
//
// Hybrid analysis requires a complete matched path to start at a valid leaf;
// the non-public analysis drops that requirement because non-public issuers
// omit basicConstraints so often that leaves cannot be identified reliably.
// This ablation applies each mode to the other population and shows how the
// Table 3 / Table 8 buckets shift — i.e. why the paper needed both modes.
#include "bench_common.hpp"

#include "chain/matcher.hpp"

namespace {

struct BucketCounts {
  std::size_t is_path = 0;
  std::size_t contains = 0;
  std::size_t none = 0;
};

BucketCounts classify_all(const std::vector<const certchain::core::ChainObservation*>&
                              observations,
                          bool require_leaf) {
  BucketCounts counts;
  for (const auto* observation : observations) {
    if (observation->chain.length() < 2) continue;
    const auto analysis =
        certchain::chain::analyze_paths(observation->chain, nullptr, require_leaf);
    if (analysis.is_complete_path()) {
      ++counts.is_path;
    } else if (analysis.contains_complete_path()) {
      ++counts.contains;
    } else {
      ++counts.none;
    }
  }
  return counts;
}

}  // namespace

int main() {
  using namespace certchain;
  using chain::ChainCategory;
  bench::print_header(
      "Ablation: leaf-plausibility test on vs off",
      "The Sec. 4.2 (hybrid) vs Sec. 4.3 (non-public) methodology split");

  bench::StudyContext context = bench::build_context();

  // Rebuild the category slices from the corpus the pipeline indexed.
  const zeek::LogJoiner joiner(context.logs.x509);
  core::CorpusIndex corpus;
  for (const auto& record : context.logs.ssl) corpus.add(joiner.join(record));
  const auto interception_issuers = context.report.interception.issuer_set();

  std::map<ChainCategory, std::vector<const core::ChainObservation*>> slices;
  for (const auto& [id, observation] : corpus.chains()) {
    slices[chain::categorize_chain(observation.chain,
                                   context.scenario->world.stores(),
                                   interception_issuers)]
        .push_back(&observation);
  }

  const auto print_rows = [&](const char* population, const BucketCounts& with_leaf,
                              const BucketCounts& without_leaf) {
    util::TextTable table({"Bucket (multi-cert chains)", "Leaf test ON",
                           "Leaf test OFF"});
    table.add_row({"is a complete matched path", std::to_string(with_leaf.is_path),
                   std::to_string(without_leaf.is_path)});
    table.add_row({"contains a complete matched path",
                   std::to_string(with_leaf.contains),
                   std::to_string(without_leaf.contains)});
    table.add_row({"no complete matched path", std::to_string(with_leaf.none),
                   std::to_string(without_leaf.none)});
    std::printf("%s\n%s\n", population, table.render().c_str());
  };

  print_rows("Hybrid chains (the paper uses the leaf test here):",
             classify_all(slices[ChainCategory::kHybrid], true),
             classify_all(slices[ChainCategory::kHybrid], false));
  print_rows("Non-public-DB-only chains (the paper disables it here):",
             classify_all(slices[ChainCategory::kNonPublicDbOnly], true),
             classify_all(slices[ChainCategory::kNonPublicDbOnly], false));

  // Quantify the justification: basicConstraints omission makes the leaf
  // test reject legitimate non-public paths.
  std::size_t nonpub_multi = 0;
  std::size_t bc_absent_everywhere = 0;
  for (const auto* observation : slices[ChainCategory::kNonPublicDbOnly]) {
    if (observation->chain.length() < 2 || observation->chain.length() > 30) continue;
    ++nonpub_multi;
    bool any_bc = false;
    for (const auto& cert : observation->chain) {
      any_bc = any_bc || cert.basic_constraints.present;
    }
    if (!any_bc) ++bc_absent_everywhere;
  }
  std::printf("non-public multi-cert chains with basicConstraints absent on "
              "EVERY certificate: %zu/%zu — the population the Sec. 4.3 "
              "relaxation exists for.\n",
              bc_absent_everywhere, nonpub_multi);
  return 0;
}
