// Shared bench-harness plumbing.
//
// Every experiment binary regenerates the calibrated study corpus, runs the
// full analysis pipeline, and prints two tables: the paper's reported
// numbers (hard-coded from the publication) and the numbers measured on the
// simulated corpus. Absolute counts differ by the configured scale; the
// *shape* — who dominates, by what factor, where the buckets sit — is the
// reproduction target (see EXPERIMENTS.md).
//
// Environment knobs:
//   CERTCHAIN_SCALE        chain-population scale (default 1/200 of paper)
//   CERTCHAIN_CONNECTIONS  simulated TLS connections (default 120000)
//   CERTCHAIN_SEED         corpus seed (default 20200901)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/pipeline.hpp"
#include "core/revisit.hpp"
#include "datagen/scenario.hpp"
#include "obs/run_context.hpp"
#include "obs/stopwatch.hpp"
#include "scanner/scanner.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace certchain::bench {

struct StudyContext {
  std::unique_ptr<datagen::Scenario> scenario;
  netsim::GeneratedLogs logs;
  core::StudyReport report;
  /// Telemetry recorded while building the corpus and running the pipeline
  /// (obs:: spans + counters); experiments can export or inspect it.
  std::shared_ptr<obs::RunContext> telemetry = std::make_shared<obs::RunContext>();
};

inline datagen::ScenarioConfig config_from_env() {
  datagen::ScenarioConfig config;
  if (const char* scale = std::getenv("CERTCHAIN_SCALE")) {
    config.chain_scale = std::atof(scale);
  }
  if (const char* connections = std::getenv("CERTCHAIN_CONNECTIONS")) {
    config.total_connections = std::strtoull(connections, nullptr, 10);
  }
  if (const char* seed = std::getenv("CERTCHAIN_SEED")) {
    config.seed = std::strtoull(seed, nullptr, 10);
  }
  return config;
}

inline StudyContext build_context() {
  StudyContext context;
  const datagen::ScenarioConfig config = config_from_env();
  std::fprintf(stderr,
               "[certchain] building corpus (scale=%.5f, connections=%llu, "
               "seed=%llu)...\n",
               config.chain_scale,
               static_cast<unsigned long long>(config.total_connections),
               static_cast<unsigned long long>(config.seed));
  const obs::Stopwatch stopwatch;  // same clock the obs:: spans record with
  obs::RunContext* telemetry = context.telemetry.get();
  context.scenario = datagen::build_study_scenario(config, telemetry);
  context.logs = context.scenario->generate_logs(telemetry);
  const core::StudyPipeline pipeline(
      context.scenario->world.stores(), context.scenario->world.ct_logs(),
      context.scenario->vendors, &context.scenario->world.cross_signs());
  context.report =
      pipeline.run(core::StudyInput::records(context.logs), {}, telemetry);
  std::fprintf(stderr, "[certchain] corpus + pipeline ready in %.0f ms\n",
               stopwatch.elapsed_ms());
  return context;
}

inline void print_header(const std::string& experiment,
                         const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n\n");
}

inline void print_section(const std::string& title) {
  std::printf("--- %s ---\n", title.c_str());
}

inline std::string pct(double numerator, double denominator, int decimals = 2) {
  return util::percent(numerator, denominator, decimals);
}

}  // namespace certchain::bench
