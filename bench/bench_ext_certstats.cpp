// Extension — certificate-population statistics per chain category: key and
// signature algorithms, lifetimes, SANs, expiry. Complements the paper's
// structural view with the certificate-level distributions.
#include "bench_common.hpp"

#include "core/cert_stats.hpp"
#include "zeek/joiner.hpp"

int main() {
  using namespace certchain;
  using chain::ChainCategory;
  bench::print_header(
      "Extension: certificate population statistics per category",
      "Distinct-certificate distributions (key/sig algorithms, lifetimes, "
      "SANs, expiry-at-observation)");

  bench::StudyContext context = bench::build_context();

  // Rebuild category slices.
  const zeek::LogJoiner joiner(context.logs.x509);
  core::CorpusIndex corpus;
  for (const auto& record : context.logs.ssl) corpus.add(joiner.join(record));
  const auto interception_issuers = context.report.interception.issuer_set();
  std::map<ChainCategory, std::vector<const core::ChainObservation*>> slices;
  for (const auto& [id, observation] : corpus.chains()) {
    slices[chain::categorize_chain(observation.chain,
                                   context.scenario->world.stores(),
                                   interception_issuers)]
        .push_back(&observation);
  }

  std::vector<core::CertPopulationStats> all_stats;
  all_stats.push_back(core::compute_cert_stats(
      "Public-DB-only", slices[ChainCategory::kPublicDbOnly]));
  all_stats.push_back(core::compute_cert_stats(
      "Non-public-DB-only", slices[ChainCategory::kNonPublicDbOnly]));
  all_stats.push_back(
      core::compute_cert_stats("Hybrid", slices[ChainCategory::kHybrid]));
  all_stats.push_back(core::compute_cert_stats(
      "TLS interception", slices[ChainCategory::kTlsInterception]));

  bench::print_section("Population sizes and basic shares");
  {
    util::TextTable table({"Category", "Distinct certs", "Self-signed %",
                           "Expired-at-obs %", "SAN absent %"});
    for (const auto& stats : all_stats) {
      table.add_row(
          {stats.label, util::with_commas(stats.distinct_certificates),
           bench::pct(static_cast<double>(stats.self_signed),
                      static_cast<double>(stats.distinct_certificates)),
           bench::pct(static_cast<double>(stats.expired_when_observed),
                      static_cast<double>(stats.distinct_certificates)),
           bench::pct(static_cast<double>(stats.san_absent),
                      static_cast<double>(stats.distinct_certificates))});
    }
    std::printf("%s\n", table.render().c_str());
  }

  bench::print_section("Validity lifetimes");
  {
    util::TextTable table({"Category", "median (days)", "<=90d", "<=398d",
                           "<=2y", ">2y"});
    for (const auto& stats : all_stats) {
      table.add_row({stats.label,
                     util::format_double(stats.lifetimes_days.quantile(0.5), 0),
                     std::to_string(stats.lifetime_le_90d),
                     std::to_string(stats.lifetime_le_398d),
                     std::to_string(stats.lifetime_le_2y),
                     std::to_string(stats.lifetime_gt_2y)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Shape expectation: non-public and interception populations "
                "carry the long-lived (>2y) certificates — private roots and "
                "middlebox CAs live far beyond the CA/B Forum's 398-day "
                "ceiling for public leaves.\n\n");
  }

  bench::print_section("Key algorithms (top entries per category)");
  for (const auto& stats : all_stats) {
    std::printf("%s:", stats.label.c_str());
    for (const auto& [algorithm, count] : stats.key_algorithms.by_count_desc()) {
      std::printf("  %s=%s", algorithm.c_str(),
                  bench::pct(static_cast<double>(count),
                             static_cast<double>(stats.distinct_certificates))
                      .c_str());
    }
    std::printf("\n");
  }
  return 0;
}
