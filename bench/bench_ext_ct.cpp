// Extension — CT log scale: incremental vs. recursive Merkle tree
// (DESIGN.md §14.1, §14.6).
//
// Grows two RFC 6962 trees over identical leaf byte streams to
// CERTCHAIN_CT_ENTRIES leaves (default one million), publishing a signed
// tree head every CERTCHAIN_CT_BATCH appends the way a log front-end does:
//
//   legacy       ct::MerkleTree — stores leaf bytes, recomputes the MTH
//                recursively, so every per-batch STH costs O(n);
//   incremental  ct::IncrementalMerkleTree — cached subtree hashes, leaf
//                hashes only, amortized O(log n) per append including the
//                STH, and a ct::Monitor audits the growing tree from a
//                concurrent thread the whole time (consistency proofs +
//                sampled inclusion proofs against every head it observes).
//
// Then proves inclusion for seeded-random samples out of both finished
// trees. The two final roots must be bit-identical (the differential
// anchor), the monitor must report zero violations, and the run fails
// loudly otherwise. --json-out writes a certchain.bench.ct v1 document
// with appends/sec, proofs/sec, speedups, monitor counters and peak RSS —
// BENCH_ct.json in the repo root is this document at the 1M default.
#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "ct/merkle.hpp"
#include "ct/merkle_inc.hpp"
#include "ct/monitor.hpp"
#include "obs/json.hpp"
#include "obs/resource.hpp"
#include "util/rng.hpp"

namespace {

using certchain::ct::Digest256;

struct PhaseResult {
  double append_wall_ms = 0.0;
  double proof_wall_ms = 0.0;
  std::size_t entries = 0;
  std::size_t sth_count = 0;
  std::size_t proof_samples = 0;
  double appends_per_sec = 0.0;
  double proofs_per_sec = 0.0;
  Digest256 final_root;
  bool proofs_verified = true;
};

/// The incremental tree shared between the append loop and the monitor
/// thread. A real log front-end serializes its write path the same way.
struct SharedTree {
  mutable std::mutex mutex;
  certchain::ct::IncrementalMerkleTree tree;
};

class SharedTreeClient : public certchain::ct::LogClient {
 public:
  explicit SharedTreeClient(const SharedTree& shared) : shared_(&shared) {}

  std::string log_id() const override { return "bench-inc-log"; }

  certchain::ct::TreeHead tree_head() const override {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    return {shared_->tree.size(), shared_->tree.root_hash()};
  }

  std::optional<std::vector<Digest256>> consistency(
      std::size_t m, std::size_t n) const override {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    if (m > n || n > shared_->tree.size()) return std::nullopt;
    return shared_->tree.consistency_proof(m, n);
  }

  std::optional<InclusionAnswer> inclusion(std::size_t index,
                                           std::size_t n) const override {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    if (n > shared_->tree.size() || index >= n) return std::nullopt;
    return InclusionAnswer{shared_->tree.leaf_hash_at(index),
                           shared_->tree.inclusion_proof(index, n)};
  }

 private:
  const SharedTree* shared_;
};

/// Deterministic leaf byte stream; both trees consume the identical
/// sequence, which is what makes the final-root comparison meaningful.
std::string leaf_data(std::size_t index, std::uint64_t word) {
  return "ct-bench/" + std::to_string(index) + "/" + std::to_string(word);
}

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name)) {
    return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace certchain;

  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_ext_ct [--json-out <path>]\n"
                   "unknown argument: %s\n",
                   argv[i]);
      return 2;
    }
  }

  const std::size_t entries = env_size("CERTCHAIN_CT_ENTRIES", 1'000'000);
  const std::size_t batch = std::max<std::size_t>(
      1, env_size("CERTCHAIN_CT_BATCH", 4096));
  const std::size_t proof_samples =
      std::max<std::size_t>(1, env_size("CERTCHAIN_CT_PROOFS", 20000));
  // Legacy proofs are O(n) each; sample enough for a stable rate without
  // letting the legacy phase dominate the run.
  const std::size_t legacy_proof_samples = std::min<std::size_t>(
      proof_samples, std::max<std::size_t>(1, env_size("CERTCHAIN_CT_LEGACY_PROOFS", 256)));
  const std::uint64_t seed = env_size("CERTCHAIN_CT_SEED", 20200901);

  bench::print_header(
      "Ext: CT log at scale — incremental vs. recursive Merkle tree",
      "per-batch STHs over identical leaves; monitor audits the incremental "
      "tree concurrently");
  std::fprintf(stderr,
               "[certchain] entries=%zu batch=%zu proofs=%zu (legacy %zu) "
               "seed=%llu\n",
               entries, batch, proof_samples, legacy_proof_samples,
               static_cast<unsigned long long>(seed));

  // ---- Legacy phase: recursive tree, O(n) STH per batch -------------------
  PhaseResult legacy;
  legacy.entries = entries;
  ct::MerkleTree legacy_tree;
  {
    util::Rng rng(seed);
    const obs::Stopwatch watch;
    for (std::size_t i = 0; i < entries; ++i) {
      legacy_tree.append(leaf_data(i, rng.next_u64()));
      if ((i + 1) % batch == 0 || i + 1 == entries) {
        legacy.final_root = legacy_tree.root_hash();
        ++legacy.sth_count;
      }
    }
    legacy.append_wall_ms = watch.elapsed_ms();
  }
  legacy.appends_per_sec =
      entries * 1000.0 / std::max(legacy.append_wall_ms, 1e-9);
  {
    util::Rng rng(seed ^ 0xabcdef);
    util::Rng data_rng(seed);
    std::vector<std::uint64_t> words(entries);
    for (std::size_t i = 0; i < entries; ++i) words[i] = data_rng.next_u64();
    const obs::Stopwatch watch;
    for (std::size_t i = 0; i < legacy_proof_samples; ++i) {
      const std::size_t index = rng.next_below(entries);
      const auto proof = legacy_tree.inclusion_proof(index);
      if (!ct::verify_inclusion(leaf_data(index, words[index]), index, entries,
                                proof, legacy.final_root)) {
        legacy.proofs_verified = false;
      }
    }
    legacy.proof_wall_ms = watch.elapsed_ms();
  }
  legacy.proof_samples = legacy_proof_samples;
  legacy.proofs_per_sec =
      legacy_proof_samples * 1000.0 / std::max(legacy.proof_wall_ms, 1e-9);
  std::fprintf(stderr, "[certchain] legacy phase done in %.0f ms\n",
               legacy.append_wall_ms + legacy.proof_wall_ms);

  // ---- Incremental phase: cached subtrees, monitor polling concurrently --
  PhaseResult incremental;
  incremental.entries = entries;
  SharedTree shared;
  ct::MonitorConfig monitor_config;
  monitor_config.inclusion_samples = 4;
  monitor_config.seed = seed;
  obs::RunContext monitor_context;
  ct::Monitor monitor(monitor_config, &monitor_context.metrics);
  monitor.watch(std::make_shared<SharedTreeClient>(shared));

  std::atomic<bool> append_done{false};
  std::thread monitor_thread([&monitor, &append_done] {
    while (!append_done.load(std::memory_order_relaxed)) {
      monitor.poll_once();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  {
    util::Rng rng(seed);
    const obs::Stopwatch watch;
    std::size_t appended = 0;
    while (appended < entries) {
      const std::size_t stop = std::min(entries, appended + batch);
      std::lock_guard<std::mutex> lock(shared.mutex);
      for (; appended < stop; ++appended) {
        shared.tree.append(leaf_data(appended, rng.next_u64()));
      }
      incremental.final_root = shared.tree.root_hash();
      ++incremental.sth_count;
    }
    incremental.append_wall_ms = watch.elapsed_ms();
  }
  append_done.store(true, std::memory_order_relaxed);
  monitor_thread.join();
  monitor.poll_once();  // one clean audit of the finished tree
  incremental.appends_per_sec =
      entries * 1000.0 / std::max(incremental.append_wall_ms, 1e-9);

  {
    util::Rng rng(seed ^ 0xabcdef);
    const obs::Stopwatch watch;
    for (std::size_t i = 0; i < proof_samples; ++i) {
      const std::size_t index = rng.next_below(entries);
      const auto proof = shared.tree.inclusion_proof(index, entries);
      if (!ct::verify_inclusion_hash(shared.tree.leaf_hash_at(index), index,
                                     entries, proof, incremental.final_root)) {
        incremental.proofs_verified = false;
      }
    }
    incremental.proof_wall_ms = watch.elapsed_ms();
  }
  incremental.proof_samples = proof_samples;
  incremental.proofs_per_sec =
      proof_samples * 1000.0 / std::max(incremental.proof_wall_ms, 1e-9);

  const ct::MonitorStatus monitor_status = monitor.status();
  const bool roots_match = legacy.final_root == incremental.final_root;
  const double append_speedup =
      incremental.appends_per_sec / std::max(legacy.appends_per_sec, 1e-9);
  const double proof_speedup =
      incremental.proofs_per_sec / std::max(legacy.proofs_per_sec, 1e-9);
  const std::uint64_t peak_rss = obs::peak_rss_bytes();

  bench::print_section("Append throughput (per-batch STH included)");
  util::TextTable appends({"Tree", "Entries", "STHs", "Wall ms", "Appends/s"});
  appends.add_row({"legacy recursive", std::to_string(legacy.entries),
                   std::to_string(legacy.sth_count),
                   util::format_double(legacy.append_wall_ms, 1),
                   util::format_double(legacy.appends_per_sec, 0)});
  appends.add_row({"incremental", std::to_string(incremental.entries),
                   std::to_string(incremental.sth_count),
                   util::format_double(incremental.append_wall_ms, 1),
                   util::format_double(incremental.appends_per_sec, 0)});
  std::printf("%s\n", appends.render().c_str());

  bench::print_section("Inclusion proof throughput (final tree)");
  util::TextTable proofs({"Tree", "Samples", "Wall ms", "Proofs/s", "Verified"});
  proofs.add_row({"legacy recursive", std::to_string(legacy.proof_samples),
                  util::format_double(legacy.proof_wall_ms, 1),
                  util::format_double(legacy.proofs_per_sec, 0),
                  legacy.proofs_verified ? "yes" : "NO"});
  proofs.add_row({"incremental", std::to_string(incremental.proof_samples),
                  util::format_double(incremental.proof_wall_ms, 1),
                  util::format_double(incremental.proofs_per_sec, 0),
                  incremental.proofs_verified ? "yes" : "NO"});
  std::printf("%s\n", proofs.render().c_str());

  bench::print_section("Concurrent monitor (incremental phase)");
  std::printf(
      "polls=%llu sth_verified=%llu inclusion_checks=%llu "
      "inclusion_failures=%llu violations=%zu\n\n",
      static_cast<unsigned long long>(monitor_status.polls),
      static_cast<unsigned long long>(monitor_status.sth_verified),
      static_cast<unsigned long long>(monitor_status.inclusion_checks),
      static_cast<unsigned long long>(monitor_status.inclusion_failures),
      monitor_status.violation_count);

  std::printf("Speedup: %.1fx appends/s, %.1fx proofs/s; roots %s; peak RSS %.1f MiB\n",
              append_speedup, proof_speedup,
              roots_match ? "match" : "DIFFER",
              static_cast<double>(peak_rss) / (1024.0 * 1024.0));

  if (!json_out.empty()) {
    obs::json::Writer writer;
    writer.begin_object();
    writer.key("schema");
    writer.value_string("certchain.bench.ct");
    writer.key("version");
    writer.value_uint(1);
    writer.key("entries");
    writer.value_uint(entries);
    writer.key("batch");
    writer.value_uint(batch);
    writer.key("seed");
    writer.value_uint(seed);
    const auto phase_json = [&writer](const PhaseResult& phase) {
      writer.begin_object();
      writer.key("entries");
      writer.value_uint(phase.entries);
      writer.key("sth_count");
      writer.value_uint(phase.sth_count);
      writer.key("append_wall_ms");
      writer.value_number(phase.append_wall_ms);
      writer.key("appends_per_sec");
      writer.value_number(phase.appends_per_sec);
      writer.key("proof_samples");
      writer.value_uint(phase.proof_samples);
      writer.key("proof_wall_ms");
      writer.value_number(phase.proof_wall_ms);
      writer.key("proofs_per_sec");
      writer.value_number(phase.proofs_per_sec);
      writer.key("proofs_verified");
      writer.value_bool(phase.proofs_verified);
      writer.key("final_root");
      writer.value_string(phase.final_root.to_hex());
      writer.end_object();
    };
    writer.key("legacy");
    phase_json(legacy);
    writer.key("incremental");
    phase_json(incremental);
    writer.key("speedup");
    writer.begin_object();
    writer.key("appends");
    writer.value_number(append_speedup);
    writer.key("proofs");
    writer.value_number(proof_speedup);
    writer.end_object();
    writer.key("monitor");
    writer.begin_object();
    writer.key("polls");
    writer.value_uint(monitor_status.polls);
    writer.key("sth_verified");
    writer.value_uint(monitor_status.sth_verified);
    writer.key("inclusion_checks");
    writer.value_uint(monitor_status.inclusion_checks);
    writer.key("inclusion_failures");
    writer.value_uint(monitor_status.inclusion_failures);
    writer.key("violations");
    writer.value_uint(monitor_status.violation_count);
    writer.end_object();
    writer.key("roots_match");
    writer.value_bool(roots_match);
    writer.key("peak_rss_bytes");
    writer.value_uint(peak_rss);
    writer.end_object();
    std::ofstream out(json_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bench_ext_ct: cannot write %s\n", json_out.c_str());
      return 1;
    }
    out << std::move(writer).str() << '\n';
    std::fprintf(stderr, "[certchain] wrote %s\n", json_out.c_str());
  }

  const bool ok = roots_match && legacy.proofs_verified &&
                  incremental.proofs_verified &&
                  monitor_status.violation_count == 0;
  std::printf("Accounting: %s\n",
              ok ? "roots identical, every sampled proof verified, monitor "
                   "clean"
                 : "FAILURE — root divergence, failed proof, or monitor "
                   "violation");
  return ok ? 0 : 1;
}
