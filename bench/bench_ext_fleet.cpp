// Extension — continuous revisit fleet throughput (DESIGN.md §17):
// targets/second through the rate-limited multi-epoch re-scan path, plus
// the per-epoch ingest_append fold latency into a live ServiceState.
//
// This is the regression gate for the fleet subsystem: the committed
// BENCH_fleet.json records the scan and fold rates, and the fleet-smoke CI
// lane replays a small campaign and checks the report digest.
//
// Methodology mirrors bench_ext_ingest: every measurement runs in a forked
// child so ru_maxrss is a clean per-phase high-water mark:
//
//   scan child   builds the drifted populations once (untimed — the drifter
//                materializes every epoch eagerly), then times each
//                run_epoch: resilient scans + retries + token-bucket waits
//                (virtual, never slept) + summary fold. Headline
//                targets/sec and peak RSS come from here; the digest of
//                render_fleet_section anchors byte-identity across runs.
//   fold child   regenerates the same campaign (untimed), loads the base
//                corpus into a ServiceState (untimed), then times one
//                idempotent ingest_append per epoch — the live-server side
//                of the fleet loop, reanalysis included.
//
// `--smoke` shrinks the corpus for CI; `--json-out <path>` writes the
// machine-readable certchain.bench.fleet document.
//
// Knobs: CERTCHAIN_CONNECTIONS / CERTCHAIN_SCALE / CERTCHAIN_SEED (corpus),
//        CERTCHAIN_FLEET_EPOCHS (revisit epochs).
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>

#include "bench_common.hpp"
#include "core/epoch_delta.hpp"
#include "datagen/epoch_drift.hpp"
#include "fleet/fleet.hpp"
#include "netsim/faults.hpp"
#include "obs/json.hpp"
#include "svc/service_state.hpp"
#include "util/hash.hpp"

namespace {

using namespace certchain;

constexpr std::uint64_t kFleetSeed = 20241101;
constexpr double kFaultRate = 0.02;

/// Everything a measured child reports back through its pipe.
struct ChildPayload {
  double scan_ms = 0.0;        // summed run_epoch wall time
  double fold_ms = 0.0;        // summed ingest_append wall time
  std::uint64_t targets = 0;   // targets scanned across every epoch
  std::uint64_t ssl_rows = 0;  // rows emitted / folded across every epoch
  std::uint64_t x509_rows = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t section_digest = 0;  // fnv1a64(render_fleet_section)
};

struct ChildResult {
  ChildPayload payload;
  long max_rss_kib = 0;
  bool ok = false;
};

template <typename Child>
ChildResult measure_in_child(Child&& child) {
  ChildResult result;
  int fds[2];
  if (pipe(fds) != 0) return result;
  const pid_t pid = fork();
  if (pid < 0) return result;
  if (pid == 0) {
    close(fds[0]);
    const ChildPayload payload = child();
    (void)!write(fds[1], &payload, sizeof payload);
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  ChildPayload payload{};
  const ssize_t got = read(fds[0], &payload, sizeof payload);
  close(fds[0]);
  int status = 0;
  struct rusage usage {};
  wait4(pid, &status, 0, &usage);
  result.payload = payload;
  result.max_rss_kib = usage.ru_maxrss;
  result.ok = got == sizeof payload && WIFEXITED(status) &&
              WEXITSTATUS(status) == 0;
  return result;
}

double per_sec(std::uint64_t count, double wall_ms) {
  return static_cast<double>(count) * 1000.0 / std::max(wall_ms, 1e-9);
}

std::string bench_json(const datagen::ScenarioConfig& config, bool smoke,
                       std::size_t epochs, const ChildResult& scan,
                       const ChildResult& fold) {
  const ChildPayload& s = scan.payload;
  obs::json::Writer writer;
  writer.begin_object();
  writer.key("schema");
  writer.value_string("certchain.bench.fleet");
  writer.key("version");
  writer.value_uint(1);
  writer.key("smoke");
  writer.value_bool(smoke);
  writer.key("scenario");
  writer.begin_object();
  writer.key("chain_scale");
  writer.value_number(config.chain_scale);
  writer.key("connections");
  writer.value_uint(config.total_connections);
  writer.key("seed");
  writer.value_uint(config.seed);
  writer.end_object();
  writer.key("campaign");
  writer.begin_object();
  writer.key("epochs");
  writer.value_uint(epochs);
  writer.key("fleet_seed");
  writer.value_uint(kFleetSeed);
  writer.key("fault_rate");
  writer.value_number(kFaultRate);
  writer.key("targets_scanned");
  writer.value_uint(s.targets);
  writer.key("rate_limited");
  writer.value_uint(s.rate_limited);
  writer.key("ssl_rows");
  writer.value_uint(s.ssl_rows);
  writer.key("x509_rows");
  writer.value_uint(s.x509_rows);
  writer.key("section_digest");
  writer.value_uint(s.section_digest);
  writer.end_object();
  writer.key("phases");
  writer.begin_object();
  writer.key("scan");
  writer.begin_object();
  writer.key("wall_ms");
  writer.value_number(s.scan_ms);
  writer.key("targets_per_sec");
  writer.value_number(per_sec(s.targets, s.scan_ms));
  writer.key("peak_rss_bytes");
  writer.value_uint(static_cast<std::uint64_t>(scan.max_rss_kib) * 1024);
  writer.end_object();
  writer.key("epoch_fold");
  writer.begin_object();
  writer.key("wall_ms");
  writer.value_number(fold.payload.fold_ms);
  writer.key("ms_per_epoch");
  writer.value_number(fold.payload.fold_ms /
                      std::max<double>(1.0, static_cast<double>(epochs)));
  writer.key("rows_per_sec");
  writer.value_number(per_sec(fold.payload.ssl_rows + fold.payload.x509_rows,
                              fold.payload.fold_ms));
  writer.key("peak_rss_bytes");
  writer.value_uint(static_cast<std::uint64_t>(fold.max_rss_kib) * 1024);
  writer.end_object();
  writer.end_object();
  writer.key("targets_per_sec");
  writer.value_number(per_sec(s.targets, s.scan_ms));
  writer.end_object();
  return std::move(writer).str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_ext_fleet [--json-out <path>] [--smoke]\n"
                   "unknown argument: %s\n",
                   argv[i]);
      return 2;
    }
  }
  bench::print_header(
      "Ext: continuous revisit fleet throughput",
      "targets/sec through the rate-limited multi-epoch re-scan, plus the "
      "per-epoch live-server fold (forked children, clean ru_maxrss)");

  datagen::ScenarioConfig config = bench::config_from_env();
  if (smoke && std::getenv("CERTCHAIN_CONNECTIONS") == nullptr) {
    config.total_connections = 30000;
  }
  std::size_t epochs = smoke ? 3 : 4;
  if (const char* env = std::getenv("CERTCHAIN_FLEET_EPOCHS")) {
    epochs = static_cast<std::size_t>(std::max(1, std::atoi(env)));
  }

  // Shared campaign shape: drifted populations + seeded faults, exactly the
  // certchain-fleet defaults. Scenario build and the eager drifter run
  // untimed; only the run_epoch spans are charged to the scan clock.
  const auto run_campaign = [&](ChildPayload& payload, auto&& per_epoch) {
    auto scenario = datagen::build_study_scenario(config);
    datagen::EpochDriftConfig drift;
    drift.seed = kFleetSeed;
    const datagen::EpochDrifter drifter(*scenario, drift, epochs);
    netsim::FaultPlan plan(kFleetSeed ^ 0xF1EE7,
                           netsim::FaultRates::uniform(kFaultRate));
    fleet::FleetConfig fleet_config;
    fleet_config.seed = kFleetSeed;
    fleet::ScanFleet fleet(fleet_config, scenario->world.stores());
    for (std::size_t epoch = 0; epoch < drifter.epoch_count(); ++epoch) {
      const obs::Stopwatch watch;
      const fleet::EpochOutcome outcome =
          fleet.run_epoch(drifter.epoch(epoch), plan);
      payload.scan_ms += watch.elapsed_ms();
      per_epoch(*scenario, outcome);
    }
    payload.section_digest =
        util::fnv1a64(core::render_fleet_section(fleet.summaries()));
  };

  // Headline: the scan path itself, epoch by epoch.
  const ChildResult scan = measure_in_child([&] {
    ChildPayload payload;
    run_campaign(payload, [&](datagen::Scenario&,
                              const fleet::EpochOutcome& outcome) {
      payload.targets += outcome.summary.health.scanned;
      payload.ssl_rows += outcome.ssl_rows.size();
      payload.x509_rows += outcome.x509_rows.size();
      payload.rate_limited += outcome.rate_limited;
    });
    return payload;
  });
  if (!scan.ok) {
    std::fprintf(stderr, "bench_ext_fleet: scan measurement failed\n");
    return 1;
  }

  // Secondary: each epoch folded into a live ServiceState, reanalysis and
  // all — the latency a served fleet pays per completed epoch.
  const ChildResult fold = measure_in_child([&] {
    ChildPayload payload;
    std::unique_ptr<svc::ServiceState> state;
    run_campaign(payload, [&](datagen::Scenario& scenario,
                              const fleet::EpochOutcome& outcome) {
      if (state == nullptr) {
        state = std::make_unique<svc::ServiceState>(
            scenario.world.stores(), scenario.world.ct_logs(), scenario.vendors,
            &scenario.world.cross_signs());
        const netsim::GeneratedLogs logs = scenario.generate_logs();
        state->load(logs.ssl, logs.x509);
      }
      const obs::Stopwatch watch;
      state->ingest_append(outcome.ssl_rows, outcome.x509_rows,
                           "bench-epoch-" +
                               std::to_string(outcome.summary.index));
      state->record_fleet_epoch(outcome.summary);
      payload.fold_ms += watch.elapsed_ms();
      payload.ssl_rows += outcome.ssl_rows.size();
      payload.x509_rows += outcome.x509_rows.size();
    });
    return payload;
  });
  if (!fold.ok) {
    std::fprintf(stderr, "bench_ext_fleet: fold measurement failed\n");
    return 1;
  }

  const ChildPayload& s = scan.payload;
  bench::print_section("Fleet campaign (" + std::to_string(epochs) +
                       " epochs)");
  util::TextTable table({"Phase", "Count", "Wall ms", "Per sec",
                         "Peak RSS MiB"});
  table.add_row({"scan (headline targets/s)", util::with_commas(s.targets),
                 util::format_double(s.scan_ms, 1),
                 util::format_double(per_sec(s.targets, s.scan_ms), 0),
                 util::format_double(
                     static_cast<double>(scan.max_rss_kib) / 1024.0, 1)});
  table.add_row(
      {"epoch fold (rows/s)",
       util::with_commas(fold.payload.ssl_rows + fold.payload.x509_rows),
       util::format_double(fold.payload.fold_ms, 1),
       util::format_double(per_sec(fold.payload.ssl_rows +
                                       fold.payload.x509_rows,
                                   fold.payload.fold_ms),
                           0),
       util::format_double(static_cast<double>(fold.max_rss_kib) / 1024.0,
                           1)});
  std::printf("%s\n", table.render().c_str());

  std::printf("Campaign: %s targets over %zu epochs, %s rate-limited, %s ssl "
              "+ %s x509 rows, section digest %016llx\n",
              util::with_commas(s.targets).c_str(), epochs,
              util::with_commas(s.rate_limited).c_str(),
              util::with_commas(s.ssl_rows).c_str(),
              util::with_commas(s.x509_rows).c_str(),
              static_cast<unsigned long long>(s.section_digest));

  if (!json_out.empty()) {
    const std::string document = bench_json(config, smoke, epochs, scan, fold);
    std::ofstream out(json_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bench_ext_fleet: cannot write %s\n",
                   json_out.c_str());
      return 1;
    }
    out << document << '\n';
    std::fprintf(stderr, "[certchain] wrote %s\n", json_out.c_str());
  }
  return 0;
}
