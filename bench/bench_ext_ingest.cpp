// Extension — hot-path ingest throughput and residency (DESIGN.md §16):
// rows/second through the TSV parse + join + corpus-fold path, plus the
// end-to-end pipeline, with peak RSS per measured phase.
//
// This is the regression gate for the interned-DN/zero-copy ingest work:
// the committed BENCH_ingest.json records rows/sec and peak RSS, and the
// ingest-bench-smoke CI lane fails on a >20% rows/sec regression against it.
//
// Methodology mirrors bench_ext_streaming: every measurement runs in a
// forked child so ru_maxrss is a clean per-phase high-water mark. Corpus
// generation happens in a throwaway child that writes the Zeek log pair to
// disk; the measured children slurp those bytes and run the work:
//
//   ingest child   N timed iterations of {streaming TSV parse -> records;
//                  LogJoiner + CorpusIndex fold} — the per-row hot path,
//                  exactly as run_text_serial wires it: a DnPool attached to
//                  both readers and the joiner, so DNs are canonicalized
//                  once at intern time and the join works over interned ids.
//                  Headline rows/sec and peak RSS come from here.
//   pipeline child one full StudyPipeline::run over the same text (serial),
//                  reporting end-to-end rows/sec and the report digest as a
//                  byte-identity anchor across harness runs.
//
// An untimed warm-up iteration faults the log bytes in before the clock
// starts. `--smoke` shrinks the corpus for CI; `--json-out <path>` writes
// the machine-readable certchain.bench.ingest document.
//
// Knobs: CERTCHAIN_CONNECTIONS / CERTCHAIN_SCALE / CERTCHAIN_SEED (corpus),
//        CERTCHAIN_INGEST_ITERS (timed iterations).
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "core/dn_pool.hpp"
#include "core/report_text.hpp"
#include "obs/json.hpp"
#include "util/hash.hpp"
#include "zeek/joiner.hpp"
#include "zeek/log_io.hpp"
#include "zeek/log_stream.hpp"

namespace {

using namespace certchain;

/// Everything a measured child reports back through its pipe.
struct ChildPayload {
  double parse_ms = 0.0;  // summed over timed iterations
  double join_ms = 0.0;   // summed over timed iterations
  double end_ms = 0.0;    // one full pipeline run
  std::uint64_t log_bytes = 0;
  std::uint64_t ssl_rows = 0;
  std::uint64_t x509_rows = 0;
  std::uint64_t unique_chains = 0;
  std::uint64_t report_digest = 0;
};

struct ChildResult {
  ChildPayload payload;
  long max_rss_kib = 0;
  bool ok = false;
};

/// Forks, runs `child` (which returns its payload), and pairs the payload
/// with the child's peak RSS from wait4().
template <typename Child>
ChildResult measure_in_child(Child&& child) {
  ChildResult result;
  int fds[2];
  if (pipe(fds) != 0) return result;
  const pid_t pid = fork();
  if (pid < 0) return result;
  if (pid == 0) {
    close(fds[0]);
    const ChildPayload payload = child();
    (void)!write(fds[1], &payload, sizeof payload);
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  ChildPayload payload{};
  const ssize_t got = read(fds[0], &payload, sizeof payload);
  close(fds[0]);
  int status = 0;
  struct rusage usage {};
  wait4(pid, &status, 0, &usage);
  result.payload = payload;
  result.max_rss_kib = usage.ru_maxrss;
  result.ok = got == sizeof payload && WIFEXITED(status) &&
              WEXITSTATUS(status) == 0;
  return result;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

double rows_per_sec(std::uint64_t rows, double wall_ms) {
  return static_cast<double>(rows) * 1000.0 / std::max(wall_ms, 1e-9);
}

std::string bench_json(const datagen::ScenarioConfig& config, bool smoke,
                       int iterations, const ChildResult& ingest,
                       const ChildResult& pipeline, std::uint64_t log_bytes,
                       double headline_rows_per_sec) {
  const ChildPayload& in = ingest.payload;
  const std::uint64_t total_rows = in.ssl_rows + in.x509_rows;
  obs::json::Writer writer;
  writer.begin_object();
  writer.key("schema");
  writer.value_string("certchain.bench.ingest");
  writer.key("version");
  writer.value_uint(1);
  writer.key("smoke");
  writer.value_bool(smoke);
  writer.key("scenario");
  writer.begin_object();
  writer.key("chain_scale");
  writer.value_number(config.chain_scale);
  writer.key("connections");
  writer.value_uint(config.total_connections);
  writer.key("seed");
  writer.value_uint(config.seed);
  writer.end_object();
  writer.key("corpus");
  writer.begin_object();
  writer.key("ssl_rows");
  writer.value_uint(in.ssl_rows);
  writer.key("x509_rows");
  writer.value_uint(in.x509_rows);
  writer.key("log_bytes");
  writer.value_uint(log_bytes);
  writer.key("unique_chains");
  writer.value_uint(in.unique_chains);
  writer.end_object();
  writer.key("iterations");
  writer.value_uint(static_cast<std::uint64_t>(iterations));
  writer.key("phases");
  writer.begin_object();
  writer.key("parse");
  writer.begin_object();
  writer.key("wall_ms");
  writer.value_number(in.parse_ms);
  writer.key("rows_per_sec");
  writer.value_number(
      rows_per_sec(total_rows * static_cast<std::uint64_t>(iterations),
                   in.parse_ms));
  writer.end_object();
  writer.key("join_fold");
  writer.begin_object();
  writer.key("wall_ms");
  writer.value_number(in.join_ms);
  writer.key("rows_per_sec");
  writer.value_number(
      rows_per_sec(in.ssl_rows * static_cast<std::uint64_t>(iterations),
                   in.join_ms));
  writer.end_object();
  writer.key("end_to_end");
  writer.begin_object();
  writer.key("wall_ms");
  writer.value_number(pipeline.payload.end_ms);
  writer.key("rows_per_sec");
  writer.value_number(rows_per_sec(total_rows, pipeline.payload.end_ms));
  writer.key("peak_rss_bytes");
  writer.value_uint(static_cast<std::uint64_t>(pipeline.max_rss_kib) * 1024);
  writer.key("report_digest");
  writer.value_uint(pipeline.payload.report_digest);
  writer.end_object();
  writer.end_object();
  writer.key("rows_per_sec");
  writer.value_number(headline_rows_per_sec);
  writer.key("peak_rss_bytes");
  writer.value_uint(static_cast<std::uint64_t>(ingest.max_rss_kib) * 1024);
  writer.end_object();
  return std::move(writer).str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_ext_ingest [--json-out <path>] [--smoke]\n"
                   "unknown argument: %s\n",
                   argv[i]);
      return 2;
    }
  }
  bench::print_header(
      "Ext: hot-path ingest throughput and residency",
      "rows/sec through TSV parse + join + corpus fold (forked children, "
      "clean ru_maxrss per phase)");

  datagen::ScenarioConfig config = bench::config_from_env();
  if (smoke && std::getenv("CERTCHAIN_CONNECTIONS") == nullptr) {
    config.total_connections = 30000;
  }
  int iterations = smoke ? 2 : 3;
  if (const char* env = std::getenv("CERTCHAIN_INGEST_ITERS")) {
    iterations = std::max(1, std::atoi(env));
  }

  const std::string prefix =
      "/tmp/certchain_bench_ingest_" + std::to_string(getpid()) + "_";
  const std::string ssl_path = prefix + "ssl.log";
  const std::string x509_path = prefix + "x509.log";

  // Corpus generation in a throwaway child: datagen structures and log bytes
  // never become resident in the parent or the measured children.
  const ChildResult generation = measure_in_child([&] {
    ChildPayload payload;
    const auto scenario = datagen::build_study_scenario(config);
    const netsim::GeneratedLogs logs = scenario->generate_logs();
    zeek::SslLogWriter ssl_writer;
    for (const auto& record : logs.ssl) ssl_writer.add(record);
    const std::string ssl_text = ssl_writer.finish();
    zeek::X509LogWriter x509_writer;
    for (const auto& record : logs.x509) x509_writer.add(record);
    const std::string x509_text = x509_writer.finish();
    std::ofstream(ssl_path, std::ios::binary) << ssl_text;
    std::ofstream(x509_path, std::ios::binary) << x509_text;
    payload.log_bytes = ssl_text.size() + x509_text.size();
    return payload;
  });
  if (!generation.ok) {
    std::fprintf(stderr, "bench_ext_ingest: corpus generation failed\n");
    return 1;
  }
  const std::uint64_t log_bytes = generation.payload.log_bytes;
  std::fprintf(stderr, "[certchain] corpus on disk: %.1f MiB\n",
               static_cast<double>(log_bytes) / (1024.0 * 1024.0));

  // The headline measurement: the per-row hot path, isolated from analysis.
  const ChildResult ingest = measure_in_child([&] {
    ChildPayload payload;
    const std::string ssl_text = slurp(ssl_path);
    const std::string x509_text = slurp(x509_path);
    for (int it = -1; it < iterations; ++it) {  // it == -1 is the warm-up
      core::DnPool pool;
      std::vector<zeek::SslLogRecord> ssl;
      std::vector<zeek::X509LogRecord> x509;
      // Mirror run_text_serial: reserve from the newline count so the record
      // vectors never double through ~2x the needed footprint.
      ssl.reserve(static_cast<std::size_t>(
          std::count(ssl_text.begin(), ssl_text.end(), '\n')));
      x509.reserve(static_cast<std::size_t>(
          std::count(x509_text.begin(), x509_text.end(), '\n')));
      const obs::Stopwatch parse_watch;
      auto ssl_reader = zeek::make_streaming_ssl_reader(
          [&ssl](zeek::SslLogRecord record) { ssl.push_back(std::move(record)); });
      ssl_reader.set_dn_pool(&pool);
      ssl_reader.feed(ssl_text);
      ssl_reader.finish();
      auto x509_reader = zeek::make_streaming_x509_reader(
          [&x509](zeek::X509LogRecord record) { x509.push_back(std::move(record)); });
      x509_reader.set_dn_pool(&pool);
      x509_reader.feed(x509_text);
      x509_reader.finish();
      const double parse_ms = parse_watch.elapsed_ms();

      const obs::Stopwatch join_watch;
      zeek::LogJoiner joiner;
      joiner.set_dn_pool(&pool);
      for (const zeek::X509LogRecord& record : x509) joiner.add(record);
      core::CorpusIndex corpus;
      for (const zeek::SslLogRecord& row : ssl) corpus.add(joiner, row);
      const double join_ms = join_watch.elapsed_ms();

      if (it >= 0) {
        payload.parse_ms += parse_ms;
        payload.join_ms += join_ms;
      }
      payload.ssl_rows = ssl.size();
      payload.x509_rows = x509.size();
      payload.unique_chains = corpus.unique_chain_count();
    }
    return payload;
  });
  if (!ingest.ok) {
    std::fprintf(stderr, "bench_ext_ingest: ingest measurement failed\n");
    return 1;
  }

  // Secondary: the whole serial pipeline over the same text, digesting the
  // rendered report so harness runs can be diffed for byte-identity.
  const ChildResult pipeline_run = measure_in_child([&] {
    ChildPayload payload;
    const auto scenario = datagen::build_study_scenario(config);
    const std::string ssl_text = slurp(ssl_path);
    const std::string x509_text = slurp(x509_path);
    const core::StudyPipeline pipeline(
        scenario->world.stores(), scenario->world.ct_logs(), scenario->vendors,
        &scenario->world.cross_signs());
    const obs::Stopwatch watch;
    const core::StudyReport report =
        pipeline.run(core::StudyInput::text(ssl_text, x509_text));
    payload.end_ms = watch.elapsed_ms();
    core::ReportTextOptions options;
    options.graphs = true;
    payload.report_digest = util::fnv1a64(render_report_text(report, options));
    return payload;
  });
  if (!pipeline_run.ok) {
    std::fprintf(stderr, "bench_ext_ingest: pipeline measurement failed\n");
    return 1;
  }

  std::remove(ssl_path.c_str());
  std::remove(x509_path.c_str());

  const ChildPayload& in = ingest.payload;
  const std::uint64_t total_rows = in.ssl_rows + in.x509_rows;
  const std::uint64_t timed_rows =
      total_rows * static_cast<std::uint64_t>(iterations);
  const double headline =
      rows_per_sec(timed_rows, in.parse_ms + in.join_ms);

  bench::print_section("Ingest hot path (" + std::to_string(iterations) +
                       " timed iterations)");
  util::TextTable table({"Phase", "Rows", "Wall ms", "Rows/s", "Peak RSS MiB"});
  table.add_row({"parse", util::with_commas(timed_rows),
                 util::format_double(in.parse_ms, 1),
                 util::format_double(rows_per_sec(timed_rows, in.parse_ms), 0),
                 "-"});
  table.add_row(
      {"join+fold",
       util::with_commas(in.ssl_rows * static_cast<std::uint64_t>(iterations)),
       util::format_double(in.join_ms, 1),
       util::format_double(
           rows_per_sec(in.ssl_rows * static_cast<std::uint64_t>(iterations),
                        in.join_ms),
           0),
       "-"});
  table.add_row({"ingest (headline)", util::with_commas(timed_rows),
                 util::format_double(in.parse_ms + in.join_ms, 1),
                 util::format_double(headline, 0),
                 util::format_double(
                     static_cast<double>(ingest.max_rss_kib) / 1024.0, 1)});
  table.add_row(
      {"pipeline end-to-end", util::with_commas(total_rows),
       util::format_double(pipeline_run.payload.end_ms, 1),
       util::format_double(rows_per_sec(total_rows, pipeline_run.payload.end_ms),
                           0),
       util::format_double(
           static_cast<double>(pipeline_run.max_rss_kib) / 1024.0, 1)});
  std::printf("%s\n", table.render().c_str());

  std::printf("Corpus: %s ssl + %s x509 rows, %s unique chains, report digest "
              "%016llx\n",
              util::with_commas(in.ssl_rows).c_str(),
              util::with_commas(in.x509_rows).c_str(),
              util::with_commas(in.unique_chains).c_str(),
              static_cast<unsigned long long>(pipeline_run.payload.report_digest));

  if (!json_out.empty()) {
    const std::string document = bench_json(config, smoke, iterations, ingest,
                                            pipeline_run, log_bytes, headline);
    std::ofstream out(json_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bench_ext_ingest: cannot write %s\n",
                   json_out.c_str());
      return 1;
    }
    out << document << '\n';
    std::fprintf(stderr, "[certchain] wrote %s\n", json_out.c_str());
  }
  return 0;
}
