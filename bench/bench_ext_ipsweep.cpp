// Extension — IP-space sweep vs SNI-limited rescanning (Sec. 6.3 future work).
//
// The paper could only revisit servers whose connections carried an SNI
// (12,404 of the non-public population); it names full IP-space scanning as
// future work. This experiment runs both scan strategies over the simulated
// population and quantifies the coverage gap — how much of the non-public
// ecosystem the SNI route misses.
#include "bench_common.hpp"

#include "chain/matcher.hpp"

int main() {
  using namespace certchain;
  bench::print_header(
      "Extension: SNI-limited rescan vs full IP-space sweep (Sec. 6.3)",
      "Coverage comparison of the two active-scanning strategies over the "
      "2024 population");

  bench::StudyContext context = bench::build_context();
  const scanner::ActiveScanner scanner(context.scenario->endpoints);

  struct Coverage {
    std::size_t targets = 0;
    std::size_t reachable = 0;
    std::size_t non_public = 0;
    std::size_t single_cert = 0;
    std::size_t multi_matched = 0;
  };
  const auto tally = [&](const std::vector<scanner::ScanResult>& results) {
    Coverage coverage;
    coverage.targets = results.size();
    for (const auto& result : results) {
      if (!result.reachable || result.chain.empty()) continue;
      ++coverage.reachable;
      bool all_non_public = true;
      for (const auto& cert : result.chain) {
        all_non_public = all_non_public &&
                         context.scenario->world.stores().classify_certificate(cert) ==
                             truststore::IssuerClass::kNonPublicDb;
      }
      if (!all_non_public) continue;
      ++coverage.non_public;
      if (result.chain.is_single()) {
        ++coverage.single_cert;
      } else if (chain::analyze_paths(result.chain, nullptr, false).is_complete_path()) {
        ++coverage.multi_matched;
      }
    }
    return coverage;
  };

  const Coverage by_domain = tally(scanner.scan_all_domains());
  const Coverage by_ip = tally(scanner.scan_all_ips());

  util::TextTable table({"Metric", "SNI-limited (paper)", "IP-space sweep (future work)"});
  table.add_row({"scan targets", util::with_commas(by_domain.targets),
                 util::with_commas(by_ip.targets)});
  table.add_row({"reachable servers", util::with_commas(by_domain.reachable),
                 util::with_commas(by_ip.reachable)});
  table.add_row({"non-public-DB-only servers", util::with_commas(by_domain.non_public),
                 util::with_commas(by_ip.non_public)});
  table.add_row({"  still single-certificate", util::with_commas(by_domain.single_cert),
                 util::with_commas(by_ip.single_cert)});
  table.add_row({"  multi-cert, complete matched path",
                 util::with_commas(by_domain.multi_matched),
                 util::with_commas(by_ip.multi_matched)});
  std::printf("%s\n", table.render().c_str());

  const double missed =
      by_ip.non_public == 0
          ? 0.0
          : 1.0 - static_cast<double>(by_domain.non_public) /
                      static_cast<double>(by_ip.non_public);
  std::printf(
      "Coverage gap: the SNI-limited strategy misses %.1f%% of the reachable "
      "non-public population (the paper's 79.49%% SNI-less connection share "
      "predicts a large gap).\n",
      100.0 * missed);
  std::printf(
      "Caveat reproduced from the paper: the sweep sees the chains but not "
      "their *usage*; connection statistics still require operator traffic "
      "logs (Sec. 6.3).\n");
  return 0;
}
