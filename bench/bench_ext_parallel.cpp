// Extension — sharded pipeline speedup: serial vs. N-worker wall time on
// the calibrated datagen corpus, with the equivalence contract checked on
// every run (DESIGN.md §10): the parallel report text must be byte-equal
// to the serial one, or the speedup numbers are meaningless.
#include "bench_common.hpp"

#include <algorithm>
#include <thread>

#include "core/report_text.hpp"
#include "par/thread_pool.hpp"
#include "zeek/log_io.hpp"

int main() {
  using namespace certchain;
  bench::print_header(
      "Ext: sharded pipeline wall time and speedup",
      "text-input run at 1/2/4/8/hw workers; output proven byte-identical");

  bench::StudyContext context = bench::build_context();

  zeek::SslLogWriter ssl_writer;
  for (const auto& record : context.logs.ssl) ssl_writer.add(record);
  const std::string ssl_text = ssl_writer.finish();
  zeek::X509LogWriter x509_writer;
  for (const auto& record : context.logs.x509) x509_writer.add(record);
  const std::string x509_text = x509_writer.finish();

  const core::StudyPipeline pipeline(
      context.scenario->world.stores(), context.scenario->world.ct_logs(),
      context.scenario->vendors, &context.scenario->world.cross_signs());
  core::ReportTextOptions text_options;
  text_options.graphs = true;

  constexpr int kRepetitions = 3;  // best-of, to shave scheduler noise
  const auto timed_run = [&](std::size_t threads, std::string* text_out) {
    double best_ms = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      core::RunOptions options;
      options.threads = threads;
      const obs::Stopwatch stopwatch;
      const core::StudyReport report =
          pipeline.run(core::StudyInput::text(ssl_text, x509_text), options);
      const double ms = stopwatch.elapsed_ms();
      if (rep == 0 || ms < best_ms) best_ms = ms;
      if (rep == 0 && text_out) {
        *text_out = render_report_text(report, text_options);
      }
    }
    return best_ms;
  };

  std::string serial_text;
  const double serial_ms = timed_run(1, &serial_text);

  bench::print_section("Wall time vs. worker count (best of 3)");
  util::TextTable table({"Workers", "Wall ms", "Speedup", "Identical"});
  table.add_row({"1 (serial)", util::format_double(serial_ms, 1), "1.00x",
                 "baseline"});

  const std::size_t hardware = par::resolve_threads(0);
  std::vector<std::size_t> counts = {2, 4, 8};
  if (std::find(counts.begin(), counts.end(), hardware) == counts.end()) {
    counts.push_back(hardware);
  }
  bool all_identical = true;
  for (const std::size_t threads : counts) {
    std::string text;
    const double ms = timed_run(threads, &text);
    const bool identical = text == serial_text;
    all_identical = all_identical && identical;
    const std::string label =
        std::to_string(threads) + (threads == hardware ? " (hw)" : "");
    table.add_row({label, util::format_double(ms, 1),
                   util::format_double(serial_ms / ms, 2) + "x",
                   identical ? "yes" : "NO — BUG"});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Equivalence: %s\n",
              all_identical
                  ? "every worker count reproduced the serial report text"
                  : "MISMATCH — the sharded pipeline diverged from serial");
  return all_identical ? 0 : 1;
}
