// Extension — revisit under network faults: sweep the fault rate and watch
// the §5 revisit degrade gracefully instead of silently losing population.
//
// At rate 0 the resilient path must reproduce the perfect-network revisit
// exactly; as faults rise, retries and partial-bundle salvage keep part of
// the population measurable, and the scan-health ledger states precisely
// which share was clean / degraded / lost — the way the paper states its
// exclusions (e.g. the 79.49% no-SNI share).
#include "bench_common.hpp"

#include "netsim/faults.hpp"
#include "core/report_text.hpp"
#include "scanner/resilient_scanner.hpp"

int main() {
  using namespace certchain;
  bench::print_header(
      "Ext: revisit resilience under injected network faults",
      "Retry/backoff + salvage vs. fault rate on the Sec. 5 hybrid revisit");

  bench::StudyContext context = bench::build_context();
  const scanner::ActiveScanner inner(context.scenario->endpoints);
  const core::RevisitAnalyzer analyzer(context.scenario->world.stores(),
                                       &context.scenario->world.cross_signs());

  std::vector<const netsim::ServerEndpoint*> hybrid_servers;
  for (const auto& endpoint : context.scenario->endpoints) {
    if (endpoint.label.rfind("hybrid/", 0) == 0) hybrid_servers.push_back(&endpoint);
  }

  const core::HybridRevisitReport baseline =
      analyzer.analyze_hybrid(hybrid_servers, inner);

  bench::print_section("Fault-rate sweep (uniform across all fault kinds)");
  util::TextTable table({"Rate", "Clean", "Degraded", "Unreachable", "Retries",
                         "Backoff ms", "Salvage %", "Now public"});
  const double rates[] = {0.0, 0.05, 0.10, 0.20, 0.35, 0.50};
  core::HybridRevisitReport zero_fault;
  for (const double rate : rates) {
    const netsim::FaultPlan plan(0xC11A5EED, netsim::FaultRates::uniform(rate));
    scanner::ResilientScanner resilient(inner, plan);
    const core::HybridRevisitReport report =
        analyzer.analyze_hybrid(hybrid_servers, resilient);
    if (rate == 0.0) zero_fault = report;
    const scanner::ScanLedger& ledger = report.scan_health.ledger;
    table.add_row({util::percent(rate, 1.0),
                   util::with_commas(report.scan_health.reachable_clean),
                   util::with_commas(report.scan_health.reachable_degraded),
                   util::with_commas(report.scan_health.unreachable),
                   util::with_commas(ledger.retries),
                   util::with_commas(ledger.backoff_ms_total),
                   util::percent(ledger.salvage_rate(), 1.0),
                   util::with_commas(report.now_all_public)});
  }
  std::printf("%s\n", table.render().c_str());

  bench::print_section("Scan health at 20% fault rate");
  {
    const netsim::FaultPlan plan(0xC11A5EED, netsim::FaultRates::uniform(0.20));
    scanner::ResilientScanner resilient(inner, plan);
    const core::HybridRevisitReport report =
        analyzer.analyze_hybrid(hybrid_servers, resilient);
    std::printf("%s\n", core::render_scan_health(report.scan_health).c_str());
  }

  const bool zero_fault_identical =
      zero_fault.reachable == baseline.reachable &&
      zero_fault.now_all_public == baseline.now_all_public &&
      zero_fault.now_lets_encrypt == baseline.now_lets_encrypt &&
      zero_fault.still_hybrid == baseline.still_hybrid;
  std::printf("Zero-fault resilient revisit identical to ActiveScanner: %s\n",
              zero_fault_identical ? "yes" : "NO (regression)");
  return zero_fault_identical ? 0 : 1;
}
