// Extension — closed-loop serving throughput and latency (DESIGN.md §12, §15):
// start svc::Server over the calibrated corpus, drive it from closed-loop
// loopback connections (each connection has at most one request in flight),
// and report requests/second plus the server-side per-endpoint
// latency distribution (p50/p90/p99 from the `svc.endpoint.<name>.ms` timing
// histograms). The sweep covers the classic 4-client worker scaling points
// (1/4/hw workers) plus a high-connection-count configuration (256 clients by
// default, CERTCHAIN_SERVE_CLIENTS to override) that exercises the epoll
// event loop the way per-connection reader threads never could. The load is
// driven wrk-style: a handful of driver threads each own a slice of the
// connections and pump them in send-all-then-read-all waves, so a
// 256-connection point measures the server's 256-socket event loop rather
// than the bench host's ability to schedule 256 client threads. Every
// configuration asserts the stage.svc.requests.{in,admitted,dropped} manifest
// triple reconciles — throughput numbers over lost requests would be
// meaningless.
//
// `--smoke` shrinks the sweep to the single high-connection configuration
// with a few requests per client: the CI serve-stress-smoke lane runs that
// under TSan, where the point is the interleavings (hundreds of sockets, all
// loop-owned, racing the RCU publish path), not the numbers.
//
// CERTCHAIN_METRICS=<path-prefix> additionally writes the standard
// certchain.obs.metrics JSON export of each configuration to
// <path-prefix><workers>.json, and `--json-out <path>` writes the whole
// sweep as one machine-readable certchain.bench.serve document so the
// serving-performance trajectory can be tracked across commits.
#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "par/thread_pool.hpp"
#include "svc/client.hpp"
#include "zeek/joiner.hpp"
#include "svc/server.hpp"
#include "svc/service_state.hpp"
#include "svc/telemetry.hpp"

namespace {

/// One point of the sweep: how many workers serve how many closed-loop
/// clients, and how hard each client pushes.
struct LoadConfig {
  std::size_t workers = 1;
  int clients = 4;
  int requests_per_client = 250;
};

struct LoadResult {
  double wall_ms = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  bool reconciles = false;
  std::string metrics_json;
  // Server-side latency per endpoint: {name, count, p50, p90, p99}.
  struct Endpoint {
    std::string name;
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  std::vector<Endpoint> endpoints;
};

/// The whole sweep as one schema-versioned JSON document. Version 2 moved
/// clients/requests_per_client into each configuration (the sweep is no
/// longer uniform: the high-connection point runs a different client count).
std::string sweep_json(const certchain::datagen::ScenarioConfig& config,
                       std::size_t ssl_rows, std::size_t x509_rows,
                       std::size_t unique_chains, std::size_t hardware,
                       const std::vector<LoadConfig>& load_configs,
                       const std::vector<LoadResult>& results) {
  certchain::obs::json::Writer writer;
  writer.begin_object();
  writer.key("schema");
  writer.value_string("certchain.bench.serve");
  writer.key("version");
  writer.value_uint(2);
  writer.key("scenario");
  writer.begin_object();
  writer.key("chain_scale");
  writer.value_number(config.chain_scale);
  writer.key("connections");
  writer.value_uint(config.total_connections);
  writer.key("seed");
  writer.value_uint(config.seed);
  writer.end_object();
  writer.key("corpus");
  writer.begin_object();
  writer.key("ssl_rows");
  writer.value_uint(ssl_rows);
  writer.key("x509_rows");
  writer.value_uint(x509_rows);
  writer.key("unique_chains");
  writer.value_uint(unique_chains);
  writer.end_object();
  writer.key("load");
  writer.begin_object();
  writer.key("hardware_workers");
  writer.value_uint(hardware);
  writer.end_object();
  writer.key("configurations");
  writer.begin_array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LoadConfig& load = load_configs[i];
    const LoadResult& result = results[i];
    writer.begin_object();
    writer.key("workers");
    writer.value_uint(load.workers);
    writer.key("clients");
    writer.value_uint(static_cast<std::uint64_t>(load.clients));
    writer.key("requests_per_client");
    writer.value_uint(static_cast<std::uint64_t>(load.requests_per_client));
    writer.key("wall_ms");
    writer.value_number(result.wall_ms);
    writer.key("requests");
    writer.value_uint(result.requests);
    writer.key("requests_per_second");
    writer.value_number(result.requests * 1000.0 /
                        std::max(result.wall_ms, 1e-9));
    writer.key("errors");
    writer.value_uint(result.errors);
    writer.key("manifest_triple_reconciles");
    writer.value_bool(result.reconciles);
    writer.key("endpoints");
    writer.begin_array();
    for (const LoadResult::Endpoint& endpoint : result.endpoints) {
      writer.begin_object();
      writer.key("name");
      writer.value_string(endpoint.name);
      writer.key("count");
      writer.value_uint(endpoint.count);
      writer.key("p50_ms");
      writer.value_number(endpoint.p50);
      writer.key("p90_ms");
      writer.value_number(endpoint.p90);
      writer.key("p99_ms");
      writer.value_number(endpoint.p99);
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
  return std::move(writer).str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace certchain;

  std::string json_out;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_ext_serve [--json-out <path>] [--smoke]\n"
                   "unknown argument: %s\n",
                   argv[i]);
      return 2;
    }
  }
  bench::print_header(
      "Ext: certchain-serve closed-loop throughput and latency",
      "loopback clients vs. 1/4/hw request workers + a high-connection "
      "event-loop point; manifest triple checked");

  const datagen::ScenarioConfig config = bench::config_from_env();
  auto scenario = datagen::build_study_scenario(config);
  const netsim::GeneratedLogs logs = scenario->generate_logs();
  std::fprintf(stderr, "[certchain] corpus: %zu ssl rows, %zu x509 rows\n",
               logs.ssl.size(), logs.x509.size());

  svc::ServiceState state(scenario->world.stores(), scenario->world.ct_logs(),
                          scenario->vendors, &scenario->world.cross_signs());
  state.load(logs.ssl, logs.x509);
  std::fprintf(stderr, "[certchain] corpus ready: %zu unique chains\n",
               state.unique_chains());

  // A handful of issuer DNs from the corpus for the classify mix.
  std::vector<std::string> issuers;
  for (const auto& record : logs.x509) {
    issuers.push_back(zeek::certificate_from_record(record).issuer.to_string());
    if (issuers.size() >= 8) break;
  }

  const auto run_load = [&](const LoadConfig& load) {
    LoadResult result;
    svc::SyncTelemetry telemetry;
    svc::ServerOptions options;
    options.workers = load.workers;
    // Scale the admission bound and connection cap with the client count: a
    // closed-loop client holds at most one request in flight, so capacity ==
    // clients guarantees OVERLOADED never fires and every error is real.
    options.queue_capacity =
        std::max<std::size_t>(256, static_cast<std::size_t>(load.clients));
    options.max_connections =
        std::max<std::size_t>(64, static_cast<std::size_t>(load.clients) + 8);
    svc::Server server(state, telemetry, options);
    std::string error;
    if (!server.start(&error)) {
      std::fprintf(stderr, "bench_ext_serve: %s\n", error.c_str());
      return result;
    }

    // Pre-encoded request frames for the 4-endpoint mix (same payloads the
    // typed svc::Client helpers send), so the drivers spend their cycles on
    // sockets, not JSON building.
    std::vector<std::string> classify_wires;
    for (const std::string& issuer : issuers) {
      obs::json::Writer writer;
      writer.begin_object();
      writer.key("issuer");
      writer.value_string(issuer);
      writer.end_object();
      classify_wires.push_back(svc::encode_frame(
          svc::MessageType::kClassifyIssuer, std::move(writer).str()));
    }
    const std::string ping_wire =
        svc::encode_frame(svc::MessageType::kPing, "");
    const std::string metrics_wire =
        svc::encode_frame(svc::MessageType::kMetrics, "");
    const std::string report_wire = svc::encode_frame(
        svc::MessageType::kReportSection, "{\"section\":\"totals\"}");
    const auto request_wire = [&](int c, int i) -> const std::string& {
      switch ((c + i) % 4) {
        case 0: return ping_wire;
        case 1:
          return classify_wires[static_cast<std::size_t>(i) %
                                classify_wires.size()];
        case 2: return report_wire;
        default: return metrics_wire;
      }
    };

    // wrk-style drivers: each thread owns connections c ≡ d (mod drivers)
    // and pumps them in waves — send one request on every connection, then
    // read every response — so each connection stays closed-loop (one in
    // flight) while the server juggles all of them at once.
    const std::size_t driver_threads =
        std::min<std::size_t>(static_cast<std::size_t>(load.clients),
                              std::max<std::size_t>(par::resolve_threads(0) * 2, 4));
    std::atomic<std::uint64_t> errors{0};
    const obs::Stopwatch stopwatch;
    std::vector<std::thread> drivers;
    drivers.reserve(driver_threads);
    for (std::size_t d = 0; d < driver_threads; ++d) {
      drivers.emplace_back([&, d] {
        std::vector<std::unique_ptr<svc::Client>> conns;
        std::vector<int> ids;
        for (int c = static_cast<int>(d); c < load.clients;
             c += static_cast<int>(driver_threads)) {
          auto client = std::make_unique<svc::Client>();
          if (!client->connect("127.0.0.1", server.port())) {
            errors.fetch_add(
                static_cast<std::uint64_t>(load.requests_per_client));
            continue;
          }
          conns.push_back(std::move(client));
          ids.push_back(c);
        }
        for (int i = 0; i < load.requests_per_client; ++i) {
          for (std::size_t k = 0; k < conns.size(); ++k) {
            if (!conns[k]->send_raw(request_wire(ids[k], i))) {
              errors.fetch_add(1);
            }
          }
          for (std::size_t k = 0; k < conns.size(); ++k) {
            const auto frame = conns[k]->read_frame();
            if (!frame.has_value() ||
                frame->type == svc::MessageType::kError) {
              errors.fetch_add(1);
            }
          }
        }
      });
    }
    for (std::thread& thread : drivers) thread.join();
    result.wall_ms = stopwatch.elapsed_ms();
    result.requests = static_cast<std::uint64_t>(load.clients) *
                      static_cast<std::uint64_t>(load.requests_per_client);
    result.errors = errors.load();

    server.request_stop();
    server.wait();

    const std::uint64_t in = telemetry.counter("stage.svc.requests.in");
    const std::uint64_t admitted =
        telemetry.counter("stage.svc.requests.admitted");
    const std::uint64_t dropped =
        telemetry.counter("stage.svc.requests.dropped");
    result.reconciles = in == admitted + dropped && in == result.requests;
    result.metrics_json = telemetry.export_json();
    telemetry.with_context([&](const obs::RunContext& context) {
      for (const auto& [name, histogram] : context.metrics.timings()) {
        if (name.rfind("svc.endpoint.", 0) != 0) continue;
        result.endpoints.push_back({name, histogram.count(), histogram.p50(),
                                    histogram.p90(), histogram.p99()});
      }
    });
    return result;
  };

  const std::size_t hardware = par::resolve_threads(0);
  int stress_clients = 256;
  if (const char* env = std::getenv("CERTCHAIN_SERVE_CLIENTS")) {
    stress_clients = std::max(1, std::atoi(env));
  }

  std::vector<LoadConfig> load_configs;
  if (smoke) {
    // One configuration, little work per client: the interesting part is
    // hundreds of loop-owned sockets racing, not throughput.
    load_configs.push_back({hardware, stress_clients, 4});
  } else {
    std::vector<std::size_t> worker_counts = {1, 4};
    if (std::find(worker_counts.begin(), worker_counts.end(), hardware) ==
        worker_counts.end()) {
      worker_counts.push_back(hardware);
    }
    for (const std::size_t workers : worker_counts) {
      load_configs.push_back({workers, 4, 250});
    }
    load_configs.push_back({hardware, stress_clients, 50});
  }

  const char* metrics_prefix = std::getenv("CERTCHAIN_METRICS");
  bool all_ok = true;

  bench::print_section("Closed-loop throughput");
  util::TextTable throughput(
      {"Workers", "Clients", "Req", "Wall ms", "Req/s", "Errors", "Triple"});
  std::vector<LoadResult> results;
  for (const LoadConfig& load : load_configs) {
    LoadResult result = run_load(load);
    const std::string label = std::to_string(load.workers) +
                              (load.workers == hardware ? " (hw)" : "");
    throughput.add_row(
        {label, std::to_string(load.clients), std::to_string(result.requests),
         util::format_double(result.wall_ms, 1),
         util::format_double(result.requests * 1000.0 /
                                 std::max(result.wall_ms, 1e-9),
                             0),
         std::to_string(result.errors),
         result.reconciles ? "reconciles" : "BROKEN"});
    all_ok = all_ok && result.reconciles && result.errors == 0;
    if (metrics_prefix != nullptr) {
      const std::string path =
          std::string(metrics_prefix) + std::to_string(load.workers) + ".json";
      std::ofstream out(path, std::ios::binary);
      out << result.metrics_json;
      std::fprintf(stderr, "[certchain] wrote %s\n", path.c_str());
    }
    results.push_back(std::move(result));
  }
  std::printf("%s\n", throughput.render().c_str());

  bench::print_section("Server-side endpoint latency (last configuration)");
  util::TextTable latency({"Endpoint", "Count", "p50 ms", "p90 ms", "p99 ms"});
  for (const LoadResult::Endpoint& endpoint : results.back().endpoints) {
    latency.add_row({endpoint.name, std::to_string(endpoint.count),
                     util::format_double(endpoint.p50, 3),
                     util::format_double(endpoint.p90, 3),
                     util::format_double(endpoint.p99, 3)});
  }
  std::printf("%s\n", latency.render().c_str());

  if (!json_out.empty()) {
    const std::string document =
        sweep_json(config, logs.ssl.size(), logs.x509.size(),
                   state.unique_chains(), hardware, load_configs, results);
    std::ofstream out(json_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bench_ext_serve: cannot write %s\n",
                   json_out.c_str());
      return 1;
    }
    out << document << '\n';
    std::fprintf(stderr, "[certchain] wrote %s\n", json_out.c_str());
  }

  std::printf("Accounting: %s\n",
              all_ok ? "every configuration answered every request and its "
                       "manifest triple reconciled"
                     : "FAILURE — dropped requests or broken accounting");
  return all_ok ? 0 : 1;
}
