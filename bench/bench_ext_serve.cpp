// Extension — closed-loop serving throughput and latency (DESIGN.md §12):
// start svc::Server over the calibrated corpus at 1/4/hw request workers,
// drive it from closed-loop loopback clients (each sends the next request
// only after the previous response), and report requests/second plus the
// server-side per-endpoint latency distribution (p50/p90/p99 from the
// `svc.endpoint.<name>.ms` timing histograms). Every configuration asserts
// the stage.svc.requests.{in,admitted,dropped} manifest triple reconciles —
// throughput numbers over lost requests would be meaningless.
//
// CERTCHAIN_METRICS=<path-prefix> additionally writes the standard
// certchain.obs.metrics JSON export of each configuration to
// <path-prefix><workers>.json, and `--json-out <path>` writes the whole
// sweep as one machine-readable certchain.bench.serve document so the
// serving-performance trajectory can be tracked across commits.
#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "par/thread_pool.hpp"
#include "svc/client.hpp"
#include "zeek/joiner.hpp"
#include "svc/server.hpp"
#include "svc/service_state.hpp"
#include "svc/telemetry.hpp"

namespace {

struct LoadResult {
  double wall_ms = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  bool reconciles = false;
  std::string metrics_json;
  // Server-side latency per endpoint: {name, count, p50, p90, p99}.
  struct Endpoint {
    std::string name;
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  std::vector<Endpoint> endpoints;
};

/// The whole sweep as one schema-versioned JSON document.
std::string sweep_json(const certchain::datagen::ScenarioConfig& config,
                       std::size_t ssl_rows, std::size_t x509_rows,
                       std::size_t unique_chains, std::size_t hardware,
                       int clients, int requests_per_client,
                       const std::vector<std::size_t>& worker_counts,
                       const std::vector<LoadResult>& results) {
  certchain::obs::json::Writer writer;
  writer.begin_object();
  writer.key("schema");
  writer.value_string("certchain.bench.serve");
  writer.key("version");
  writer.value_uint(1);
  writer.key("scenario");
  writer.begin_object();
  writer.key("chain_scale");
  writer.value_number(config.chain_scale);
  writer.key("connections");
  writer.value_uint(config.total_connections);
  writer.key("seed");
  writer.value_uint(config.seed);
  writer.end_object();
  writer.key("corpus");
  writer.begin_object();
  writer.key("ssl_rows");
  writer.value_uint(ssl_rows);
  writer.key("x509_rows");
  writer.value_uint(x509_rows);
  writer.key("unique_chains");
  writer.value_uint(unique_chains);
  writer.end_object();
  writer.key("load");
  writer.begin_object();
  writer.key("clients");
  writer.value_uint(static_cast<std::uint64_t>(clients));
  writer.key("requests_per_client");
  writer.value_uint(static_cast<std::uint64_t>(requests_per_client));
  writer.key("hardware_workers");
  writer.value_uint(hardware);
  writer.end_object();
  writer.key("configurations");
  writer.begin_array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LoadResult& result = results[i];
    writer.begin_object();
    writer.key("workers");
    writer.value_uint(worker_counts[i]);
    writer.key("wall_ms");
    writer.value_number(result.wall_ms);
    writer.key("requests");
    writer.value_uint(result.requests);
    writer.key("requests_per_second");
    writer.value_number(result.requests * 1000.0 /
                        std::max(result.wall_ms, 1e-9));
    writer.key("errors");
    writer.value_uint(result.errors);
    writer.key("manifest_triple_reconciles");
    writer.value_bool(result.reconciles);
    writer.key("endpoints");
    writer.begin_array();
    for (const LoadResult::Endpoint& endpoint : result.endpoints) {
      writer.begin_object();
      writer.key("name");
      writer.value_string(endpoint.name);
      writer.key("count");
      writer.value_uint(endpoint.count);
      writer.key("p50_ms");
      writer.value_number(endpoint.p50);
      writer.key("p90_ms");
      writer.value_number(endpoint.p90);
      writer.key("p99_ms");
      writer.value_number(endpoint.p99);
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
  return std::move(writer).str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace certchain;

  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_ext_serve [--json-out <path>]\n"
                   "unknown argument: %s\n",
                   argv[i]);
      return 2;
    }
  }
  bench::print_header(
      "Ext: certchain-serve closed-loop throughput and latency",
      "loopback clients vs. 1/4/hw request workers; manifest triple checked");

  const datagen::ScenarioConfig config = bench::config_from_env();
  auto scenario = datagen::build_study_scenario(config);
  const netsim::GeneratedLogs logs = scenario->generate_logs();
  std::fprintf(stderr, "[certchain] corpus: %zu ssl rows, %zu x509 rows\n",
               logs.ssl.size(), logs.x509.size());

  svc::ServiceState state(scenario->world.stores(), scenario->world.ct_logs(),
                          scenario->vendors, &scenario->world.cross_signs());
  state.load(logs.ssl, logs.x509);
  std::fprintf(stderr, "[certchain] corpus ready: %zu unique chains\n",
               state.unique_chains());

  // A handful of issuer DNs from the corpus for the classify mix.
  std::vector<std::string> issuers;
  for (const auto& record : logs.x509) {
    issuers.push_back(zeek::certificate_from_record(record).issuer.to_string());
    if (issuers.size() >= 8) break;
  }

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 250;

  const auto run_load = [&](std::size_t workers) {
    LoadResult result;
    svc::SyncTelemetry telemetry;
    svc::ServerOptions options;
    options.workers = workers;
    options.queue_capacity = 256;
    svc::Server server(state, telemetry, options);
    std::string error;
    if (!server.start(&error)) {
      std::fprintf(stderr, "bench_ext_serve: %s\n", error.c_str());
      return result;
    }

    std::atomic<std::uint64_t> errors{0};
    const obs::Stopwatch stopwatch;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        svc::Client client;
        if (!client.connect("127.0.0.1", server.port())) {
          errors.fetch_add(kRequestsPerClient);
          return;
        }
        for (int i = 0; i < kRequestsPerClient; ++i) {
          std::optional<svc::Response> response;
          switch ((c + i) % 4) {
            case 0: response = client.ping(); break;
            case 1:
              response = client.classify_issuer(
                  issuers[static_cast<std::size_t>(i) % issuers.size()]);
              break;
            case 2: response = client.report_section("totals"); break;
            default: response = client.metrics(); break;
          }
          if (!response.has_value() || !response->ok) errors.fetch_add(1);
        }
      });
    }
    for (std::thread& thread : clients) thread.join();
    result.wall_ms = stopwatch.elapsed_ms();
    result.requests =
        static_cast<std::uint64_t>(kClients) * kRequestsPerClient;
    result.errors = errors.load();

    server.request_stop();
    server.wait();

    const std::uint64_t in = telemetry.counter("stage.svc.requests.in");
    const std::uint64_t admitted =
        telemetry.counter("stage.svc.requests.admitted");
    const std::uint64_t dropped =
        telemetry.counter("stage.svc.requests.dropped");
    result.reconciles = in == admitted + dropped && in == result.requests;
    result.metrics_json = telemetry.export_json();
    telemetry.with_context([&](const obs::RunContext& context) {
      for (const auto& [name, histogram] : context.metrics.timings()) {
        if (name.rfind("svc.endpoint.", 0) != 0) continue;
        result.endpoints.push_back({name, histogram.count(), histogram.p50(),
                                    histogram.p90(), histogram.p99()});
      }
    });
    return result;
  };

  const std::size_t hardware = par::resolve_threads(0);
  std::vector<std::size_t> worker_counts = {1, 4};
  if (std::find(worker_counts.begin(), worker_counts.end(), hardware) ==
      worker_counts.end()) {
    worker_counts.push_back(hardware);
  }

  const char* metrics_prefix = std::getenv("CERTCHAIN_METRICS");
  bool all_ok = true;

  bench::print_section("Closed-loop throughput (4 clients, 1000 requests)");
  util::TextTable throughput(
      {"Workers", "Wall ms", "Req/s", "Errors", "Triple"});
  std::vector<LoadResult> results;
  for (const std::size_t workers : worker_counts) {
    LoadResult result = run_load(workers);
    const std::string label = std::to_string(workers) +
                              (workers == hardware ? " (hw)" : "");
    throughput.add_row(
        {label, util::format_double(result.wall_ms, 1),
         util::format_double(result.requests * 1000.0 /
                                 std::max(result.wall_ms, 1e-9),
                             0),
         std::to_string(result.errors),
         result.reconciles ? "reconciles" : "BROKEN"});
    all_ok = all_ok && result.reconciles && result.errors == 0;
    if (metrics_prefix != nullptr) {
      const std::string path =
          std::string(metrics_prefix) + std::to_string(workers) + ".json";
      std::ofstream out(path, std::ios::binary);
      out << result.metrics_json;
      std::fprintf(stderr, "[certchain] wrote %s\n", path.c_str());
    }
    results.push_back(std::move(result));
  }
  std::printf("%s\n", throughput.render().c_str());

  bench::print_section("Server-side endpoint latency (hw workers)");
  util::TextTable latency({"Endpoint", "Count", "p50 ms", "p90 ms", "p99 ms"});
  for (const LoadResult::Endpoint& endpoint : results.back().endpoints) {
    latency.add_row({endpoint.name, std::to_string(endpoint.count),
                     util::format_double(endpoint.p50, 3),
                     util::format_double(endpoint.p90, 3),
                     util::format_double(endpoint.p99, 3)});
  }
  std::printf("%s\n", latency.render().c_str());

  if (!json_out.empty()) {
    const std::string document =
        sweep_json(config, logs.ssl.size(), logs.x509.size(),
                   state.unique_chains(), hardware, kClients,
                   kRequestsPerClient, worker_counts, results);
    std::ofstream out(json_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bench_ext_serve: cannot write %s\n",
                   json_out.c_str());
      return 1;
    }
    out << document << '\n';
    std::fprintf(stderr, "[certchain] wrote %s\n", json_out.c_str());
  }

  std::printf("Accounting: %s\n",
              all_ok ? "every configuration answered every request and its "
                       "manifest triple reconciled"
                     : "FAILURE — dropped requests or broken accounting");
  return all_ok ? 0 : 1;
}
