// Extension — bounded-memory streaming: peak RSS of the streamed engine vs
// the in-memory text path at ascending corpus sizes (DESIGN.md §11).
//
// The claim under test: streamed residency is O(chunk_bytes + deduplicated
// corpus), not O(log bytes). Peak RSS is a process-wide high-water mark, so
// each measurement runs in a forked child — the child regenerates the PKI
// world (shared baseline for both modes), analyzes the on-disk logs through
// one input mode, reports its report digest through a pipe, and the parent
// reads the child's ru_maxrss from wait4(). Corpus generation also happens
// in a throwaway child so log bytes never become resident in the parent or
// the measured children.
//
// Every row additionally proves byte-identity: both modes must digest to the
// same rendered report, or the memory numbers compare different programs.
//
// Knobs: CERTCHAIN_STREAM_SIZES (comma-separated connection counts),
//        CERTCHAIN_CHUNK_BYTES (streamed chunk size, default 1 MiB).
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/report_text.hpp"
#include "util/hash.hpp"
#include "zeek/log_io.hpp"

namespace {

using namespace certchain;

struct ChildResult {
  long max_rss_kib = 0;
  std::uint64_t report_digest = 0;
  bool ok = false;
};

datagen::ScenarioConfig config_for(std::size_t connections) {
  datagen::ScenarioConfig config;
  config.seed = 20200901;
  config.total_connections = connections;
  config.chain_scale = 1.0 / static_cast<double>(connections);
  config.client_count = 400;
  config.include_length_outliers = false;
  return config;
}

/// Forks, runs `child` (which writes up to 8 bytes to the result pipe), and
/// returns the child's peak RSS + whatever it reported.
template <typename Child>
ChildResult measure_in_child(Child&& child) {
  ChildResult result;
  int fds[2];
  if (pipe(fds) != 0) return result;
  const pid_t pid = fork();
  if (pid < 0) return result;
  if (pid == 0) {
    close(fds[0]);
    const std::uint64_t digest = child();
    (void)!write(fds[1], &digest, sizeof digest);
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  std::uint64_t digest = 0;
  const ssize_t got = read(fds[0], &digest, sizeof digest);
  close(fds[0]);
  int status = 0;
  struct rusage usage {};
  wait4(pid, &status, 0, &usage);
  result.max_rss_kib = usage.ru_maxrss;
  result.report_digest = digest;
  result.ok = got == sizeof digest && WIFEXITED(status) &&
              WEXITSTATUS(status) == 0;
  return result;
}

std::uint64_t digest_report(const core::StudyReport& report) {
  core::ReportTextOptions options;
  options.graphs = true;
  return util::fnv1a64(render_report_text(report, options));
}

/// Generates the corpus for `connections` and writes the Zeek log pair;
/// returns the SSL log size through the digest slot.
std::uint64_t generate_logs(std::size_t connections, const std::string& ssl_path,
                            const std::string& x509_path) {
  const auto scenario = datagen::build_study_scenario(config_for(connections));
  const netsim::GeneratedLogs logs = scenario->generate_logs();
  zeek::SslLogWriter ssl_writer;
  for (const auto& record : logs.ssl) ssl_writer.add(record);
  const std::string ssl_text = ssl_writer.finish();
  zeek::X509LogWriter x509_writer;
  for (const auto& record : logs.x509) x509_writer.add(record);
  const std::string x509_text = x509_writer.finish();
  std::ofstream(ssl_path, std::ios::binary) << ssl_text;
  std::ofstream(x509_path, std::ios::binary) << x509_text;
  return ssl_text.size() + x509_text.size();
}

core::StudyPipeline make_pipeline(const datagen::Scenario& scenario) {
  return core::StudyPipeline(scenario.world.stores(), scenario.world.ct_logs(),
                             scenario.vendors, &scenario.world.cross_signs());
}

std::vector<std::size_t> sizes_from_env() {
  std::vector<std::size_t> sizes;
  if (const char* env = std::getenv("CERTCHAIN_STREAM_SIZES")) {
    const char* cursor = env;
    while (*cursor != '\0') {
      char* end = nullptr;
      const unsigned long long value = std::strtoull(cursor, &end, 10);
      if (end == cursor) break;
      if (value > 0) sizes.push_back(static_cast<std::size_t>(value));
      cursor = *end == ',' ? end + 1 : end;
    }
  }
  if (sizes.empty()) sizes = {10000, 30000, 60000};
  return sizes;
}

}  // namespace

int main() {
  bench::print_header(
      "Ext: bounded-memory streaming residency",
      "peak RSS, streamed (O(chunk)) vs in-memory (O(corpus)) input, with "
      "byte-identity proven per row");

  std::size_t chunk_bytes = 1 << 20;
  if (const char* env = std::getenv("CERTCHAIN_CHUNK_BYTES")) {
    chunk_bytes = std::strtoull(env, nullptr, 10);
    if (chunk_bytes == 0) chunk_bytes = 1 << 20;
  }
  const std::string prefix =
      "/tmp/certchain_bench_stream_" + std::to_string(getpid()) + "_";
  const std::string ssl_path = prefix + "ssl.log";
  const std::string x509_path = prefix + "x509.log";

  bench::print_section("Peak RSS vs corpus size (chunk = " +
                       std::to_string(chunk_bytes / 1024) + " KiB)");
  util::TextTable table({"Connections", "Log MiB", "Streamed RSS MiB",
                         "In-memory RSS MiB", "Saved", "Identical"});

  bool all_identical = true;
  double prev_streamed = 0.0;
  std::vector<double> streamed_rss;
  std::vector<double> corpus_mib;
  for (const std::size_t connections : sizes_from_env()) {
    // Corpus generation in a throwaway child: log bytes never become
    // resident in the parent or in either measured child.
    std::uint64_t log_bytes = 0;
    {
      const ChildResult generation = measure_in_child([&] {
        return generate_logs(connections, ssl_path, x509_path);
      });
      if (!generation.ok) {
        std::fprintf(stderr, "corpus generation failed at %zu connections\n",
                     connections);
        return 1;
      }
      log_bytes = generation.report_digest;
    }

    const ChildResult streamed = measure_in_child([&] {
      const auto scenario = datagen::build_study_scenario(config_for(connections));
      const core::StudyPipeline pipeline = make_pipeline(*scenario);
      core::RunOptions options;
      options.chunk_bytes = chunk_bytes;
      return digest_report(
          pipeline.run(core::StudyInput::files(ssl_path, x509_path), options));
    });

    const ChildResult in_memory = measure_in_child([&] {
      const auto scenario = datagen::build_study_scenario(config_for(connections));
      const core::StudyPipeline pipeline = make_pipeline(*scenario);
      const auto slurp = [](const std::string& path) {
        std::ifstream in(path, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
      };
      const std::string ssl_text = slurp(ssl_path);
      const std::string x509_text = slurp(x509_path);
      return digest_report(
          pipeline.run(core::StudyInput::text(ssl_text, x509_text)));
    });

    const bool identical = streamed.ok && in_memory.ok &&
                           streamed.report_digest == in_memory.report_digest;
    all_identical = all_identical && identical;
    const double mib = 1024.0;
    const double streamed_mib = static_cast<double>(streamed.max_rss_kib) / mib;
    const double memory_mib = static_cast<double>(in_memory.max_rss_kib) / mib;
    streamed_rss.push_back(streamed_mib);
    corpus_mib.push_back(static_cast<double>(log_bytes) / (1024.0 * 1024.0));
    table.add_row(
        {util::with_commas(connections),
         util::format_double(corpus_mib.back(), 1),
         util::format_double(streamed_mib, 1), util::format_double(memory_mib, 1),
         util::format_double(memory_mib - streamed_mib, 1) + " MiB",
         identical ? "yes" : "NO — BUG"});
    prev_streamed = streamed_mib;
  }
  (void)prev_streamed;
  std::printf("%s\n", table.render().c_str());

  // The residency claim, quantified: across the size sweep the in-memory
  // path's RSS must track the log bytes while the streamed path's growth
  // stays decoupled from them (it holds the chunk + deduplicated corpus).
  if (streamed_rss.size() >= 2) {
    const double log_growth = corpus_mib.back() - corpus_mib.front();
    const double streamed_growth = streamed_rss.back() - streamed_rss.front();
    std::printf("log bytes grew %.1f MiB across the sweep; streamed RSS grew "
                "%.1f MiB (%.0f%% of it)\n",
                log_growth, streamed_growth,
                log_growth > 0 ? 100.0 * streamed_growth / log_growth : 0.0);
  }
  std::printf("Equivalence: %s\n",
              all_identical
                  ? "streamed and in-memory reports digested identically"
                  : "DIGEST MISMATCH — the streamed engine diverged");

  std::remove(ssl_path.c_str());
  std::remove(x509_path.c_str());
  return all_identical ? 0 : 1;
}
