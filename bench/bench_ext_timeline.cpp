// Extension — monthly time series over the 12-month collection window:
// connection volume and newly-observed unique chains per category.
#include "bench_common.hpp"

#include "core/timeline.hpp"
#include "zeek/joiner.hpp"

int main() {
  using namespace certchain;
  using chain::ChainCategory;
  bench::print_header(
      "Extension: monthly timeline of the collection window",
      "Per-month connections and newly-seen chains per category (the "
      "longitudinal axis the paper's aggregate tables collapse)");

  bench::StudyContext context = bench::build_context();

  const zeek::LogJoiner joiner(context.logs.x509);
  core::CorpusIndex corpus;
  for (const auto& record : context.logs.ssl) corpus.add(joiner.join(record));
  const core::TimelineReport timeline = core::build_timeline(
      corpus, context.scenario->world.stores(),
      context.report.interception.issuer_set());

  const ChainCategory categories[] = {
      ChainCategory::kPublicDbOnly, ChainCategory::kNonPublicDbOnly,
      ChainCategory::kHybrid, ChainCategory::kTlsInterception};

  bench::print_section("Connections per month");
  {
    util::TextTable table({"Month", "Public", "Non-public", "Hybrid", "Intercept"});
    for (std::size_t m = 0; m < timeline.months.size(); ++m) {
      std::vector<std::string> row{timeline.months[m]};
      for (const ChainCategory category : categories) {
        const auto it = timeline.series.find(category);
        row.push_back(it == timeline.series.end()
                          ? "0"
                          : util::with_commas(it->second[m].connections));
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
  }

  bench::print_section("Newly observed unique chains per month");
  {
    util::TextTable table({"Month", "Public", "Non-public", "Hybrid", "Intercept"});
    for (std::size_t m = 0; m < timeline.months.size(); ++m) {
      std::vector<std::string> row{timeline.months[m]};
      for (const ChainCategory category : categories) {
        const auto it = timeline.series.find(category);
        row.push_back(it == timeline.series.end()
                          ? "0"
                          : std::to_string(it->second[m].new_chains));
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf(
      "Shape expectations: discovery front-loads (most unique chains are first\n"
      "seen early — the coverage sweep models the long-lived population being\n"
      "present all year), while connection volume stays roughly stationary\n"
      "across the window, as expected for a stable campus population.\n");
  return 0;
}
