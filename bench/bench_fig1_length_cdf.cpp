// Figure 1 — Distribution (CDF) of certificate chain length per category.
//
// Paper shape: >60% of public-DB-only chains have length 2; ~80% of
// non-public-DB-only chains are single certificates; >80% of interception
// chains have 3 certificates; hybrid chains show no dominant length. Three
// outlier chains (3,822 / 921 / 41) are excluded, as in the paper.
#include "bench_common.hpp"

#include "util/stats.hpp"

int main() {
  using namespace certchain;
  using chain::ChainCategory;
  bench::print_header("Figure 1: Distribution of certificate chain length",
                      "Per-category empirical CDF over unique chains");

  bench::StudyContext context = bench::build_context();

  const ChainCategory categories[] = {
      ChainCategory::kPublicDbOnly, ChainCategory::kHybrid,
      ChainCategory::kNonPublicDbOnly, ChainCategory::kTlsInterception};
  const std::vector<double> grid = {1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 24};

  bench::print_section("Measured CDF  P(length <= x)");
  util::TextTable table({"x", "Public-DB-only", "Hybrid", "Non-public-DB-only",
                         "TLS interception"});
  std::map<ChainCategory, util::EmpiricalCdf> cdfs;
  for (const ChainCategory category : categories) {
    const auto it = context.report.chain_lengths.find(category);
    if (it == context.report.chain_lengths.end()) continue;
    for (const std::size_t length : it->second) {
      cdfs[category].add(static_cast<double>(length));
    }
  }
  for (const double x : grid) {
    std::vector<std::string> row{util::format_double(x, 0)};
    for (const ChainCategory category : categories) {
      row.push_back(util::format_double(cdfs[category].at(x), 3));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  bench::print_section("Shape checks against the paper");
  const auto mass_at = [&](ChainCategory category, double x) {
    return cdfs[category].at(x) - cdfs[category].at(x - 1);
  };
  std::printf("  public-DB-only mass at length 2:    paper >0.60 | measured %.3f\n",
              mass_at(ChainCategory::kPublicDbOnly, 2));
  std::printf("  non-public-only mass at length 1:   paper ~0.80 | measured %.3f\n",
              mass_at(ChainCategory::kNonPublicDbOnly, 1));
  std::printf("  interception mass at length 3:      paper >0.80 | measured %.3f\n",
              mass_at(ChainCategory::kTlsInterception, 3));
  const double hybrid_max_mass = std::max(
      {mass_at(ChainCategory::kHybrid, 1), mass_at(ChainCategory::kHybrid, 2),
       mass_at(ChainCategory::kHybrid, 3), mass_at(ChainCategory::kHybrid, 4),
       mass_at(ChainCategory::kHybrid, 5)});
  std::printf("  hybrid has no dominant length:      paper yes   | measured max mass %.3f\n",
              hybrid_max_mass);

  bench::print_section("Excluded outliers (paper: 3,822 / 921 / 41, each seen once)");
  for (const auto& outlier : context.report.excluded_outliers) {
    std::printf("  length %5zu  category=%s  connections=%llu  established=%s\n",
                outlier.length,
                std::string(chain::chain_category_name(outlier.category)).c_str(),
                static_cast<unsigned long long>(outlier.connections),
                outlier.established_any ? "yes" : "no");
  }
  return 0;
}
