// Figure 4 — Chain structures of the hybrid chains that contain a complete
// matched path. Each column is one chain; index 1 is the bottom of the trust
// hierarchy; cells are labeled by the run they belong to and its issuer-class
// mix.
#include "bench_common.hpp"

#include <map>

int main() {
  using namespace certchain;
  using core::StructureCell;
  bench::print_header(
      "Figure 4: Structures of hybrid chains containing a complete matched path",
      "70 columns; per-position run labels (Complete/Partial/Single x "
      "Pub/Non-Pub/Hybrid, plus stray Single Leaf)");

  bench::StudyContext context = bench::build_context();
  const auto& columns = context.report.hybrid.figure4_columns;
  std::printf("Columns (chains): %zu (paper: 70)\n\n", columns.size());

  // Compact cell codes for rendering.
  const auto code = [](const StructureCell& cell) -> const char* {
    using RunKind = StructureCell::RunKind;
    using ClassMix = StructureCell::ClassMix;
    if (cell.kind == RunKind::kSingleLeaf) return "L ";
    const char* kind = cell.kind == RunKind::kComplete ? "C"
                       : cell.kind == RunKind::kPartial ? "P"
                                                        : "S";
    static thread_local char buffer[3];
    buffer[0] = kind[0];
    buffer[1] = cell.mix == ClassMix::kPublic      ? 'p'
                : cell.mix == ClassMix::kNonPublic ? 'n'
                                                   : 'h';
    buffer[2] = 0;
    return buffer;
  };

  bench::print_section(
      "Grid (one column per chain; row 1 = bottom of the trust hierarchy)\n"
      "legend: Cp/Cn/Ch complete run, Pp/Pn/Ph partial run, Sp/Sn/Sh single, "
      "L stray leaf");
  std::size_t max_height = 0;
  for (const auto& column : columns) {
    max_height = std::max(max_height, column.cells.size());
  }
  for (std::size_t row = max_height; row-- > 0;) {
    std::printf("%2zu | ", row + 1);
    for (const auto& column : columns) {
      if (row < column.cells.size()) {
        std::printf("%-2s ", code(column.cells[row]));
      } else {
        std::printf("   ");
      }
    }
    std::printf("\n");
  }
  std::printf("\n");

  bench::print_section("Cell census");
  std::map<std::string, std::size_t> census;
  std::size_t extras_after_path = 0;
  std::size_t leading_extras = 0;
  for (const auto& column : columns) {
    bool seen_complete = false;
    for (const auto& cell : column.cells) {
      census[std::string(core::structure_cell_code(cell))]++;
      if (cell.kind == StructureCell::RunKind::kComplete) seen_complete = true;
      if (cell.kind != StructureCell::RunKind::kComplete) {
        (seen_complete ? extras_after_path : leading_extras)++;
      }
    }
  }
  util::TextTable table({"Cell label", "Count"});
  for (const auto& [label, count] : census) {
    table.add_row({label, std::to_string(count)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Unnecessary certificates appended after the complete path: %zu; chains "
      "beginning with a foreign leaf before the path: %zu (paper: the majority "
      "append after the path; several lead with a stray leaf)\n",
      extras_after_path, context.report.hybrid.leaf_before_path);
  std::printf("Fake-LE staging leftovers: %zu (paper: 14); Athenz appends: %zu\n",
              context.report.hybrid.fake_le_chains,
              context.report.hybrid.athenz_chains);
  return 0;
}
