// Figure 5 / Appendix E — The certificate relationship graph of hybrid
// chains: nodes are distinct certificates (colored by issuer class, sized by
// role), edges connect certificates observed together in at least one chain.
#include "bench_common.hpp"

int main() {
  using namespace certchain;
  using core::CertRole;
  using truststore::IssuerClass;
  bench::print_header(
      "Figure 5: Certificates in hybrid certificate chains",
      "Co-occurrence graph over the 321 hybrid chains (Appendix E)");

  bench::StudyContext context = bench::build_context();
  const core::PkiGraph& graph = context.report.hybrid_graph;

  bench::print_section("Graph summary");
  std::printf("  nodes (distinct certificates): %zu\n", graph.node_count());
  std::printf("  co-occurrence edges:           %zu\n",
              graph.co_occurrence_edges().size());
  std::printf("  issuance links (matched pairs): %zu\n",
              graph.issuance_links().size());
  std::printf("  connected components:          %zu\n\n",
              graph.connected_components());

  bench::print_section("Node breakdown (role x issuer class)");
  util::TextTable table({"Role", "Public-DB (blue)", "Non-public-DB (red)"});
  const auto breakdown = graph.node_breakdown();
  const auto cell = [&](CertRole role, IssuerClass issuer_class) {
    const auto it = breakdown.find({role, issuer_class});
    return it == breakdown.end() ? std::size_t{0} : it->second;
  };
  for (const CertRole role :
       {CertRole::kLeaf, CertRole::kIntermediate, CertRole::kRoot}) {
    table.add_row({std::string(core::cert_role_name(role)),
                   std::to_string(cell(role, IssuerClass::kPublicDb)),
                   std::to_string(cell(role, IssuerClass::kNonPublicDb))});
  }
  std::printf("%s\n", table.render().c_str());

  bench::print_section("Hub certificates (highest co-occurrence degree)");
  // The paper's figure shows a handful of widely shared public intermediates.
  std::map<std::size_t, std::size_t> degree;
  for (const auto& [a, b] : graph.co_occurrence_edges()) {
    ++degree[a];
    ++degree[b];
  }
  std::vector<std::pair<std::size_t, std::size_t>> ranked;  // (degree, node)
  for (const auto& [node, d] : degree) ranked.push_back({d, node});
  std::sort(ranked.rbegin(), ranked.rend());
  util::TextTable hubs({"Degree", "Role", "Class", "Subject"});
  for (std::size_t i = 0; i < ranked.size() && i < 8; ++i) {
    const auto& node = graph.nodes()[ranked[i].second];
    hubs.add_row({std::to_string(ranked[i].first),
                  std::string(core::cert_role_name(node.role)),
                  std::string(truststore::issuer_class_name(node.issuer_class)),
                  node.subject.substr(0, 60)});
  }
  std::printf("%s\n", hubs.render().c_str());
  std::printf(
      "Shape check: public-DB intermediates (the paper's blue mid-size nodes) "
      "appear across many hybrid chains, i.e. they top the degree ranking.\n");
  return 0;
}
