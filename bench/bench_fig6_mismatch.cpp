// Figure 6 / Appendix G — Distribution of mismatch ratios for the hybrid
// chains without a complete matched path.
#include "bench_common.hpp"

#include "util/stats.hpp"

int main() {
  using namespace certchain;
  bench::print_header(
      "Figure 6: Distribution of certificate chain mismatch ratios",
      "Mismatch ratio = mismatched issuer-subject pairs / total pairs, over "
      "the no-path hybrid chains (Appendix G)");

  bench::StudyContext context = bench::build_context();
  const auto& ratios = context.report.hybrid.mismatch_ratios;
  std::printf("Chains: %zu (paper: 215, ratios ranging 0.1 .. 1.0)\n\n",
              ratios.size());

  util::Histogram histogram(0.0, 1.0, 10);
  util::EmpiricalCdf cdf;
  for (const double ratio : ratios) {
    histogram.add(ratio);
    cdf.add(ratio);
  }

  bench::print_section("Histogram (10 bins over (0, 1])");
  util::TextTable table({"Ratio bin", "#. Chains", "Bar"});
  for (std::size_t bin = 0; bin < histogram.bin_count(); ++bin) {
    const auto [lo, hi] = histogram.bin_range(bin);
    std::string bar(static_cast<std::size_t>(histogram.bin(bin)), '#');
    if (bar.size() > 60) bar = bar.substr(0, 60) + "+";
    table.add_row({util::format_double(lo, 1) + "-" + util::format_double(hi, 1),
                   std::to_string(histogram.bin(bin)), bar});
  }
  std::printf("%s\n", table.render().c_str());

  bench::print_section("Shape checks");
  const double at_least_half = 1.0 - cdf.at(0.4999);
  std::printf("  min ratio: %.3f   max ratio: %.3f (paper: 0.1 .. 1.0)\n",
              cdf.min(), cdf.max());
  std::printf(
      "  share of chains with ratio >= 0.5: %.2f%% (paper: 56.74%%)\n",
      100.0 * at_least_half);
  std::printf("  broad spectrum of misconfiguration severities: %s\n",
              (cdf.min() < 0.35 && cdf.max() >= 0.999) ? "reproduced" : "NOT reproduced");
  return 0;
}
