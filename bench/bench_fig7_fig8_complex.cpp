// Figures 7 and 8 / Appendix I — Complex PKI structures in non-public-DB-only
// and TLS interception chains: intermediates linked (by issuance) to at least
// three distinct intermediates.
#include "bench_common.hpp"

namespace {

void report_graph(const char* title, const certchain::core::PkiGraph& graph) {
  using namespace certchain;
  using core::CertRole;
  bench::print_section(title);
  std::printf("  nodes: %zu   issuance links: %zu   components: %zu\n",
              graph.node_count(), graph.issuance_links().size(),
              graph.connected_components());

  std::size_t leaves = 0;
  std::size_t intermediates = 0;
  std::size_t roots = 0;
  for (const auto& node : graph.nodes()) {
    switch (node.role) {
      case CertRole::kLeaf: ++leaves; break;
      case CertRole::kIntermediate: ++intermediates; break;
      case CertRole::kRoot: ++roots; break;
    }
  }
  std::printf("  roles: %zu leaves, %zu intermediates, %zu roots\n", leaves,
              intermediates, roots);

  const auto complex = graph.complex_intermediates(3);
  std::printf("  complex intermediates (linked to >= 3 intermediates): %zu\n",
              complex.size());
  util::TextTable table({"Degree", "Subject"});
  for (const std::size_t index : complex) {
    table.add_row({std::to_string(graph.issuance_degree(index)),
                   graph.nodes()[index].subject.substr(0, 64)});
  }
  if (!complex.empty()) std::printf("%s", table.render().c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace certchain;
  bench::print_header(
      "Figures 7 & 8: Complex PKI structures",
      "Issuance-link graphs; most chains use a straightforward hierarchy "
      "(intermediates linked to <= 2 intermediates), with identified complex "
      "clusters (Appendix I)");

  bench::StudyContext context = bench::build_context();

  report_graph("Figure 7: non-public-DB-only chains",
               context.report.non_public_graph);
  report_graph("Figure 8: TLS interception chains (leaf certificates omitted "
               "in the paper's rendering)",
               context.report.interception_graph);

  // The paper's contrast: *most* intermediates are simple.
  const auto simple_share = [](const core::PkiGraph& graph) {
    std::size_t intermediates = 0;
    std::size_t complex = graph.complex_intermediates(3).size();
    for (const auto& node : graph.nodes()) {
      if (node.role == core::CertRole::kIntermediate) ++intermediates;
    }
    return intermediates == 0
               ? 1.0
               : 1.0 - static_cast<double>(complex) / static_cast<double>(intermediates);
  };
  std::printf("Shape check: share of intermediates with simple (<3) linkage — "
              "non-public %.3f, interception %.3f (paper: the overwhelming "
              "majority)\n",
              simple_share(context.report.non_public_graph),
              simple_share(context.report.interception_graph));
  return 0;
}
