// Micro-benchmarks (google-benchmark): throughput of the primitives the
// pipeline leans on — DN parsing and canonicalization, chain matching, path
// analysis, CT queries, Merkle proofs, Zeek TSV parsing, and the end-to-end
// per-connection pipeline cost.
#include <benchmark/benchmark.h>

#include "chain/matcher.hpp"
#include "core/corpus.hpp"
#include "ct/ct_log.hpp"
#include "netsim/pki_world.hpp"
#include "x509/distinguished_name.hpp"
#include "x509/pem.hpp"
#include "zeek/joiner.hpp"
#include "zeek/log_io.hpp"

namespace {

using namespace certchain;

const char* kDnSamples[] = {
    "CN=example.com",
    "CN=www.example.org,O=Example Inc,C=US",
    "emailAddress=webmaster@localhost,CN=localhost,OU=none,O=none,L=Sometown,"
    "ST=Someprovince,C=US",
    R"(CN=Acme\, Inc.,OU=R\=D,O=Acme Holdings International Ltd,L=New York,ST=NY,C=US)",
};

void BM_DnParse(benchmark::State& state) {
  const char* text = kDnSamples[state.range(0)];
  for (auto _ : state) {
    benchmark::DoNotOptimize(x509::DistinguishedName::parse(text));
  }
}
BENCHMARK(BM_DnParse)->DenseRange(0, 3);

void BM_DnCanonical(benchmark::State& state) {
  const auto dn = x509::DistinguishedName::parse_or_die(kDnSamples[3]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dn.canonical());
  }
}
BENCHMARK(BM_DnCanonical);

netsim::PkiWorld& shared_world() {
  static netsim::PkiWorld world(42);
  return world;
}

chain::CertificateChain bench_chain(std::size_t length) {
  auto& world = shared_world();
  auto chain = world.issue_public_chain(
      "digicert", "bench" + std::to_string(length) + ".example",
      netsim::PkiWorld::default_leaf_validity(), true);
  while (chain.length() < length) {
    chain.push_back(world.make_self_signed(
        "Bench Extra", "extra-" + std::to_string(chain.length()),
        netsim::PkiWorld::default_leaf_validity()));
  }
  return chain;
}

void BM_MatchChain(benchmark::State& state) {
  const auto chain = bench_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain::match_chain(chain));
  }
  state.SetItemsProcessed(state.iterations() * (chain.length() - 1));
}
BENCHMARK(BM_MatchChain)->Arg(3)->Arg(6)->Arg(12);

void BM_AnalyzePaths(benchmark::State& state) {
  const auto chain = bench_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain::analyze_paths(chain));
  }
}
BENCHMARK(BM_AnalyzePaths)->Arg(3)->Arg(6)->Arg(12);

void BM_CertificateFingerprint(benchmark::State& state) {
  const auto chain = bench_chain(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.first().fingerprint());
  }
}
BENCHMARK(BM_CertificateFingerprint);

void BM_PemRoundTrip(benchmark::State& state) {
  const auto chain = bench_chain(3);
  for (auto _ : state) {
    const std::string pem = x509::encode_pem(chain.first());
    benchmark::DoNotOptimize(x509::decode_pem(pem));
  }
}
BENCHMARK(BM_PemRoundTrip);

void BM_CtDomainQuery(benchmark::State& state) {
  static ct::CtLog log("bench-log");
  static bool filled = [] {
    auto& world = shared_world();
    for (int i = 0; i < 2000; ++i) {
      log.submit(world
                     .issue_public_chain("sectigo",
                                         "q" + std::to_string(i) + ".bench.example",
                                         netsim::PkiWorld::default_leaf_validity())
                     .first(),
                 i);
    }
    return true;
  }();
  (void)filled;
  const util::TimeRange period = netsim::PkiWorld::default_leaf_validity();
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        log.issuers_for_domain("q" + std::to_string(i++ % 2000) + ".bench.example",
                               period));
  }
}
BENCHMARK(BM_CtDomainQuery);

void BM_MerkleInclusionProof(benchmark::State& state) {
  ct::MerkleTree tree;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) tree.append("leaf-" + std::to_string(i));
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.inclusion_proof(index++ % n));
  }
}
BENCHMARK(BM_MerkleInclusionProof)->Arg(256)->Arg(4096);

void BM_ZeekSslRowRoundTrip(benchmark::State& state) {
  zeek::SslLogRecord record;
  record.ts = 1598918400;
  record.uid = "CAbCdEf123456789ab";
  record.id_orig_h = "10.1.2.3";
  record.id_orig_p = 51515;
  record.id_resp_h = "198.51.100.7";
  record.id_resp_p = 443;
  record.version = "TLSv12";
  record.server_name = "www.example.org";
  record.established = true;
  record.cert_chain_fuids = {"Fa", "Fb", "Fc"};
  record.subject = "CN=www.example.org,O=Example, Inc.";
  record.issuer = "CN=Issuing CA,O=Example";
  for (auto _ : state) {
    zeek::SslLogWriter writer;
    writer.add(record);
    benchmark::DoNotOptimize(zeek::parse_ssl_log(writer.finish()));
  }
}
BENCHMARK(BM_ZeekSslRowRoundTrip);

void BM_CorpusIngest(benchmark::State& state) {
  const auto chain = bench_chain(3);
  zeek::JoinedConnection connection;
  connection.ssl.id_orig_h = "10.0.0.1";
  connection.ssl.id_resp_h = "198.51.100.1";
  connection.ssl.id_resp_p = 443;
  connection.ssl.established = true;
  connection.ssl.server_name = "bench3.example";
  connection.chain = chain;
  for (auto _ : state) {
    core::CorpusIndex corpus;
    for (int i = 0; i < 100; ++i) corpus.add(connection);
    benchmark::DoNotOptimize(corpus.unique_chain_count());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CorpusIngest);

}  // namespace

BENCHMARK_MAIN();
