// Section 4.3 — Single-certificate chains: self-signed share, SNI-less
// traffic, and the DGA special case.
#include "bench_common.hpp"

int main() {
  using namespace certchain;
  bench::print_header(
      "Sec. 4.3: Single-certificate chains and the DGA cluster",
      "Self-signed shares, SNI presence, and the www<random>com cluster");

  bench::StudyContext context = bench::build_context();
  const core::NonPublicReport& non_public = context.report.non_public;
  const core::NonPublicReport& interception = context.report.interception_chains;

  bench::print_section("Paper vs measured");
  util::TextTable table({"Metric", "Paper", "Measured"});
  table.add_row({"Non-public-only chains that are single-cert (%)", "78.10",
                 bench::pct(non_public.single_fraction(), 1.0)});
  table.add_row({"...of which self-signed (%)", "94.19",
                 bench::pct(non_public.single_self_signed_fraction(), 1.0)});
  table.add_row({"Single-cert connections without SNI (%)", "86.70",
                 bench::pct(static_cast<double>(non_public.single_no_sni_connections),
                            static_cast<double>(non_public.single_connections))});
  table.add_row({"Interception chains that are single-cert (%)", "13.24",
                 bench::pct(static_cast<double>(interception.single_chains),
                            static_cast<double>(interception.chains))});
  table.add_row({"...of which self-signed (%)", "93.43",
                 bench::pct(static_cast<double>(interception.single_self_signed),
                            static_cast<double>(interception.single_chains))});
  std::printf("%s\n", table.render().c_str());

  bench::print_section("DGA special case");
  std::printf(
      "  cluster: single-cert chains whose issuer and subject are distinct\n"
      "  www<random>com names with validity drawn from 4..365 days\n");
  util::TextTable dga({"Metric", "Paper", "Measured"});
  dga.add_row({"DGA chains", "(cluster)", util::with_commas(non_public.dga_chains)});
  dga.add_row({"DGA connections", "21,880",
               util::with_commas(non_public.dga_connections)});
  dga.add_row({"DGA client IPs", "761", util::with_commas(non_public.dga_client_ips)});
  std::printf("%s\n", dga.render().c_str());

  std::printf("Single-cert population: %s chains over %s connections from %s "
              "client IPs (paper: 140 M connections from 221,924 IPs)\n",
              util::with_commas(non_public.single_chains).c_str(),
              util::with_commas(non_public.single_connections).c_str(),
              util::with_commas(non_public.single_client_ips).c_str());
  return 0;
}
