// Section 5 — The November-2024 revisit: re-scan the servers that delivered
// hybrid and non-public-DB-only chains and compare with the logged epoch.
#include "bench_common.hpp"

int main() {
  using namespace certchain;
  bench::print_header(
      "Sec. 5: Revisit of hybrid and non-public-DB-only chains",
      "Active s_client-style scan of the simulated 2024 server population");

  bench::StudyContext context = bench::build_context();
  const scanner::ActiveScanner scanner(context.scenario->endpoints);
  const core::RevisitAnalyzer analyzer(context.scenario->world.stores(),
                                       &context.scenario->world.cross_signs());

  std::vector<const netsim::ServerEndpoint*> hybrid_servers;
  std::vector<const netsim::ServerEndpoint*> nonpub_servers;
  std::uint64_t nonpub_connections = 0;
  std::uint64_t nonpub_no_sni = 0;
  for (const auto& endpoint : context.scenario->endpoints) {
    if (endpoint.label.rfind("hybrid/", 0) == 0) hybrid_servers.push_back(&endpoint);
    if (endpoint.label.rfind("nonpub/", 0) == 0) nonpub_servers.push_back(&endpoint);
  }
  for (const auto& record : context.logs.ssl) {
    // Rough per-category tally for the SNI-availability statistic.
    if (record.id_resp_h.rfind("198.51.", 0) == 0 && !record.cert_chain_fuids.empty()) {
      ++nonpub_connections;
      if (record.server_name.empty()) ++nonpub_no_sni;
    }
  }

  const core::HybridRevisitReport hybrid =
      analyzer.analyze_hybrid(hybrid_servers, scanner);
  const core::NonPublicRevisitReport nonpub = analyzer.analyze_non_public(
      nonpub_servers, scanner, nonpub_connections, nonpub_no_sni);

  bench::print_section("Hybrid servers (paper vs measured)");
  util::TextTable table({"Metric", "Paper", "Measured"});
  table.add_row({"Previously hybrid servers", "321",
                 std::to_string(hybrid.previous_servers)});
  table.add_row({"Reachable in 2024", "270", std::to_string(hybrid.reachable)});
  table.add_row({"Now entirely public-DB issued", "231",
                 std::to_string(hybrid.now_all_public)});
  table.add_row({"...with Let's Encrypt the majority", "(majority)",
                 std::to_string(hybrid.now_lets_encrypt) + " (" +
                     bench::pct(static_cast<double>(hybrid.now_lets_encrypt),
                                static_cast<double>(hybrid.now_all_public)) +
                     "%)"});
  table.add_row({"Now entirely non-public", "4",
                 std::to_string(hybrid.now_all_non_public)});
  table.add_row({"Still hybrid", "35", std::to_string(hybrid.still_hybrid)});
  table.add_row({"  complete path, no unnecessary certs", "9",
                 std::to_string(hybrid.still_complete_no_extras)});
  table.add_row({"  complete path with unnecessary certs", "3",
                 std::to_string(hybrid.still_complete_with_extras)});
  table.add_row({"  no matched path", "23", std::to_string(hybrid.still_no_path)});
  std::printf("%s\n", table.render().c_str());

  bench::print_section("Non-public-DB-only servers (paper vs measured)");
  util::TextTable np({"Metric", "Paper", "Measured"});
  np.add_row({"Connections without SNI (%)", "79.49",
              bench::pct(static_cast<double>(nonpub.previous_no_sni_connections),
                         static_cast<double>(nonpub.previous_connections))});
  np.add_row({"Scannable servers (SNI on record)", "12,404",
              util::with_commas(nonpub.scannable_servers)});
  np.add_row({"Still non-public-DB-only (%)", "100.00",
              bench::pct(static_cast<double>(nonpub.still_non_public),
                         static_cast<double>(nonpub.reachable))});
  np.add_row({"Now deliver multi-cert chains (%)", "79.40",
              bench::pct(static_cast<double>(nonpub.now_multi_cert),
                         static_cast<double>(nonpub.reachable))});
  np.add_row({"  previously multi-cert (%)", "39.00",
              bench::pct(static_cast<double>(nonpub.previously_multi),
                         static_cast<double>(nonpub.now_multi_cert))});
  np.add_row({"  previously single self-signed (%)", "53.44",
              bench::pct(static_cast<double>(nonpub.previously_single_self_signed),
                         static_cast<double>(nonpub.now_multi_cert))});
  np.add_row({"  previously single, distinct fields (%)", "7.56",
              bench::pct(static_cast<double>(nonpub.previously_single_distinct),
                         static_cast<double>(nonpub.now_multi_cert))});
  np.add_row({"New multi-cert chains that are complete paths (%)", "97.61",
              bench::pct(static_cast<double>(nonpub.now_multi_complete_matched),
                         static_cast<double>(nonpub.now_multi_cert))});
  std::printf("%s\n", np.render().c_str());

  std::printf("Takeaway 5 shape: migration to public issuers (Let's Encrypt "
              "dominant) for hybrids; >60%% of single-cert non-public servers "
              "adopted hierarchical chains: %s\n",
              (hybrid.now_all_public > hybrid.still_hybrid &&
               hybrid.now_lets_encrypt * 2 > hybrid.now_all_public &&
               nonpub.now_multi_cert * 10 > nonpub.reachable * 6)
                  ? "reproduced"
                  : "NOT reproduced");
  return 0;
}
