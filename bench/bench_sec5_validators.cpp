// Section 5 / Sec. 6.1 — Chrome vs OpenSSL validation disagreement on chains
// with unnecessary certificates, plus a sweep over misconfiguration types.
#include "bench_common.hpp"

#include "validation/client_validators.hpp"

int main() {
  using namespace certchain;
  using validation::ChromeLikeValidator;
  using validation::ClientVerdict;
  using validation::OpenSslLikeValidator;
  bench::print_header(
      "Sec. 5: Client validation disagreement (Chrome-like vs OpenSSL-like)",
      "Chrome builds paths from its maintained stores and ignores extras; "
      "OpenSSL verifies the presented chain against the host's roots");

  bench::StudyContext context = bench::build_context();
  netsim::PkiWorld& world = context.scenario->world;
  const util::SimTime now = util::make_time(2024, 11, 15);
  const util::TimeRange validity{util::make_time(2024, 10, 1),
                                 util::make_time(2025, 4, 1)};

  const ChromeLikeValidator chrome(world.stores());
  const OpenSslLikeValidator openssl(world.host_store());

  // 1. The paper's concrete case: the three still-hybrid revisit chains with
  //    a complete matched path + unnecessary certificates.
  bench::print_section(
      "The 3 revisited chains (complete path + unnecessary certificates)");
  util::TextTable trio({"Server", "Chain len", "Chrome", "OpenSSL"});
  std::size_t disagreements = 0;
  for (const auto& endpoint : context.scenario->endpoints) {
    if (endpoint.label.find("+revisit-validator-case") == std::string::npos) continue;
    if (!endpoint.revisit_chain) continue;
    const auto chrome_result = chrome.validate(*endpoint.revisit_chain, now);
    const auto openssl_result = openssl.validate(*endpoint.revisit_chain, now);
    if (chrome_result.accepted() != openssl_result.accepted()) ++disagreements;
    trio.add_row({endpoint.domain, std::to_string(endpoint.revisit_chain->length()),
                  std::string(validation::client_verdict_name(chrome_result.verdict)),
                  std::string(validation::client_verdict_name(openssl_result.verdict)) +
                      (openssl_result.detail.empty() ? "" : " (" + openssl_result.detail + ")")});
  }
  std::printf("%s\n", trio.render().c_str());
  std::printf("Disagreements: %zu/3 (paper: 'the two tools produced different "
              "validation results')\n\n",
              disagreements);

  // 2. Systematic sweep over misconfiguration shapes.
  bench::print_section("Sweep: verdicts by chain shape");
  struct Case {
    std::string name;
    chain::CertificateChain chain;
  };
  std::vector<Case> cases;

  cases.push_back({"well-formed [leaf,int]",
                   world.issue_public_chain("digicert", "s1.sweep.example", validity)});
  {
    auto chain = world.issue_public_chain("digicert", "s2.sweep.example", validity, true);
    chain.push_back(world.make_self_signed("Sweep Org", "extra-root", validity));
    cases.push_back({"complete path + trailing self-signed extra", chain});
  }
  {
    auto base = world.issue_public_chain("sectigo", "s3.sweep.example", validity);
    chain::CertificateChain spliced;
    spliced.push_back(base.first());
    spliced.push_back(world.make_self_signed("Sweep Org", "spliced-extra", validity));
    spliced.push_back(base.at(1));
    cases.push_back({"foreign cert spliced between leaf and intermediate", spliced});
  }
  {
    auto base = world.issue_public_chain("comodo", "s4.sweep.example", validity);
    chain::CertificateChain leaf_only;
    leaf_only.push_back(base.first());
    cases.push_back({"leaf only (intermediate missing)", leaf_only});
  }
  cases.push_back({"anchored to a root absent from the host store (FPKI)",
                   world.issue_public_chain("fpki", "s5.sweep.example", validity, true)});
  {
    chain::CertificateChain self;
    self.push_back(world.make_self_signed("Sweep Org", "selfie.sweep.example", validity));
    cases.push_back({"self-signed single", self});
  }
  {
    auto chain = world.issue_public_chain("lets-encrypt", "s6.sweep.example", validity, true);
    chain.push_back(world.fake_le_intermediate());
    cases.push_back({"Let's Encrypt path + Fake LE staging leftover", chain});
  }

  util::TextTable sweep({"Chain shape", "Chrome", "OpenSSL"});
  std::size_t sweep_disagreements = 0;
  for (const auto& test_case : cases) {
    const auto chrome_result = chrome.validate(test_case.chain, now);
    const auto openssl_result = openssl.validate(test_case.chain, now);
    if (chrome_result.accepted() != openssl_result.accepted()) ++sweep_disagreements;
    sweep.add_row({test_case.name,
                   std::string(validation::client_verdict_name(chrome_result.verdict)),
                   std::string(validation::client_verdict_name(openssl_result.verdict))});
  }
  std::printf("%s\n", sweep.render().c_str());
  std::printf(
      "Disagreeing shapes: %zu/%zu — unnecessary certificates and store "
      "differences cause inconsistent validation outcomes across "
      "applications (Sec. 6.1)\n",
      sweep_disagreements, cases.size());
  return 0;
}
