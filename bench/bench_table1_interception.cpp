// Table 1 — Categories of issuers conducting TLS interception.
//
// Paper: 80 issuers across six categories; Security & Network carries 94.74%
// of interception connections and 17,915 client IPs.
#include "bench_common.hpp"

int main() {
  using namespace certchain;
  bench::print_header(
      "Table 1: Categories of issuers conducting TLS interception",
      "Interception identification via trust-store filtering + CT issuer "
      "cross-reference + vendor directory (Sec. 3.2.1)");

  bench::StudyContext context = bench::build_context();
  const auto rows = context.report.interception.category_rows();

  bench::print_section("Paper (reported)");
  {
    util::TextTable table({"Category", "#. Issuers", "% Connections", "#. Client IPs"});
    table.add_row({"Security & Network", "31", "94.74", "17,915"});
    table.add_row({"Business & Corporate", "27", "4.99", "4,787"});
    table.add_row({"Health & Education", "10", "0.02", "35"});
    table.add_row({"Government & Public Service", "6", "0.24", "25"});
    table.add_row({"Bank & Finance", "3", "0.00", "14"});
    table.add_row({"Other", "3", "0.00", "73"});
    std::printf("%s\n", table.render().c_str());
  }

  bench::print_section("Measured (simulated campus corpus)");
  {
    std::uint64_t total_connections = 0;
    for (const auto& row : rows) total_connections += row.connections;

    util::TextTable table({"Category", "#. Issuers", "% Connections", "#. Client IPs"});
    std::size_t total_issuers = 0;
    for (const auto& row : rows) {
      table.add_row({row.category, std::to_string(row.issuers),
                     bench::pct(static_cast<double>(row.connections),
                                static_cast<double>(total_connections)),
                     util::with_commas(row.client_ips)});
      total_issuers += row.issuers;
    }
    table.add_separator();
    table.add_row({"Total", std::to_string(total_issuers), "100.00", ""});
    std::printf("%s\n", table.render().c_str());

    std::printf("CT-mismatch candidates left unconfirmed by the directory: %zu\n",
                context.report.interception.unconfirmed_candidates.size());
  }
  return 0;
}
