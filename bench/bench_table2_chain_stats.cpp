// Table 2 — Statistics of certificate chains (non-public-DB-only / hybrid /
// TLS interception: unique chains, TLS connections, client IPs).
#include "bench_common.hpp"

int main() {
  using namespace certchain;
  using chain::ChainCategory;
  bench::print_header(
      "Table 2: Statistics of certificate chains",
      "Chain categorization over the deduplicated corpus (Sec. 3.2.2); "
      "absolute counts are scaled, proportions are the reproduction target");

  bench::StudyContext context = bench::build_context();
  const auto& categories = context.report.categories;

  bench::print_section("Paper (reported)");
  {
    util::TextTable table(
        {"", "Non-public-DB-only", "Hybrid", "TLS int."});
    table.add_row({"#. Cert chains", "429 K", "321", "301 K"});
    table.add_row({"#. TLS connections", "216.47 M", "78.26 K", "42.75 M"});
    table.add_row({"#. Client IPs", "231,228", "11,933", "19,149"});
    std::printf("%s\n", table.render().c_str());
  }

  bench::print_section("Measured (simulated campus corpus)");
  {
    const auto cell = [&](ChainCategory category) {
      const auto it = categories.find(category);
      return it == categories.end() ? core::CategoryUsage{} : it->second;
    };
    const core::CategoryUsage non_public = cell(ChainCategory::kNonPublicDbOnly);
    const core::CategoryUsage hybrid = cell(ChainCategory::kHybrid);
    const core::CategoryUsage interception = cell(ChainCategory::kTlsInterception);

    util::TextTable table({"", "Non-public-DB-only", "Hybrid", "TLS int."});
    table.add_row({"#. Cert chains", util::with_commas(non_public.chains),
                   util::with_commas(hybrid.chains),
                   util::with_commas(interception.chains)});
    table.add_row({"#. TLS connections", util::with_commas(non_public.connections),
                   util::with_commas(hybrid.connections),
                   util::with_commas(interception.connections)});
    table.add_row({"#. Client IPs", util::with_commas(non_public.client_ips),
                   util::with_commas(hybrid.client_ips),
                   util::with_commas(interception.client_ips)});
    std::printf("%s\n", table.render().c_str());

    std::printf("Shape checks:\n");
    std::printf(
        "  non-public : interception unique-chain ratio   paper %.2f | measured %.2f\n",
        429.0 / 301.0,
        static_cast<double>(non_public.chains) /
            static_cast<double>(interception.chains));
    std::printf(
        "  non-public : interception connection ratio     paper %.2f | measured %.2f\n",
        216.47 / 42.75,
        static_cast<double>(non_public.connections) /
            static_cast<double>(interception.connections));
    std::printf("  hybrid unique chains (exact)                   paper 321   | measured %zu\n",
                hybrid.chains);
    std::printf(
        "\nCorpus totals: %s connections analyzed, %s unique chains, %s distinct "
        "certificates\n",
        util::with_commas(context.report.totals.connections).c_str(),
        util::with_commas(context.report.unique_chains).c_str(),
        util::with_commas(context.report.totals.distinct_certificates).c_str());
    std::printf("(hybrid connection volume is deliberately over-sampled for\n"
                " per-bucket establishment statistics; see EXPERIMENTS.md)\n");
  }
  return 0;
}
