// Table 3 — Statistics of hybrid certificate chains, plus the per-bucket
// establishment rates reported in Sec. 4.2.
#include "bench_common.hpp"

int main() {
  using namespace certchain;
  bench::print_header(
      "Table 3: Statistics of hybrid certificate chains",
      "Complete matched path detection with leaf test + Table 3 bucket split "
      "(Sec. 4.2)");

  bench::StudyContext context = bench::build_context();
  const core::HybridReport& hybrid = context.report.hybrid;

  bench::print_section("Paper (reported)");
  {
    util::TextTable table({"Hybrid chain category", "#. Chains"});
    table.add_row({"(1) Complete path: Non-pub. chained to Pub.", "26"});
    table.add_row({"(1) Complete path: Pub. chained to Prv.", "10"});
    table.add_row({"(2) Chain contains a complete matched path", "70"});
    table.add_row({"(3) No complete matched path", "215"});
    table.add_separator();
    table.add_row({"Total", "321"});
    std::printf("%s\n", table.render().c_str());
  }

  bench::print_section("Measured (simulated campus corpus)");
  {
    util::TextTable table({"Hybrid chain category", "#. Chains"});
    table.add_row({"(1) Complete path: Non-pub. chained to Pub.",
                   std::to_string(hybrid.complete_nonpub_to_pub)});
    table.add_row({"(1) Complete path: Pub. chained to Prv.",
                   std::to_string(hybrid.complete_pub_to_private)});
    table.add_row({"(2) Chain contains a complete matched path",
                   std::to_string(hybrid.contains_complete_path)});
    table.add_row({"(3) No complete matched path",
                   std::to_string(hybrid.no_complete_path)});
    table.add_separator();
    table.add_row({"Total", std::to_string(hybrid.total())});
    std::printf("%s\n", table.render().c_str());
  }

  bench::print_section("Connection establishment by structure (Sec. 4.2)");
  {
    util::TextTable table({"Structure", "Paper est. %", "Measured est. %",
                           "Chains", "Connections", "Client IPs"});
    table.add_row({"Complete matched path", "97.69",
                   bench::pct(hybrid.usage_complete.establish_rate(), 1.0),
                   std::to_string(hybrid.usage_complete.chains),
                   util::with_commas(hybrid.usage_complete.connections),
                   util::with_commas(hybrid.usage_complete.client_ips)});
    table.add_row({"Contains complete path", "92.04",
                   bench::pct(hybrid.usage_contains.establish_rate(), 1.0),
                   std::to_string(hybrid.usage_contains.chains),
                   util::with_commas(hybrid.usage_contains.connections),
                   util::with_commas(hybrid.usage_contains.client_ips)});
    table.add_row({"No complete matched path", "57.42",
                   bench::pct(hybrid.usage_no_path.establish_rate(), 1.0),
                   std::to_string(hybrid.usage_no_path.chains),
                   util::with_commas(hybrid.usage_no_path.connections),
                   util::with_commas(hybrid.usage_no_path.client_ips)});
    std::printf("%s\n", table.render().c_str());

    std::printf(
        "56-chain sub-bucket (public-DB leaf without its intermediate): "
        "measured %zu chains, %s connections, establishment %s%% "
        "(paper: 56 chains, 19,366 conns, 56.08%%)\n",
        hybrid.public_leaf_without_issuer,
        util::with_commas(hybrid.usage_public_leaf_without_issuer.connections).c_str(),
        bench::pct(hybrid.usage_public_leaf_without_issuer.establish_rate(), 1.0)
            .c_str());
    std::printf(
        "CT logging of non-public leaves anchored to public roots: %zu/%zu "
        "(paper: all logged); expired leaves: %zu (paper: 3)\n",
        hybrid.anchored_ct_logged, hybrid.complete_nonpub_to_pub,
        hybrid.anchored_expired_leaf);
  }
  return 0;
}
