// Table 4 / Appendix C — Port distribution of connections associated with
// hybrid, non-public-DB-only (single vs multiple certs), and interception
// chains.
#include "bench_common.hpp"

namespace {

void print_port_column(const char* title, const certchain::util::Counter<
                                              std::uint16_t>& ports) {
  using namespace certchain;
  const std::uint64_t total = ports.total();
  util::TextTable table({"Port", "%"});
  std::size_t shown = 0;
  std::uint64_t shown_connections = 0;
  for (const auto& [port, count] : ports.by_count_desc()) {
    if (shown >= 5) break;
    table.add_row({std::to_string(port),
                   bench::pct(static_cast<double>(count), static_cast<double>(total))});
    shown_connections += count;
    ++shown;
  }
  table.add_row({"Other", bench::pct(static_cast<double>(total - shown_connections),
                                     static_cast<double>(total))});
  std::printf("%s\n%s\n", title, table.render().c_str());
}

}  // namespace

int main() {
  using namespace certchain;
  bench::print_header(
      "Table 4: Port distribution of connections per chain category",
      "Zeek-style DPD sees TLS on any port; each category's connections are "
      "tallied by responder port (Appendix C)");

  bench::StudyContext context = bench::build_context();

  bench::print_section("Paper (reported)");
  std::printf(
      "Hybrid:            443 97.21 | 8443 1.36  | 8088 1.22  | 25 0.18    | 9191 0.01\n"
      "Non-pub (single):  443 46.29 | 8888 21.52 | 33854 19.08| 13000 4.22 | 25 1.30\n"
      "Non-pub (multi):   443 83.51 | 8531 4.18  | 9093 2.85  | 38881 1.81 | 6443 1.45\n"
      "TLS interception:  8013 35.40| 4437 25.14 | 14430 16.34| 443 13.36  | 514 3.53\n\n");

  bench::print_section("Measured (simulated campus corpus)");
  print_port_column("Hybrid", context.report.ports_hybrid);
  print_port_column("Non-public-DB-only, single certificate",
                    context.report.non_public.ports_single);
  print_port_column("Non-public-DB-only, multiple certificates",
                    context.report.non_public.ports_multi);
  // Interception: single + multi combined (the paper has one column).
  util::Counter<std::uint16_t> interception_ports;
  for (const auto& [port, count] :
       context.report.interception_chains.ports_single.items()) {
    interception_ports.add(port, count);
  }
  for (const auto& [port, count] :
       context.report.interception_chains.ports_multi.items()) {
    interception_ports.add(port, count);
  }
  print_port_column("TLS interception", interception_ports);

  std::printf(
      "Shape check: port 8013 (Fortinet-style inspection) leads interception "
      "traffic; 443 dominates hybrid and non-public multi-cert chains.\n");
  return 0;
}
