// Table 5 — Issuer–subject vs key–signature validation of the actively
// rescanned chains (Appendix D.2).
//
// The paper's corpus: 12,676 full-PEM chains (2,568 single / 9,825 vs 9,821
// valid / 283 vs 284 broken / 3 with unrecognized keys). We rebuild a scaled
// corpus with the same composition — including the exact corner cases: three
// chains whose issuer keys the strict verifier cannot process and one chain
// whose certificate carries ASN.1-level damage — and run both validators.
#include "bench_common.hpp"
#include "validation/pairwise_validators.hpp"
#include "x509/pem.hpp"

int main() {
  using namespace certchain;
  using validation::ChainVerdict;
  bench::print_header(
      "Table 5: Validation of rescanned chains — issuer-subject vs key-signature",
      "Both methods over the same PEM corpus; corner cases reproduce the "
      "paper's 4 disagreement rows (Appendix D.2)");

  datagen::ScenarioConfig config = bench::config_from_env();
  const double scale = config.chain_scale * 200.0 / 10.0;  // 1/10 by default
  netsim::PkiWorld world(config.seed);
  util::Rng rng(config.seed ^ 0xAB1E);
  const util::TimeRange validity = {util::make_time(2024, 10, 1),
                                    util::make_time(2025, 4, 1)};

  std::vector<chain::CertificateChain> corpus;
  const auto scaled = [&](double paper_count) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(paper_count * scale));
  };

  // Single-certificate chains (2,568).
  for (std::size_t i = 0; i < scaled(2568); ++i) {
    chain::CertificateChain chain;
    chain.push_back(world.make_self_signed("Sim Rescan Org " + std::to_string(i),
                                           "single-" + std::to_string(i), validity));
    corpus.push_back(std::move(chain));
  }
  // Valid multi-certificate chains (9,821 agreeing).
  for (std::size_t i = 0; i < scaled(9821); ++i) {
    auto& hierarchy =
        world.make_enterprise_ca("Sim Rescan Valid " + std::to_string(i % 200), true);
    const std::string domain = "v" + std::to_string(i) + ".rescan.example";
    x509::DistinguishedName subject;
    subject.add("CN", domain);
    chain::CertificateChain chain;
    chain.push_back(hierarchy.intermediate_ca->issue_leaf(subject, domain, validity));
    chain.push_back(*hierarchy.intermediate_cert);
    if (rng.bernoulli(0.5)) chain.push_back(hierarchy.root_cert);
    corpus.push_back(std::move(chain));
  }
  // Broken chains (283 agreeing): issuer-subject mismatch => signature fails too.
  for (std::size_t i = 0; i < scaled(283); ++i) {
    auto& hierarchy =
        world.make_enterprise_ca("Sim Rescan Broken " + std::to_string(i % 50), true);
    const std::string domain = "b" + std::to_string(i) + ".rescan.example";
    x509::DistinguishedName subject;
    subject.add("CN", domain);
    chain::CertificateChain chain;
    chain.push_back(hierarchy.intermediate_ca->issue_leaf(subject, domain, validity));
    chain.push_back(world.make_self_signed("Sim Wrong CA " + std::to_string(i),
                                           "wrong-" + std::to_string(i), validity));
    corpus.push_back(std::move(chain));
  }
  // Exactly 3 chains with unrecognized (GOST-style) issuer keys.
  for (std::size_t i = 0; i < 3; ++i) {
    x509::CertificateAuthority gost(
        x509::DistinguishedName::parse_or_die(
            "CN=Sim GOST CA " + std::to_string(i) + ",O=Sim GOST,C=RU"),
        "gost/" + std::to_string(i), crypto::KeyAlgorithm::kGostR3410);
    const std::string domain = "gost" + std::to_string(i) + ".rescan.example";
    x509::DistinguishedName subject;
    subject.add("CN", domain);
    chain::CertificateChain chain;
    chain.push_back(gost.issue_leaf(subject, domain, validity));
    chain.push_back(gost.make_root(validity));
    corpus.push_back(std::move(chain));
  }
  // Exactly 1 chain with an ASN.1-damaged certificate: names compare fine,
  // the strict parser fails.
  {
    auto& hierarchy = world.make_enterprise_ca("Sim Rescan Damaged", true);
    x509::DistinguishedName subject;
    subject.add("CN", "damaged.rescan.example");
    chain::CertificateChain chain;
    chain.push_back(hierarchy.intermediate_ca->issue_leaf(
        subject, "damaged.rescan.example", validity));
    x509::Certificate damaged = *hierarchy.intermediate_cert;
    damaged.malformed_encoding = true;
    chain.push_back(damaged);
    chain.push_back(hierarchy.root_cert);
    corpus.push_back(std::move(chain));
  }

  // Exercise the PEM path the scanner produces: serialize + reparse.
  std::size_t pem_failures = 0;
  for (auto& chain : corpus) {
    std::string bundle;
    for (const auto& cert : chain) bundle += x509::encode_pem(cert);
    const auto reparsed = x509::decode_pem_bundle(bundle);
    if (reparsed.size() != chain.length()) ++pem_failures;
    chain = chain::CertificateChain(reparsed);
  }

  // Run both validators.
  const validation::IssuerSubjectValidator issuer_subject;
  const validation::KeySignatureValidator key_signature;
  std::map<ChainVerdict, std::size_t> is_counts;
  std::map<ChainVerdict, std::size_t> ks_counts;
  std::size_t position_agreements = 0;
  std::size_t position_comparisons = 0;
  for (const auto& chain : corpus) {
    const auto is_outcome = issuer_subject.validate(chain);
    const auto ks_outcome = key_signature.validate(chain);
    ++is_counts[is_outcome.verdict];
    ++ks_counts[ks_outcome.verdict];
    if (is_outcome.verdict == ChainVerdict::kBroken &&
        ks_outcome.verdict == ChainVerdict::kBroken) {
      ++position_comparisons;
      if (is_outcome.failure_positions == ks_outcome.failure_positions) {
        ++position_agreements;
      }
    }
  }

  bench::print_section("Paper (reported, 12,676 chains)");
  {
    util::TextTable table({"", "Issuer-subject", "Key-signature"});
    table.add_row({"#. Single-certificate chains", "2,568", "2,568"});
    table.add_row({"#. Valid chains", "9,825", "9,821"});
    table.add_row({"#. Broken chains", "283", "284"});
    table.add_row({"#. Chains with unrecognized keys", "-", "3"});
    std::printf("%s\n", table.render().c_str());
  }

  bench::print_section("Measured (" + std::to_string(corpus.size()) +
                       " regenerated chains)");
  {
    util::TextTable table({"", "Issuer-subject", "Key-signature"});
    const auto count = [](const std::map<ChainVerdict, std::size_t>& counts,
                          ChainVerdict verdict) {
      const auto it = counts.find(verdict);
      return it == counts.end() ? std::size_t{0} : it->second;
    };
    table.add_row({"#. Single-certificate chains",
                   util::with_commas(count(is_counts, ChainVerdict::kSingleCertificate)),
                   util::with_commas(count(ks_counts, ChainVerdict::kSingleCertificate))});
    table.add_row({"#. Valid chains",
                   util::with_commas(count(is_counts, ChainVerdict::kValid)),
                   util::with_commas(count(ks_counts, ChainVerdict::kValid))});
    table.add_row({"#. Broken chains",
                   util::with_commas(count(is_counts, ChainVerdict::kBroken)),
                   util::with_commas(count(ks_counts, ChainVerdict::kBroken))});
    table.add_row({"#. Chains with unrecognized keys", "-",
                   util::with_commas(count(ks_counts, ChainVerdict::kUnrecognizedKey))});
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("Invariants: issuer-subject valid = key-signature valid + "
              "unrecognized(3) + malformed(1): %s\n",
              is_counts[ChainVerdict::kValid] ==
                      ks_counts[ChainVerdict::kValid] +
                          ks_counts[ChainVerdict::kUnrecognizedKey] + 1
                  ? "HOLDS"
                  : "VIOLATED");
  std::printf("Mismatch-position agreement on jointly-broken chains: %zu/%zu\n",
              position_agreements, position_comparisons);
  std::printf("PEM round-trip failures: %zu\n", pem_failures);
  return 0;
}
