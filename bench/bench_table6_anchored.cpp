// Table 6 / Appendix F.1 — Non-public-DB issuer-issued certificates chained
// to public trust anchors: sector attribution, CT compliance, expiry.
#include "bench_common.hpp"

int main() {
  using namespace certchain;
  bench::print_header(
      "Table 6: Non-public-DB issuer-issued certificates chained to public "
      "trust anchors",
      "The 26 complete-path hybrid chains with non-public leaves, split by "
      "sector (Appendix F.1)");

  bench::StudyContext context = bench::build_context();
  const core::HybridReport& hybrid = context.report.hybrid;

  bench::print_section("Paper (reported)");
  {
    util::TextTable table({"Category", "Entity", "#. Chains"});
    table.add_row({"Corporate", "Symantec, SignKorea and others", "10"});
    table.add_row({"Government", "Korea, Brazil, USA", "16"});
    std::printf("%s\n", table.render().c_str());
  }

  bench::print_section("Measured (simulated campus corpus)");
  {
    util::TextTable table({"Category", "Entity", "#. Chains"});
    for (const auto& row : hybrid.anchored_rows) {
      std::string entities;
      for (std::size_t i = 0; i < row.entities.size() && i < 3; ++i) {
        if (i != 0) entities += ", ";
        entities += row.entities[i];
      }
      if (row.entities.size() > 3) entities += " and others";
      table.add_row({row.sector, entities, std::to_string(row.chains)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("CT-logging compliance of the anchored leaves: %zu/%zu logged "
              "(paper: all 26 properly logged)\n",
              hybrid.anchored_ct_logged, hybrid.complete_nonpub_to_pub);
  std::printf("Chains with expired leaves: %zu (paper: 3, the longest expired "
              "by more than 5 years)\n",
              hybrid.anchored_expired_leaf);
  std::printf(
      "Pub.-chained-to-private chains (Scalyr/Canal+ pattern): %zu "
      "(paper: 10, >98.49%% of their connections established)\n",
      hybrid.complete_pub_to_private);
  return 0;
}
