// Table 7 / Appendix F.3 — Categorization of hybrid chains without a
// complete matched path.
#include "bench_common.hpp"

int main() {
  using namespace certchain;
  using chain::NoPathCategory;
  bench::print_header(
      "Table 7: Hybrid chains without a complete matched path",
      "Six-way misconfiguration taxonomy over the 215 no-path hybrid chains "
      "(Appendix F.3)");

  bench::StudyContext context = bench::build_context();
  const auto& buckets = context.report.hybrid.no_path_categories;

  const std::pair<NoPathCategory, const char*> paper_rows[] = {
      {NoPathCategory::kSelfSignedLeafThenMismatches, "108"},
      {NoPathCategory::kSelfSignedLeafThenValidSubchain, "13"},
      {NoPathCategory::kAllPairsMismatched, "61"},
      {NoPathCategory::kPartialPairsMismatched, "27"},
      {NoPathCategory::kNonPubRootAppendedToValidPublicSubchain, "5"},
      {NoPathCategory::kNonPubRootAndMismatches, "1"},
  };

  bench::print_section("Paper vs measured");
  util::TextTable table({"Category", "Paper", "Measured"});
  std::size_t measured_total = 0;
  for (const auto& [category, paper_count] : paper_rows) {
    const auto it = buckets.find(category);
    const std::size_t measured = it == buckets.end() ? 0 : it->second;
    measured_total += measured;
    table.add_row({std::string(chain::no_path_category_name(category)), paper_count,
                   std::to_string(measured)});
  }
  table.add_separator();
  table.add_row({"Total", "215", std::to_string(measured_total)});
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Public-DB leaf present but its issuing intermediate missing: measured "
      "%zu chains (paper: 56; 19,366 connections, 56.08%% established — "
      "measured establishment %s%%)\n",
      context.report.hybrid.public_leaf_without_issuer,
      bench::pct(
          context.report.hybrid.usage_public_leaf_without_issuer.establish_rate(),
          1.0)
          .c_str());
  std::printf(
      "Of the 100/108 'identical issuer and subject' leaves, the classic "
      "localhost distro-default DN is the dominant template (footnote 5).\n");
  return 0;
}
