// Table 8 / Sec. 4.3 — Matched-path statistics for non-public-DB-only and
// TLS interception chains with more than one certificate.
#include "bench_common.hpp"

int main() {
  using namespace certchain;
  bench::print_header(
      "Table 8: Non-public-DB-only and TLS interception multi-cert chains",
      "Matched-path detection with the leaf test disabled (Sec. 4.3: "
      "basicConstraints omission makes leaf identification unreliable)");

  bench::StudyContext context = bench::build_context();
  const core::NonPublicReport& non_public = context.report.non_public;
  const core::NonPublicReport& interception = context.report.interception_chains;

  bench::print_section("Paper (reported)");
  {
    util::TextTable table({"", "Non-public-DB-only", "TLS int."});
    table.add_row({"Is a matched path (%)", "99.76", "98.94"});
    table.add_row({"Contains a matched path (#)", "142", "56"});
    table.add_row({"No matched path (#)", "87", "2,764"});
    std::printf("%s\n", table.render().c_str());
  }

  bench::print_section("Measured (simulated campus corpus)");
  {
    util::TextTable table({"", "Non-public-DB-only", "TLS int."});
    table.add_row({"Is a matched path (%)",
                   bench::pct(non_public.is_matched_path_fraction(), 1.0),
                   bench::pct(interception.is_matched_path_fraction(), 1.0)});
    table.add_row({"Contains a matched path (#)",
                   util::with_commas(non_public.contains_matched_path),
                   util::with_commas(interception.contains_matched_path)});
    table.add_row({"No matched path (#)",
                   util::with_commas(non_public.no_matched_path),
                   util::with_commas(interception.no_matched_path)});
    table.add_separator();
    table.add_row({"Multi-cert chains total",
                   util::with_commas(non_public.multi_chains),
                   util::with_commas(interception.multi_chains)});
    std::printf("%s\n", table.render().c_str());
  }

  bench::print_section("basicConstraints omission (Sec. 4.3)");
  {
    util::TextTable table({"Position", "Paper %", "Measured %"});
    table.add_row({"First presented in chain", "55.31",
                   bench::pct(non_public.bc_omitted_first_fraction(), 1.0)});
    table.add_row({"Subsequent positions", "78.32",
                   bench::pct(non_public.bc_omitted_later_fraction(), 1.0)});
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
