file(REMOVE_RECURSE
  "../bench/bench_ablation_crosssign"
  "../bench/bench_ablation_crosssign.pdb"
  "CMakeFiles/bench_ablation_crosssign.dir/bench_ablation_crosssign.cpp.o"
  "CMakeFiles/bench_ablation_crosssign.dir/bench_ablation_crosssign.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_crosssign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
