# Empty compiler generated dependencies file for bench_ablation_crosssign.
# This may be replaced when dependencies are built.
