file(REMOVE_RECURSE
  "../bench/bench_ablation_establishment"
  "../bench/bench_ablation_establishment.pdb"
  "CMakeFiles/bench_ablation_establishment.dir/bench_ablation_establishment.cpp.o"
  "CMakeFiles/bench_ablation_establishment.dir/bench_ablation_establishment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_establishment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
