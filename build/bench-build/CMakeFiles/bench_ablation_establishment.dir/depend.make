# Empty dependencies file for bench_ablation_establishment.
# This may be replaced when dependencies are built.
