file(REMOVE_RECURSE
  "../bench/bench_ablation_leaftest"
  "../bench/bench_ablation_leaftest.pdb"
  "CMakeFiles/bench_ablation_leaftest.dir/bench_ablation_leaftest.cpp.o"
  "CMakeFiles/bench_ablation_leaftest.dir/bench_ablation_leaftest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_leaftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
