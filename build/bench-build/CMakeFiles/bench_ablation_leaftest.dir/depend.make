# Empty dependencies file for bench_ablation_leaftest.
# This may be replaced when dependencies are built.
