file(REMOVE_RECURSE
  "../bench/bench_ext_certstats"
  "../bench/bench_ext_certstats.pdb"
  "CMakeFiles/bench_ext_certstats.dir/bench_ext_certstats.cpp.o"
  "CMakeFiles/bench_ext_certstats.dir/bench_ext_certstats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_certstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
