# Empty compiler generated dependencies file for bench_ext_certstats.
# This may be replaced when dependencies are built.
