file(REMOVE_RECURSE
  "../bench/bench_ext_ipsweep"
  "../bench/bench_ext_ipsweep.pdb"
  "CMakeFiles/bench_ext_ipsweep.dir/bench_ext_ipsweep.cpp.o"
  "CMakeFiles/bench_ext_ipsweep.dir/bench_ext_ipsweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ipsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
