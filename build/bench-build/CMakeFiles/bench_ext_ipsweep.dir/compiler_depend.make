# Empty compiler generated dependencies file for bench_ext_ipsweep.
# This may be replaced when dependencies are built.
