file(REMOVE_RECURSE
  "../bench/bench_ext_timeline"
  "../bench/bench_ext_timeline.pdb"
  "CMakeFiles/bench_ext_timeline.dir/bench_ext_timeline.cpp.o"
  "CMakeFiles/bench_ext_timeline.dir/bench_ext_timeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
