# Empty dependencies file for bench_fig1_length_cdf.
# This may be replaced when dependencies are built.
