# Empty dependencies file for bench_fig4_structures.
# This may be replaced when dependencies are built.
