file(REMOVE_RECURSE
  "../bench/bench_fig6_mismatch"
  "../bench/bench_fig6_mismatch.pdb"
  "CMakeFiles/bench_fig6_mismatch.dir/bench_fig6_mismatch.cpp.o"
  "CMakeFiles/bench_fig6_mismatch.dir/bench_fig6_mismatch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
