# Empty compiler generated dependencies file for bench_fig6_mismatch.
# This may be replaced when dependencies are built.
