file(REMOVE_RECURSE
  "../bench/bench_fig7_fig8_complex"
  "../bench/bench_fig7_fig8_complex.pdb"
  "CMakeFiles/bench_fig7_fig8_complex.dir/bench_fig7_fig8_complex.cpp.o"
  "CMakeFiles/bench_fig7_fig8_complex.dir/bench_fig7_fig8_complex.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fig8_complex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
