file(REMOVE_RECURSE
  "../bench/bench_sec43_singlecert"
  "../bench/bench_sec43_singlecert.pdb"
  "CMakeFiles/bench_sec43_singlecert.dir/bench_sec43_singlecert.cpp.o"
  "CMakeFiles/bench_sec43_singlecert.dir/bench_sec43_singlecert.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_singlecert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
