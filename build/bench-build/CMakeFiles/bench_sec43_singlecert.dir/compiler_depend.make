# Empty compiler generated dependencies file for bench_sec43_singlecert.
# This may be replaced when dependencies are built.
