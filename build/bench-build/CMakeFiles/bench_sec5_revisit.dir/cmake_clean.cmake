file(REMOVE_RECURSE
  "../bench/bench_sec5_revisit"
  "../bench/bench_sec5_revisit.pdb"
  "CMakeFiles/bench_sec5_revisit.dir/bench_sec5_revisit.cpp.o"
  "CMakeFiles/bench_sec5_revisit.dir/bench_sec5_revisit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_revisit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
