# Empty dependencies file for bench_sec5_revisit.
# This may be replaced when dependencies are built.
