file(REMOVE_RECURSE
  "../bench/bench_sec5_validators"
  "../bench/bench_sec5_validators.pdb"
  "CMakeFiles/bench_sec5_validators.dir/bench_sec5_validators.cpp.o"
  "CMakeFiles/bench_sec5_validators.dir/bench_sec5_validators.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_validators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
