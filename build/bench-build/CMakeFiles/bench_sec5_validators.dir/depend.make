# Empty dependencies file for bench_sec5_validators.
# This may be replaced when dependencies are built.
