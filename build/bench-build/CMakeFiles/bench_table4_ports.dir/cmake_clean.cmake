file(REMOVE_RECURSE
  "../bench/bench_table4_ports"
  "../bench/bench_table4_ports.pdb"
  "CMakeFiles/bench_table4_ports.dir/bench_table4_ports.cpp.o"
  "CMakeFiles/bench_table4_ports.dir/bench_table4_ports.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
