# Empty compiler generated dependencies file for bench_table4_ports.
# This may be replaced when dependencies are built.
