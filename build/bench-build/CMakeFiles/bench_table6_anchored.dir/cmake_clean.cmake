file(REMOVE_RECURSE
  "../bench/bench_table6_anchored"
  "../bench/bench_table6_anchored.pdb"
  "CMakeFiles/bench_table6_anchored.dir/bench_table6_anchored.cpp.o"
  "CMakeFiles/bench_table6_anchored.dir/bench_table6_anchored.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_anchored.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
