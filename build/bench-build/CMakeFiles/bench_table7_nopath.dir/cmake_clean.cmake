file(REMOVE_RECURSE
  "../bench/bench_table7_nopath"
  "../bench/bench_table7_nopath.pdb"
  "CMakeFiles/bench_table7_nopath.dir/bench_table7_nopath.cpp.o"
  "CMakeFiles/bench_table7_nopath.dir/bench_table7_nopath.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_nopath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
