# Empty dependencies file for bench_table7_nopath.
# This may be replaced when dependencies are built.
