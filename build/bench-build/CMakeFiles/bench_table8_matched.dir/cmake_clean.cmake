file(REMOVE_RECURSE
  "../bench/bench_table8_matched"
  "../bench/bench_table8_matched.pdb"
  "CMakeFiles/bench_table8_matched.dir/bench_table8_matched.cpp.o"
  "CMakeFiles/bench_table8_matched.dir/bench_table8_matched.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_matched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
