# Empty dependencies file for bench_table8_matched.
# This may be replaced when dependencies are built.
