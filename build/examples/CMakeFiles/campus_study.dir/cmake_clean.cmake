file(REMOVE_RECURSE
  "CMakeFiles/campus_study.dir/campus_study.cpp.o"
  "CMakeFiles/campus_study.dir/campus_study.cpp.o.d"
  "campus_study"
  "campus_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
