# Empty dependencies file for campus_study.
# This may be replaced when dependencies are built.
