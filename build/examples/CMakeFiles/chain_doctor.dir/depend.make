# Empty dependencies file for chain_doctor.
# This may be replaced when dependencies are built.
