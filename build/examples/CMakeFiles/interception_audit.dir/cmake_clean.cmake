file(REMOVE_RECURSE
  "CMakeFiles/interception_audit.dir/interception_audit.cpp.o"
  "CMakeFiles/interception_audit.dir/interception_audit.cpp.o.d"
  "interception_audit"
  "interception_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interception_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
