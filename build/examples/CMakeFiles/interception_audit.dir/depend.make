# Empty dependencies file for interception_audit.
# This may be replaced when dependencies are built.
