file(REMOVE_RECURSE
  "CMakeFiles/revisit_scan.dir/revisit_scan.cpp.o"
  "CMakeFiles/revisit_scan.dir/revisit_scan.cpp.o.d"
  "revisit_scan"
  "revisit_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revisit_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
