# Empty dependencies file for revisit_scan.
# This may be replaced when dependencies are built.
