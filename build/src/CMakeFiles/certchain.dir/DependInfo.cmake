
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/categorizer.cpp" "src/CMakeFiles/certchain.dir/chain/categorizer.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/chain/categorizer.cpp.o.d"
  "/root/repo/src/chain/chain.cpp" "src/CMakeFiles/certchain.dir/chain/chain.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/chain/chain.cpp.o.d"
  "/root/repo/src/chain/cross_sign_registry.cpp" "src/CMakeFiles/certchain.dir/chain/cross_sign_registry.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/chain/cross_sign_registry.cpp.o.d"
  "/root/repo/src/chain/linter.cpp" "src/CMakeFiles/certchain.dir/chain/linter.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/chain/linter.cpp.o.d"
  "/root/repo/src/chain/matcher.cpp" "src/CMakeFiles/certchain.dir/chain/matcher.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/chain/matcher.cpp.o.d"
  "/root/repo/src/core/cert_stats.cpp" "src/CMakeFiles/certchain.dir/core/cert_stats.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/core/cert_stats.cpp.o.d"
  "/root/repo/src/core/corpus.cpp" "src/CMakeFiles/certchain.dir/core/corpus.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/core/corpus.cpp.o.d"
  "/root/repo/src/core/hybrid_analysis.cpp" "src/CMakeFiles/certchain.dir/core/hybrid_analysis.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/core/hybrid_analysis.cpp.o.d"
  "/root/repo/src/core/interception.cpp" "src/CMakeFiles/certchain.dir/core/interception.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/core/interception.cpp.o.d"
  "/root/repo/src/core/nonpublic_analysis.cpp" "src/CMakeFiles/certchain.dir/core/nonpublic_analysis.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/core/nonpublic_analysis.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/certchain.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/pki_graph.cpp" "src/CMakeFiles/certchain.dir/core/pki_graph.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/core/pki_graph.cpp.o.d"
  "/root/repo/src/core/report_text.cpp" "src/CMakeFiles/certchain.dir/core/report_text.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/core/report_text.cpp.o.d"
  "/root/repo/src/core/revisit.cpp" "src/CMakeFiles/certchain.dir/core/revisit.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/core/revisit.cpp.o.d"
  "/root/repo/src/core/timeline.cpp" "src/CMakeFiles/certchain.dir/core/timeline.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/core/timeline.cpp.o.d"
  "/root/repo/src/crypto/sim_crypto.cpp" "src/CMakeFiles/certchain.dir/crypto/sim_crypto.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/crypto/sim_crypto.cpp.o.d"
  "/root/repo/src/ct/ct_log.cpp" "src/CMakeFiles/certchain.dir/ct/ct_log.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/ct/ct_log.cpp.o.d"
  "/root/repo/src/ct/merkle.cpp" "src/CMakeFiles/certchain.dir/ct/merkle.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/ct/merkle.cpp.o.d"
  "/root/repo/src/datagen/hybrid_builder.cpp" "src/CMakeFiles/certchain.dir/datagen/hybrid_builder.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/datagen/hybrid_builder.cpp.o.d"
  "/root/repo/src/datagen/scenario.cpp" "src/CMakeFiles/certchain.dir/datagen/scenario.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/datagen/scenario.cpp.o.d"
  "/root/repo/src/netsim/pki_world.cpp" "src/CMakeFiles/certchain.dir/netsim/pki_world.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/netsim/pki_world.cpp.o.d"
  "/root/repo/src/netsim/simulator.cpp" "src/CMakeFiles/certchain.dir/netsim/simulator.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/netsim/simulator.cpp.o.d"
  "/root/repo/src/scanner/scanner.cpp" "src/CMakeFiles/certchain.dir/scanner/scanner.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/scanner/scanner.cpp.o.d"
  "/root/repo/src/truststore/trust_store.cpp" "src/CMakeFiles/certchain.dir/truststore/trust_store.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/truststore/trust_store.cpp.o.d"
  "/root/repo/src/util/base64.cpp" "src/CMakeFiles/certchain.dir/util/base64.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/util/base64.cpp.o.d"
  "/root/repo/src/util/hash.cpp" "src/CMakeFiles/certchain.dir/util/hash.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/util/hash.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/certchain.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/certchain.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/certchain.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/util/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/certchain.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/util/table.cpp.o.d"
  "/root/repo/src/util/time.cpp" "src/CMakeFiles/certchain.dir/util/time.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/util/time.cpp.o.d"
  "/root/repo/src/validation/client_validators.cpp" "src/CMakeFiles/certchain.dir/validation/client_validators.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/validation/client_validators.cpp.o.d"
  "/root/repo/src/validation/pairwise_validators.cpp" "src/CMakeFiles/certchain.dir/validation/pairwise_validators.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/validation/pairwise_validators.cpp.o.d"
  "/root/repo/src/x509/builder.cpp" "src/CMakeFiles/certchain.dir/x509/builder.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/x509/builder.cpp.o.d"
  "/root/repo/src/x509/certificate.cpp" "src/CMakeFiles/certchain.dir/x509/certificate.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/x509/certificate.cpp.o.d"
  "/root/repo/src/x509/crl.cpp" "src/CMakeFiles/certchain.dir/x509/crl.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/x509/crl.cpp.o.d"
  "/root/repo/src/x509/distinguished_name.cpp" "src/CMakeFiles/certchain.dir/x509/distinguished_name.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/x509/distinguished_name.cpp.o.d"
  "/root/repo/src/x509/pem.cpp" "src/CMakeFiles/certchain.dir/x509/pem.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/x509/pem.cpp.o.d"
  "/root/repo/src/zeek/dpd.cpp" "src/CMakeFiles/certchain.dir/zeek/dpd.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/zeek/dpd.cpp.o.d"
  "/root/repo/src/zeek/joiner.cpp" "src/CMakeFiles/certchain.dir/zeek/joiner.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/zeek/joiner.cpp.o.d"
  "/root/repo/src/zeek/log_io.cpp" "src/CMakeFiles/certchain.dir/zeek/log_io.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/zeek/log_io.cpp.o.d"
  "/root/repo/src/zeek/log_stream.cpp" "src/CMakeFiles/certchain.dir/zeek/log_stream.cpp.o" "gcc" "src/CMakeFiles/certchain.dir/zeek/log_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
