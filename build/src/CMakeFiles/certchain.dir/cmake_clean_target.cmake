file(REMOVE_RECURSE
  "libcertchain.a"
)
