# Empty dependencies file for certchain.
# This may be replaced when dependencies are built.
