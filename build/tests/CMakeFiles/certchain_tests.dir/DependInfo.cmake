
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_categorizer.cpp" "tests/CMakeFiles/certchain_tests.dir/test_categorizer.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_categorizer.cpp.o.d"
  "/root/repo/tests/test_cert_stats.cpp" "tests/CMakeFiles/certchain_tests.dir/test_cert_stats.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_cert_stats.cpp.o.d"
  "/root/repo/tests/test_chain_matcher.cpp" "tests/CMakeFiles/certchain_tests.dir/test_chain_matcher.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_chain_matcher.cpp.o.d"
  "/root/repo/tests/test_core_analyzers.cpp" "tests/CMakeFiles/certchain_tests.dir/test_core_analyzers.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_core_analyzers.cpp.o.d"
  "/root/repo/tests/test_crl.cpp" "tests/CMakeFiles/certchain_tests.dir/test_crl.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_crl.cpp.o.d"
  "/root/repo/tests/test_crypto_x509.cpp" "tests/CMakeFiles/certchain_tests.dir/test_crypto_x509.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_crypto_x509.cpp.o.d"
  "/root/repo/tests/test_ct_log.cpp" "tests/CMakeFiles/certchain_tests.dir/test_ct_log.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_ct_log.cpp.o.d"
  "/root/repo/tests/test_dn.cpp" "tests/CMakeFiles/certchain_tests.dir/test_dn.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_dn.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/certchain_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_linter.cpp" "tests/CMakeFiles/certchain_tests.dir/test_linter.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_linter.cpp.o.d"
  "/root/repo/tests/test_log_stream.cpp" "tests/CMakeFiles/certchain_tests.dir/test_log_stream.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_log_stream.cpp.o.d"
  "/root/repo/tests/test_merkle.cpp" "tests/CMakeFiles/certchain_tests.dir/test_merkle.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_merkle.cpp.o.d"
  "/root/repo/tests/test_name_constraints.cpp" "tests/CMakeFiles/certchain_tests.dir/test_name_constraints.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_name_constraints.cpp.o.d"
  "/root/repo/tests/test_netsim.cpp" "tests/CMakeFiles/certchain_tests.dir/test_netsim.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_netsim.cpp.o.d"
  "/root/repo/tests/test_pipeline_units.cpp" "tests/CMakeFiles/certchain_tests.dir/test_pipeline_units.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_pipeline_units.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/certchain_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_report_text.cpp" "tests/CMakeFiles/certchain_tests.dir/test_report_text.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_report_text.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/certchain_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/certchain_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_scanner_revisit.cpp" "tests/CMakeFiles/certchain_tests.dir/test_scanner_revisit.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_scanner_revisit.cpp.o.d"
  "/root/repo/tests/test_timeline.cpp" "tests/CMakeFiles/certchain_tests.dir/test_timeline.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_timeline.cpp.o.d"
  "/root/repo/tests/test_truststore.cpp" "tests/CMakeFiles/certchain_tests.dir/test_truststore.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_truststore.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/certchain_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_validators.cpp" "tests/CMakeFiles/certchain_tests.dir/test_validators.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_validators.cpp.o.d"
  "/root/repo/tests/test_zeek.cpp" "tests/CMakeFiles/certchain_tests.dir/test_zeek.cpp.o" "gcc" "tests/CMakeFiles/certchain_tests.dir/test_zeek.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/certchain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
