# Empty dependencies file for certchain_tests.
# This may be replaced when dependencies are built.
