file(REMOVE_RECURSE
  "CMakeFiles/certchain_analyze.dir/certchain_analyze.cpp.o"
  "CMakeFiles/certchain_analyze.dir/certchain_analyze.cpp.o.d"
  "certchain_analyze"
  "certchain_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certchain_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
