# Empty compiler generated dependencies file for certchain_analyze.
# This may be replaced when dependencies are built.
