file(REMOVE_RECURSE
  "CMakeFiles/debug_dedupe.dir/debug_dedupe.cpp.o"
  "CMakeFiles/debug_dedupe.dir/debug_dedupe.cpp.o.d"
  "debug_dedupe"
  "debug_dedupe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_dedupe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
