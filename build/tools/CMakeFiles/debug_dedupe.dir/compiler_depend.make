# Empty compiler generated dependencies file for debug_dedupe.
# This may be replaced when dependencies are built.
