file(REMOVE_RECURSE
  "CMakeFiles/profile_small.dir/profile_small.cpp.o"
  "CMakeFiles/profile_small.dir/profile_small.cpp.o.d"
  "profile_small"
  "profile_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
