# Empty dependencies file for profile_small.
# This may be replaced when dependencies are built.
