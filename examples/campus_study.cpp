// End-to-end campus measurement study, exactly the paper's workflow:
//
//   build PKI world + server population  (datagen)
//   -> simulate a year of border-gateway TLS traffic (netsim)
//   -> stream Zeek SSL.log / X509.log to disk (zeek)
//   -> parse the logs back and run the chain structure analyzer (core)
//   -> print a condensed study report.
//
// Run:   ./build/examples/campus_study [output_dir]
// Knobs: CERTCHAIN_SCALE / CERTCHAIN_CONNECTIONS / CERTCHAIN_SEED
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/pipeline.hpp"
#include "datagen/scenario.hpp"
#include "util/strings.hpp"
#include "zeek/log_io.hpp"

int main(int argc, char** argv) {
  using namespace certchain;
  using chain::ChainCategory;

  datagen::ScenarioConfig config;
  config.chain_scale = 1.0 / 500.0;
  config.total_connections = 60000;
  if (const char* scale = std::getenv("CERTCHAIN_SCALE")) config.chain_scale = std::atof(scale);
  if (const char* connections = std::getenv("CERTCHAIN_CONNECTIONS")) {
    config.total_connections = std::strtoull(connections, nullptr, 10);
  }
  if (const char* seed = std::getenv("CERTCHAIN_SEED")) {
    config.seed = std::strtoull(seed, nullptr, 10);
  }
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  std::printf("[1/4] building the simulated campus (scale %.4f)...\n",
              config.chain_scale);
  const auto scenario = datagen::build_study_scenario(config);
  std::printf("      %zu server endpoints, %zu interception vendors\n",
              scenario->endpoints.size(), scenario->world.interception().size());

  std::printf("[2/4] replaying %llu TLS connections through the border gateway...\n",
              static_cast<unsigned long long>(config.total_connections));
  const netsim::GeneratedLogs logs = scenario->generate_logs();

  std::printf("[3/4] writing Zeek logs...\n");
  zeek::SslLogWriter ssl_writer;
  for (const auto& record : logs.ssl) ssl_writer.add(record);
  zeek::X509LogWriter x509_writer;
  for (const auto& record : logs.x509) x509_writer.add(record);
  const std::string ssl_path = out_dir + "/ssl.log";
  const std::string x509_path = out_dir + "/x509.log";
  std::ofstream(ssl_path) << ssl_writer.finish();
  std::ofstream(x509_path) << x509_writer.finish();
  std::printf("      %s (%zu rows), %s (%zu rows)\n", ssl_path.c_str(),
              logs.ssl.size(), x509_path.c_str(), logs.x509.size());

  std::printf("[4/4] streaming the on-disk logs back through the analyzer...\n\n");
  const core::StudyPipeline pipeline(scenario->world.stores(),
                                     scenario->world.ct_logs(), scenario->vendors,
                                     &scenario->world.cross_signs());
  // files() streams the logs chunk by chunk (bounded memory); the report is
  // byte-identical to an in-memory run over the same text.
  const core::StudyReport report =
      pipeline.run(core::StudyInput::files(ssl_path, x509_path));

  std::printf("=== condensed study report ===\n");
  std::printf("connections analyzed: %s (%s TLS 1.3, certificates hidden)\n",
              util::with_commas(report.totals.connections).c_str(),
              util::with_commas(report.totals.tls13_connections).c_str());
  std::printf("unique chains: %s   distinct certificates: %s\n\n",
              util::with_commas(report.unique_chains).c_str(),
              util::with_commas(report.totals.distinct_certificates).c_str());

  for (const auto& [category, usage] : report.categories) {
    std::printf("%-20s %6zu chains  %9s connections  %6zu client IPs\n",
                std::string(chain::chain_category_name(category)).c_str(),
                usage.chains, util::with_commas(usage.connections).c_str(),
                usage.client_ips);
  }

  std::printf("\nTLS interception: %zu confirmed issuers in %zu categories "
              "(%zu candidates unconfirmed)\n",
              report.interception.findings.size(),
              report.interception.category_rows().size(),
              report.interception.unconfirmed_candidates.size());

  const auto& hybrid = report.hybrid;
  std::printf("\nhybrid chains: %zu total\n", hybrid.total());
  std::printf("  complete matched path:        %zu (est. rate %.2f%%)\n",
              hybrid.usage_complete.chains,
              100.0 * hybrid.usage_complete.establish_rate());
  std::printf("  contains path + extras:       %zu (est. rate %.2f%%)\n",
              hybrid.usage_contains.chains,
              100.0 * hybrid.usage_contains.establish_rate());
  std::printf("  no complete matched path:     %zu (est. rate %.2f%%)\n",
              hybrid.usage_no_path.chains,
              100.0 * hybrid.usage_no_path.establish_rate());
  std::printf("  CT-logged anchored leaves:    %zu/%zu\n", hybrid.anchored_ct_logged,
              hybrid.complete_nonpub_to_pub);
  std::printf("  Fake-LE staging leftovers:    %zu\n", hybrid.fake_le_chains);

  const auto& nonpub = report.non_public;
  std::printf("\nnon-public-DB-only: %.1f%% single-cert (%.1f%% self-signed), "
              "%zu DGA chains, %.2f%% of multi-cert chains fully matched\n",
              100.0 * nonpub.single_fraction(),
              100.0 * nonpub.single_self_signed_fraction(), nonpub.dga_chains,
              100.0 * nonpub.is_matched_path_fraction());
  std::printf("\nthe five bench_* binaries per table/figure print the full "
              "paper-vs-measured comparison.\n");
  return 0;
}
