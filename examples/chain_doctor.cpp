// chain_doctor: a lint tool for delivered certificate chains.
//
// Reads a PEM bundle (leaf first, `openssl s_client -showcerts` shape),
// diagnoses its structure with the paper's methodology, and prescribes
// fixes: unnecessary certificates to drop, ordering problems, staging
// leftovers, missing intermediates.
//
// Run:  ./build/examples/chain_doctor [bundle.pem]
// With no argument it writes and diagnoses three demo bundles.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "chain/linter.hpp"
#include "netsim/pki_world.hpp"
#include "util/strings.hpp"
#include "x509/pem.hpp"

namespace {

using namespace certchain;

void diagnose(const std::string& name, const chain::CertificateChain& chain) {
  std::printf("== %s ==\n", name.c_str());
  std::printf("  %zu certificate(s):\n", chain.length());
  for (std::size_t i = 0; i < chain.length(); ++i) {
    const auto& cert = chain.at(i);
    std::printf("   %zu. s: %s\n      i: %s%s\n", i,
                cert.subject.to_string().c_str(), cert.issuer.to_string().c_str(),
                cert.is_self_signed() ? "   [self-signed]" : "");
  }

  chain::LintOptions options;
  options.now = util::make_time(2024, 11, 15);
  const chain::LintReport report = chain::lint_chain(chain, options);
  std::printf("  findings:\n");
  for (const chain::LintFinding& finding : report.findings) {
    std::printf("   [%-7s] %s", std::string(lint_severity_name(finding.severity)).c_str(),
                finding.message.c_str());
    if (finding.position != static_cast<std::size_t>(-1)) {
      std::printf(" (position %zu)", finding.position);
    }
    std::printf("\n");
    if (!finding.recommendation.empty()) {
      std::printf("             fix: %s\n", finding.recommendation.c_str());
    }
  }
  std::printf("  verdict: %s\n\n", report.has_errors()
                                       ? "BROKEN — strict clients will reject this"
                                       : "deliverable");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "chain_doctor: cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::size_t malformed = 0;
    const auto certs = x509::decode_pem_bundle(buffer.str(), &malformed);
    if (malformed != 0) {
      std::printf("warning: %zu PEM block(s) failed to parse and were skipped\n",
                  malformed);
    }
    diagnose(argv[1], chain::CertificateChain(certs));
    return 0;
  }

  // Demo mode: build three representative bundles and diagnose them.
  netsim::PkiWorld world;
  const util::TimeRange validity{util::make_time(2024, 6, 1),
                                 util::make_time(2025, 6, 1)};

  const auto good = world.issue_public_chain("digicert", "good.example", validity);
  diagnose("demo 1: well-formed delivery", good);

  auto staging = world.issue_public_chain("lets-encrypt", "oops.example", validity, true);
  staging.push_back(world.fake_le_intermediate());
  diagnose("demo 2: staging leftover appended", staging);

  chain::CertificateChain broken;
  broken.push_back(world.make_localhost_certificate("doctor-demo"));
  broken.push_back(world.public_ca("digicert").intermediate_certs.front());
  diagnose("demo 3: distro-default localhost cert + orphan intermediate", broken);

  // Round-trip demo 2 through a PEM file to exercise the file path too.
  std::string bundle;
  for (const auto& cert : staging) bundle += x509::encode_pem(cert);
  const char* path = "chain_doctor_demo.pem";
  std::ofstream(path) << bundle;
  std::printf("(wrote %s — try: chain_doctor %s)\n", path, path);
  return 0;
}
