// Interception audit: walk through the paper's §3.2.1 detection procedure on
// hand-built scenarios and show each decision the detector makes.
//
// Run: ./build/examples/interception_audit
#include <cstdio>

#include "core/corpus.hpp"
#include "core/interception.hpp"
#include "ct/ct_log.hpp"
#include "netsim/pki_world.hpp"
#include "util/table.hpp"

namespace {

using namespace certchain;

zeek::JoinedConnection connection_for(const chain::CertificateChain& chain,
                                      const std::string& client,
                                      const std::string& sni) {
  zeek::JoinedConnection connection;
  connection.ssl.id_orig_h = client;
  connection.ssl.id_resp_h = "203.0.113.50";
  connection.ssl.id_resp_p = 8013;
  connection.ssl.version = "TLSv12";
  connection.ssl.established = true;
  connection.ssl.server_name = sni;
  connection.chain = chain;
  return connection;
}

}  // namespace

int main() {
  netsim::PkiWorld world;
  const auto validity = netsim::PkiWorld::default_leaf_validity();

  // The genuine site: public chain, CT-logged at issuance.
  const auto genuine =
      world.issue_public_chain("digicert", "mail.bigsite.example", validity);

  // A middlebox forging the same domain.
  netsim::InterceptionDeployment& zscaler = world.interception().front();
  const auto forged = zscaler.forge_chain("mail.bigsite.example", validity);

  // A legitimate private deployment: non-public issuer, domain never in CT.
  auto& corp = world.make_enterprise_ca("Quiet Corp", true);
  x509::DistinguishedName subject;
  subject.add("CN", "intranet.quietcorp.example");
  chain::CertificateChain private_chain;
  private_chain.push_back(
      corp.intermediate_ca->issue_leaf(subject, "intranet.quietcorp.example", validity));
  private_chain.push_back(*corp.intermediate_cert);

  // An unknown issuer forging a public domain (candidate, but no directory
  // entry confirms it).
  x509::CertificateAuthority mystery(
      x509::DistinguishedName::parse_or_die("CN=Mystery Proxy CA,O=Unknown"),
      "mystery");
  x509::DistinguishedName forged_subject;
  forged_subject.add("CN", "mail.bigsite.example");
  chain::CertificateChain mystery_chain;
  mystery_chain.push_back(
      mystery.issue_leaf(forged_subject, "mail.bigsite.example", validity));

  // Vendor directory (the paper's manual-investigation stand-in).
  core::VendorDirectory directory;
  directory[zscaler.intermediate_ca.name().canonical()] = core::VendorInfo{
      zscaler.vendor.name,
      std::string(netsim::interception_category_name(zscaler.vendor.category))};
  directory[zscaler.root_ca.name().canonical()] = directory.begin()->second;

  const core::InterceptionDetector detector(world.stores(), world.ct_logs(),
                                            directory);

  std::printf("=== per-chain detection decisions (Sec. 3.2.1) ===\n\n");
  const struct {
    const char* name;
    const chain::CertificateChain* chain;
    const char* domain;
  } cases[] = {
      {"genuine public chain", &genuine, "mail.bigsite.example"},
      {"middlebox-forged chain (known vendor)", &forged, "mail.bigsite.example"},
      {"private deployment, domain absent from CT", &private_chain,
       "intranet.quietcorp.example"},
      {"forged chain, unknown issuer", &mystery_chain, "mail.bigsite.example"},
  };
  for (const auto& test_case : cases) {
    const bool candidate =
        detector.is_interception_candidate(*test_case.chain, test_case.domain);
    std::printf("  %-45s leaf issuer: %-40s -> %s\n", test_case.name,
                test_case.chain->first().issuer.common_name().value_or("?").c_str(),
                candidate ? "CANDIDATE (CT issuer mismatch)" : "not flagged");
  }

  // Full corpus pass.
  core::CorpusIndex corpus;
  corpus.add(connection_for(genuine, "10.0.0.1", "mail.bigsite.example"));
  for (int i = 0; i < 5; ++i) {
    corpus.add(connection_for(forged, "10.0.1." + std::to_string(i),
                              "mail.bigsite.example"));
  }
  corpus.add(connection_for(private_chain, "10.0.0.2", "intranet.quietcorp.example"));
  corpus.add(connection_for(mystery_chain, "10.0.0.3", "mail.bigsite.example"));

  const core::InterceptionReport report = detector.detect(corpus);
  std::printf("\n=== corpus-level report ===\n");
  util::TextTable table({"Category", "#. Issuers", "Connections", "#. Client IPs"});
  for (const auto& row : report.category_rows()) {
    table.add_row({row.category, std::to_string(row.issuers),
                   std::to_string(row.connections), std::to_string(row.client_ips)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nunconfirmed candidates (CT mismatch, no vendor entry): %zu\n",
              report.unconfirmed_candidates.size());
  std::printf("issuer DNs feeding the chain categorizer: %zu (vendor expansion "
              "covers the middlebox root too)\n",
              report.issuer_set().size());
  return 0;
}
