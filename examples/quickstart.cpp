// Quickstart: the core public API in ~100 lines.
//
//   1. stand up a tiny PKI (root CA -> issuing CA -> leaf);
//   2. register it in trust stores the way browsers / CCADB would;
//   3. deliver a chain with an unnecessary certificate appended;
//   4. run the paper's issuer-subject structure analysis;
//   5. validate with a Chrome-like and an OpenSSL-like client and see them
//      disagree.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "chain/categorizer.hpp"
#include "chain/matcher.hpp"
#include "truststore/trust_store.hpp"
#include "validation/client_validators.hpp"
#include "x509/builder.hpp"

int main() {
  using namespace certchain;

  // --- 1. a tiny PKI ---------------------------------------------------------
  const util::TimeRange validity{util::make_time(2024, 1, 1),
                                 util::make_time(2026, 1, 1)};
  x509::CertificateAuthority root_ca(
      x509::DistinguishedName::parse_or_die("CN=Demo Root CA,O=Demo Trust,C=US"),
      "demo-root");
  x509::CertificateAuthority issuing_ca(
      x509::DistinguishedName::parse_or_die("CN=Demo Issuing CA,O=Demo Trust,C=US"),
      "demo-int");
  const x509::Certificate root_cert = root_ca.make_root(validity);
  const x509::Certificate issuing_cert =
      root_ca.issue_intermediate(issuing_ca, validity);

  x509::DistinguishedName subject;
  subject.add("CN", "shop.example");
  const x509::Certificate leaf =
      issuing_ca.issue_leaf(subject, "shop.example", validity);

  // --- 2. the public databases ------------------------------------------------
  truststore::TrustStoreSet stores;          // browser view (roots + CCADB)
  stores.add_to_all_programs(root_cert);
  truststore::CcadbRecord disclosure;
  disclosure.certificate = issuing_cert;
  disclosure.chains_to_participating_root = true;
  disclosure.publicly_audited = true;
  stores.ccadb().add(disclosure);

  truststore::TrustStore host_store(truststore::RootProgram::kMozillaNss);
  host_store.add(root_cert);                 // host OS view (roots only)

  // --- 3. a misconfigured delivery ---------------------------------------------
  // The server appends a stale internal certificate after the valid path —
  // the paper's "unnecessary certificate" pattern.
  const auto stale_keys = crypto::generate_keypair(crypto::KeyAlgorithm::kRsa2048,
                                                   "stale-internal");
  x509::DistinguishedName internal_name;
  internal_name.add("CN", "legacy-ca.internal").add("O", "Shop Ops");
  const x509::Certificate stale = x509::CertificateBuilder()
                                      .serial("1337")
                                      .subject(internal_name)
                                      .validity(validity)
                                      .no_basic_constraints()
                                      .self_sign(stale_keys.private_key);

  chain::CertificateChain delivered({leaf, issuing_cert, root_cert, stale});

  // --- 4. structure analysis ----------------------------------------------------
  const chain::PathAnalysis analysis = chain::analyze_paths(delivered);
  std::printf("delivered chain length: %zu\n", delivered.length());
  std::printf("mismatch ratio:         %.2f\n", analysis.match.mismatch_ratio());
  if (analysis.complete_path) {
    std::printf("complete matched path:  certificates %zu..%zu\n",
                analysis.complete_path->begin, analysis.complete_path->end);
  }
  for (const std::size_t index : analysis.unnecessary_certificates) {
    std::printf("unnecessary certificate at position %zu: %s\n", index,
                delivered.at(index).subject.to_string().c_str());
  }

  const chain::HybridClassification verdict =
      chain::classify_hybrid(delivered, stores);
  std::printf("structure class:        %s\n",
              std::string(chain::hybrid_structure_name(verdict.structure)).c_str());

  // --- 5. client validation -------------------------------------------------------
  const util::SimTime now = util::make_time(2025, 1, 15);
  const validation::ChromeLikeValidator chrome(stores);
  const validation::OpenSslLikeValidator openssl(host_store);
  const auto chrome_result = chrome.validate(delivered, now);
  const auto openssl_result = openssl.validate(delivered, now);
  std::printf("Chrome-like verdict:    %s\n",
              std::string(validation::client_verdict_name(chrome_result.verdict)).c_str());
  std::printf("OpenSSL-like verdict:   %s%s%s\n",
              std::string(validation::client_verdict_name(openssl_result.verdict)).c_str(),
              openssl_result.detail.empty() ? "" : " — ",
              openssl_result.detail.c_str());

  // A reordered delivery (stale certificate spliced between leaf and
  // intermediate) breaks the strict ordered walk but not the path builder.
  chain::CertificateChain reordered({leaf, stale, issuing_cert, root_cert});
  std::printf("\nafter splicing the stale certificate into the order:\n");
  std::printf("Chrome-like verdict:    %s\n",
              std::string(validation::client_verdict_name(
                              chrome.validate(reordered, now).verdict))
                  .c_str());
  std::printf("OpenSSL-like verdict:   %s\n",
              std::string(validation::client_verdict_name(
                              openssl.validate(reordered, now).verdict))
                  .c_str());
  return 0;
}
