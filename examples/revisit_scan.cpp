// Revisit scan: drive the s_client-style active scanner over the simulated
// 2024 server population, show raw scanner output for a couple of servers,
// run the Sec. 5 longitudinal comparison, and repeat the hybrid revisit over
// a faulty network to show the resilient scanner's retry/salvage accounting.
//
// Run: ./build/examples/revisit_scan
#include <cstdio>

#include "core/report_text.hpp"
#include "core/revisit.hpp"
#include "datagen/scenario.hpp"
#include "netsim/faults.hpp"
#include "scanner/resilient_scanner.hpp"
#include "scanner/scanner.hpp"
#include "util/strings.hpp"

int main() {
  using namespace certchain;

  datagen::ScenarioConfig config;
  config.chain_scale = 1.0 / 1000.0;
  config.total_connections = 20000;
  config.include_length_outliers = false;
  std::printf("building the two-epoch server population...\n");
  const auto scenario = datagen::build_study_scenario(config);
  const scanner::ActiveScanner scanner(scenario->endpoints);

  // Show the raw scanner view of one migrated hybrid server.
  for (const auto& endpoint : scenario->endpoints) {
    if (endpoint.label.rfind("hybrid/", 0) != 0 || endpoint.domain.empty()) continue;
    const scanner::ScanResult result = scanner.scan_domain(endpoint.domain,
                                                           endpoint.port);
    if (!result.reachable) continue;
    std::printf("\n$ openssl s_client -connect %s -showcerts\n", result.target.c_str());
    // Print the header portion (subject/issuer lines) of the s_client output.
    std::size_t lines = 0;
    for (const std::string& line : util::split(result.pem_bundle, '\n')) {
      if (line.rfind("-----", 0) == 0) break;
      std::printf("%s\n", line.c_str());
      if (++lines > 12) break;
    }
    std::printf("  [+ %zu PEM blocks omitted]\n", result.chain_length());
    break;
  }

  // Full Sec. 5 comparison.
  std::vector<const netsim::ServerEndpoint*> hybrid_servers;
  std::vector<const netsim::ServerEndpoint*> nonpub_servers;
  for (const auto& endpoint : scenario->endpoints) {
    if (endpoint.label.rfind("hybrid/", 0) == 0) hybrid_servers.push_back(&endpoint);
    if (endpoint.label.rfind("nonpub/", 0) == 0) nonpub_servers.push_back(&endpoint);
  }
  const core::RevisitAnalyzer analyzer(scenario->world.stores(),
                                       &scenario->world.cross_signs());
  const auto hybrid = analyzer.analyze_hybrid(hybrid_servers, scanner);
  const auto nonpub = analyzer.analyze_non_public(nonpub_servers, scanner, 0, 0);

  std::printf("\n=== hybrid servers, 2020/21 -> 2024 ===\n");
  std::printf("  previously hybrid: %zu, reachable: %zu\n", hybrid.previous_servers,
              hybrid.reachable);
  std::printf("  now all-public: %zu (Let's Encrypt: %zu), all-non-public: %zu, "
              "still hybrid: %zu\n",
              hybrid.now_all_public, hybrid.now_lets_encrypt,
              hybrid.now_all_non_public, hybrid.still_hybrid);

  std::printf("\n=== non-public-DB-only servers ===\n");
  std::printf("  scannable: %zu, still non-public: %zu\n", nonpub.scannable_servers,
              nonpub.still_non_public);
  std::printf("  now multi-cert: %zu (%.1f%%), of which %.1f%% are complete "
              "matched paths\n",
              nonpub.now_multi_cert,
              100.0 * nonpub.now_multi_cert / std::max<std::size_t>(1, nonpub.reachable),
              100.0 * nonpub.now_multi_complete_matched /
                  std::max<std::size_t>(1, nonpub.now_multi_cert));
  // Same hybrid revisit, but over a lossy network: 15% of attempts hit an
  // injected fault (timeouts, resets, truncated bundles, ...). The resilient
  // scanner retries with backoff and salvages parseable prefixes of damaged
  // bundles; the scan-health block states what survived.
  std::printf("\n=== hybrid revisit under 15%% injected faults ===\n");
  const netsim::FaultPlan plan(/*seed=*/42, netsim::FaultRates::uniform(0.15));
  scanner::ResilientScanner resilient(scanner, plan);
  const auto faulty = analyzer.analyze_hybrid(hybrid_servers, resilient);
  std::printf("  reachable dropped %zu -> %zu; now-all-public %zu -> %zu\n",
              hybrid.reachable, faulty.reachable, hybrid.now_all_public,
              faulty.now_all_public);
  std::printf("%s", core::render_scan_health(faulty.scan_health).c_str());

  std::printf("\nthe full paper-vs-measured table is printed by "
              "bench_sec5_revisit; the fault-rate sweep by "
              "bench_ext_resilience.\n");
  return 0;
}
