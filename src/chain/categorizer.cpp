#include "chain/categorizer.hpp"

namespace certchain::chain {

using truststore::IssuerClass;

std::string_view chain_category_name(ChainCategory category) {
  switch (category) {
    case ChainCategory::kPublicDbOnly: return "Public-DB-only";
    case ChainCategory::kNonPublicDbOnly: return "Non-public-DB-only";
    case ChainCategory::kHybrid: return "Hybrid";
    case ChainCategory::kTlsInterception: return "TLS interception";
  }
  return "unknown";
}

ChainCategory categorize_chain(const CertificateChain& chain,
                               const truststore::TrustStoreSet& stores,
                               const InterceptionIssuerSet& interception_issuers) {
  bool any_public = false;
  bool any_non_public = false;
  for (const x509::Certificate& cert : chain) {
    if (interception_issuers.contains(cert.issuer.canonical())) {
      return ChainCategory::kTlsInterception;
    }
    if (stores.classify_certificate(cert) == IssuerClass::kPublicDb) {
      any_public = true;
    } else {
      any_non_public = true;
    }
  }
  if (any_public && any_non_public) return ChainCategory::kHybrid;
  if (any_public) return ChainCategory::kPublicDbOnly;
  return ChainCategory::kNonPublicDbOnly;
}

std::set<core::DnId> issuer_ids_for(const InterceptionIssuerSet& issuers,
                                    const core::DnPool& pool) {
  std::set<core::DnId> ids;
  for (const std::string& canonical : issuers) {
    const core::DnId id = pool.find_canonical(canonical);
    if (id != core::kInvalidDnId) ids.insert(id);
  }
  return ids;
}

ChainCategory categorize_chain(const CertificateChain& chain,
                               truststore::IssuerClassifier& classifier,
                               const InterceptionIssuerSet& interception_issuers,
                               const std::set<core::DnId>& interception_issuer_ids) {
  bool any_public = false;
  bool any_non_public = false;
  for (const x509::Certificate& cert : chain) {
    const bool intercepted =
        cert.issuer_id != core::kInvalidDnId
            ? interception_issuer_ids.contains(cert.issuer_id)
            : interception_issuers.contains(cert.issuer.canonical());
    if (intercepted) return ChainCategory::kTlsInterception;
    if (classifier.classify(cert) == IssuerClass::kPublicDb) {
      any_public = true;
    } else {
      any_non_public = true;
    }
  }
  if (any_public && any_non_public) return ChainCategory::kHybrid;
  if (any_public) return ChainCategory::kPublicDbOnly;
  return ChainCategory::kNonPublicDbOnly;
}

std::string_view hybrid_structure_name(HybridStructure structure) {
  switch (structure) {
    case HybridStructure::kCompleteNonPubToPub:
      return "Complete path: Non-pub. chained to Pub.";
    case HybridStructure::kCompletePubToPrivate:
      return "Complete path: Pub. chained to Prv.";
    case HybridStructure::kContainsCompletePath:
      return "Chain contains a complete matched path";
    case HybridStructure::kNoCompletePath:
      return "No complete matched path";
  }
  return "unknown";
}

std::string_view no_path_category_name(NoPathCategory category) {
  switch (category) {
    case NoPathCategory::kSelfSignedLeafThenMismatches:
      return "Non-pub-DB self-signed leaf followed by mismatched {issuer-subject} pairs";
    case NoPathCategory::kSelfSignedLeafThenValidSubchain:
      return "Non-pub-DB self-signed leaf followed by a valid sub-chain";
    case NoPathCategory::kAllPairsMismatched:
      return "All {issuer-subject} pairs are mismatched";
    case NoPathCategory::kPartialPairsMismatched:
      return "Partial {issuer-subject} pairs are mismatched";
    case NoPathCategory::kNonPubRootAppendedToValidPublicSubchain:
      return "Non-pub-DB root appended to a valid public-issued sub-chain";
    case NoPathCategory::kNonPubRootAndMismatches:
      return "Non-pub-DB root and mismatched {issuer-subject} pairs";
  }
  return "unknown";
}

namespace {

/// §4.2 footnote observation: a public-DB-issued leaf present in the chain
/// with no certificate in the chain whose subject matches the leaf's issuer.
bool has_public_leaf_without_issuer(const CertificateChain& chain,
                                    const truststore::TrustStoreSet& stores) {
  for (std::size_t i = 0; i < chain.length(); ++i) {
    const x509::Certificate& cert = chain.at(i);
    if (cert.is_ca()) continue;
    if (cert.is_self_signed()) continue;
    if (stores.classify_certificate(cert) != IssuerClass::kPublicDb) continue;
    bool issuer_present = false;
    for (std::size_t j = 0; j < chain.length(); ++j) {
      if (j == i) continue;
      if (chain.at(j).subject.matches(cert.issuer)) {
        issuer_present = true;
        break;
      }
    }
    if (!issuer_present) return true;
  }
  return false;
}

NoPathCategory categorize_no_path(const CertificateChain& chain,
                                  const truststore::TrustStoreSet& stores,
                                  const PathAnalysis& paths) {
  const std::size_t n = chain.length();
  const auto& pairs = paths.match.pairs;
  const std::size_t mismatches = paths.match.mismatch_count();
  const bool all_mismatched = mismatches == pairs.size() && !pairs.empty();

  // Self-signed non-public leaf at the front?
  const x509::Certificate& front = chain.first();
  const bool front_self_signed_non_pub =
      front.is_self_signed() &&
      stores.classify_certificate(front) == IssuerClass::kNonPublicDb;
  if (front_self_signed_non_pub && n >= 2) {
    // "Followed by a valid sub-chain": the only mismatch is pair 0 and the
    // rest of the chain matches throughout.
    bool rest_matched = !pairs[0].matched;
    for (std::size_t i = 1; i < pairs.size() && rest_matched; ++i) {
      rest_matched = pairs[i].matched;
    }
    if (rest_matched && n >= 3) {
      return NoPathCategory::kSelfSignedLeafThenValidSubchain;
    }
    return NoPathCategory::kSelfSignedLeafThenMismatches;
  }

  // Non-public self-signed root at the top?
  const x509::Certificate& top = chain.at(n - 1);
  const bool top_non_pub_root =
      top.is_self_signed() &&
      stores.classify_certificate(top) == IssuerClass::kNonPublicDb;
  if (top_non_pub_root && n >= 2) {
    // "Appended to a valid public-issued sub-chain": only the final pair
    // mismatches, everything below matches, and the sub-chain below is
    // public-DB issued.
    bool below_matched = true;
    for (std::size_t i = 0; i + 1 < pairs.size(); ++i) {
      below_matched = below_matched && pairs[i].matched;
    }
    const bool last_pair_mismatched = !pairs.back().matched;
    bool below_public = true;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      below_public = below_public && stores.classify_certificate(chain.at(i)) ==
                                         IssuerClass::kPublicDb;
    }
    if (below_matched && last_pair_mismatched && below_public && n >= 3) {
      return NoPathCategory::kNonPubRootAppendedToValidPublicSubchain;
    }
    return NoPathCategory::kNonPubRootAndMismatches;
  }

  if (all_mismatched) return NoPathCategory::kAllPairsMismatched;
  return NoPathCategory::kPartialPairsMismatched;
}

}  // namespace

HybridClassification classify_hybrid(const CertificateChain& chain,
                                     const truststore::TrustStoreSet& stores,
                                     const CrossSignRegistry* registry) {
  HybridClassification verdict;
  verdict.paths = analyze_paths(chain, registry, /*require_leaf=*/true);

  if (verdict.paths.is_complete_path()) {
    // Split the Table 3 "complete" bucket by who issued the leaf and where
    // the path tops out.
    const x509::Certificate& leaf = chain.at(verdict.paths.complete_path->begin);
    const x509::Certificate& top = chain.at(verdict.paths.complete_path->end);
    const bool leaf_public =
        stores.classify_certificate(leaf) == IssuerClass::kPublicDb;
    const bool top_non_public =
        stores.classify_certificate(top) == IssuerClass::kNonPublicDb;
    if (leaf_public && top_non_public) {
      verdict.structure = HybridStructure::kCompletePubToPrivate;
    } else {
      verdict.structure = HybridStructure::kCompleteNonPubToPub;
    }
  } else if (verdict.paths.contains_complete_path()) {
    verdict.structure = HybridStructure::kContainsCompletePath;
  } else {
    verdict.structure = HybridStructure::kNoCompletePath;
    verdict.no_path_category = categorize_no_path(chain, stores, verdict.paths);
    verdict.public_leaf_without_issuer = has_public_leaf_without_issuer(chain, stores);
  }
  return verdict;
}

}  // namespace certchain::chain
