// Chain categorization (§3.2.2) and the paper's per-category structure
// taxonomies (Table 3 for hybrid chains, Table 7 for hybrid chains without a
// complete matched path).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

#include "chain/chain.hpp"
#include "chain/cross_sign_registry.hpp"
#include "chain/matcher.hpp"
#include "core/dn_pool.hpp"
#include "truststore/issuer_classifier.hpp"
#include "truststore/trust_store.hpp"

namespace certchain::chain {

/// §3.2.2 chain categories.
enum class ChainCategory : std::uint8_t {
  kPublicDbOnly,     // every certificate issued by a public-DB issuer
  kNonPublicDbOnly,  // every certificate issued by a non-public-DB issuer
  kHybrid,           // both classes present
  kTlsInterception,  // contains a certificate from a known interception issuer
};

std::string_view chain_category_name(ChainCategory category);

/// Canonical-DN set of issuers identified as performing TLS interception.
/// Transparent comparator: membership tests take canonical string_views.
using InterceptionIssuerSet = std::set<std::string, std::less<>>;

/// Categorizes one chain. Interception wins over the class mix, matching the
/// paper's filtering order (interception chains are excluded from the
/// non-public-DB-only and hybrid buckets).
ChainCategory categorize_chain(const CertificateChain& chain,
                               const truststore::TrustStoreSet& stores,
                               const InterceptionIssuerSet& interception_issuers);

/// Projects the interception set onto a pool: the DnIds of every canonical
/// form the pool has interned. A DN the pool never saw cannot be the issuer
/// of any pooled certificate, so dropping it preserves the verdicts.
std::set<core::DnId> issuer_ids_for(const InterceptionIssuerSet& issuers,
                                    const core::DnPool& pool);

/// Integer-compare categorization over pooled certificates (DESIGN.md §16):
/// the interception test is a DnId set probe and classification a memo load.
/// `interception_issuers` stays as the fallback for any certificate without
/// an interned issuer id, so verdicts are identical to the string overload.
ChainCategory categorize_chain(const CertificateChain& chain,
                               truststore::IssuerClassifier& classifier,
                               const InterceptionIssuerSet& interception_issuers,
                               const std::set<core::DnId>& interception_issuer_ids);

/// Table 3 buckets for hybrid chains.
enum class HybridStructure : std::uint8_t {
  /// Chain is exactly a complete matched path; non-public leaf anchored to a
  /// public trust root ("Non-pub. chained to Pub.", 26 chains).
  kCompleteNonPubToPub,
  /// Chain is exactly a complete matched path; public-DB leaf/intermediates
  /// followed by a non-public certificate whose subject matches the
  /// preceding issuer ("Pub. chained to Prv.", 10 chains — Scalyr/Canal+).
  kCompletePubToPrivate,
  /// Chain contains a complete matched path plus unnecessary certificates
  /// (70 chains).
  kContainsCompletePath,
  /// No complete matched path at all (215 chains).
  kNoCompletePath,
};

std::string_view hybrid_structure_name(HybridStructure structure);

/// Table 7 buckets for hybrid chains lacking a complete matched path.
enum class NoPathCategory : std::uint8_t {
  kSelfSignedLeafThenMismatches,   // 108 chains
  kSelfSignedLeafThenValidSubchain,  // 13 chains (self-signed cert replaced leaf)
  kAllPairsMismatched,             // 61 chains
  kPartialPairsMismatched,         // 27 chains
  kNonPubRootAppendedToValidPublicSubchain,  // 5 chains
  kNonPubRootAndMismatches,        // 1 chain
};

std::string_view no_path_category_name(NoPathCategory category);

/// Full hybrid verdict for one chain.
struct HybridClassification {
  HybridStructure structure = HybridStructure::kNoCompletePath;
  PathAnalysis paths;
  /// Set only when structure == kNoCompletePath.
  NoPathCategory no_path_category = NoPathCategory::kPartialPairsMismatched;
  /// §4.2: chain includes a public-DB leaf but no intermediate that issued
  /// it (56 of the 215 no-path chains).
  bool public_leaf_without_issuer = false;
};

/// Classifies a hybrid chain per Table 3 / Table 7.
HybridClassification classify_hybrid(const CertificateChain& chain,
                                     const truststore::TrustStoreSet& stores,
                                     const CrossSignRegistry* registry = nullptr);

}  // namespace certchain::chain
