#include "chain/chain.hpp"

#include "util/hash.hpp"

namespace certchain::chain {

CertificateChain::CertificateChain(std::vector<x509::Certificate> certs)
    : certs_(std::move(certs)) {}

void CertificateChain::push_back(x509::Certificate cert) {
  certs_.push_back(std::move(cert));
  cached_id_.clear();
}

const std::string& CertificateChain::id() const {
  if (cached_id_.empty() && !certs_.empty()) {
    std::string bytes;
    for (const x509::Certificate& cert : certs_) {
      bytes.append(cert.fingerprint());
      bytes.push_back('|');
    }
    cached_id_ = util::digest256_hex(bytes);
  }
  return cached_id_;
}

}  // namespace certchain::chain
