// Certificate chains as delivered by servers.
//
// A CertificateChain is the ordered certificate list a server presented in a
// TLS handshake, leaf-first (the RFC 5246 ordering servers are *supposed* to
// follow; much of the paper is about servers that don't). The chain identity
// used for deduplication across connections is a digest over the ordered
// certificate fingerprints, matching how the study counts "unique certificate
// chains".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "x509/certificate.hpp"

namespace certchain::chain {

class CertificateChain {
 public:
  CertificateChain() = default;
  explicit CertificateChain(std::vector<x509::Certificate> certs);

  std::size_t length() const { return certs_.size(); }
  bool empty() const { return certs_.empty(); }
  bool is_single() const { return certs_.size() == 1; }

  const x509::Certificate& at(std::size_t index) const { return certs_.at(index); }
  const std::vector<x509::Certificate>& certs() const { return certs_; }

  /// First certificate as delivered (the nominal leaf).
  const x509::Certificate& first() const { return certs_.front(); }

  void push_back(x509::Certificate cert);

  /// Digest over the ordered certificate fingerprints; two deliveries with
  /// identical certificates in identical order share an id.
  const std::string& id() const;

  /// True if the single certificate (or the first one) has identical issuer
  /// and subject — the study's self-signed test.
  bool first_is_self_signed() const { return certs_.front().is_self_signed(); }

  bool operator==(const CertificateChain& other) const { return certs_ == other.certs_; }

  auto begin() const { return certs_.begin(); }
  auto end() const { return certs_.end(); }

 private:
  std::vector<x509::Certificate> certs_;
  mutable std::string cached_id_;
};

}  // namespace certchain::chain
