#include "chain/cross_sign_registry.hpp"

namespace certchain::chain {

void CrossSignRegistry::add_pair(const x509::DistinguishedName& issuer,
                                 const x509::DistinguishedName& subject) {
  pairs_.emplace(issuer.canonical(), subject.canonical());
}

const std::string* CrossSignRegistry::find_root(std::string_view canonical) const {
  auto it = parent_.find(canonical);
  if (it == parent_.end()) return nullptr;
  while (it->second != it->first) {
    const auto next = parent_.find(it->second);
    if (next == parent_.end()) break;
    it = next;
  }
  return &it->first;
}

void CrossSignRegistry::add_equivalence(const x509::DistinguishedName& a,
                                        const x509::DistinguishedName& b) {
  const std::string& ca = a.canonical();
  const std::string& cb = b.canonical();
  parent_.try_emplace(ca, ca);
  parent_.try_emplace(cb, cb);
  const std::string* root_a = find_root(ca);
  const std::string* root_b = find_root(cb);
  if (root_a != nullptr && root_b != nullptr && *root_a != *root_b) {
    parent_[*root_a] = *root_b;
  }
}

std::size_t CrossSignRegistry::equivalence_count() const {
  std::size_t roots = 0;
  for (const auto& [node, parent] : parent_) {
    if (node == parent) ++roots;
  }
  // Groups with more than one member = total nodes - singleton roots; report
  // the number of non-trivial groups.
  return parent_.empty() ? 0 : parent_.size() - roots;
}

bool CrossSignRegistry::covers(const x509::DistinguishedName& issuer,
                               const x509::DistinguishedName& subject) const {
  const std::string_view ci = issuer.canonical();
  const std::string_view cs = subject.canonical();
  if (pairs_.find(std::make_pair(ci, cs)) != pairs_.end()) return true;
  const std::string* root_i = find_root(ci);
  const std::string* root_s = find_root(cs);
  return root_i != nullptr && root_s != nullptr && *root_i == *root_s;
}

}  // namespace certchain::chain
