// Cross-signing knowledge base.
//
// Cross-signed CAs make a textual issuer–subject comparison report a
// mismatch even though the chain is valid (Appendix D.1): the same CA key is
// certified under two different issuer names. The paper suppresses these
// false positives by consulting Zeek's validation verdicts and CA
// cross-signing disclosures [32]. CrossSignRegistry is that knowledge base:
// a set of (issuer DN, subject DN) pairs that must be treated as matching,
// plus DN equivalence groups ("these two names identify the same CA").
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "x509/distinguished_name.hpp"

namespace certchain::chain {

class CrossSignRegistry {
 public:
  /// Declares that a certificate whose issuer is `issuer` may legitimately
  /// follow a certificate whose subject is `subject` (directed pair, read as
  /// "issuer-of-lower-cert is known to cross-sign as subject-of-upper-cert").
  void add_pair(const x509::DistinguishedName& issuer,
                const x509::DistinguishedName& subject);

  /// Declares two DNs as naming the same CA entity (symmetric; e.g. the CA's
  /// self-operated root name and its cross-signed intermediate name).
  void add_equivalence(const x509::DistinguishedName& a,
                       const x509::DistinguishedName& b);

  /// True if the (issuer, subject) pair should be accepted despite the
  /// textual mismatch.
  bool covers(const x509::DistinguishedName& issuer,
              const x509::DistinguishedName& subject) const;

  std::size_t pair_count() const { return pairs_.size(); }
  std::size_t equivalence_count() const;

  /// Learns pairs from an external validator's verdicts: when a chain is
  /// externally reported valid but position i has a textual mismatch, the
  /// pair at i is recorded (the paper's "compare with Zeek's validation
  /// results" step).
  void learn_pair(const x509::DistinguishedName& issuer,
                  const x509::DistinguishedName& subject) {
    add_pair(issuer, subject);
  }

 private:
  const std::string* find_root(std::string_view canonical) const;

  /// Transparent lexicographic compare over (DN, DN) pairs: std::pair has no
  /// heterogeneous operator<, so covers() could not otherwise probe with a
  /// pair of string_views.
  struct PairLess {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      const std::string_view a_first = a.first, a_second = a.second;
      const std::string_view b_first = b.first, b_second = b.second;
      if (a_first != b_first) return a_first < b_first;
      return a_second < b_second;
    }
  };

  // Transparent comparators: covers() probes with the certificates' cached
  // canonical forms without building key strings or pairs of them.
  std::set<std::pair<std::string, std::string>, PairLess> pairs_;
  // Union-find over canonical DNs, path-compressed on mutation only (lookup
  // is const); groups are tiny so the linear find is fine.
  std::map<std::string, std::string, std::less<>> parent_;
};

}  // namespace certchain::chain
