#include "chain/linter.hpp"

#include <optional>
#include <set>

#include "chain/matcher.hpp"
#include "obs/run_context.hpp"
#include "par/thread_pool.hpp"
#include "util/strings.hpp"

namespace certchain::chain {

std::string_view lint_severity_name(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kInfo: return "info";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kError: return "error";
  }
  return "unknown";
}

std::string_view lint_code_name(LintCode code) {
  switch (code) {
    case LintCode::kWellFormed: return "well-formed";
    case LintCode::kSingleSelfSigned: return "single-self-signed";
    case LintCode::kSingleWithoutIssuer: return "single-without-issuer";
    case LintCode::kUnnecessaryCertificate: return "unnecessary-certificate";
    case LintCode::kStagingCertificate: return "staging-certificate";
    case LintCode::kLeafNotFirst: return "leaf-not-first";
    case LintCode::kNoCompletePath: return "no-complete-path";
    case LintCode::kExpiredCertificate: return "expired-certificate";
    case LintCode::kNotYetValid: return "not-yet-valid";
    case LintCode::kDuplicateCertificate: return "duplicate-certificate";
    case LintCode::kMissingIntermediate: return "missing-intermediate";
  }
  return "unknown";
}

namespace {

bool looks_like_staging(const x509::Certificate& cert) {
  const std::string issuer = util::to_lower(cert.issuer.common_name().value_or(""));
  const std::string subject = util::to_lower(cert.subject.common_name().value_or(""));
  for (const std::string_view marker : {"fake le", "staging", "test ca", "happy hacker"}) {
    if (util::contains(issuer, marker) || util::contains(subject, marker)) return true;
  }
  return false;
}

void add_finding(LintReport& report, LintCode code, LintSeverity severity,
                 std::size_t position, std::string message,
                 std::string recommendation) {
  report.findings.push_back(LintFinding{code, severity, position, std::move(message),
                                        std::move(recommendation)});
}

}  // namespace

LintReport lint_chain(const CertificateChain& chain, const LintOptions& options) {
  LintReport report;
  if (chain.empty()) {
    add_finding(report, LintCode::kNoCompletePath, LintSeverity::kError,
                static_cast<std::size_t>(-1), "no certificates were delivered",
                "configure the server to send its certificate chain");
    return report;
  }

  // Validity findings (every position).
  if (options.now != 0) {
    for (std::size_t i = 0; i < chain.length(); ++i) {
      const x509::Certificate& cert = chain.at(i);
      if (cert.expired_at(options.now)) {
        add_finding(report, LintCode::kExpiredCertificate, LintSeverity::kError, i,
                    "certificate expired on " + util::format_date(cert.validity.end),
                    "renew the certificate");
      } else if (!cert.valid_at(options.now) && options.now < cert.validity.begin) {
        add_finding(report, LintCode::kNotYetValid, LintSeverity::kWarning, i,
                    "certificate only becomes valid on " +
                        util::format_date(cert.validity.begin),
                    "check the server clock and deployment date");
      }
    }
  }

  // Duplicates.
  std::set<std::string> fingerprints;
  for (std::size_t i = 0; i < chain.length(); ++i) {
    if (!fingerprints.insert(chain.at(i).fingerprint()).second) {
      add_finding(report, LintCode::kDuplicateCertificate, LintSeverity::kWarning, i,
                  "certificate is delivered more than once",
                  "remove the duplicate from the chain file");
    }
  }

  // Staging placeholders anywhere in the chain.
  for (std::size_t i = 0; i < chain.length(); ++i) {
    if (looks_like_staging(chain.at(i))) {
      add_finding(report, LintCode::kStagingCertificate, LintSeverity::kError, i,
                  "staging/test CA certificate deployed to production",
                  "re-issue without --test-cert/--dry-run and redeploy");
    }
  }

  if (chain.is_single()) {
    if (chain.first_is_self_signed()) {
      add_finding(report, LintCode::kSingleSelfSigned, LintSeverity::kWarning, 0,
                  "single self-signed certificate",
                  "clients outside your organization cannot establish trust; "
                  "use a publicly trusted issuer or distribute the root");
    } else {
      add_finding(report, LintCode::kSingleWithoutIssuer, LintSeverity::kWarning, 0,
                  "leaf delivered without its issuing CA certificate",
                  "include the intermediate certificates in the chain file");
    }
    return report;
  }

  const PathAnalysis analysis = analyze_paths(chain, options.registry);
  if (analysis.is_complete_path()) {
    add_finding(report, LintCode::kWellFormed, LintSeverity::kInfo,
                static_cast<std::size_t>(-1),
                "one complete matched path, no unnecessary certificates", "");
    return report;
  }

  if (analysis.contains_complete_path()) {
    for (const std::size_t index : analysis.unnecessary_certificates) {
      add_finding(report, LintCode::kUnnecessaryCertificate, LintSeverity::kWarning,
                  index,
                  "certificate does not contribute to the trust path",
                  "drop it; strict presented-chain validators may reject the "
                  "delivery otherwise");
    }
    if (analysis.complete_path->begin > 0) {
      add_finding(report, LintCode::kLeafNotFirst, LintSeverity::kError,
                  0,
                  "the chain does not start with the end-entity certificate",
                  "reorder the chain file: leaf first, then each issuing CA");
    }
    return report;
  }

  // No complete matched path at all.
  add_finding(report, LintCode::kNoCompletePath, LintSeverity::kError,
              static_cast<std::size_t>(-1),
              "no complete matched path (mismatch ratio " +
                  util::format_double(analysis.match.mismatch_ratio(), 2) + ")",
              "rebuild the chain: leaf first, then each issuing CA in order");
  for (const std::size_t index : analysis.match.mismatch_indices()) {
    add_finding(report, LintCode::kMissingIntermediate, LintSeverity::kWarning, index,
                "issuer of certificate " + std::to_string(index) +
                    " does not match the subject of certificate " +
                    std::to_string(index + 1),
                "insert the issuing CA certificate between them or remove the "
                "stray certificate");
  }
  return report;
}

std::vector<LintReport> lint_chains(
    const std::vector<const CertificateChain*>& chains,
    const LintOptions& options, par::ThreadPool* pool) {
  std::vector<LintReport> reports(chains.size());
  const std::size_t chunks = pool == nullptr ? 1 : pool->size();
  par::parallel_for_chunks(
      pool, chains.size(), chunks,
      [&reports, &chains, &options](std::size_t, std::size_t begin,
                                    std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          reports[i] = lint_chain(*chains[i], options);
        }
      });
  return reports;
}

std::vector<LintReport> lint_chains(
    const std::vector<const CertificateChain*>& chains,
    const LintOptions& options, const par::ExecOptions& exec,
    obs::RunContext* obs) {
  std::optional<obs::StageTimer> timer;
  if (obs != nullptr) timer.emplace(*obs, "lint");

  std::vector<LintReport> reports;
  const std::size_t threads = par::resolve_threads(exec.threads);
  if (threads <= 1) {
    reports = lint_chains(chains, options);
  } else {
    par::ThreadPool pool(threads);
    reports = lint_chains(chains, options, &pool);
  }
  if (obs != nullptr) {
    std::size_t findings = 0;
    for (const LintReport& report : reports) findings += report.findings.size();
    obs->metrics.count("lint.chains_in", chains.size());
    obs->metrics.count("lint.findings", findings);
  }
  return reports;
}

}  // namespace certchain::chain
