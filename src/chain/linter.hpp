// Chain linting: the paper's misconfiguration taxonomy as actionable
// findings.
//
// Everything §4 diagnoses in the wild — unnecessary certificates, staging
// leftovers, broken delivery order, missing intermediates, self-signed
// leaves, expired certificates — is reported here as a structured finding
// with a severity and a recommendation, so operators can fix chains before
// clients disagree about them (§6.1). examples/chain_doctor.cpp is the CLI
// wrapper.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "chain/chain.hpp"
#include "chain/cross_sign_registry.hpp"
#include "par/exec.hpp"
#include "util/time.hpp"

namespace certchain::obs {
struct RunContext;
}  // namespace certchain::obs

namespace certchain::par {
class ThreadPool;
}  // namespace certchain::par

namespace certchain::chain {

enum class LintSeverity : std::uint8_t { kInfo, kWarning, kError };

std::string_view lint_severity_name(LintSeverity severity);

enum class LintCode : std::uint8_t {
  kWellFormed,              // info: complete matched path, nothing extra
  kSingleSelfSigned,        // warning: lone self-signed certificate
  kSingleWithoutIssuer,     // warning: lone cert, issuing CA not included
  kUnnecessaryCertificate,  // warning: cert outside the complete path
  kStagingCertificate,      // error: Fake LE-style staging placeholder
  kLeafNotFirst,            // error: chain does not start with the leaf
  kNoCompletePath,          // error: no complete matched path at all
  kExpiredCertificate,      // error: certificate outside validity at `now`
  kNotYetValid,             // warning: certificate not yet valid at `now`
  kDuplicateCertificate,    // warning: same certificate delivered twice
  kMissingIntermediate,     // warning: a cert's issuer appears nowhere
};

std::string_view lint_code_name(LintCode code);

struct LintFinding {
  LintCode code = LintCode::kWellFormed;
  LintSeverity severity = LintSeverity::kInfo;
  /// Certificate index the finding anchors to; npos for chain-level findings.
  std::size_t position = static_cast<std::size_t>(-1);
  std::string message;         // what is wrong
  std::string recommendation;  // what to do about it
};

struct LintReport {
  std::vector<LintFinding> findings;

  bool has_errors() const {
    for (const LintFinding& finding : findings) {
      if (finding.severity == LintSeverity::kError) return true;
    }
    return false;
  }
  std::size_t count(LintCode code) const {
    std::size_t n = 0;
    for (const LintFinding& finding : findings) {
      if (finding.code == code) ++n;
    }
    return n;
  }
};

struct LintOptions {
  /// Point in time for validity findings; 0 disables the check.
  util::SimTime now = 0;
  /// Known cross-signing relationships (suppresses false order findings).
  const CrossSignRegistry* registry = nullptr;
};

/// Lints a delivered chain.
LintReport lint_chain(const CertificateChain& chain, const LintOptions& options = {});

/// Lints a batch of chains into index-aligned reports. Each lint is an
/// independent pure computation, so with a pool the chains are spread across
/// its workers — the result vector is identical to the serial loop either
/// way (a null or single-worker pool runs inline).
std::vector<LintReport> lint_chains(
    const std::vector<const CertificateChain*>& chains,
    const LintOptions& options = {}, par::ThreadPool* pool = nullptr);

/// Uniform `(input, options, obs)` entry (DESIGN.md §11), taking the
/// layer-neutral par::ExecOptions (core::RunOptions::exec() projects to it):
/// resolves exec.threads to the serial loop or a pool, and — when `obs` is
/// given — wraps the batch in a `lint` stage span with chains-in/findings
/// counters. The result vector is identical at every thread count.
std::vector<LintReport> lint_chains(
    const std::vector<const CertificateChain*>& chains,
    const LintOptions& options, const par::ExecOptions& exec,
    obs::RunContext* obs = nullptr);

}  // namespace certchain::chain
