#include "chain/matcher.hpp"

namespace certchain::chain {

std::size_t MatchResult::mismatch_count() const {
  std::size_t count = 0;
  for (const PairMatch& pair : pairs) {
    if (!pair.matched) ++count;
  }
  return count;
}

std::vector<std::size_t> MatchResult::mismatch_indices() const {
  std::vector<std::size_t> out;
  for (const PairMatch& pair : pairs) {
    if (!pair.matched) out.push_back(pair.index);
  }
  return out;
}

double MatchResult::mismatch_ratio() const {
  if (pairs.empty()) return 0.0;
  return static_cast<double>(mismatch_count()) / static_cast<double>(pairs.size());
}

MatchResult match_chain(const CertificateChain& chain,
                        const CrossSignRegistry* registry) {
  MatchResult result;
  if (chain.length() < 2) return result;
  result.pairs.reserve(chain.length() - 1);
  for (std::size_t i = 0; i + 1 < chain.length(); ++i) {
    PairMatch pair;
    pair.index = i;
    const auto& issuer = chain.at(i).issuer;
    const auto& next_subject = chain.at(i + 1).subject;
    if (issuer.matches(next_subject)) {
      pair.matched = true;
    } else if (registry != nullptr && registry->covers(issuer, next_subject)) {
      pair.matched = true;
      pair.via_cross_sign = true;
    }
    result.pairs.push_back(pair);
  }
  return result;
}

bool is_plausible_leaf(const CertificateChain& chain, std::size_t index) {
  const x509::Certificate& candidate = chain.at(index);
  if (candidate.is_ca()) return false;
  // Nothing else in the chain may chain *to* this certificate.
  for (std::size_t i = 0; i < chain.length(); ++i) {
    if (i == index) continue;
    if (chain.at(i).issuer.matches(candidate.subject)) return false;
  }
  return true;
}

PathAnalysis analyze_paths(const CertificateChain& chain,
                           const CrossSignRegistry* registry, bool require_leaf) {
  PathAnalysis analysis;
  analysis.match = match_chain(chain, registry);
  if (chain.empty()) return analysis;

  // Split into maximal matched runs at every mismatched pair.
  std::size_t run_begin = 0;
  for (std::size_t i = 0; i + 1 < chain.length(); ++i) {
    if (!analysis.match.pairs[i].matched) {
      analysis.runs.push_back(MatchedRun{run_begin, i});
      run_begin = i + 1;
    }
  }
  analysis.runs.push_back(MatchedRun{run_begin, chain.length() - 1});

  // Select the complete matched path: longest qualifying run, earliest wins
  // ties. A path needs at least two certificates; the leaf test applies only
  // in hybrid mode.
  for (const MatchedRun& run : analysis.runs) {
    if (run.cert_count() < 2) continue;
    if (require_leaf && !is_plausible_leaf(chain, run.begin)) continue;
    if (!analysis.complete_path ||
        run.cert_count() > analysis.complete_path->cert_count()) {
      analysis.complete_path = run;
    }
  }

  if (analysis.complete_path) {
    for (std::size_t i = 0; i < chain.length(); ++i) {
      if (i < analysis.complete_path->begin || i > analysis.complete_path->end) {
        analysis.unnecessary_certificates.push_back(i);
      }
    }
  }
  return analysis;
}

}  // namespace certchain::chain
