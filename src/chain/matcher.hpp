// Issuer–subject chain matching and matched-path detection (§4.2, App. D.1).
//
// The study's methodology: traverse the delivered chain leaf-upward and check
// whether each certificate's issuer DN matches the next certificate's subject
// DN, recording the positions of mismatched pairs. On top of the pairwise
// results it detects *matched paths* (maximal contiguous runs of matching
// pairs), decides whether a run is a *complete matched path* (all pairs match
// and the run starts with a valid leaf), and derives the *mismatch ratio*
// (mismatched pairs / total pairs) and the set of *unnecessary certificates*
// (certificates outside the selected complete matched path).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "chain/chain.hpp"
#include "chain/cross_sign_registry.hpp"

namespace certchain::chain {

/// One adjacent (certificate i, certificate i+1) comparison.
struct PairMatch {
  std::size_t index = 0;        // position of the lower certificate
  bool matched = false;         // issuer(i) == subject(i+1) canonically
  bool via_cross_sign = false;  // matched only thanks to the registry
};

/// Pairwise comparison over a whole chain.
struct MatchResult {
  std::vector<PairMatch> pairs;  // length-1 chains have no pairs

  std::size_t pair_count() const { return pairs.size(); }
  std::size_t mismatch_count() const;
  std::vector<std::size_t> mismatch_indices() const;

  /// Mismatched pairs / total pairs; 0 for single-certificate chains.
  double mismatch_ratio() const;

  /// True if every adjacent pair matched.
  bool all_matched() const { return mismatch_count() == 0; }
};

/// Runs the issuer–subject comparison. `registry` (optional) suppresses
/// known cross-signing mismatches.
MatchResult match_chain(const CertificateChain& chain,
                        const CrossSignRegistry* registry = nullptr);

/// A maximal contiguous run [begin_cert, end_cert] (inclusive certificate
/// indices) whose internal pairs all match.
struct MatchedRun {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t cert_count() const { return end - begin + 1; }
  bool operator==(const MatchedRun&) const = default;
};

/// Leaf plausibility test used for hybrid chains (§4.2): the certificate is
/// not a CA (basicConstraints CA:TRUE) and no other certificate in the chain
/// claims it as its issuer (i.e. nothing chains *to* it from below).
bool is_plausible_leaf(const CertificateChain& chain, std::size_t index);

/// Full structural analysis of one chain.
struct PathAnalysis {
  MatchResult match;

  /// Maximal matched runs, in chain order. Single certificates form runs of
  /// one; a fully matched chain is a single run covering everything.
  std::vector<MatchedRun> runs;

  /// The selected complete matched path, if any: the longest run (earliest on
  /// ties) that begins with a plausible leaf when `require_leaf` was set.
  std::optional<MatchedRun> complete_path;

  /// Indices of certificates outside the complete matched path (empty when
  /// there is no complete path — then *no* certificate is on a trust path,
  /// and the chain belongs in the "no complete matched path" bucket instead).
  std::vector<std::size_t> unnecessary_certificates;

  /// True when the whole chain is exactly the complete matched path.
  bool is_complete_path() const {
    return complete_path.has_value() && unnecessary_certificates.empty();
  }
  /// True when a complete path exists but extras surround it.
  bool contains_complete_path() const {
    return complete_path.has_value() && !unnecessary_certificates.empty();
  }
  bool no_complete_path() const { return !complete_path.has_value(); }
};

/// Analyzes a chain. `require_leaf` enables the hybrid-chain leaf test; the
/// non-public-DB-only / interception analysis disables it because those
/// issuers routinely omit basicConstraints (§4.3) — there a complete path is
/// any run covering >= 2 certificates (or the whole chain).
PathAnalysis analyze_paths(const CertificateChain& chain,
                           const CrossSignRegistry* registry = nullptr,
                           bool require_leaf = true);

}  // namespace certchain::chain
