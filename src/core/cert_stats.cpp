#include "core/cert_stats.hpp"

#include <set>

namespace certchain::core {

CertPopulationStats compute_cert_stats(
    std::string label, const std::vector<const ChainObservation*>& chains,
    std::size_t max_length) {
  CertPopulationStats stats;
  stats.label = std::move(label);

  std::set<std::string> seen;
  for (const ChainObservation* observation : chains) {
    if (observation->chain.length() > max_length) continue;
    for (const x509::Certificate& cert : observation->chain) {
      if (!seen.insert(cert.fingerprint()).second) continue;
      ++stats.distinct_certificates;

      stats.key_algorithms.add(
          std::string(crypto::key_algorithm_name(cert.public_key.algorithm)));
      stats.signature_algorithms.add(
          std::string(crypto::signature_algorithm_name(cert.signature.algorithm)));

      const double days = static_cast<double>(cert.validity.duration()) /
                          static_cast<double>(util::kSecondsPerDay);
      stats.lifetimes_days.add(days);
      if (days <= 90) {
        ++stats.lifetime_le_90d;
      } else if (days <= 398) {
        ++stats.lifetime_le_398d;
      } else if (days <= 731) {
        ++stats.lifetime_le_2y;
      } else {
        ++stats.lifetime_gt_2y;
      }

      if (cert.subject_alt_names.empty()) {
        ++stats.san_absent;
      } else {
        stats.san_counts.add(cert.subject_alt_names.size());
      }

      if (cert.expired_at(observation->last_seen)) ++stats.expired_when_observed;
      if (cert.is_self_signed()) ++stats.self_signed;
    }
  }
  return stats;
}

}  // namespace certchain::core
