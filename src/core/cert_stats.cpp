#include "core/cert_stats.hpp"

#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "obs/run_context.hpp"
#include "par/thread_pool.hpp"

namespace certchain::core {

namespace {

/// Folds one distinct certificate into the statistics. `last_seen` is the
/// last-seen time of the observation that introduced the certificate —
/// serial scan order decides which observation that is, and the parallel
/// overload reproduces that choice exactly.
void accumulate_certificate(CertPopulationStats& stats,
                            const x509::Certificate& cert,
                            util::SimTime last_seen) {
  ++stats.distinct_certificates;

  stats.key_algorithms.add(
      std::string(crypto::key_algorithm_name(cert.public_key.algorithm)));
  stats.signature_algorithms.add(
      std::string(crypto::signature_algorithm_name(cert.signature.algorithm)));

  const double days = static_cast<double>(cert.validity.duration()) /
                      static_cast<double>(util::kSecondsPerDay);
  stats.lifetimes_days.add(days);
  if (days <= 90) {
    ++stats.lifetime_le_90d;
  } else if (days <= 398) {
    ++stats.lifetime_le_398d;
  } else if (days <= 731) {
    ++stats.lifetime_le_2y;
  } else {
    ++stats.lifetime_gt_2y;
  }

  if (cert.subject_alt_names.empty()) {
    ++stats.san_absent;
  } else {
    stats.san_counts.add(cert.subject_alt_names.size());
  }

  if (cert.expired_at(last_seen)) ++stats.expired_when_observed;
  if (cert.is_self_signed()) ++stats.self_signed;
}

}  // namespace

CertPopulationStats compute_cert_stats(
    std::string label, const std::vector<const ChainObservation*>& chains,
    std::size_t max_length) {
  CertPopulationStats stats;
  stats.label = std::move(label);

  std::set<std::string> seen;
  for (const ChainObservation* observation : chains) {
    if (observation->chain.length() > max_length) continue;
    for (const x509::Certificate& cert : observation->chain) {
      if (!seen.insert(cert.fingerprint()).second) continue;
      accumulate_certificate(stats, cert, observation->last_seen);
    }
  }
  return stats;
}

CertPopulationStats compute_cert_stats(
    std::string label, const std::vector<const ChainObservation*>& chains,
    std::size_t max_length, par::ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1) {
    return compute_cert_stats(std::move(label), chains, max_length);
  }

  // Phase 1 (parallel): each shard scans a consecutive chain range and keeps
  // the first occurrence of every fingerprint it sees, in scan order. The
  // fingerprint hashing — the expensive part — happens here.
  struct Candidate {
    std::string fingerprint;
    const x509::Certificate* cert = nullptr;
    util::SimTime last_seen = 0;
  };
  const std::size_t shard_count = pool->size();
  std::vector<std::vector<Candidate>> shard_candidates(shard_count);
  par::parallel_for_chunks(
      pool, chains.size(), shard_count,
      [&shard_candidates, &chains, max_length](
          std::size_t chunk, std::size_t begin, std::size_t end) {
        std::set<std::string> local_seen;
        for (std::size_t i = begin; i < end; ++i) {
          const ChainObservation* observation = chains[i];
          if (observation->chain.length() > max_length) continue;
          for (const x509::Certificate& cert : observation->chain) {
            std::string fingerprint = cert.fingerprint();
            if (!local_seen.insert(fingerprint).second) continue;
            shard_candidates[chunk].push_back(Candidate{
                std::move(fingerprint), &cert, observation->last_seen});
          }
        }
      });

  // Phase 2 (serial, shard order): global dedupe + accumulation. Walking the
  // shards in order visits first occurrences in exactly serial scan order.
  CertPopulationStats stats;
  stats.label = std::move(label);
  std::set<std::string> seen;
  for (std::vector<Candidate>& candidates : shard_candidates) {
    for (Candidate& candidate : candidates) {
      if (!seen.insert(std::move(candidate.fingerprint)).second) continue;
      accumulate_certificate(stats, *candidate.cert, candidate.last_seen);
    }
  }
  return stats;
}

CertPopulationStats compute_cert_stats(
    std::string label, const std::vector<const ChainObservation*>& chains,
    std::size_t max_length, const RunOptions& options, obs::RunContext* obs) {
  std::optional<obs::StageTimer> timer;
  if (obs != nullptr) timer.emplace(*obs, "cert_stats");

  CertPopulationStats stats;
  const std::size_t threads = par::resolve_threads(options.threads);
  if (threads <= 1) {
    stats = compute_cert_stats(std::move(label), chains, max_length);
  } else {
    par::ThreadPool pool(threads);
    stats = compute_cert_stats(std::move(label), chains, max_length, &pool);
  }
  if (obs != nullptr) {
    obs->metrics.count("cert_stats.chains_in", chains.size());
    obs->metrics.count("cert_stats.distinct_certificates",
                       stats.distinct_certificates);
  }
  return stats;
}

}  // namespace certchain::core
