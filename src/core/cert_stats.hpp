// Per-category certificate population statistics (extension analysis).
//
// The paper characterizes chains structurally; this analyzer adds the
// certificate-level distributions measurement studies usually report next:
// key algorithms, signature algorithms, validity lifetimes, SAN counts and
// expiry-at-observation — per chain category, over distinct certificates.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/corpus.hpp"
#include "core/run_options.hpp"
#include "util/stats.hpp"

namespace certchain::obs {
struct RunContext;
}  // namespace certchain::obs

namespace certchain::par {
class ThreadPool;
}  // namespace certchain::par

namespace certchain::core {

struct CertPopulationStats {
  std::string label;
  std::size_t distinct_certificates = 0;

  util::Counter<std::string> key_algorithms;
  util::Counter<std::string> signature_algorithms;

  /// Lifetime (days) distribution.
  util::EmpiricalCdf lifetimes_days;
  /// Lifetime buckets the Web PKI cares about.
  std::size_t lifetime_le_90d = 0;
  std::size_t lifetime_le_398d = 0;   // CA/B Forum ceiling for public leaves
  std::size_t lifetime_le_2y = 0;
  std::size_t lifetime_gt_2y = 0;

  util::Counter<std::size_t> san_counts;
  std::size_t san_absent = 0;

  /// Expired at the time the chain was last observed.
  std::size_t expired_when_observed = 0;

  /// Self-signed certificates in the population.
  std::size_t self_signed = 0;
};

/// Computes the statistics over the distinct certificates of the given
/// chains (deduplicated by fingerprint). Chains longer than `max_length`
/// are skipped (the Figure 1 outlier rule).
CertPopulationStats compute_cert_stats(
    std::string label, const std::vector<const ChainObservation*>& chains,
    std::size_t max_length = 30);

/// Sharded variant: per-shard first-occurrence scans run on the pool, then a
/// serial shard-order pass applies the global fingerprint dedupe and
/// accumulates — so each certificate is attributed to exactly the
/// observation the serial scan would have picked (expiry-at-observation
/// depends on it). Output is identical to the serial overload; a null or
/// single-worker pool falls back to it.
CertPopulationStats compute_cert_stats(
    std::string label, const std::vector<const ChainObservation*>& chains,
    std::size_t max_length, par::ThreadPool* pool);

/// Uniform `(input, options, obs)` entry (DESIGN.md §11): resolves
/// options.threads to the serial or sharded overload and — when `obs` is
/// given — wraps the scan in a `cert_stats` stage span with chains-in /
/// distinct-certificate counters. Output is identical at every thread count.
CertPopulationStats compute_cert_stats(
    std::string label, const std::vector<const ChainObservation*>& chains,
    std::size_t max_length, const RunOptions& options,
    obs::RunContext* obs = nullptr);

}  // namespace certchain::core
