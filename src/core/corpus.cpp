#include "core/corpus.hpp"

#include <cstdint>

#include "util/hash.hpp"

namespace certchain::core {

namespace {

/// Numeric member lookup for snapshot restore; false when absent/non-number.
bool read_uint(const obs::json::Value& object, const char* key,
               std::uint64_t& out) {
  const obs::json::Value* member = object.find(key);
  if (member == nullptr || !member->is_number() || member->num < 0) return false;
  out = static_cast<std::uint64_t>(member->num);
  return true;
}

void write_string_set(obs::json::Writer& writer, const char* key,
                      const std::set<std::string>& values) {
  writer.key(key);
  writer.begin_array();
  for (const std::string& value : values) writer.value_string(value);
  writer.end_array();
}

bool read_string_set(const obs::json::Value& object, const char* key,
                     std::set<std::string>& out) {
  const obs::json::Value* member = object.find(key);
  if (member == nullptr || !member->is_array()) return false;
  for (const obs::json::Value& entry : member->array) {
    if (!entry.is_string()) return false;
    out.insert(entry.string);
  }
  return true;
}

/// The per-connection usage tail shared by both fold entry points: first/last
/// seen, establishment, client/server endpoints, SNI. Must stay the single
/// definition so the fused path cannot drift from add(JoinedConnection).
void fold_usage(ChainObservation& observation, const zeek::SslLogRecord& ssl) {
  if (observation.connections == 0) {
    observation.first_seen = ssl.ts;
    observation.last_seen = ssl.ts;
  } else {
    observation.first_seen = std::min(observation.first_seen, ssl.ts);
    observation.last_seen = std::max(observation.last_seen, ssl.ts);
  }
  ++observation.connections;
  if (ssl.established) ++observation.established;
  observation.client_ips.insert(ssl.id_orig_h);
  observation.server_keys.insert(ssl.id_resp_h + ":" +
                                 std::to_string(ssl.id_resp_p));
  observation.ports.add(ssl.id_resp_p);
  if (ssl.server_name.empty()) {
    ++observation.without_sni;
  } else {
    ++observation.with_sni;
    observation.domains.insert(ssl.server_name);
  }
}

}  // namespace

void CorpusIndex::add(const zeek::JoinedConnection& connection) {
  ++totals_.connections;
  if (connection.ssl.version == "TLSv13") ++totals_.tls13_connections;
  if (!connection.missing_fuids.empty()) ++totals_.incomplete_joins;
  if (connection.chain.empty()) return;
  ++totals_.with_certificates;

  for (const x509::Certificate& cert : connection.chain) {
    if (certificate_fingerprints_.insert(cert.fingerprint()).second) {
      ++totals_.distinct_certificates;
    }
  }

  ChainObservation& observation = chains_[connection.chain.id()];
  if (observation.connections == 0) observation.chain = connection.chain;
  fold_usage(observation, connection.ssl);
}

void CorpusIndex::add(const zeek::LogJoiner& joiner,
                      const zeek::SslLogRecord& ssl) {
  ++totals_.connections;
  if (ssl.version == "TLSv13") ++totals_.tls13_connections;

  // The memo is only valid against the joiner state it was built from: the
  // joiner grows over time, and growth can resolve a previously-missing fuid.
  if (fold_joiner_ != &joiner ||
      fold_joiner_size_ != joiner.certificate_count()) {
    fold_memo_.clear();
    fold_joiner_ = &joiner;
    fold_joiner_size_ = joiner.certificate_count();
  }

  fold_key_.clear();
  for (const std::string& fuid : ssl.cert_chain_fuids) {
    fold_key_.append(fuid);
    fold_key_.push_back('\0');  // fuids are printable; NUL cannot collide
  }

  FoldMemoEntry entry;
  const auto memo_it = fold_memo_.find(std::string_view(fold_key_));
  if (memo_it != fold_memo_.end()) {
    entry = memo_it->second;
  } else {
    entry.observation = resolve_and_register(joiner, ssl, entry.missing);
    fold_memo_.emplace(fold_key_, entry);
  }

  if (entry.missing) ++totals_.incomplete_joins;
  if (entry.observation == nullptr) return;  // no fuid resolved: totals only
  ++totals_.with_certificates;
  fold_usage(*entry.observation, ssl);
}

ChainObservation* CorpusIndex::resolve_and_register(
    const zeek::LogJoiner& joiner, const zeek::SslLogRecord& ssl,
    bool& missing) {
  const std::map<std::string, x509::Certificate>& by_fuid =
      joiner.certificates();
  fold_certs_.clear();
  for (const std::string& fuid : ssl.cert_chain_fuids) {
    const auto it = by_fuid.find(fuid);
    if (it == by_fuid.end()) {
      missing = true;
    } else {
      fold_certs_.push_back(&it->second);
    }
  }
  if (fold_certs_.empty()) return nullptr;

  fold_id_bytes_.clear();
  for (const x509::Certificate* cert : fold_certs_) {
    // Joiner-built certificates are fingerprint-sealed, so this is a memo
    // read; the fallback recomputes for certificates that never were.
    const std::string& fingerprint =
        cert->fingerprint_memo.empty() ? (fold_fingerprint_ = cert->fingerprint())
                                       : cert->fingerprint_memo;
    if (certificate_fingerprints_.insert(fingerprint).second) {
      ++totals_.distinct_certificates;
    }
    // Mirrors CertificateChain::id() byte for byte: same bytes, same digest,
    // same chain identity as the copying path.
    fold_id_bytes_.append(fingerprint);
    fold_id_bytes_.push_back('|');
  }

  ChainObservation& observation = chains_[util::digest256_hex(fold_id_bytes_)];
  if (observation.connections == 0) {
    // First observation of this chain id: the one place the certificates are
    // deep-copied (once per unique chain, not once per connection).
    std::vector<x509::Certificate> certs;
    certs.reserve(fold_certs_.size());
    for (const x509::Certificate* cert : fold_certs_) certs.push_back(*cert);
    observation.chain = chain::CertificateChain(std::move(certs));
  }
  return &observation;
}

void CorpusIndex::add_all(const std::vector<zeek::JoinedConnection>& connections) {
  for (const zeek::JoinedConnection& connection : connections) add(connection);
}

void CorpusIndex::merge_from(CorpusIndex&& other) {
  totals_.connections += other.totals_.connections;
  totals_.with_certificates += other.totals_.with_certificates;
  totals_.tls13_connections += other.totals_.tls13_connections;
  totals_.incomplete_joins += other.totals_.incomplete_joins;

  certificate_fingerprints_.merge(other.certificate_fingerprints_);
  totals_.distinct_certificates = certificate_fingerprints_.size();

  for (auto& [chain_id, theirs] : other.chains_) {
    const auto [it, inserted] = chains_.try_emplace(chain_id, std::move(theirs));
    if (inserted) continue;
    ChainObservation& ours = it->second;
    ours.connections += theirs.connections;
    ours.established += theirs.established;
    ours.client_ips.merge(theirs.client_ips);
    ours.server_keys.merge(theirs.server_keys);
    ours.ports.merge_from(theirs.ports);
    ours.with_sni += theirs.with_sni;
    ours.without_sni += theirs.without_sni;
    ours.domains.merge(theirs.domains);
    ours.first_seen = std::min(ours.first_seen, theirs.first_seen);
    ours.last_seen = std::max(ours.last_seen, theirs.last_seen);
  }
  other.chains_.clear();
  other.totals_ = CorpusTotals{};
  other.reset_fold_memo();  // its memo pointed into the map just cleared
}

void CorpusIndex::write_snapshot(obs::json::Writer& writer) const {
  writer.begin_object();

  writer.key("totals");
  writer.begin_object();
  writer.key("connections");
  writer.value_uint(totals_.connections);
  writer.key("with_certificates");
  writer.value_uint(totals_.with_certificates);
  writer.key("tls13_connections");
  writer.value_uint(totals_.tls13_connections);
  writer.key("incomplete_joins");
  writer.value_uint(totals_.incomplete_joins);
  writer.end_object();

  writer.key("certificates");
  writer.begin_array();
  for (const std::string& fingerprint : certificate_fingerprints_) {
    writer.value_string(fingerprint);
  }
  writer.end_array();

  writer.key("chains");
  writer.begin_array();
  for (const auto& [chain_id, observation] : chains_) {
    writer.begin_object();
    writer.key("id");
    writer.value_string(chain_id);
    writer.key("fingerprints");
    writer.begin_array();
    for (const x509::Certificate& cert : observation.chain) {
      writer.value_string(cert.fingerprint());
    }
    writer.end_array();
    writer.key("connections");
    writer.value_uint(observation.connections);
    writer.key("established");
    writer.value_uint(observation.established);
    write_string_set(writer, "client_ips", observation.client_ips);
    write_string_set(writer, "server_keys", observation.server_keys);
    writer.key("ports");
    writer.begin_array();
    for (const auto& [port, count] : observation.ports.items()) {
      writer.begin_array();
      writer.value_uint(port);
      writer.value_uint(count);
      writer.end_array();
    }
    writer.end_array();
    writer.key("with_sni");
    writer.value_uint(observation.with_sni);
    writer.key("without_sni");
    writer.value_uint(observation.without_sni);
    write_string_set(writer, "domains", observation.domains);
    writer.key("first_seen");
    writer.value_uint(static_cast<std::uint64_t>(observation.first_seen));
    writer.key("last_seen");
    writer.value_uint(static_cast<std::uint64_t>(observation.last_seen));
    writer.end_object();
  }
  writer.end_array();

  writer.end_object();
}

bool CorpusIndex::restore_snapshot(
    const obs::json::Value& value,
    const std::map<std::string, x509::Certificate>& by_fingerprint,
    std::string* error) {
  const auto fail = [this, error](const std::string& message) {
    chains_.clear();
    certificate_fingerprints_.clear();
    totals_ = CorpusTotals{};
    reset_fold_memo();
    if (error != nullptr) *error = message;
    return false;
  };

  chains_.clear();
  certificate_fingerprints_.clear();
  totals_ = CorpusTotals{};
  reset_fold_memo();
  if (!value.is_object()) return fail("corpus snapshot is not an object");

  const obs::json::Value* totals = value.find("totals");
  if (totals == nullptr || !totals->is_object() ||
      !read_uint(*totals, "connections", totals_.connections) ||
      !read_uint(*totals, "with_certificates", totals_.with_certificates) ||
      !read_uint(*totals, "tls13_connections", totals_.tls13_connections) ||
      !read_uint(*totals, "incomplete_joins", totals_.incomplete_joins)) {
    return fail("corpus snapshot totals malformed");
  }

  const obs::json::Value* certificates = value.find("certificates");
  if (certificates == nullptr || !certificates->is_array()) {
    return fail("corpus snapshot certificates malformed");
  }
  for (const obs::json::Value& entry : certificates->array) {
    if (!entry.is_string()) return fail("corpus snapshot certificates malformed");
    certificate_fingerprints_.insert(entry.string);
  }
  totals_.distinct_certificates = certificate_fingerprints_.size();

  const obs::json::Value* chains = value.find("chains");
  if (chains == nullptr || !chains->is_array()) {
    return fail("corpus snapshot chains malformed");
  }
  for (const obs::json::Value& entry : chains->array) {
    if (!entry.is_object()) return fail("corpus snapshot chain malformed");
    const obs::json::Value* id = entry.find("id");
    const obs::json::Value* fingerprints = entry.find("fingerprints");
    if (id == nullptr || !id->is_string() || fingerprints == nullptr ||
        !fingerprints->is_array()) {
      return fail("corpus snapshot chain malformed");
    }

    ChainObservation observation;
    std::vector<x509::Certificate> certs;
    certs.reserve(fingerprints->array.size());
    for (const obs::json::Value& fingerprint : fingerprints->array) {
      if (!fingerprint.is_string()) return fail("corpus snapshot chain malformed");
      const auto it = by_fingerprint.find(fingerprint.string);
      if (it == by_fingerprint.end()) {
        return fail("corpus snapshot references unknown certificate " +
                    fingerprint.string);
      }
      certs.push_back(it->second);
    }
    observation.chain = chain::CertificateChain(std::move(certs));
    if (observation.chain.id() != id->string) {
      return fail("corpus snapshot chain id mismatch for " + id->string);
    }

    std::uint64_t with_sni = 0;
    std::uint64_t without_sni = 0;
    std::uint64_t first_seen = 0;
    std::uint64_t last_seen = 0;
    if (!read_uint(entry, "connections", observation.connections) ||
        !read_uint(entry, "established", observation.established) ||
        !read_uint(entry, "with_sni", with_sni) ||
        !read_uint(entry, "without_sni", without_sni) ||
        !read_uint(entry, "first_seen", first_seen) ||
        !read_uint(entry, "last_seen", last_seen) ||
        !read_string_set(entry, "client_ips", observation.client_ips) ||
        !read_string_set(entry, "server_keys", observation.server_keys) ||
        !read_string_set(entry, "domains", observation.domains)) {
      return fail("corpus snapshot chain fields malformed for " + id->string);
    }
    observation.with_sni = with_sni;
    observation.without_sni = without_sni;
    observation.first_seen = static_cast<util::SimTime>(first_seen);
    observation.last_seen = static_cast<util::SimTime>(last_seen);

    const obs::json::Value* ports = entry.find("ports");
    if (ports == nullptr || !ports->is_array()) {
      return fail("corpus snapshot ports malformed for " + id->string);
    }
    for (const obs::json::Value& pair : ports->array) {
      if (!pair.is_array() || pair.array.size() != 2 ||
          !pair.array[0].is_number() || !pair.array[1].is_number()) {
        return fail("corpus snapshot ports malformed for " + id->string);
      }
      observation.ports.add(static_cast<std::uint16_t>(pair.array[0].num),
                            static_cast<std::uint64_t>(pair.array[1].num));
    }

    chains_.emplace(id->string, std::move(observation));
  }
  return true;
}

std::size_t CorpusIndex::distinct_clients(
    const std::vector<const ChainObservation*>& observations) {
  std::set<std::string> clients;
  for (const ChainObservation* observation : observations) {
    clients.insert(observation->client_ips.begin(), observation->client_ips.end());
  }
  return clients.size();
}

}  // namespace certchain::core
