#include "core/corpus.hpp"

namespace certchain::core {

void CorpusIndex::add(const zeek::JoinedConnection& connection) {
  ++totals_.connections;
  if (connection.ssl.version == "TLSv13") ++totals_.tls13_connections;
  if (!connection.missing_fuids.empty()) ++totals_.incomplete_joins;
  if (connection.chain.empty()) return;
  ++totals_.with_certificates;

  for (const x509::Certificate& cert : connection.chain) {
    if (certificate_fingerprints_.insert(cert.fingerprint()).second) {
      ++totals_.distinct_certificates;
    }
  }

  ChainObservation& observation = chains_[connection.chain.id()];
  if (observation.connections == 0) {
    observation.chain = connection.chain;
    observation.first_seen = connection.ssl.ts;
    observation.last_seen = connection.ssl.ts;
  } else {
    observation.first_seen = std::min(observation.first_seen, connection.ssl.ts);
    observation.last_seen = std::max(observation.last_seen, connection.ssl.ts);
  }
  ++observation.connections;
  if (connection.ssl.established) ++observation.established;
  observation.client_ips.insert(connection.ssl.id_orig_h);
  observation.server_keys.insert(connection.ssl.id_resp_h + ":" +
                                 std::to_string(connection.ssl.id_resp_p));
  observation.ports.add(connection.ssl.id_resp_p);
  if (connection.ssl.server_name.empty()) {
    ++observation.without_sni;
  } else {
    ++observation.with_sni;
    observation.domains.insert(connection.ssl.server_name);
  }
}

void CorpusIndex::add_all(const std::vector<zeek::JoinedConnection>& connections) {
  for (const zeek::JoinedConnection& connection : connections) add(connection);
}

void CorpusIndex::merge_from(CorpusIndex&& other) {
  totals_.connections += other.totals_.connections;
  totals_.with_certificates += other.totals_.with_certificates;
  totals_.tls13_connections += other.totals_.tls13_connections;
  totals_.incomplete_joins += other.totals_.incomplete_joins;

  certificate_fingerprints_.merge(other.certificate_fingerprints_);
  totals_.distinct_certificates = certificate_fingerprints_.size();

  for (auto& [chain_id, theirs] : other.chains_) {
    const auto [it, inserted] = chains_.try_emplace(chain_id, std::move(theirs));
    if (inserted) continue;
    ChainObservation& ours = it->second;
    ours.connections += theirs.connections;
    ours.established += theirs.established;
    ours.client_ips.merge(theirs.client_ips);
    ours.server_keys.merge(theirs.server_keys);
    ours.ports.merge_from(theirs.ports);
    ours.with_sni += theirs.with_sni;
    ours.without_sni += theirs.without_sni;
    ours.domains.merge(theirs.domains);
    ours.first_seen = std::min(ours.first_seen, theirs.first_seen);
    ours.last_seen = std::max(ours.last_seen, theirs.last_seen);
  }
  other.chains_.clear();
  other.totals_ = CorpusTotals{};
}

std::size_t CorpusIndex::distinct_clients(
    const std::vector<const ChainObservation*>& observations) {
  std::set<std::string> clients;
  for (const ChainObservation* observation : observations) {
    clients.insert(observation->client_ips.begin(), observation->client_ips.end());
  }
  return clients.size();
}

}  // namespace certchain::core
