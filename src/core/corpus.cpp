#include "core/corpus.hpp"

namespace certchain::core {

void CorpusIndex::add(const zeek::JoinedConnection& connection) {
  ++totals_.connections;
  if (connection.ssl.version == "TLSv13") ++totals_.tls13_connections;
  if (!connection.missing_fuids.empty()) ++totals_.incomplete_joins;
  if (connection.chain.empty()) return;
  ++totals_.with_certificates;

  for (const x509::Certificate& cert : connection.chain) {
    if (certificate_fingerprints_.insert(cert.fingerprint()).second) {
      ++totals_.distinct_certificates;
    }
  }

  ChainObservation& observation = chains_[connection.chain.id()];
  if (observation.connections == 0) {
    observation.chain = connection.chain;
    observation.first_seen = connection.ssl.ts;
    observation.last_seen = connection.ssl.ts;
  } else {
    observation.first_seen = std::min(observation.first_seen, connection.ssl.ts);
    observation.last_seen = std::max(observation.last_seen, connection.ssl.ts);
  }
  ++observation.connections;
  if (connection.ssl.established) ++observation.established;
  observation.client_ips.insert(connection.ssl.id_orig_h);
  observation.server_keys.insert(connection.ssl.id_resp_h + ":" +
                                 std::to_string(connection.ssl.id_resp_p));
  observation.ports.add(connection.ssl.id_resp_p);
  if (connection.ssl.server_name.empty()) {
    ++observation.without_sni;
  } else {
    ++observation.with_sni;
    observation.domains.insert(connection.ssl.server_name);
  }
}

void CorpusIndex::add_all(const std::vector<zeek::JoinedConnection>& connections) {
  for (const zeek::JoinedConnection& connection : connections) add(connection);
}

std::size_t CorpusIndex::distinct_clients(
    const std::vector<const ChainObservation*>& observations) {
  std::set<std::string> clients;
  for (const ChainObservation* observation : observations) {
    clients.insert(observation->client_ips.begin(), observation->client_ips.end());
  }
  return clients.size();
}

}  // namespace certchain::core
