// Corpus indexing: from joined connections to deduplicated chains with usage
// statistics.
//
// The study counts three things per certificate chain: how many TLS
// connections delivered it, how many completed the handshake, and how many
// distinct client IPs were involved (§3.2.2, Table 2). CorpusIndex folds a
// stream of joined SSL/X509 records into one ChainObservation per unique
// chain (identity = ordered certificate fingerprints) plus corpus-wide
// counters, preserving exactly the fields the downstream analyzers read.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "chain/chain.hpp"
#include "obs/json.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"
#include "zeek/joiner.hpp"

namespace certchain::core {

/// Everything the study tracks about one unique certificate chain.
struct ChainObservation {
  chain::CertificateChain chain;

  std::uint64_t connections = 0;
  std::uint64_t established = 0;
  std::set<std::string> client_ips;
  std::set<std::string> server_keys;  // "ip:port" delivery points
  util::Counter<std::uint16_t> ports;
  std::uint64_t with_sni = 0;
  std::uint64_t without_sni = 0;
  std::set<std::string> domains;  // observed SNI values
  util::SimTime first_seen = 0;
  util::SimTime last_seen = 0;

  double establish_rate() const {
    return connections == 0 ? 0.0
                            : static_cast<double>(established) /
                                  static_cast<double>(connections);
  }
};

/// Corpus-wide counters that don't belong to a single chain.
struct CorpusTotals {
  std::uint64_t connections = 0;          // all SSL.log rows
  std::uint64_t with_certificates = 0;    // rows that delivered a chain
  std::uint64_t tls13_connections = 0;    // certificates invisible (§6.3)
  std::uint64_t incomplete_joins = 0;     // rows with missing fuids
  std::size_t distinct_certificates = 0;  // unique cert fingerprints
};

class CorpusIndex {
 public:
  CorpusIndex() = default;
  // The fold memo points into chains_: map nodes survive moves, so the
  // defaulted moves are sound, but a copy must not inherit pointers into the
  // source — copies start with a cold memo.
  CorpusIndex(const CorpusIndex& other)
      : chains_(other.chains_),
        certificate_fingerprints_(other.certificate_fingerprints_),
        totals_(other.totals_) {}
  CorpusIndex& operator=(const CorpusIndex& other) {
    chains_ = other.chains_;
    certificate_fingerprints_ = other.certificate_fingerprints_;
    totals_ = other.totals_;
    reset_fold_memo();
    return *this;
  }
  CorpusIndex(CorpusIndex&&) = default;
  CorpusIndex& operator=(CorpusIndex&&) = default;

  /// Folds connections in. Connections without certificates (TLS 1.3,
  /// resumed) contribute to totals only.
  void add(const zeek::JoinedConnection& connection);
  void add_all(const std::vector<zeek::JoinedConnection>& connections);

  /// Fused join+fold — the hot ingest path (DESIGN.md §16). Resolves the
  /// row's fuids against the joiner and folds the connection in place:
  /// no JoinedConnection is materialized, so the SSL record and the
  /// certificates are never copied per row; a chain is deep-copied exactly
  /// once, when its id is first observed. Byte-identical in effect to
  /// add(joiner.join(ssl)).
  void add(const zeek::LogJoiner& joiner, const zeek::SslLogRecord& ssl);

  /// Folds another index in, destructively. Every per-chain and corpus-wide
  /// field is an order-independent reduction (sums, set unions, min/max over
  /// timestamps), so merging shard-local indexes — in any order — yields
  /// exactly the index a serial pass over the concatenated connections would
  /// have built; certificates seen by several shards are deduplicated here.
  /// The parallel-diff suite asserts this equivalence end to end.
  void merge_from(CorpusIndex&& other);

  const std::map<std::string, ChainObservation>& chains() const { return chains_; }
  const CorpusTotals& totals() const { return totals_; }

  std::size_t unique_chain_count() const { return chains_.size(); }

  /// Union of client IPs across a set of chain ids.
  static std::size_t distinct_clients(
      const std::vector<const ChainObservation*>& observations);

  /// Writes the complete fold state as one JSON object (the `corpus` block
  /// of a stream checkpoint, DESIGN.md §11). Chains are stored as ordered
  /// certificate fingerprints, not serialized certificates — every
  /// certificate in the corpus came out of the X509 log, so a resuming run
  /// re-derives the objects from its re-ingested records.
  void write_snapshot(obs::json::Writer& writer) const;

  /// Restores a write_snapshot() state into an empty index. Fingerprints are
  /// resolved through `by_fingerprint` (built from the re-ingested X509
  /// records); an unresolvable fingerprint or a malformed snapshot fails
  /// with `error` set and leaves the index cleared.
  bool restore_snapshot(
      const obs::json::Value& value,
      const std::map<std::string, x509::Certificate>& by_fingerprint,
      std::string* error);

 private:
  std::map<std::string, ChainObservation> chains_;  // by chain id
  std::set<std::string> certificate_fingerprints_;
  CorpusTotals totals_;

  /// Slow half of the fused fold: resolves fuids, digests the chain id, and
  /// registers the chain — runs once per distinct fuid list, not per row.
  ChainObservation* resolve_and_register(const zeek::LogJoiner& joiner,
                                         const zeek::SslLogRecord& ssl,
                                         bool& missing);

  void reset_fold_memo() {
    fold_memo_.clear();
    fold_joiner_ = nullptr;
    fold_joiner_size_ = 0;
  }

  struct TransparentHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view text) const {
      return std::hash<std::string_view>{}(text);
    }
  };
  /// What one fuid list folds to under the current joiner: the chain's
  /// observation slot (nullptr when no fuid resolved) and whether any fuid
  /// was missing. ChainObservation pointers are std::map nodes — stable.
  struct FoldMemoEntry {
    ChainObservation* observation = nullptr;
    bool missing = false;
  };

  // Scratch reused across fused add(joiner, ssl) calls so the per-row fold
  // stays allocation-free (one CorpusIndex is only ever fed from one thread).
  std::vector<const x509::Certificate*> fold_certs_;
  std::string fold_id_bytes_;
  std::string fold_fingerprint_;
  std::string fold_key_;
  // Fuid-list memo, valid only for one (joiner, certificate_count) snapshot:
  // the joiner can grow between folds (svc appends X509 rows incrementally),
  // and growth can turn a missing fuid into a resolved one.
  const zeek::LogJoiner* fold_joiner_ = nullptr;
  std::size_t fold_joiner_size_ = 0;
  std::unordered_map<std::string, FoldMemoEntry, TransparentHash,
                     std::equal_to<>>
      fold_memo_;
};

}  // namespace certchain::core
