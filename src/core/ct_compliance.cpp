#include "core/ct_compliance.hpp"

namespace certchain::core {

namespace {

void merge_bucket(CtComplianceBucket& into, const CtComplianceBucket& from) {
  into.chains += from.chains;
  into.connections += from.connections;
  into.ct_logged += from.ct_logged;
  into.with_scts += from.with_scts;
  into.policy_compliant += from.policy_compliant;
  into.sct_total += from.sct_total;
}

}  // namespace

void CtComplianceReport::merge_from(const CtComplianceReport& other) {
  merge_bucket(public_db, other.public_db);
  merge_bucket(non_public_hierarchical, other.non_public_hierarchical);
  merge_bucket(self_contained, other.self_contained);
}

void CtComplianceAnalyzer::add(const ChainObservation& observation,
                               CtComplianceReport& into) const {
  const x509::Certificate& leaf = observation.chain.first();

  // Category precedence: a self-signed leaf is its own anchor regardless of
  // what database its (self-)issuer name happens to sit in.
  CtComplianceBucket* bucket = nullptr;
  if (leaf.is_self_signed()) {
    bucket = &into.self_contained;
  } else if (stores_->classify_certificate(leaf) ==
             truststore::IssuerClass::kPublicDb) {
    bucket = &into.public_db;
  } else {
    bucket = &into.non_public_hierarchical;
  }

  bucket->chains++;
  bucket->connections += observation.connections;
  bucket->sct_total += leaf.scts.size();
  if (!leaf.scts.empty()) bucket->with_scts++;
  // Field-level lookup (the §4.2 "query CT and confirm" step): log data
  // carries no key material, so matching goes by subject/issuer/serial/
  // validity, exactly like contains_matching.
  if (ct_logs_->logged_matching(leaf)) bucket->ct_logged++;
  if (ct_logs_->complies(leaf)) bucket->policy_compliant++;
}

CtComplianceReport CtComplianceAnalyzer::analyze(const CorpusIndex& corpus) const {
  CtComplianceReport report;
  for (const auto& [chain_id, observation] : corpus.chains()) {
    add(observation, report);
  }
  return report;
}

}  // namespace certchain::core
