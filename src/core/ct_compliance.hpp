// Per-issuer-category CT-compliance analytics (§4.2, DESIGN.md §14.4).
//
// The paper's §4.2 check asks one question — are non-public-DB leaves on
// public-facing domains CT-logged? — against a study-scale log. With the CT
// subsystem scaled to monitor-grade logs, the same corpus supports the
// broader view a log operator cares about: for every unique chain, is the
// *leaf* CT-logged, does it carry SCTs, and does it satisfy the Chrome-style
// SCT-count policy — broken out by the leaf's issuance category:
//
//   public                   leaf issued by a public-DB issuer
//   non-public hierarchical  non-public-DB issuer, leaf not self-signed
//                            (private CAs running a real hierarchy)
//   self-contained           self-signed leaf (its own trust anchor)
//
// The fold is a pure per-chain reduction (every counter is additive), so the
// sharded parallel pipeline folds per-shard reports and merges them in shard
// order — byte-identical to the serial fold, as the parallel/streaming/serve
// differential suites assert.
#pragma once

#include <cstdint>

#include "core/corpus.hpp"
#include "ct/ct_log.hpp"
#include "truststore/trust_store.hpp"

namespace certchain::core {

/// One issuer category's compliance tallies over unique chains.
struct CtComplianceBucket {
  std::size_t chains = 0;
  std::uint64_t connections = 0;
  std::size_t ct_logged = 0;         // leaf found in a known log (field-level)
  std::size_t with_scts = 0;         // leaf carries >= 1 embedded SCT
  std::size_t policy_compliant = 0;  // satisfies required_sct_count(lifetime)
  std::uint64_t sct_total = 0;       // embedded SCTs across leaves
};

struct CtComplianceReport {
  CtComplianceBucket public_db;
  CtComplianceBucket non_public_hierarchical;
  CtComplianceBucket self_contained;

  std::size_t total_chains() const {
    return public_db.chains + non_public_hierarchical.chains +
           self_contained.chains;
  }
  std::size_t total_ct_logged() const {
    return public_db.ct_logged + non_public_hierarchical.ct_logged +
           self_contained.ct_logged;
  }

  /// Shard-order merge for the parallel fold (all counters additive).
  void merge_from(const CtComplianceReport& other);
};

class CtComplianceAnalyzer {
 public:
  CtComplianceAnalyzer(const truststore::TrustStoreSet& stores,
                       const ct::CtLogSet& ct_logs)
      : stores_(&stores), ct_logs_(&ct_logs) {}

  /// Folds one unique-chain observation into `into`.
  void add(const ChainObservation& observation, CtComplianceReport& into) const;

  /// Serial fold over the whole corpus (map order; the result is
  /// order-independent anyway).
  CtComplianceReport analyze(const CorpusIndex& corpus) const;

 private:
  const truststore::TrustStoreSet* stores_;
  const ct::CtLogSet* ct_logs_;
};

}  // namespace certchain::core
