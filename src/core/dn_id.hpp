// The interned-DN identifier (DESIGN.md §16).
//
// A DnId names one canonicalized distinguished name inside a core::DnPool.
// It lives in its own dependency-free header so value types below core/ in
// the include order (x509::Certificate, zeek records) can carry ids without
// pulling in the pool itself. Ids are pool-local: comparing ids from two
// different pools is meaningless until one pool absorb()s the other and the
// returned id-map is applied (the shard-merge protocol).
#pragma once

#include <cstdint>

namespace certchain::core {

/// Index into a DnPool. Dense, starting at 0, in first-intern order.
using DnId = std::uint32_t;

/// "No interned DN": the default for records/certificates that were built
/// without a pool. All pool fast paths check against this before comparing.
inline constexpr DnId kInvalidDnId = 0xffffffffu;

}  // namespace certchain::core
