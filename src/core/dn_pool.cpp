#include "core/dn_pool.hpp"

#include <algorithm>
#include <cstring>

namespace certchain::core {

namespace {

constexpr std::size_t kArenaChunkBytes = 64 * 1024;

/// Mirrors zeek::parse_dn_lenient: malformed input degrades to a single
/// CN=<raw> RDN so the row stays visible to the analysis.
x509::DistinguishedName parse_lenient(std::string_view raw) {
  if (auto parsed = x509::DistinguishedName::parse(raw)) return *std::move(parsed);
  x509::DistinguishedName fallback;
  fallback.add("CN", std::string(raw));
  return fallback;
}

}  // namespace

std::string_view DnPool::arena_store(std::string_view bytes) {
  if (arena_used_ + bytes.size() > arena_capacity_) {
    const std::size_t chunk = std::max(kArenaChunkBytes, bytes.size());
    arena_chunks_.push_back(std::make_unique<char[]>(chunk));
    arena_used_ = 0;
    arena_capacity_ = chunk;
  }
  char* dest = arena_chunks_.back().get() + arena_used_;
  std::memcpy(dest, bytes.data(), bytes.size());
  arena_used_ += bytes.size();
  return std::string_view(dest, bytes.size());
}

DnId DnPool::intern_parsed(x509::DistinguishedName name) {
  const auto it = by_canonical_.find(name.canonical());
  if (it != by_canonical_.end()) return it->second;
  const DnId id = static_cast<DnId>(entries_.size());
  entries_.push_back(
      std::make_unique<x509::DistinguishedName>(std::move(name)));
  displays_.push_back(entries_.back()->to_string());
  by_canonical_.emplace(std::string_view(entries_.back()->canonical()), id);
  return id;
}

DnPool::Interned DnPool::intern_raw(std::string_view raw) {
  const auto it = by_raw_.find(raw);
  if (it != by_raw_.end()) return it->second;
  const Interned interned = memo_raw(raw);
  by_raw_.emplace(arena_store(raw), interned);
  return interned;
}

DnPool::Interned DnPool::memo_raw(std::string_view raw) {
  x509::DistinguishedName parsed = parse_lenient(raw);
  const auto canonical_it = by_canonical_.find(parsed.canonical());
  if (canonical_it == by_canonical_.end()) {
    const DnId id = intern_parsed(std::move(parsed));
    return Interned{id, entries_[id].get()};
  }
  // Canonical collision with a different spelling: keep this parse as a
  // variant so name_for_raw() renders these exact bytes.
  const DnId id = canonical_it->second;
  if (parsed == *entries_[id]) return Interned{id, entries_[id].get()};
  variants_.push_back(
      std::make_unique<x509::DistinguishedName>(std::move(parsed)));
  return Interned{id, variants_.back().get()};
}

DnId DnPool::intern(const x509::DistinguishedName& name) {
  const auto it = by_canonical_.find(name.canonical());
  if (it != by_canonical_.end()) return it->second;
  return intern_parsed(name);
}

DnId DnPool::find_canonical(std::string_view canonical) const {
  const auto it = by_canonical_.find(canonical);
  return it == by_canonical_.end() ? kInvalidDnId : it->second;
}

std::vector<DnId> DnPool::absorb(const DnPool& other) {
  std::vector<DnId> id_map(other.entries_.size(), kInvalidDnId);
  for (std::size_t i = 0; i < other.entries_.size(); ++i) {
    id_map[i] = intern(*other.entries_[i]);
  }
  return id_map;
}

}  // namespace certchain::core
