// The interned-DN pool and the Dn handle (DESIGN.md §16).
//
// Every distinguished name the ingest path sees is canonicalized exactly
// once — at intern time — and mapped to a dense DnId. From then on
// classification, chain categorization, interception lookups, and corpus
// merges compare 32-bit ids instead of re-canonicalizing strings.
//
// Two intern entry points serve the two ingest shapes:
//
//   intern(raw)    raw RFC 4514 bytes from a log field. A raw-bytes memo
//                  (arena-backed keys) skips DN parsing entirely when the
//                  same spelling recurs — the common case, since X509 rows
//                  repeat a small set of issuers thousands of times. A
//                  malformed DN degrades to a single CN=<raw> RDN, byte-for-
//                  byte the lenient behaviour the joiner always had.
//   intern(name)   an already-parsed DistinguishedName, keyed by its
//                  canonical form.
//
// Ids are pool-local. The sharded parallel engine gives each shard its own
// pool and merges them with absorb(), which returns an old-id -> new-id map
// the merge loop applies to the shard's records — the id-remap merge
// protocol that keeps parallel runs byte-identical to serial ones.
//
// Distinct spellings that canonicalize equally ("CN=Example" vs
// "cn=example") share one id but keep their own parsed form: name_for_raw()
// returns the parse of *those* bytes, so certificates built through the pool
// render exactly as they would without it (byte-identity of reports).
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/dn_id.hpp"
#include "x509/distinguished_name.hpp"

namespace certchain::core {

class DnPool {
 public:
  DnPool() = default;
  DnPool(const DnPool&) = delete;
  DnPool& operator=(const DnPool&) = delete;
  DnPool(DnPool&&) = default;
  DnPool& operator=(DnPool&&) = default;

  /// Id plus the parse of exactly one raw spelling. For a spelling that
  /// collides canonically with an earlier entry, `name` is the variant parse
  /// of *these* bytes, not the pool entry — display fidelity is preserved.
  struct Interned {
    DnId id = kInvalidDnId;
    const x509::DistinguishedName* name = nullptr;
  };

  /// Interns the raw RFC 4514 text of one log field (lenient). Repeated
  /// spellings hit the raw-bytes memo and never touch the parser.
  DnId intern(std::string_view raw) { return intern_raw(raw).id; }

  /// Interns an already-parsed DN by canonical form.
  DnId intern(const x509::DistinguishedName& name);

  /// Raw-bytes intern returning both the id and the spelling's parse — the
  /// joiner's entry point (one hash lookup covers both).
  Interned intern_raw(std::string_view raw);

  /// The parse of exactly these raw bytes (interning them if new).
  const x509::DistinguishedName& name_for_raw(std::string_view raw) {
    return *intern_raw(raw).name;
  }

  /// Id for a canonical form already present, or kInvalidDnId.
  DnId find_canonical(std::string_view canonical) const;

  /// The first-interned DistinguishedName behind `id`.
  const x509::DistinguishedName& name(DnId id) const { return *entries_[id]; }

  /// Canonical form of `id`; a view into pool-owned storage.
  std::string_view canonical(DnId id) const { return entries_[id]->canonical(); }

  /// RFC 4514 display form of `id` (materialized on first intern).
  std::string_view display(DnId id) const { return displays_[id]; }

  std::size_t size() const { return entries_.size(); }

  /// Merges `other` into this pool. Returns the id-map: result[i] is the id
  /// in *this* pool of other's id i. Applying it to a shard's records is the
  /// shard-merge protocol (pipeline_parallel.cpp).
  std::vector<DnId> absorb(const DnPool& other);

 private:
  /// Bump-allocating byte arena for memo keys; views into it stay valid for
  /// the pool's lifetime.
  std::string_view arena_store(std::string_view bytes);

  DnId intern_parsed(x509::DistinguishedName name);
  Interned memo_raw(std::string_view raw);

  // Entries are heap-allocated so views into their canonical strings survive
  // deque growth and pool moves.
  std::deque<std::unique_ptr<x509::DistinguishedName>> entries_;
  std::deque<std::string> displays_;  // entries_[i].to_string(), same index
  // Variant parses: spellings whose canonical form was already interned.
  std::deque<std::unique_ptr<x509::DistinguishedName>> variants_;

  std::unordered_map<std::string_view, DnId> by_canonical_;
  std::unordered_map<std::string_view, Interned> by_raw_;

  std::vector<std::unique_ptr<char[]>> arena_chunks_;
  std::size_t arena_used_ = 0;
  std::size_t arena_capacity_ = 0;
};

/// A pool-qualified DN handle — the public vocabulary for issuer identity
/// across classify_issuer / categorize_chain / InterceptionDetector. Same
/// pool: equality is one integer compare. Different pools (or detached
/// handles): falls back to canonical-view comparison, so handles stay safe
/// to mix.
class Dn {
 public:
  Dn() = default;
  Dn(DnId id, const DnPool* pool) : id_(id), pool_(pool) {}

  DnId id() const { return id_; }
  const DnPool* pool() const { return pool_; }
  bool valid() const { return pool_ != nullptr && id_ != kInvalidDnId; }

  /// Canonical form (matching key). Empty for an invalid handle.
  std::string_view view() const {
    return valid() ? pool_->canonical(id_) : std::string_view{};
  }

  /// RFC 4514 display form.
  std::string_view display() const {
    return valid() ? pool_->display(id_) : std::string_view{};
  }

  /// The parsed name (valid handles only).
  const x509::DistinguishedName& name() const { return pool_->name(id_); }

  friend bool operator==(const Dn& a, const Dn& b) {
    if (a.pool_ == b.pool_) return a.id_ == b.id_;
    return a.view() == b.view();
  }
  friend bool operator!=(const Dn& a, const Dn& b) { return !(a == b); }

 private:
  DnId id_ = kInvalidDnId;
  const DnPool* pool_ = nullptr;
};

}  // namespace certchain::core
