#include "core/epoch_delta.hpp"

#include <algorithm>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace certchain::core {

namespace {

/// Caps churn target lists in renders; the full lists stay in the struct.
constexpr std::size_t kRenderedTargets = 8;

std::string signed_count(long long value) {
  return (value >= 0 ? "+" : "") + std::to_string(value);
}

std::string target_list(const std::vector<std::string>& targets) {
  if (targets.empty()) return "";
  std::string out = ": ";
  const std::size_t shown = std::min(targets.size(), kRenderedTargets);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i != 0) out += ", ";
    out += targets[i];
  }
  if (targets.size() > shown) {
    out += ", … (+" + std::to_string(targets.size() - shown) + " more)";
  }
  return out;
}

void write_ledger_json(obs::json::Writer& w, const scanner::ScanLedger& ledger) {
  w.begin_object();
  w.key("targets"); w.value_uint(ledger.targets);
  w.key("attempts"); w.value_uint(ledger.attempts);
  w.key("retries"); w.value_uint(ledger.retries);
  w.key("successes"); w.value_uint(ledger.successes);
  w.key("salvaged"); w.value_uint(ledger.salvaged);
  w.key("failures"); w.value_uint(ledger.failures);
  w.key("backoff_ms"); w.value_uint(ledger.backoff_ms_total);
  w.key("certs_salvaged"); w.value_uint(ledger.certs_salvaged);
  w.key("certs_dropped"); w.value_uint(ledger.certs_dropped);
  w.key("errors");
  w.begin_array();
  for (const auto& [error, count] : ledger.error_counts) {
    w.begin_array();
    w.value_uint(static_cast<std::uint64_t>(error));
    w.value_uint(count);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

std::uint64_t u64_field(const obs::json::Value& object, std::string_view key) {
  const obs::json::Value* field = object.find(key);
  if (field == nullptr || !field->is_number() || field->num < 0) return 0;
  return static_cast<std::uint64_t>(field->num);
}

bool bool_field(const obs::json::Value& object, std::string_view key) {
  const obs::json::Value* field = object.find(key);
  return field != nullptr && field->kind == obs::json::Value::Kind::kBool &&
         field->boolean;
}

std::string string_field(const obs::json::Value& object, std::string_view key) {
  const obs::json::Value* field = object.find(key);
  return field != nullptr && field->is_string() ? field->string : std::string();
}

bool parse_ledger(const obs::json::Value& value, scanner::ScanLedger* ledger) {
  if (!value.is_object()) return false;
  ledger->targets = u64_field(value, "targets");
  ledger->attempts = u64_field(value, "attempts");
  ledger->retries = u64_field(value, "retries");
  ledger->successes = u64_field(value, "successes");
  ledger->salvaged = u64_field(value, "salvaged");
  ledger->failures = u64_field(value, "failures");
  ledger->backoff_ms_total = u64_field(value, "backoff_ms");
  ledger->certs_salvaged = u64_field(value, "certs_salvaged");
  ledger->certs_dropped = u64_field(value, "certs_dropped");
  const obs::json::Value* errors = value.find("errors");
  if (errors != nullptr && errors->is_array()) {
    for (const obs::json::Value& entry : errors->array) {
      if (!entry.is_array() || entry.array.size() != 2 ||
          !entry.array[0].is_number() || !entry.array[1].is_number()) {
        return false;
      }
      const auto code = static_cast<std::uint8_t>(entry.array[0].num);
      if (code > static_cast<std::uint8_t>(scanner::ScanError::kDeadlineExceeded)) {
        return false;
      }
      ledger->error_counts[static_cast<scanner::ScanError>(code)] =
          static_cast<std::uint64_t>(entry.array[1].num);
    }
  }
  return true;
}

}  // namespace

double EpochSummary::lets_encrypt_share() const {
  if (reachable == 0) return 0.0;
  return static_cast<double>(lets_encrypt) / static_cast<double>(reachable);
}

EpochSummary summarize_epoch(
    std::size_t index,
    const std::vector<std::pair<std::string, scanner::ResilientScanResult>>& scans,
    const scanner::ScanLedger& ledger,
    const truststore::TrustStoreSet& stores) {
  EpochSummary epoch;
  epoch.index = index;
  epoch.health.ledger = ledger;
  epoch.health.scanned = scans.size();

  for (const auto& [target, result] : scans) {
    if (!result.reachable()) {
      ++epoch.health.unreachable;
      continue;
    }
    if (result.degraded) {
      ++epoch.health.reachable_degraded;
    } else {
      ++epoch.health.reachable_clean;
    }
    ++epoch.reachable;

    const chain::CertificateChain& chain = result.scan.chain;
    EpochTargetRecord record;
    record.target = target;
    record.chain_length = chain.length();
    record.degraded = result.degraded;
    if (!chain.empty()) {
      const x509::Certificate& leaf = chain.first();
      record.leaf_fingerprint = leaf.fingerprint();
      record.leaf_subject = leaf.subject.canonical();
      record.leaf_issuer = leaf.issuer.canonical();
      record.leaf_key = leaf.public_key.material;

      bool all_public = true;
      bool all_non_public = true;
      for (const x509::Certificate& cert : chain) {
        if (stores.classify_certificate(cert) == truststore::IssuerClass::kPublicDb) {
          all_non_public = false;
        } else {
          all_public = false;
        }
      }
      record.all_public = all_public;
      record.all_non_public = all_non_public;
      record.lets_encrypt = all_public && RevisitAnalyzer::is_lets_encrypt_chain(chain);
      record.hierarchical_non_public = all_non_public && chain.length() > 1;
    }

    if (record.lets_encrypt) {
      ++epoch.lets_encrypt;
    } else if (record.all_public) {
      ++epoch.other_public;
    } else if (record.all_non_public) {
      ++epoch.all_non_public;
      if (record.hierarchical_non_public) ++epoch.hierarchical_non_public;
    } else {
      ++epoch.mixed;
    }
    epoch.targets.emplace(target, std::move(record));
  }
  return epoch;
}

EpochDelta compute_epoch_delta(const EpochSummary& from, const EpochSummary& to) {
  EpochDelta delta;
  delta.from_index = from.index;
  delta.to_index = to.index;
  delta.reachable_shift = static_cast<long long>(to.reachable) -
                          static_cast<long long>(from.reachable);
  delta.lets_encrypt_shift = static_cast<long long>(to.lets_encrypt) -
                             static_cast<long long>(from.lets_encrypt);
  delta.lets_encrypt_share_from = from.lets_encrypt_share();
  delta.lets_encrypt_share_to = to.lets_encrypt_share();
  delta.hierarchical_non_public_shift =
      static_cast<long long>(to.hierarchical_non_public) -
      static_cast<long long>(from.hierarchical_non_public);

  for (const auto& [target, record] : to.targets) {
    const auto previous = from.targets.find(target);
    if (previous == from.targets.end()) {
      delta.appeared.push_back(target);
      continue;
    }
    if (previous->second.leaf_fingerprint == record.leaf_fingerprint) {
      ++delta.unchanged;
    } else if (previous->second.leaf_key != record.leaf_key) {
      delta.re_keyed.push_back(target);
    } else {
      delta.re_issued.push_back(target);
    }
  }
  for (const auto& [target, record] : from.targets) {
    if (to.targets.find(target) == to.targets.end()) {
      delta.disappeared.push_back(target);
    }
  }
  return delta;
}

std::string render_epoch_summary(const EpochSummary& epoch) {
  std::string out;
  out += "epoch " + std::to_string(epoch.index) + ": scanned " +
         util::with_commas(epoch.health.scanned) + " (clean " +
         util::with_commas(epoch.health.reachable_clean) + ", degraded " +
         util::with_commas(epoch.health.reachable_degraded) + ", unreachable " +
         util::with_commas(epoch.health.unreachable) + ")\n";
  out += "  categories: lets-encrypt " + util::with_commas(epoch.lets_encrypt) +
         " (" + util::percent(static_cast<double>(epoch.lets_encrypt),
                              static_cast<double>(epoch.reachable)) +
         "% of reachable), other-public " + util::with_commas(epoch.other_public) +
         ", non-public " + util::with_commas(epoch.all_non_public) +
         " (hierarchical " + util::with_commas(epoch.hierarchical_non_public) +
         "), mixed " + util::with_commas(epoch.mixed) + "\n";
  const scanner::ScanLedger& ledger = epoch.health.ledger;
  out += "  effort: attempts " + util::with_commas(ledger.attempts) + ", retries " +
         util::with_commas(ledger.retries) + ", backoff " +
         util::with_commas(ledger.backoff_ms_total) + " ms, certs salvaged " +
         util::with_commas(ledger.certs_salvaged) + ", dropped " +
         util::with_commas(ledger.certs_dropped) + "\n";
  if (!ledger.error_counts.empty()) {
    out += "  attempt errors:";
    for (const auto& [error, count] : ledger.error_counts) {
      out += " " + std::string(scanner::scan_error_name(error)) + "=" +
             util::with_commas(count);
    }
    out += "\n";
  }
  return out;
}

std::string render_epoch_delta(const EpochDelta& delta) {
  std::string out;
  out += "delta " + std::to_string(delta.from_index) + " -> " +
         std::to_string(delta.to_index) + "\n";
  out += "  reachable: " + signed_count(delta.reachable_shift) + "\n";
  out += "  lets-encrypt share: " +
         util::percent(delta.lets_encrypt_share_from, 1.0) + "% -> " +
         util::percent(delta.lets_encrypt_share_to, 1.0) + "% (" +
         signed_count(delta.lets_encrypt_shift) + " chains)\n";
  out += "  hierarchical non-public: " +
         signed_count(delta.hierarchical_non_public_shift) + "\n";
  out += "  churn: appeared " + std::to_string(delta.appeared.size()) +
         target_list(delta.appeared) + "\n";
  out += "         disappeared " + std::to_string(delta.disappeared.size()) +
         target_list(delta.disappeared) + "\n";
  out += "         re-keyed " + std::to_string(delta.re_keyed.size()) +
         target_list(delta.re_keyed) + "\n";
  out += "         re-issued " + std::to_string(delta.re_issued.size()) +
         target_list(delta.re_issued) + "\n";
  out += "         unchanged " + std::to_string(delta.unchanged) + "\n";
  return out;
}

std::string render_fleet_section(const std::vector<EpochSummary>& epochs) {
  std::string out;
  out += util::render_banner("Continuous revisit fleet (epoch deltas)");
  out += "epochs completed: " + std::to_string(epochs.size()) + "\n";
  for (const EpochSummary& epoch : epochs) {
    out += render_epoch_summary(epoch);
  }
  for (std::size_t i = 1; i < epochs.size(); ++i) {
    out += render_epoch_delta(compute_epoch_delta(epochs[i - 1], epochs[i]));
  }
  return out;
}

void write_epoch_summary_json(obs::json::Writer& w, const EpochSummary& epoch) {
  w.begin_object();
  w.key("index"); w.value_uint(epoch.index);
  w.key("scanned"); w.value_uint(epoch.health.scanned);
  w.key("clean"); w.value_uint(epoch.health.reachable_clean);
  w.key("degraded"); w.value_uint(epoch.health.reachable_degraded);
  w.key("unreachable"); w.value_uint(epoch.health.unreachable);
  w.key("ledger");
  write_ledger_json(w, epoch.health.ledger);
  w.key("targets");
  w.begin_array();
  for (const auto& [target, record] : epoch.targets) {
    w.begin_object();
    w.key("t"); w.value_string(target);
    w.key("fp"); w.value_string(record.leaf_fingerprint);
    w.key("subj"); w.value_string(record.leaf_subject);
    w.key("iss"); w.value_string(record.leaf_issuer);
    w.key("key"); w.value_string(record.leaf_key);
    w.key("len"); w.value_uint(record.chain_length);
    w.key("deg"); w.value_bool(record.degraded);
    w.key("le"); w.value_bool(record.lets_encrypt);
    w.key("pub"); w.value_bool(record.all_public);
    w.key("npub"); w.value_bool(record.all_non_public);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::optional<EpochSummary> parse_epoch_summary(const obs::json::Value& value) {
  if (!value.is_object()) return std::nullopt;
  EpochSummary epoch;
  epoch.index = u64_field(value, "index");
  epoch.health.scanned = u64_field(value, "scanned");
  epoch.health.reachable_clean = u64_field(value, "clean");
  epoch.health.reachable_degraded = u64_field(value, "degraded");
  epoch.health.unreachable = u64_field(value, "unreachable");
  const obs::json::Value* ledger = value.find("ledger");
  if (ledger == nullptr || !parse_ledger(*ledger, &epoch.health.ledger)) {
    return std::nullopt;
  }
  const obs::json::Value* targets = value.find("targets");
  if (targets == nullptr || !targets->is_array()) return std::nullopt;
  for (const obs::json::Value& entry : targets->array) {
    if (!entry.is_object()) return std::nullopt;
    EpochTargetRecord record;
    record.target = string_field(entry, "t");
    if (record.target.empty()) return std::nullopt;
    record.leaf_fingerprint = string_field(entry, "fp");
    record.leaf_subject = string_field(entry, "subj");
    record.leaf_issuer = string_field(entry, "iss");
    record.leaf_key = string_field(entry, "key");
    record.chain_length = u64_field(entry, "len");
    record.degraded = bool_field(entry, "deg");
    record.lets_encrypt = bool_field(entry, "le");
    record.all_public = bool_field(entry, "pub");
    record.all_non_public = bool_field(entry, "npub");
    record.hierarchical_non_public =
        record.all_non_public && record.chain_length > 1;

    ++epoch.reachable;
    if (record.lets_encrypt) {
      ++epoch.lets_encrypt;
    } else if (record.all_public) {
      ++epoch.other_public;
    } else if (record.all_non_public) {
      ++epoch.all_non_public;
      if (record.hierarchical_non_public) ++epoch.hierarchical_non_public;
    } else {
      ++epoch.mixed;
    }
    epoch.targets.emplace(record.target, std::move(record));
  }
  if (epoch.reachable !=
      epoch.health.reachable_clean + epoch.health.reachable_degraded) {
    return std::nullopt;
  }
  return epoch;
}

void write_epoch_delta_json(obs::json::Writer& w, const EpochDelta& delta) {
  w.begin_object();
  w.key("from"); w.value_uint(delta.from_index);
  w.key("to"); w.value_uint(delta.to_index);
  w.key("reachable_shift"); w.value_number(static_cast<double>(delta.reachable_shift));
  w.key("lets_encrypt_shift");
  w.value_number(static_cast<double>(delta.lets_encrypt_shift));
  w.key("lets_encrypt_share_from"); w.value_number(delta.lets_encrypt_share_from);
  w.key("lets_encrypt_share_to"); w.value_number(delta.lets_encrypt_share_to);
  w.key("hierarchical_shift");
  w.value_number(static_cast<double>(delta.hierarchical_non_public_shift));
  w.key("appeared"); w.value_uint(delta.appeared.size());
  w.key("disappeared"); w.value_uint(delta.disappeared.size());
  w.key("re_keyed"); w.value_uint(delta.re_keyed.size());
  w.key("re_issued"); w.value_uint(delta.re_issued.size());
  w.key("unchanged"); w.value_uint(delta.unchanged);
  w.key("text"); w.value_string(render_epoch_delta(delta));
  w.end_object();
}

}  // namespace certchain::core
