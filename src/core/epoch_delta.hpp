// Epoch-over-epoch revisit analytics for the continuous scan fleet.
//
// The paper's §5 revisit is a single before/after comparison; the fleet
// generalizes it to N scheduled epochs. Each epoch folds into an
// EpochSummary — scan health plus the issuer-category mix of every
// reachable target and a per-target record (leaf fingerprint / subject /
// key material) — and consecutive summaries diff into an EpochDelta:
// the Let's-Encrypt share shift, hierarchical non-public growth, and chain
// churn (appeared / disappeared / re-keyed / re-issued fingerprints).
//
// Everything here is deterministic: summaries key targets through ordered
// maps, renders use fixed-precision formatting, and the JSON round-trip
// (write_epoch_summary_json / parse_epoch_summary) is lossless for every
// field the renderers read — so a summary shipped over the svc wire renders
// byte-identical to the fleet-side original.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/revisit.hpp"
#include "obs/json.hpp"
#include "scanner/resilient_scanner.hpp"
#include "truststore/trust_store.hpp"

namespace certchain::core {

/// What one target served during one epoch (reachable targets only).
struct EpochTargetRecord {
  std::string target;            // "domain:port" or "ip:port"
  std::string leaf_fingerprint;
  std::string leaf_subject;      // canonical DN
  std::string leaf_issuer;       // canonical DN
  std::string leaf_key;          // public-key material (re-key detection)
  std::size_t chain_length = 0;
  bool degraded = false;         // salvaged partial bundle
  bool lets_encrypt = false;     // subset of all_public
  bool all_public = false;
  bool all_non_public = false;
  bool hierarchical_non_public = false;  // all_non_public && length > 1
};

/// One completed fleet epoch: campaign health plus the category mix.
struct EpochSummary {
  std::size_t index = 0;
  RevisitScanHealth health;

  // Issuer-category mix over the reachable targets.
  std::size_t reachable = 0;
  std::size_t lets_encrypt = 0;
  std::size_t other_public = 0;            // all-public but not Let's Encrypt
  std::size_t all_non_public = 0;
  std::size_t hierarchical_non_public = 0; // subset of all_non_public
  std::size_t mixed = 0;                   // neither all-public nor all-non-public

  /// Per-target records, keyed by scan target (deterministic iteration).
  std::map<std::string, EpochTargetRecord> targets;

  double lets_encrypt_share() const;  // of reachable; 0 when none reachable
};

/// Folds one epoch's scan results (in campaign target order) into a summary.
/// `ledger` is this epoch's share of the scanner ledger (delta_since).
EpochSummary summarize_epoch(
    std::size_t index,
    const std::vector<std::pair<std::string, scanner::ResilientScanResult>>& scans,
    const scanner::ScanLedger& ledger,
    const truststore::TrustStoreSet& stores);

/// The diff between two consecutive epochs.
struct EpochDelta {
  std::size_t from_index = 0;
  std::size_t to_index = 0;

  long long reachable_shift = 0;
  long long lets_encrypt_shift = 0;
  double lets_encrypt_share_from = 0.0;
  double lets_encrypt_share_to = 0.0;
  long long hierarchical_non_public_shift = 0;

  // Chain churn, by target (sorted).
  std::vector<std::string> appeared;     // reachable now, not before
  std::vector<std::string> disappeared;  // reachable before, not now
  std::vector<std::string> re_keyed;     // new fingerprint, new key material
  std::vector<std::string> re_issued;    // new fingerprint, same key material
  std::size_t unchanged = 0;             // same leaf fingerprint
};

EpochDelta compute_epoch_delta(const EpochSummary& from, const EpochSummary& to);

/// Deterministic text renders (report section + svc endpoint bodies).
std::string render_epoch_summary(const EpochSummary& epoch);
std::string render_epoch_delta(const EpochDelta& delta);

/// The "fleet" report section: every epoch summary plus each consecutive
/// delta. Empty-epoch renders still emit the header so digests are stable.
std::string render_fleet_section(const std::vector<EpochSummary>& epochs);

/// Lossless JSON round-trip for shipping summaries over the svc wire.
void write_epoch_summary_json(obs::json::Writer& writer, const EpochSummary& epoch);
std::optional<EpochSummary> parse_epoch_summary(const obs::json::Value& value);

/// JSON body for the epoch_delta endpoint (includes the rendered text).
void write_epoch_delta_json(obs::json::Writer& writer, const EpochDelta& delta);

}  // namespace certchain::core
