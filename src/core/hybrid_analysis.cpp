#include "core/hybrid_analysis.hpp"

#include <optional>
#include <set>

#include "util/strings.hpp"

namespace certchain::core {

using chain::HybridStructure;
using truststore::IssuerClass;

std::string_view structure_cell_code(const StructureCell& cell) {
  using RunKind = StructureCell::RunKind;
  using ClassMix = StructureCell::ClassMix;
  switch (cell.kind) {
    case RunKind::kComplete:
      switch (cell.mix) {
        case ClassMix::kPublic: return "Pub.Complete";
        case ClassMix::kNonPublic: return "Non-Pub.Complete";
        case ClassMix::kHybrid: return "Hybrid.Complete";
      }
      break;
    case RunKind::kPartial:
      switch (cell.mix) {
        case ClassMix::kPublic: return "Pub.Partial";
        case ClassMix::kNonPublic: return "Non-Pub.Partial";
        case ClassMix::kHybrid: return "Hybrid.Partial";
      }
      break;
    case RunKind::kSingle:
      switch (cell.mix) {
        case ClassMix::kPublic: return "Pub.Single";
        case ClassMix::kNonPublic: return "Non-Pub.Single";
        case ClassMix::kHybrid: return "Hybrid.Single";
      }
      break;
    case RunKind::kSingleLeaf:
      return "Single.Leaf";
  }
  return "unknown";
}

namespace {

/// Sector heuristic for Table 6 (the paper attributed entities manually).
std::string classify_sector(const x509::DistinguishedName& issuer) {
  const std::string organization =
      util::to_lower(issuer.organization().value_or(""));
  const std::string cn = util::to_lower(issuer.common_name().value_or(""));
  for (const std::string_view marker :
       {"government", "gov of", "department", "instituto", "federal",
        "veterans affairs", "klid", "iti "}) {
    if (util::contains(organization, marker) || util::contains(cn, marker)) {
      return "Government";
    }
  }
  return "Corporate";
}

/// Short display entity for Table 6 (organization, falling back to CN).
std::string entity_name(const x509::DistinguishedName& issuer) {
  if (const auto organization = issuer.organization()) return *organization;
  return issuer.common_name().value_or(issuer.to_string());
}

bool cert_matches_cn(const x509::Certificate& cert, std::string_view cn_fragment) {
  const std::string issuer_cn = cert.issuer.common_name().value_or("");
  const std::string subject_cn = cert.subject.common_name().value_or("");
  return util::contains(util::to_lower(issuer_cn), util::to_lower(cn_fragment)) ||
         util::contains(util::to_lower(subject_cn), util::to_lower(cn_fragment));
}

}  // namespace

StructureColumn HybridAnalyzer::build_structure_column(
    const ChainObservation& observation,
    const chain::HybridClassification& cls,
    truststore::IssuerClassifier* classifier) const {
  StructureColumn column;
  column.chain_id = observation.chain.id().substr(0, 12);
  const auto& chain = observation.chain;
  const auto& analysis = cls.paths;

  // Map each certificate index to its run.
  for (std::size_t i = 0; i < chain.length(); ++i) {
    const chain::MatchedRun* my_run = nullptr;
    for (const chain::MatchedRun& run : analysis.runs) {
      if (i >= run.begin && i <= run.end) {
        my_run = &run;
        break;
      }
    }
    StructureCell cell;
    if (my_run == nullptr) {
      cell.kind = StructureCell::RunKind::kSingle;
    } else if (analysis.complete_path && *my_run == *analysis.complete_path) {
      cell.kind = StructureCell::RunKind::kComplete;
    } else if (my_run->cert_count() >= 2) {
      cell.kind = StructureCell::RunKind::kPartial;
    } else if (!chain.at(my_run->begin).is_self_signed() &&
               chain::is_plausible_leaf(chain, my_run->begin)) {
      // A genuine stray *leaf* (self-signed singles render as plain
      // singles of their issuer class instead).
      cell.kind = StructureCell::RunKind::kSingleLeaf;
    } else {
      cell.kind = StructureCell::RunKind::kSingle;
    }

    if (cell.kind != StructureCell::RunKind::kSingleLeaf && my_run != nullptr) {
      bool any_public = false;
      bool any_non_public = false;
      for (std::size_t j = my_run->begin; j <= my_run->end; ++j) {
        const IssuerClass cls_j =
            classifier != nullptr
                ? classifier->classify(chain.at(j))
                : stores_->classify_certificate(chain.at(j));
        if (cls_j == IssuerClass::kPublicDb) {
          any_public = true;
        } else {
          any_non_public = true;
        }
      }
      cell.mix = any_public && any_non_public ? StructureCell::ClassMix::kHybrid
                 : any_public                 ? StructureCell::ClassMix::kPublic
                                              : StructureCell::ClassMix::kNonPublic;
    }
    column.cells.push_back(cell);
  }
  return column;
}

HybridReport HybridAnalyzer::analyze(
    const std::vector<const ChainObservation*>& hybrid_chains) const {
  HybridReport report;
  // One memoized classifier for the whole slice (when a pool was supplied):
  // every Figure 4 column shares the DnId memo, so each distinct issuer is
  // classified once per analyze() call instead of once per certificate.
  std::optional<truststore::IssuerClassifier> column_classifier;
  if (dn_pool_ != nullptr) column_classifier.emplace(*stores_, *dn_pool_);
  truststore::IssuerClassifier* memo =
      column_classifier.has_value() ? &*column_classifier : nullptr;
  std::map<std::string, std::set<std::string>> anchored_entities;  // sector -> entities
  std::map<std::string, std::size_t> anchored_counts;              // sector -> chains
  std::set<std::string> clients_complete;
  std::set<std::string> clients_contains;
  std::set<std::string> clients_no_path;
  std::set<std::string> clients_public_leaf_no_issuer;

  for (const ChainObservation* observation : hybrid_chains) {
    HybridChainRecord record;
    record.observation = observation;
    record.classification =
        chain::classify_hybrid(observation->chain, *stores_, registry_);
    const auto& cls = record.classification;
    const auto& chain = observation->chain;

    switch (cls.structure) {
      case HybridStructure::kCompleteNonPubToPub: {
        ++report.complete_nonpub_to_pub;
        report.usage_complete.chains++;
        report.usage_complete.connections += observation->connections;
        report.usage_complete.established += observation->established;
        clients_complete.insert(observation->client_ips.begin(),
                                observation->client_ips.end());

        // Table 6 attribution from the leaf's issuer.
        const x509::Certificate& leaf = chain.at(cls.paths.complete_path->begin);
        // Only chains whose leaf issuer is truly non-public belong in
        // Table 6; kCompleteNonPubToPub guarantees that by construction.
        const std::string sector = classify_sector(leaf.issuer);
        anchored_entities[sector].insert(entity_name(leaf.issuer));
        ++anchored_counts[sector];

        // CT-logging compliance (§4.2).
        record.leaf_ct_logged = ct_logs_->logged_matching(leaf);
        if (record.leaf_ct_logged) ++report.anchored_ct_logged;
        if (leaf.expired_at(observation->last_seen)) {
          record.expired_leaf = true;
          ++report.anchored_expired_leaf;
        }
        break;
      }
      case HybridStructure::kCompletePubToPrivate: {
        ++report.complete_pub_to_private;
        report.usage_complete.chains++;
        report.usage_complete.connections += observation->connections;
        report.usage_complete.established += observation->established;
        clients_complete.insert(observation->client_ips.begin(),
                                observation->client_ips.end());
        break;
      }
      case HybridStructure::kContainsCompletePath: {
        ++report.contains_complete_path;
        report.usage_contains.chains++;
        report.usage_contains.connections += observation->connections;
        report.usage_contains.established += observation->established;
        clients_contains.insert(observation->client_ips.begin(),
                                observation->client_ips.end());
        report.figure4_columns.push_back(
            build_structure_column(*observation, cls, memo));

        // Misconfiguration signatures (Appendix F.2).
        for (const std::size_t index : cls.paths.unnecessary_certificates) {
          const x509::Certificate& extra = chain.at(index);
          if (cert_matches_cn(extra, "Fake LE")) ++report.fake_le_chains;
          if (cert_matches_cn(extra, "Athenz")) ++report.athenz_chains;
        }
        if (cls.paths.complete_path->begin > 0) ++report.leaf_before_path;
        break;
      }
      case HybridStructure::kNoCompletePath: {
        ++report.no_complete_path;
        report.usage_no_path.chains++;
        report.usage_no_path.connections += observation->connections;
        report.usage_no_path.established += observation->established;
        clients_no_path.insert(observation->client_ips.begin(),
                               observation->client_ips.end());
        ++report.no_path_categories[cls.no_path_category];
        report.mismatch_ratios.push_back(cls.paths.match.mismatch_ratio());
        if (cls.public_leaf_without_issuer) {
          ++report.public_leaf_without_issuer;
          report.usage_public_leaf_without_issuer.chains++;
          report.usage_public_leaf_without_issuer.connections +=
              observation->connections;
          report.usage_public_leaf_without_issuer.established +=
              observation->established;
          clients_public_leaf_no_issuer.insert(observation->client_ips.begin(),
                                               observation->client_ips.end());
        }
        break;
      }
    }
    report.records.push_back(std::move(record));
  }

  report.usage_complete.client_ips = clients_complete.size();
  report.usage_contains.client_ips = clients_contains.size();
  report.usage_no_path.client_ips = clients_no_path.size();
  report.usage_public_leaf_without_issuer.client_ips =
      clients_public_leaf_no_issuer.size();

  // Table 6 rows, Government before Corporate to match the paper's layout.
  for (const std::string& sector : {std::string("Corporate"), std::string("Government")}) {
    const auto it = anchored_counts.find(sector);
    if (it == anchored_counts.end()) continue;
    AnchoredChainRow row;
    row.sector = sector;
    row.chains = it->second;
    const auto& entities = anchored_entities[sector];
    row.entities.assign(entities.begin(), entities.end());
    report.anchored_rows.push_back(std::move(row));
  }
  return report;
}

}  // namespace certchain::core
