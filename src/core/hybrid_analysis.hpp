// Hybrid-chain structure analysis (§4.2; Tables 3, 6, 7; Figures 4, 6).
//
// Consumes the hybrid slice of the corpus and produces every number the
// paper reports about it: the Table 3 structure buckets with establishment
// rates, the Table 6 sector split of non-public leaves anchored to public
// roots (with CT-logging compliance and expired-leaf checks), the Table 7
// no-path taxonomy, the Figure 4 per-position structure grid, and the
// Figure 6 mismatch-ratio distribution.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chain/categorizer.hpp"
#include "core/corpus.hpp"
#include "core/dn_pool.hpp"
#include "ct/ct_log.hpp"
#include "truststore/issuer_classifier.hpp"
#include "truststore/trust_store.hpp"

namespace certchain::core {

/// One analyzed hybrid chain.
struct HybridChainRecord {
  const ChainObservation* observation = nullptr;
  chain::HybridClassification classification;
  /// Leaf of the complete path was already expired when last observed.
  bool expired_leaf = false;
  /// Non-public leaf anchored to a public root is present in CT (§4.2
  /// requires it; the paper found 100% compliance).
  bool leaf_ct_logged = false;
};

/// Figure 4 cell label: which run a certificate belongs to and the issuer
/// class mix of that run.
struct StructureCell {
  enum class RunKind : std::uint8_t { kComplete, kPartial, kSingle, kSingleLeaf };
  enum class ClassMix : std::uint8_t { kPublic, kNonPublic, kHybrid };
  RunKind kind = RunKind::kSingle;
  ClassMix mix = ClassMix::kNonPublic;
};

std::string_view structure_cell_code(const StructureCell& cell);

/// One Figure 4 column: the per-position cells of one chain (index 0 = the
/// bottom of the trust hierarchy, as in the paper's y-axis).
struct StructureColumn {
  std::string chain_id;
  std::vector<StructureCell> cells;
};

/// Table 6 row.
struct AnchoredChainRow {
  std::string sector;  // "Government" / "Corporate"
  std::vector<std::string> entities;
  std::size_t chains = 0;
};

/// Per-bucket usage statistics.
struct BucketUsage {
  std::size_t chains = 0;
  std::uint64_t connections = 0;
  std::uint64_t established = 0;
  std::size_t client_ips = 0;

  double establish_rate() const {
    return connections == 0 ? 0.0
                            : static_cast<double>(established) /
                                  static_cast<double>(connections);
  }
};

struct HybridReport {
  std::vector<HybridChainRecord> records;

  // Table 3.
  std::size_t complete_nonpub_to_pub = 0;
  std::size_t complete_pub_to_private = 0;
  std::size_t contains_complete_path = 0;
  std::size_t no_complete_path = 0;
  std::size_t total() const {
    return complete_nonpub_to_pub + complete_pub_to_private +
           contains_complete_path + no_complete_path;
  }

  // Establishment statistics per structure bucket (§4.2).
  BucketUsage usage_complete;   // chain *is* a complete matched path
  BucketUsage usage_contains;   // chain contains one plus extras
  BucketUsage usage_no_path;    // no complete matched path

  // Table 6.
  std::vector<AnchoredChainRow> anchored_rows;
  std::size_t anchored_ct_logged = 0;   // of complete_nonpub_to_pub leaves
  std::size_t anchored_expired_leaf = 0;

  // Table 7 (keyed by category enum value for stable ordering).
  std::map<chain::NoPathCategory, std::size_t> no_path_categories;
  std::size_t public_leaf_without_issuer = 0;
  BucketUsage usage_public_leaf_without_issuer;

  // Figure 4: columns for the contains-complete-path chains.
  std::vector<StructureColumn> figure4_columns;

  // Figure 6: mismatch ratios of the no-path chains.
  std::vector<double> mismatch_ratios;

  // Appendix F.2 misconfiguration signatures among contains-path chains.
  std::size_t fake_le_chains = 0;   // staging "Fake LE" cert appended
  std::size_t athenz_chains = 0;    // Athenz self-signed appended
  std::size_t leaf_before_path = 0;  // chain *starts* with a foreign leaf
};

class HybridAnalyzer {
 public:
  /// A non-null `dn_pool` routes the Figure 4 issuer-class lookups through a
  /// DnId-memoized IssuerClassifier (DESIGN.md §16); certificates without an
  /// interned issuer id fall back to the string path, so the report is
  /// byte-identical with or without the pool.
  HybridAnalyzer(const truststore::TrustStoreSet& stores,
                 const ct::CtLogSet& ct_logs,
                 const chain::CrossSignRegistry* registry = nullptr,
                 const core::DnPool* dn_pool = nullptr)
      : stores_(&stores), ct_logs_(&ct_logs), registry_(registry),
        dn_pool_(dn_pool) {}

  HybridReport analyze(const std::vector<const ChainObservation*>& hybrid_chains) const;

  /// Builds the Figure 4 column for one analyzed chain. `classifier`, when
  /// given, memoizes the per-run issuer-class lookups; analyze() threads one
  /// instance through every column so the memo carries across chains.
  StructureColumn build_structure_column(
      const ChainObservation& observation,
      const chain::HybridClassification& cls,
      truststore::IssuerClassifier* classifier = nullptr) const;

 private:
  const truststore::TrustStoreSet* stores_;
  const ct::CtLogSet* ct_logs_;
  const chain::CrossSignRegistry* registry_;
  const core::DnPool* dn_pool_;
};

}  // namespace certchain::core
