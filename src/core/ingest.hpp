// Ingestion quality accounting and degradation policy.
//
// Twelve months of real border-gateway logs do not arrive clean: rows get
// cut at rotation boundaries, disks corrupt bytes, exporters crash
// mid-line. The pipeline therefore ingests in one of two modes. Lenient
// (the measurement-study default) skips damaged lines, keeps exact counts
// of what was dropped, and reports them in the study output — the paper's
// discipline of stating exclusions next to results. Strict surfaces the
// first damaged line as an IngestError instead, for callers that treat any
// damage as a data-collection bug.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace certchain::core {

enum class IngestMode : std::uint8_t {
  kStrict,   // first malformed line aborts ingestion with IngestError
  kLenient,  // malformed lines are counted and skipped
};

std::string_view ingest_mode_name(IngestMode mode);

struct IngestOptions {
  IngestMode mode = IngestMode::kLenient;
  /// Chunk size used to drive the streaming readers (exercises the same
  /// split-line handling a growing log file does).
  std::size_t feed_chunk_bytes = 64 * 1024;
};

/// Raised by strict-mode ingestion on the first damaged line.
class IngestError : public std::runtime_error {
 public:
  explicit IngestError(const std::string& message) : std::runtime_error(message) {}
};

/// Per-stream line accounting. The numbers originate in the streaming
/// readers, are published as `stage.ingest.<stream>.*` registry counters,
/// and this struct is then filled back FROM those counters — so the report's
/// data-quality section and the metrics export can never disagree.
struct IngestStreamStats {
  std::size_t bytes = 0;            // raw bytes consumed from the stream
  std::size_t lines = 0;
  std::size_t records = 0;
  std::size_t malformed_rows = 0;   // body rows that failed to parse
  std::size_t skipped_lines = 0;    // malformed rows + header/layout skips
  std::size_t rotations = 0;
};

/// What ingestion saw, kept alongside the analysis results so every report
/// can state the quality of the data it was computed from.
struct IngestReport {
  bool populated = false;  // true for text/sources/files runs (raw input seen)
  IngestMode mode = IngestMode::kLenient;

  IngestStreamStats ssl;
  IngestStreamStats x509;

  /// Capped sample of line-level errors ("ssl line 17: wrong column count").
  std::vector<std::string> sample_errors;
  static constexpr std::size_t kMaxSampleErrors = 16;

  std::size_t malformed_total() const {
    return ssl.malformed_rows + x509.malformed_rows;
  }
  std::size_t skipped_total() const {
    return ssl.skipped_lines + x509.skipped_lines;
  }
  bool clean() const { return skipped_total() == 0; }
};

}  // namespace certchain::core
