#include "core/interception.hpp"

#include <algorithm>
#include <optional>

#include "obs/run_context.hpp"
#include "par/thread_pool.hpp"

namespace certchain::core {

chain::InterceptionIssuerSet InterceptionReport::issuer_set() const {
  chain::InterceptionIssuerSet out = vendor_issuer_dns;
  for (const InterceptionFinding& finding : findings) {
    out.insert(finding.issuer_canonical);
  }
  return out;
}

std::vector<InterceptionCategoryRow> InterceptionReport::category_rows() const {
  std::map<std::string, InterceptionCategoryRow> by_category;
  std::map<std::string, std::set<std::string>> vendors_by_category;
  for (const InterceptionFinding& finding : findings) {
    InterceptionCategoryRow& row = by_category[finding.vendor.category];
    row.category = finding.vendor.category;
    vendors_by_category[finding.vendor.category].insert(finding.vendor.vendor);
    row.connections += finding.connections;
  }
  for (auto& [category, row] : by_category) {
    row.issuers = vendors_by_category[category].size();
  }
  // Client IPs must be deduplicated per category, not summed per issuer.
  std::map<std::string, std::set<std::string>> clients_by_category;
  for (const InterceptionFinding& finding : findings) {
    clients_by_category[finding.vendor.category].insert(finding.client_ips.begin(),
                                                        finding.client_ips.end());
  }
  for (auto& [category, row] : by_category) {
    row.client_ips = clients_by_category[category].size();
  }

  std::vector<InterceptionCategoryRow> rows;
  rows.reserve(by_category.size());
  for (auto& [category, row] : by_category) rows.push_back(std::move(row));
  std::stable_sort(rows.begin(), rows.end(),
                   [](const InterceptionCategoryRow& a, const InterceptionCategoryRow& b) {
                     return a.connections > b.connections;
                   });
  return rows;
}

bool InterceptionDetector::is_interception_candidate(
    const chain::CertificateChain& chain, std::string_view domain) const {
  if (chain.empty() || domain.empty()) return false;
  const x509::Certificate& leaf = chain.first();
  // Step 1: leaf issuer absent from every public database.
  if (stores_->classify_certificate(leaf) == truststore::IssuerClass::kPublicDb) {
    return false;
  }
  // Step 2: CT cross-reference for the same domain and validity period. No
  // CT record at all is inconclusive (the genuine certificate may itself be
  // non-public and unlogged, Appendix B) — only a *different* recorded
  // issuer implies interception.
  const auto ct_issuers = ct_logs_->issuers_for_domain(domain, leaf.validity);
  if (ct_issuers.empty()) return false;
  for (const x509::DistinguishedName& recorded : ct_issuers) {
    if (recorded.matches(leaf.issuer)) return false;  // observed issuer is on file
  }
  return true;
}

bool InterceptionDetector::is_interception_candidate(
    core::Dn leaf_issuer, const util::TimeRange& leaf_validity,
    std::string_view domain) const {
  if (!leaf_issuer.valid() || domain.empty()) return false;
  if (stores_->classify_issuer(leaf_issuer) ==
      truststore::IssuerClass::kPublicDb) {
    return false;
  }
  const auto ct_issuers = ct_logs_->issuers_for_domain(domain, leaf_validity);
  if (ct_issuers.empty()) return false;
  for (const x509::DistinguishedName& recorded : ct_issuers) {
    if (recorded.matches(leaf_issuer.name())) return false;
  }
  return true;
}

namespace {

/// Partial detection state: the per-chain fold target, usable serially (one
/// fold over the whole corpus) or per shard with a range-order merge.
struct DetectFold {
  std::map<std::string, InterceptionFinding> findings;  // by issuer canonical
  std::set<std::string> unconfirmed_candidates;
  std::uint64_t total_connections = 0;
};

/// The serial loop body: evaluates one chain observation into the fold.
void fold_observation(const InterceptionDetector& detector,
                      const VendorDirectory& directory,
                      const ChainObservation& observation, DetectFold& fold) {
  if (observation.chain.empty()) return;
  // Evaluate against each observed SNI; the first confirming domain wins.
  bool candidate = false;
  for (const std::string& domain : observation.domains) {
    if (detector.is_interception_candidate(observation.chain, domain)) {
      candidate = true;
      break;
    }
  }
  if (!candidate) return;

  const x509::Certificate& leaf = observation.chain.first();
  const std::string& canonical = leaf.issuer.canonical();
  const auto directory_entry = directory.find(canonical);
  if (directory_entry == directory.end()) {
    fold.unconfirmed_candidates.insert(canonical);
    return;
  }
  InterceptionFinding& finding = fold.findings[canonical];
  if (finding.issuer_canonical.empty()) {
    finding.issuer_canonical = canonical;
    finding.issuer_display = leaf.issuer.to_string();
    finding.vendor = directory_entry->second;
  }
  finding.connections += observation.connections;
  finding.client_ips.insert(observation.client_ips.begin(),
                            observation.client_ips.end());
  fold.total_connections += observation.connections;
}

/// Folds a later corpus range in; call in range order so first-wins identity
/// fields resolve like the serial pass.
void merge_fold(DetectFold& into, DetectFold&& other) {
  for (auto& [canonical, theirs] : other.findings) {
    const auto [it, inserted] =
        into.findings.try_emplace(canonical, std::move(theirs));
    if (inserted) continue;
    it->second.connections += theirs.connections;
    it->second.client_ips.merge(theirs.client_ips);
  }
  into.unconfirmed_candidates.merge(other.unconfirmed_candidates);
  into.total_connections += other.total_connections;
}

/// Vendor expansion + the Table-1 ordering, shared by both paths.
InterceptionReport finalize_fold(DetectFold&& fold,
                                 const VendorDirectory& directory) {
  InterceptionReport report;
  report.unconfirmed_candidates = std::move(fold.unconfirmed_candidates);
  report.total_connections = fold.total_connections;

  // Vendor expansion: every directory DN of a confirmed vendor.
  std::set<std::string> confirmed_vendors;
  for (const auto& [canonical, finding] : fold.findings) {
    confirmed_vendors.insert(finding.vendor.vendor);
  }
  for (const auto& [canonical, info] : directory) {
    if (confirmed_vendors.contains(info.vendor)) {
      report.vendor_issuer_dns.insert(canonical);
    }
  }

  report.findings.reserve(fold.findings.size());
  for (auto& [canonical, finding] : fold.findings) {
    report.findings.push_back(std::move(finding));
  }
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const InterceptionFinding& a, const InterceptionFinding& b) {
                     return a.connections > b.connections;
                   });
  return report;
}

}  // namespace

InterceptionReport InterceptionDetector::detect(const CorpusIndex& corpus) const {
  DetectFold fold;
  for (const auto& [chain_id, observation] : corpus.chains()) {
    fold_observation(*this, *directory_, observation, fold);
  }
  return finalize_fold(std::move(fold), *directory_);
}

InterceptionReport InterceptionDetector::detect(const CorpusIndex& corpus,
                                                par::ThreadPool* pool) const {
  if (pool == nullptr || pool->size() <= 1) return detect(corpus);

  std::vector<const ChainObservation*> observations;
  observations.reserve(corpus.chains().size());
  for (const auto& [chain_id, observation] : corpus.chains()) {
    observations.push_back(&observation);
  }

  const std::size_t shard_count = pool->size();
  std::vector<DetectFold> folds(shard_count);
  par::parallel_for_chunks(
      pool, observations.size(), shard_count,
      [this, &folds, &observations](std::size_t chunk, std::size_t begin,
                                    std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          fold_observation(*this, *directory_, *observations[i], folds[chunk]);
        }
      });

  DetectFold fold;
  for (std::size_t i = 0; i < shard_count; ++i) {
    merge_fold(fold, std::move(folds[i]));
  }
  return finalize_fold(std::move(fold), *directory_);
}

InterceptionReport InterceptionDetector::detect(const CorpusIndex& corpus,
                                                const RunOptions& options,
                                                obs::RunContext* obs) const {
  std::optional<obs::StageTimer> timer;
  if (obs != nullptr) timer.emplace(*obs, "interception.detect");

  InterceptionReport report;
  const std::size_t threads = par::resolve_threads(options.threads);
  if (threads <= 1) {
    report = detect(corpus);
  } else {
    par::ThreadPool pool(threads);
    report = detect(corpus, &pool);
  }
  if (obs != nullptr) {
    obs->metrics.count("interception.detect.chains_in",
                       corpus.unique_chain_count());
    obs->metrics.count("interception.detect.findings", report.findings.size());
  }
  return report;
}

}  // namespace certchain::core
