#include "core/interception.hpp"

#include <algorithm>

namespace certchain::core {

chain::InterceptionIssuerSet InterceptionReport::issuer_set() const {
  chain::InterceptionIssuerSet out = vendor_issuer_dns;
  for (const InterceptionFinding& finding : findings) {
    out.insert(finding.issuer_canonical);
  }
  return out;
}

std::vector<InterceptionCategoryRow> InterceptionReport::category_rows() const {
  std::map<std::string, InterceptionCategoryRow> by_category;
  std::map<std::string, std::set<std::string>> vendors_by_category;
  for (const InterceptionFinding& finding : findings) {
    InterceptionCategoryRow& row = by_category[finding.vendor.category];
    row.category = finding.vendor.category;
    vendors_by_category[finding.vendor.category].insert(finding.vendor.vendor);
    row.connections += finding.connections;
  }
  for (auto& [category, row] : by_category) {
    row.issuers = vendors_by_category[category].size();
  }
  // Client IPs must be deduplicated per category, not summed per issuer.
  std::map<std::string, std::set<std::string>> clients_by_category;
  for (const InterceptionFinding& finding : findings) {
    clients_by_category[finding.vendor.category].insert(finding.client_ips.begin(),
                                                        finding.client_ips.end());
  }
  for (auto& [category, row] : by_category) {
    row.client_ips = clients_by_category[category].size();
  }

  std::vector<InterceptionCategoryRow> rows;
  rows.reserve(by_category.size());
  for (auto& [category, row] : by_category) rows.push_back(std::move(row));
  std::stable_sort(rows.begin(), rows.end(),
                   [](const InterceptionCategoryRow& a, const InterceptionCategoryRow& b) {
                     return a.connections > b.connections;
                   });
  return rows;
}

bool InterceptionDetector::is_interception_candidate(
    const chain::CertificateChain& chain, const std::string& domain) const {
  if (chain.empty() || domain.empty()) return false;
  const x509::Certificate& leaf = chain.first();
  // Step 1: leaf issuer absent from every public database.
  if (stores_->classify_certificate(leaf) == truststore::IssuerClass::kPublicDb) {
    return false;
  }
  // Step 2: CT cross-reference for the same domain and validity period. No
  // CT record at all is inconclusive (the genuine certificate may itself be
  // non-public and unlogged, Appendix B) — only a *different* recorded
  // issuer implies interception.
  const auto ct_issuers = ct_logs_->issuers_for_domain(domain, leaf.validity);
  if (ct_issuers.empty()) return false;
  for (const x509::DistinguishedName& recorded : ct_issuers) {
    if (recorded.matches(leaf.issuer)) return false;  // observed issuer is on file
  }
  return true;
}

InterceptionReport InterceptionDetector::detect(const CorpusIndex& corpus) const {
  InterceptionReport report;
  std::map<std::string, InterceptionFinding> findings;  // by issuer canonical

  for (const auto& [chain_id, observation] : corpus.chains()) {
    if (observation.chain.empty()) continue;
    // Evaluate against each observed SNI; the first confirming domain wins.
    bool candidate = false;
    for (const std::string& domain : observation.domains) {
      if (is_interception_candidate(observation.chain, domain)) {
        candidate = true;
        break;
      }
    }
    if (!candidate) continue;

    const x509::Certificate& leaf = observation.chain.first();
    const std::string canonical = leaf.issuer.canonical();
    const auto directory_entry = directory_->find(canonical);
    if (directory_entry == directory_->end()) {
      report.unconfirmed_candidates.insert(canonical);
      continue;
    }
    InterceptionFinding& finding = findings[canonical];
    if (finding.issuer_canonical.empty()) {
      finding.issuer_canonical = canonical;
      finding.issuer_display = leaf.issuer.to_string();
      finding.vendor = directory_entry->second;
    }
    finding.connections += observation.connections;
    finding.client_ips.insert(observation.client_ips.begin(),
                              observation.client_ips.end());
    report.total_connections += observation.connections;
  }

  // Vendor expansion: every directory DN of a confirmed vendor.
  std::set<std::string> confirmed_vendors;
  for (const auto& [canonical, finding] : findings) {
    confirmed_vendors.insert(finding.vendor.vendor);
  }
  for (const auto& [canonical, info] : *directory_) {
    if (confirmed_vendors.contains(info.vendor)) {
      report.vendor_issuer_dns.insert(canonical);
    }
  }

  report.findings.reserve(findings.size());
  for (auto& [canonical, finding] : findings) {
    report.findings.push_back(std::move(finding));
  }
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const InterceptionFinding& a, const InterceptionFinding& b) {
                     return a.connections > b.connections;
                   });
  return report;
}

}  // namespace certchain::core
