// TLS interception identification (§3.2.1, Table 1, Appendix B).
//
// The paper's procedure: (1) filter connections whose leaf issuer appears in
// no public database; (2) cross-reference CT for the same domain and
// validity period — if CT records only *different* issuers, the observed
// chain was likely forged by a middlebox; (3) confirm and categorize the
// issuer by manual investigation. Step (3)'s stand-in here is the
// VendorDirectory: a lookup from canonical issuer DN to (vendor, category),
// built by the corpus generator the way the authors built their table by
// web search. Only directory-confirmed issuers are counted as interception;
// candidates without a directory entry remain ordinary non-public-DB issuers
// (the paper's method is explicitly best-effort, Appendix B).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "chain/categorizer.hpp"
#include "core/corpus.hpp"
#include "core/run_options.hpp"
#include "ct/ct_log.hpp"
#include "truststore/trust_store.hpp"

namespace certchain::obs {
struct RunContext;
}  // namespace certchain::obs

namespace certchain::par {
class ThreadPool;
}  // namespace certchain::par

namespace certchain::core {

struct VendorInfo {
  std::string vendor;    // e.g. "Sim Zscaler"
  std::string category;  // Table 1 category label
};

/// Canonical issuer DN -> vendor info. Transparent comparator: detection
/// probes with the leaf's cached canonical form (a view) per candidate.
using VendorDirectory = std::map<std::string, VendorInfo, std::less<>>;

/// Per-issuer interception finding.
struct InterceptionFinding {
  std::string issuer_canonical;
  std::string issuer_display;  // RFC 4514 form
  VendorInfo vendor;
  std::uint64_t connections = 0;
  std::set<std::string> client_ips;
};

/// Aggregated Table 1 row. `issuers` counts distinct vendors (the paper's
/// 80 "issuers" are intercepting entities, not individual CA certificates).
struct InterceptionCategoryRow {
  std::string category;
  std::size_t issuers = 0;
  std::uint64_t connections = 0;
  std::size_t client_ips = 0;
};

struct InterceptionReport {
  std::vector<InterceptionFinding> findings;  // one per confirmed issuer
  /// CT-mismatch candidates that no directory entry confirmed.
  std::set<std::string> unconfirmed_candidates;
  std::uint64_t total_connections = 0;

  /// Every directory DN belonging to a confirmed vendor (the vendor's whole
  /// CA apparatus — inspection intermediates and roots). Filled by detect().
  chain::InterceptionIssuerSet vendor_issuer_dns;

  /// The set the chain categorizer consumes: the detected leaf-signing DNs
  /// plus every other DN of the confirmed vendors. Chains presenting only a
  /// middlebox root (the single-certificate case, 13.24% of interception
  /// chains) are attributed through the vendor expansion.
  chain::InterceptionIssuerSet issuer_set() const;

  /// Table 1 rows, ordered by descending connection share.
  std::vector<InterceptionCategoryRow> category_rows() const;
};

class InterceptionDetector {
 public:
  InterceptionDetector(const truststore::TrustStoreSet& stores,
                       const ct::CtLogSet& ct_logs, const VendorDirectory& directory)
      : stores_(&stores), ct_logs_(&ct_logs), directory_(&directory) {}

  /// Runs detection over the deduplicated corpus. Chains are flagged via
  /// their observed SNI domains; SNI-less traffic cannot be checked against
  /// CT (Appendix B limitation, reproduced faithfully).
  InterceptionReport detect(const CorpusIndex& corpus) const;

  /// Sharded detection: the per-chain candidate test runs over consecutive
  /// corpus ranges on the pool; the partial finding maps merge in range
  /// order (identity fields first-wins, counts summed, client sets unioned)
  /// before the serial vendor expansion and sort — producing exactly the
  /// serial detect()'s report. A null or single-worker pool falls back to
  /// the serial path.
  InterceptionReport detect(const CorpusIndex& corpus,
                            par::ThreadPool* pool) const;

  /// Uniform `(input, options, obs)` entry (DESIGN.md §11): resolves
  /// options.threads to the serial or sharded path, and — when `obs` is
  /// given — wraps detection in an `interception.detect` stage span with
  /// chains-in/findings counters. Output is identical to the other
  /// overloads at every thread count.
  InterceptionReport detect(const CorpusIndex& corpus, const RunOptions& options,
                            obs::RunContext* obs = nullptr) const;

  /// The per-chain primitive: true if the leaf issuer is absent from public
  /// databases and CT records a different issuer for `domain` during the
  /// leaf's validity.
  bool is_interception_candidate(const chain::CertificateChain& chain,
                                 std::string_view domain) const;

  /// Pool-handle primitive: the same test with the leaf's issuer given as a
  /// Dn (classification goes through the canonical-form overload, the CT
  /// cross-reference through the pooled parse). Invalid handles are never
  /// candidates.
  bool is_interception_candidate(core::Dn leaf_issuer,
                                 const util::TimeRange& leaf_validity,
                                 std::string_view domain) const;

 private:
  const truststore::TrustStoreSet* stores_;
  const ct::CtLogSet* ct_logs_;
  const VendorDirectory* directory_;
};

}  // namespace certchain::core
