#include "core/log_source.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace certchain::core {

namespace {

class TextLogSource final : public LogSource {
 public:
  TextLogSource(std::string_view view, std::string owned, bool owns,
                std::string name)
      : owned_(std::move(owned)), name_(std::move(name)) {
    view_ = owns ? std::string_view(owned_) : view;
  }

  std::string_view name() const override { return name_; }
  std::uint64_t size_hint() const override { return view_.size(); }

  bool seek(std::uint64_t offset) override {
    if (offset > view_.size()) return false;
    pos_ = static_cast<std::size_t>(offset);
    return true;
  }

  std::size_t read(std::string& out, std::size_t max_bytes) override {
    const std::size_t n = std::min(max_bytes, view_.size() - pos_);
    out.assign(view_.data() + pos_, n);
    pos_ += n;
    return n;
  }

 private:
  std::string owned_;
  std::string_view view_;
  std::string name_;
  std::size_t pos_ = 0;
};

class FileLogSource final : public LogSource {
 public:
  FileLogSource(std::FILE* file, std::string path, std::uint64_t size)
      : file_(file), path_(std::move(path)), size_(size) {}
  ~FileLogSource() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  std::string_view name() const override { return path_; }
  std::uint64_t size_hint() const override { return size_; }

  bool seek(std::uint64_t offset) override {
    return std::fseek(file_, static_cast<long>(offset), SEEK_SET) == 0;
  }

  std::size_t read(std::string& out, std::size_t max_bytes) override {
    out.resize(max_bytes);
    const std::size_t n = std::fread(out.data(), 1, max_bytes, file_);
    out.resize(n);
    return n;
  }

 private:
  std::FILE* file_;
  std::string path_;
  std::uint64_t size_;
};

class FunctionLogSource final : public LogSource {
 public:
  FunctionLogSource(std::function<std::size_t(std::string&, std::size_t)> producer,
                    std::string name, std::function<void()> rewind)
      : producer_(std::move(producer)),
        rewind_(std::move(rewind)),
        name_(std::move(name)) {}

  std::string_view name() const override { return name_; }

  bool seek(std::uint64_t offset) override {
    if (offset != 0) return false;
    if (rewind_) rewind_();
    return true;
  }

  std::size_t read(std::string& out, std::size_t max_bytes) override {
    return producer_(out, max_bytes);
  }

 private:
  std::function<std::size_t(std::string&, std::size_t)> producer_;
  std::function<void()> rewind_;
  std::string name_;
};

}  // namespace

std::unique_ptr<LogSource> make_text_source(std::string_view text,
                                            std::string name) {
  return std::make_unique<TextLogSource>(text, std::string(), false,
                                         std::move(name));
}

std::unique_ptr<LogSource> make_owned_text_source(std::string text,
                                                  std::string name) {
  return std::make_unique<TextLogSource>(std::string_view(), std::move(text),
                                         true, std::move(name));
}

std::unique_ptr<LogSource> open_file_source(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return nullptr;
  std::uint64_t size = 0;
  if (std::fseek(file, 0, SEEK_END) == 0) {
    const long end = std::ftell(file);
    if (end > 0) size = static_cast<std::uint64_t>(end);
    std::rewind(file);
  }
  return std::make_unique<FileLogSource>(file, path, size);
}

std::unique_ptr<LogSource> make_function_source(
    std::function<std::size_t(std::string&, std::size_t)> producer,
    std::string name, std::function<void()> rewind) {
  return std::make_unique<FunctionLogSource>(std::move(producer),
                                             std::move(name), std::move(rewind));
}

}  // namespace certchain::core
