// Byte sources for the streaming execution engine.
//
// At production scale the corpus is tens of GB of Zeek logs; requiring it
// resident in one std::string is what PR 4 removes. A LogSource hands the
// pipeline the input in caller-sized chunks — from memory, from a file, or
// from anything a callback can produce — and supports repositioning so a
// checkpointed run can resume at the last chunk boundary. The streamed
// report is byte-identical to the in-memory run no matter which source or
// chunk size delivered the bytes (DESIGN.md §11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace certchain::core {

class LogSource {
 public:
  virtual ~LogSource() = default;

  /// Human-readable origin ("<memory>", a file path) for telemetry/config.
  virtual std::string_view name() const = 0;

  /// Total size in bytes when known, 0 otherwise (telemetry only — the
  /// engine never preallocates from it).
  virtual std::uint64_t size_hint() const { return 0; }

  /// Repositions the next read() at absolute byte `offset` (checkpoint
  /// resume). Returns false when the source cannot seek or the offset is out
  /// of range.
  virtual bool seek(std::uint64_t offset) = 0;

  /// Reads up to `max_bytes` into `out` (replacing its contents). Returns
  /// the number of bytes read; 0 means end of stream.
  virtual std::size_t read(std::string& out, std::size_t max_bytes) = 0;
};

/// In-memory source over a caller-owned buffer (the view must outlive the
/// source). The bridge from the historical string_view entry points.
std::unique_ptr<LogSource> make_text_source(std::string_view text,
                                            std::string name = "<memory>");

/// In-memory source that owns its buffer.
std::unique_ptr<LogSource> make_owned_text_source(std::string text,
                                                  std::string name = "<memory>");

/// File-backed source reading in chunks. Returns nullptr when the file
/// cannot be opened.
std::unique_ptr<LogSource> open_file_source(const std::string& path);

/// Pull-callback source: `producer(out, max_bytes)` fills `out` and returns
/// the byte count (0 = EOF). Seeking is unsupported (seek(0) alone succeeds,
/// by re-invoking `rewind` when provided). Used by tests and adapters that
/// generate or transform a stream on the fly.
std::unique_ptr<LogSource> make_function_source(
    std::function<std::size_t(std::string&, std::size_t)> producer,
    std::string name = "<function>", std::function<void()> rewind = nullptr);

}  // namespace certchain::core
