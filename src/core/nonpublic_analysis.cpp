#include "core/nonpublic_analysis.hpp"

#include <cctype>
#include <set>

#include "chain/matcher.hpp"

namespace certchain::core {

bool looks_like_dga_name(const std::string& name) {
  // "www" + >= 6 alphabetic chars + "com", one label, no dots.
  if (name.size() < 12) return false;
  if (name.rfind("www", 0) != 0) return false;
  if (name.compare(name.size() - 3, 3, "com") != 0) return false;
  for (const char c : name) {
    if (!std::isalpha(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool is_dga_certificate(const x509::Certificate& cert) {
  if (cert.is_self_signed()) return false;  // the cluster has distinct fields
  const auto issuer_cn = cert.issuer.common_name();
  const auto subject_cn = cert.subject.common_name();
  if (!issuer_cn || !subject_cn) return false;
  return looks_like_dga_name(*issuer_cn) && looks_like_dga_name(*subject_cn);
}

NonPublicReport NonPublicAnalyzer::analyze(
    std::string category_label,
    const std::vector<const ChainObservation*>& chains) const {
  NonPublicReport report;
  report.category_label = std::move(category_label);

  std::set<std::string> all_clients;
  std::set<std::string> single_clients;
  std::set<std::string> dga_clients;

  for (const ChainObservation* observation : chains) {
    const auto& chain = observation->chain;
    if (chain.empty()) continue;
    ++report.chains;
    report.connections += observation->connections;
    all_clients.insert(observation->client_ips.begin(), observation->client_ips.end());

    if (chain.is_single()) {
      ++report.single_chains;
      report.single_connections += observation->connections;
      report.single_no_sni_connections += observation->without_sni;
      single_clients.insert(observation->client_ips.begin(),
                            observation->client_ips.end());
      if (chain.first_is_self_signed()) ++report.single_self_signed;
      if (is_dga_certificate(chain.first())) {
        ++report.dga_chains;
        report.dga_connections += observation->connections;
        dga_clients.insert(observation->client_ips.begin(),
                           observation->client_ips.end());
      }
      for (const auto& [port, count] : observation->ports.items()) {
        report.ports_single.add(port, count);
      }
      continue;
    }

    // Multi-certificate chains.
    ++report.multi_chains;
    for (const auto& [port, count] : observation->ports.items()) {
      report.ports_multi.add(port, count);
    }

    // basicConstraints omission statistics (§4.3). The three giant outlier
    // chains are excluded here as in Figure 1 — their thousands of junk
    // certificates would swamp the percentages.
    if (chain.length() <= 30)
    for (std::size_t i = 0; i < chain.length(); ++i) {
      const bool omitted = !chain.at(i).basic_constraints.present;
      if (i == 0) {
        ++report.first_position_certs;
        if (omitted) ++report.first_position_bc_omitted;
      } else {
        ++report.later_position_certs;
        if (omitted) ++report.later_position_bc_omitted;
      }
    }

    // Matched-path structure with the leaf test disabled (§4.3).
    const chain::PathAnalysis analysis =
        chain::analyze_paths(chain, registry_, /*require_leaf=*/false);
    if (analysis.is_complete_path()) {
      ++report.is_matched_path;
    } else if (analysis.contains_complete_path()) {
      ++report.contains_matched_path;
    } else {
      ++report.no_matched_path;
    }
  }

  report.client_ips = all_clients.size();
  report.single_client_ips = single_clients.size();
  report.dga_client_ips = dga_clients.size();
  return report;
}

}  // namespace certchain::core
