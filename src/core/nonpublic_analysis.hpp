// Non-public-DB-only and TLS-interception chain analysis (§4.3; Table 8;
// the DGA special case; the basicConstraints omission statistics; and the
// per-category port distribution of Table 4 / Appendix C).
//
// For these chains the leaf test is disabled: non-public issuers routinely
// omit basicConstraints, so "complete matched path" here means a matched run
// spanning at least two certificates (§4.3 methodology).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/cross_sign_registry.hpp"
#include "core/corpus.hpp"
#include "util/stats.hpp"

namespace certchain::core {

/// §4.3 + Table 8 numbers for one chain category.
struct NonPublicReport {
  std::string category_label;

  // Population.
  std::size_t chains = 0;
  std::uint64_t connections = 0;
  std::size_t client_ips = 0;

  // Single-certificate chains.
  std::size_t single_chains = 0;
  std::size_t single_self_signed = 0;
  std::uint64_t single_connections = 0;
  std::size_t single_client_ips = 0;
  std::uint64_t single_no_sni_connections = 0;

  // DGA cluster (single-cert chains, distinct issuer/subject, both CNs
  // matching the www<random>com pattern).
  std::size_t dga_chains = 0;
  std::uint64_t dga_connections = 0;
  std::size_t dga_client_ips = 0;

  // basicConstraints omission (§4.3): share of certificates omitting the
  // extension, split by first-in-chain vs subsequent positions. Computed
  // over the certificates of multi-certificate chains.
  std::uint64_t first_position_certs = 0;
  std::uint64_t first_position_bc_omitted = 0;
  std::uint64_t later_position_certs = 0;
  std::uint64_t later_position_bc_omitted = 0;

  // Table 8: multi-certificate chain structure.
  std::size_t multi_chains = 0;
  std::size_t is_matched_path = 0;        // whole chain is one matched run
  std::size_t contains_matched_path = 0;  // a >=2-cert run exists plus extras
  std::size_t no_matched_path = 0;        // no >=2-cert matched run

  // Port distribution (Table 4), split single/multi for the non-public
  // category the way the paper splits its columns.
  util::Counter<std::uint16_t> ports_single;
  util::Counter<std::uint16_t> ports_multi;

  double single_fraction() const {
    return chains == 0 ? 0.0
                       : static_cast<double>(single_chains) /
                             static_cast<double>(chains);
  }
  double single_self_signed_fraction() const {
    return single_chains == 0 ? 0.0
                              : static_cast<double>(single_self_signed) /
                                    static_cast<double>(single_chains);
  }
  double is_matched_path_fraction() const {
    return multi_chains == 0 ? 0.0
                             : static_cast<double>(is_matched_path) /
                                   static_cast<double>(multi_chains);
  }
  double bc_omitted_first_fraction() const {
    return first_position_certs == 0
               ? 0.0
               : static_cast<double>(first_position_bc_omitted) /
                     static_cast<double>(first_position_certs);
  }
  double bc_omitted_later_fraction() const {
    return later_position_certs == 0
               ? 0.0
               : static_cast<double>(later_position_bc_omitted) /
                     static_cast<double>(later_position_certs);
  }
};

/// True if `name` looks like the paper's DGA pattern: "www<alpha>com" as a
/// single label (the paper renders it www[dot]randomstring[dot]com).
bool looks_like_dga_name(const std::string& name);

/// True if a single-certificate chain belongs to the DGA cluster.
bool is_dga_certificate(const x509::Certificate& cert);

class NonPublicAnalyzer {
 public:
  explicit NonPublicAnalyzer(const chain::CrossSignRegistry* registry = nullptr)
      : registry_(registry) {}

  NonPublicReport analyze(std::string category_label,
                          const std::vector<const ChainObservation*>& chains) const;

 private:
  const chain::CrossSignRegistry* registry_;
};

}  // namespace certchain::core
