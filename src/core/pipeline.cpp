#include "core/pipeline.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "core/pipeline_detail.hpp"
#include "obs/run_context.hpp"
#include "par/thread_pool.hpp"
#include "truststore/issuer_classifier.hpp"
#include "zeek/joiner.hpp"
#include "zeek/log_stream.hpp"

namespace certchain::core {

using chain::ChainCategory;
using detail::publish_stage;
using detail::stage_timer;

std::string_view ingest_mode_name(IngestMode mode) {
  switch (mode) {
    case IngestMode::kStrict: return "strict";
    case IngestMode::kLenient: return "lenient";
  }
  return "unknown";
}

StudyReport StudyPipeline::run(const StudyInput& input, const RunOptions& options,
                               obs::RunContext* obs) const {
  if (obs != nullptr) obs->set_config("input.kind", input.describe());
  switch (input.kind()) {
    case StudyInput::Kind::kRecords:
      return run_records(input.ssl_records(), input.x509_records(), options, obs);
    case StudyInput::Kind::kText:
      return run_text(input.ssl_text(), input.x509_text(), options, obs);
    case StudyInput::Kind::kSources:
    case StudyInput::Kind::kFiles: {
      const std::shared_ptr<LogSource> ssl = input.open_ssl_source();
      if (ssl == nullptr) {
        throw IngestError("cannot open SSL log source: " + input.ssl_path());
      }
      const std::shared_ptr<LogSource> x509 = input.open_x509_source();
      if (x509 == nullptr) {
        throw IngestError("cannot open X509 log source: " + input.x509_path());
      }
      return run_streaming(*ssl, *x509, options, obs);
    }
  }
  throw IngestError("unknown StudyInput kind");
}

StudyReport StudyPipeline::run_records(
    const std::vector<zeek::SslLogRecord>& ssl,
    const std::vector<zeek::X509LogRecord>& x509, const RunOptions& options,
    obs::RunContext* obs) const {
  const std::size_t threads = par::resolve_threads(options.threads);
  if (threads <= 1) return run_records_serial(ssl, x509, obs);
  par::ThreadPool pool(threads);
  if (obs != nullptr) {
    obs->set_config("par.threads", static_cast<std::uint64_t>(pool.size()));
  }
  return run_on_pool(pool, ssl, x509, obs);
}

StudyReport StudyPipeline::run_records_serial(
    const std::vector<zeek::SslLogRecord>& ssl,
    const std::vector<zeek::X509LogRecord>& x509, obs::RunContext* obs,
    DnPool* dn_pool) const {
  auto pipeline_timer = stage_timer(obs, "pipeline");

  // Stage 0: join SSL and X509 rows and deduplicate chains. The joiner runs
  // on the run's DnPool (the caller's, or a run-local one): each distinct DN
  // spelling parses once, and every joined certificate is fingerprint-sealed
  // and id-stamped before the fold sees it.
  DnPool local_pool;
  DnPool* pool = dn_pool != nullptr ? dn_pool : &local_pool;
  zeek::LogJoiner joiner;
  joiner.set_dn_pool(pool);
  for (const zeek::X509LogRecord& record : x509) joiner.add(record);
  CorpusIndex corpus;
  {
    auto timer = stage_timer(obs, "join");
    for (const zeek::SslLogRecord& record : ssl) corpus.add(joiner, record);
  }
  return analyze_corpus(corpus, obs, pool);
}

StudyReport StudyPipeline::analyze(const CorpusIndex& corpus,
                                   obs::RunContext* obs,
                                   const DnPool* dn_pool) const {
  auto pipeline_timer = stage_timer(obs, "pipeline");
  return analyze_corpus(corpus, obs, dn_pool);
}

StudyReport StudyPipeline::analyze_corpus(const CorpusIndex& corpus,
                                          obs::RunContext* obs,
                                          const DnPool* dn_pool) const {
  StudyReport report;
  report.totals = corpus.totals();
  report.unique_chains = corpus.unique_chain_count();
  publish_stage(obs, "join", report.totals.connections,
                report.totals.with_certificates,
                report.totals.connections - report.totals.with_certificates);
  detail::publish_join_counters(obs, report);

  // Stage 1: certificate enrichment — interception identification (the
  // issuer classification itself happens lazily via the trust-store set).
  chain::InterceptionIssuerSet interception_issuers;
  {
    auto timer = stage_timer(obs, "enrich");
    const InterceptionDetector detector(*stores_, *ct_logs_, *vendors_);
    report.interception = detector.detect(corpus);
    interception_issuers = report.interception.issuer_set();
  }
  publish_stage(obs, "enrich", report.unique_chains, report.unique_chains, 0);
  detail::publish_enrich_counters(obs, report);

  // Stage 2: chain categorization + usage statistics + Figure 1 data. With a
  // pool the per-certificate work is a DnId set probe plus a memo load; the
  // string path remains for poolless corpora, with identical verdicts.
  detail::CategorySlices slices;
  {
    auto timer = stage_timer(obs, "categorize");
    detail::CategorizeFold fold;
    if (dn_pool != nullptr) {
      truststore::IssuerClassifier classifier(*stores_, *dn_pool);
      const std::set<DnId> interception_ids =
          chain::issuer_ids_for(interception_issuers, *dn_pool);
      for (const auto& [chain_id, observation] : corpus.chains()) {
        fold.add(observation,
                 chain::categorize_chain(observation.chain, classifier,
                                         interception_issuers, interception_ids));
      }
    } else {
      for (const auto& [chain_id, observation] : corpus.chains()) {
        fold.add(observation, chain::categorize_chain(observation.chain, *stores_,
                                                      interception_issuers));
      }
    }
    slices = std::move(fold.slices);
    fold.finish(report);
  }
  publish_stage(obs, "categorize", report.unique_chains, report.unique_chains, 0);
  publish_stage(obs, "figure1", report.unique_chains,
                report.unique_chains - report.excluded_outliers.size(),
                report.excluded_outliers.size());
  detail::publish_categorize_counters(obs, report);

  // Stage 3: per-category structure analysis.
  {
    auto timer = stage_timer(obs, "structure");
    const HybridAnalyzer hybrid_analyzer(*stores_, *ct_logs_, registry_,
                                         dn_pool);
    report.hybrid = hybrid_analyzer.analyze(slices[ChainCategory::kHybrid]);

    const NonPublicAnalyzer non_public_analyzer(registry_);
    report.non_public = non_public_analyzer.analyze(
        "Non-public-DB-only", slices[ChainCategory::kNonPublicDbOnly]);
    report.interception_chains = non_public_analyzer.analyze(
        "TLS interception", slices[ChainCategory::kTlsInterception]);
  }
  const std::uint64_t structure_in = detail::structure_in_count(slices);
  publish_stage(obs, "structure", structure_in, structure_in, 0);
  detail::publish_structure_counters(obs, slices);

  // Stage 4: PKI relationship graphs.
  {
    auto timer = stage_timer(obs, "graphs");
    report.hybrid_graph =
        build_pki_graph(slices[ChainCategory::kHybrid], *stores_, dn_pool);
    report.non_public_graph = build_pki_graph(
        slices[ChainCategory::kNonPublicDbOnly], *stores_, dn_pool);
    report.interception_graph = build_pki_graph(
        slices[ChainCategory::kTlsInterception], *stores_, dn_pool);
  }
  publish_stage(obs, "graphs", structure_in, structure_in, 0);
  detail::publish_graph_counters(obs, report);

  // Stage 5: per-issuer-category CT compliance over the unique chains.
  {
    auto timer = stage_timer(obs, "ct_compliance");
    const CtComplianceAnalyzer ct_analyzer(*stores_, *ct_logs_);
    report.ct_compliance = ct_analyzer.analyze(corpus);
  }
  publish_stage(obs, "ct_compliance", report.unique_chains, report.unique_chains, 0);
  detail::publish_ct_compliance_counters(obs, report);

  return report;
}

namespace {

/// Feeds `text` through a streaming reader in chunks, publishes the reader's
/// accounting as `ingest.<stream>.*` registry counters, and fills `stats`
/// back FROM those counters — the registry is the single source, so the
/// report's data-quality section and the metrics export cannot disagree.
/// Strict mode surfaces the first recorded error instead of returning.
template <typename Reader>
void drive_stream(Reader& reader, std::string_view text, const char* stream_name,
                  const IngestOptions& options, obs::MetricsRegistry& metrics,
                  IngestStreamStats& stats, IngestReport& report) {
  const std::string prefix = std::string("ingest.") + stream_name + ".";
  const auto counter_at = [&metrics, &prefix](const char* leaf) {
    return metrics.counter(prefix + leaf);
  };
  const std::uint64_t bytes_before = counter_at("bytes_consumed");
  const std::uint64_t lines_before = counter_at("lines");
  const std::uint64_t records_before = counter_at("records");
  const std::uint64_t malformed_before = counter_at("rows_malformed");
  const std::uint64_t skipped_before = counter_at("lines_skipped");
  const std::uint64_t rotations_before = counter_at("rotations");

  const std::size_t chunk =
      options.feed_chunk_bytes == 0 ? std::max<std::size_t>(1, text.size())
                                    : options.feed_chunk_bytes;
  for (std::size_t pos = 0; pos < text.size(); pos += chunk) {
    reader.feed(text.substr(pos, std::min(chunk, text.size() - pos)));
  }
  reader.finish();

  metrics.count(prefix + "bytes_consumed", reader.bytes_consumed());
  metrics.count(prefix + "lines", reader.lines_seen());
  metrics.count(prefix + "records", reader.records_emitted());
  metrics.count(prefix + "rows_malformed", reader.malformed_rows());
  metrics.count(prefix + "lines_skipped", reader.lines_skipped());
  metrics.count(prefix + "rotations", reader.rotations_seen());

  stats.bytes = counter_at("bytes_consumed") - bytes_before;
  stats.lines = counter_at("lines") - lines_before;
  stats.records = counter_at("records") - records_before;
  stats.malformed_rows = counter_at("rows_malformed") - malformed_before;
  stats.skipped_lines = counter_at("lines_skipped") - skipped_before;
  stats.rotations = counter_at("rotations") - rotations_before;

  for (const auto& error : reader.errors()) {
    if (report.sample_errors.size() >= IngestReport::kMaxSampleErrors) break;
    report.sample_errors.push_back(std::string(stream_name) + " line " +
                                   std::to_string(error.line_number) + ": " +
                                   error.message);
  }
  if (options.mode == IngestMode::kStrict && reader.lines_skipped() > 0) {
    const auto& first = reader.errors().front();
    throw IngestError(std::string(stream_name) + " log line " +
                      std::to_string(first.line_number) + ": " + first.message);
  }
}

}  // namespace

StudyReport StudyPipeline::run_text_serial(std::string_view ssl_log_text,
                                           std::string_view x509_log_text,
                                           const IngestOptions& options,
                                           obs::RunContext* obs) const {
  // Ingestion accounting always flows through a registry; without an
  // injected context a run-local one keeps the single-source guarantee.
  obs::RunContext local;
  obs::RunContext* ctx = obs != nullptr ? obs : &local;

  IngestReport ingest;
  ingest.populated = true;
  ingest.mode = options.mode;

  // One pool for the whole run: the readers stamp record ids as rows parse
  // (ids minted in stream order — the interning differential asserts the
  // sharded path remaps to exactly these), the joiner reuses the same pool's
  // raw-bytes memo, and the analysis stages compare its ids.
  DnPool dn_pool;
  std::vector<zeek::SslLogRecord> ssl;
  std::vector<zeek::X509LogRecord> x509;
  // Reserving from the newline count (a slight overcount: headers) keeps the
  // record vectors from doubling through ~2x the needed footprint while rows
  // accumulate — growth reallocation briefly holds old and new buffers.
  ssl.reserve(static_cast<std::size_t>(
      std::count(ssl_log_text.begin(), ssl_log_text.end(), '\n')));
  x509.reserve(static_cast<std::size_t>(
      std::count(x509_log_text.begin(), x509_log_text.end(), '\n')));
  {
    obs::StageTimer timer(*ctx, "ingest");
    auto ssl_reader = zeek::make_streaming_ssl_reader(
        [&ssl](zeek::SslLogRecord record) { ssl.push_back(std::move(record)); });
    ssl_reader.set_dn_pool(&dn_pool);
    drive_stream(ssl_reader, ssl_log_text, "ssl", options, ctx->metrics,
                 ingest.ssl, ingest);

    auto x509_reader = zeek::make_streaming_x509_reader(
        [&x509](zeek::X509LogRecord record) { x509.push_back(std::move(record)); });
    x509_reader.set_dn_pool(&dn_pool);
    drive_stream(x509_reader, x509_log_text, "x509", options, ctx->metrics,
                 ingest.x509, ingest);
  }
  // The stage triple counts rows that carried (or should have carried) data;
  // header/comment lines are neither admitted nor dropped.
  publish_stage(ctx, "ingest",
                ingest.ssl.records + ingest.x509.records + ingest.skipped_total(),
                ingest.ssl.records + ingest.x509.records,
                ingest.skipped_total());

  StudyReport report = run_records_serial(ssl, x509, obs, &dn_pool);
  report.ingest = std::move(ingest);
  return report;
}

}  // namespace certchain::core
