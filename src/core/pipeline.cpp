#include "core/pipeline.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "obs/run_context.hpp"
#include "zeek/joiner.hpp"
#include "zeek/log_stream.hpp"

namespace certchain::core {

using chain::ChainCategory;

std::string_view ingest_mode_name(IngestMode mode) {
  switch (mode) {
    case IngestMode::kStrict: return "strict";
    case IngestMode::kLenient: return "lenient";
  }
  return "unknown";
}

namespace {

/// Opens a StageTimer only when telemetry is attached.
std::optional<obs::StageTimer> stage_timer(obs::RunContext* obs,
                                           const char* name) {
  std::optional<obs::StageTimer> timer;
  if (obs != nullptr) timer.emplace(*obs, name);
  return timer;
}

/// Publishes the reserved manifest triple for one stage.
void publish_stage(obs::RunContext* obs, const char* stage, std::uint64_t in,
                   std::uint64_t admitted, std::uint64_t dropped) {
  if (obs == nullptr) return;
  const std::string prefix = std::string("stage.") + stage + ".";
  obs->metrics.count(prefix + "in", in);
  obs->metrics.count(prefix + "admitted", admitted);
  obs->metrics.count(prefix + "dropped", dropped);
}

}  // namespace

StudyReport StudyPipeline::run(const std::vector<zeek::SslLogRecord>& ssl,
                               const std::vector<zeek::X509LogRecord>& x509,
                               obs::RunContext* obs) const {
  StudyReport report;
  auto pipeline_timer = stage_timer(obs, "pipeline");

  // Stage 0: join SSL and X509 rows and deduplicate chains.
  const zeek::LogJoiner joiner(x509);
  CorpusIndex corpus;
  {
    auto timer = stage_timer(obs, "join");
    for (const zeek::SslLogRecord& record : ssl) corpus.add(joiner.join(record));
    report.totals = corpus.totals();
    report.unique_chains = corpus.unique_chain_count();
  }
  publish_stage(obs, "join", report.totals.connections,
                report.totals.with_certificates,
                report.totals.connections - report.totals.with_certificates);
  if (obs != nullptr) {
    obs::MetricsRegistry& metrics = obs->metrics;
    metrics.count("pipeline.connections", report.totals.connections);
    metrics.count("pipeline.connections.tls13", report.totals.tls13_connections);
    metrics.count("pipeline.connections.incomplete_joins",
                  report.totals.incomplete_joins);
    metrics.count("pipeline.unique_chains", report.unique_chains);
    metrics.count("pipeline.distinct_certificates",
                  report.totals.distinct_certificates);
  }

  // Stage 1: certificate enrichment — interception identification (the
  // issuer classification itself happens lazily via the trust-store set).
  chain::InterceptionIssuerSet interception_issuers;
  {
    auto timer = stage_timer(obs, "enrich");
    const InterceptionDetector detector(*stores_, *ct_logs_, *vendors_);
    report.interception = detector.detect(corpus);
    interception_issuers = report.interception.issuer_set();
  }
  publish_stage(obs, "enrich", report.unique_chains, report.unique_chains, 0);
  if (obs != nullptr) {
    obs->metrics.count("enrich.interception.issuers",
                       report.interception.findings.size());
    obs->metrics.count("enrich.interception.unconfirmed",
                       report.interception.unconfirmed_candidates.size());
  }

  // Stage 2: chain categorization + usage statistics + Figure 1 data.
  std::map<ChainCategory, std::vector<const ChainObservation*>> slices;
  {
    auto timer = stage_timer(obs, "categorize");
    std::map<ChainCategory, std::set<std::string>> clients_by_category;
    for (const auto& [chain_id, observation] : corpus.chains()) {
      const ChainCategory category =
          chain::categorize_chain(observation.chain, *stores_, interception_issuers);
      slices[category].push_back(&observation);

      CategoryUsage& usage = report.categories[category];
      ++usage.chains;
      usage.connections += observation.connections;
      clients_by_category[category].insert(observation.client_ips.begin(),
                                           observation.client_ips.end());

      // Figure 1 series with the outlier rule.
      if (observation.chain.length() > kOutlierLength && observation.connections == 1) {
        ExcludedOutlier outlier;
        outlier.length = observation.chain.length();
        outlier.category = category;
        outlier.connections = observation.connections;
        outlier.established_any = observation.established > 0;
        report.excluded_outliers.push_back(outlier);
      } else {
        report.chain_lengths[category].push_back(observation.chain.length());
      }

      if (category == ChainCategory::kHybrid) {
        for (const auto& [port, count] : observation.ports.items()) {
          report.ports_hybrid.add(port, count);
        }
      }
    }
    for (auto& [category, clients] : clients_by_category) {
      report.categories[category].client_ips = clients.size();
    }
  }
  publish_stage(obs, "categorize", report.unique_chains, report.unique_chains, 0);
  publish_stage(obs, "figure1", report.unique_chains,
                report.unique_chains - report.excluded_outliers.size(),
                report.excluded_outliers.size());
  if (obs != nullptr) {
    obs::MetricsRegistry& metrics = obs->metrics;
    for (const auto& [category, usage] : report.categories) {
      const std::string slug = obs::metric_slug(chain::chain_category_name(category));
      metrics.count("categorize.chains." + slug, usage.chains);
      metrics.count("categorize.connections." + slug, usage.connections);
    }
    for (const auto& [category, lengths] : report.chain_lengths) {
      for (const std::size_t length : lengths) {
        metrics.observe("pipeline.chain_length", static_cast<double>(length));
      }
    }
  }

  // Stage 3: per-category structure analysis.
  {
    auto timer = stage_timer(obs, "structure");
    const HybridAnalyzer hybrid_analyzer(*stores_, *ct_logs_, registry_);
    report.hybrid = hybrid_analyzer.analyze(slices[ChainCategory::kHybrid]);

    const NonPublicAnalyzer non_public_analyzer(registry_);
    report.non_public = non_public_analyzer.analyze(
        "Non-public-DB-only", slices[ChainCategory::kNonPublicDbOnly]);
    report.interception_chains = non_public_analyzer.analyze(
        "TLS interception", slices[ChainCategory::kTlsInterception]);
  }
  const std::uint64_t structure_in = slices[ChainCategory::kHybrid].size() +
                                     slices[ChainCategory::kNonPublicDbOnly].size() +
                                     slices[ChainCategory::kTlsInterception].size();
  publish_stage(obs, "structure", structure_in, structure_in, 0);
  if (obs != nullptr) {
    obs::MetricsRegistry& metrics = obs->metrics;
    metrics.count("structure.hybrid.chains",
                  slices[ChainCategory::kHybrid].size());
    metrics.count("structure.non_public.chains",
                  slices[ChainCategory::kNonPublicDbOnly].size());
    metrics.count("structure.interception.chains",
                  slices[ChainCategory::kTlsInterception].size());
  }

  // Stage 4: PKI relationship graphs.
  {
    auto timer = stage_timer(obs, "graphs");
    report.hybrid_graph = build_pki_graph(slices[ChainCategory::kHybrid], *stores_);
    report.non_public_graph =
        build_pki_graph(slices[ChainCategory::kNonPublicDbOnly], *stores_);
    report.interception_graph =
        build_pki_graph(slices[ChainCategory::kTlsInterception], *stores_);
  }
  publish_stage(obs, "graphs", structure_in, structure_in, 0);
  if (obs != nullptr) {
    obs::MetricsRegistry& metrics = obs->metrics;
    const auto graph_counters = [&metrics](const char* name, const PkiGraph& graph) {
      const std::string prefix = std::string("graphs.") + name + ".";
      metrics.count(prefix + "nodes", graph.node_count());
      metrics.count(prefix + "issuance_links", graph.issuance_links().size());
      metrics.count(prefix + "complex_intermediates",
                    graph.complex_intermediates().size());
    };
    graph_counters("hybrid", report.hybrid_graph);
    graph_counters("non_public", report.non_public_graph);
    graph_counters("interception", report.interception_graph);
  }

  return report;
}

namespace {

/// Feeds `text` through a streaming reader in chunks, publishes the reader's
/// accounting as `ingest.<stream>.*` registry counters, and fills `stats`
/// back FROM those counters — the registry is the single source, so the
/// report's data-quality section and the metrics export cannot disagree.
/// Strict mode surfaces the first recorded error instead of returning.
template <typename Reader>
void drive_stream(Reader& reader, std::string_view text, const char* stream_name,
                  const IngestOptions& options, obs::MetricsRegistry& metrics,
                  IngestStreamStats& stats, IngestReport& report) {
  const std::string prefix = std::string("ingest.") + stream_name + ".";
  const auto counter_at = [&metrics, &prefix](const char* leaf) {
    return metrics.counter(prefix + leaf);
  };
  const std::uint64_t bytes_before = counter_at("bytes_consumed");
  const std::uint64_t lines_before = counter_at("lines");
  const std::uint64_t records_before = counter_at("records");
  const std::uint64_t malformed_before = counter_at("rows_malformed");
  const std::uint64_t skipped_before = counter_at("lines_skipped");
  const std::uint64_t rotations_before = counter_at("rotations");

  const std::size_t chunk =
      options.feed_chunk_bytes == 0 ? std::max<std::size_t>(1, text.size())
                                    : options.feed_chunk_bytes;
  for (std::size_t pos = 0; pos < text.size(); pos += chunk) {
    reader.feed(text.substr(pos, std::min(chunk, text.size() - pos)));
  }
  reader.finish();

  metrics.count(prefix + "bytes_consumed", reader.bytes_consumed());
  metrics.count(prefix + "lines", reader.lines_seen());
  metrics.count(prefix + "records", reader.records_emitted());
  metrics.count(prefix + "rows_malformed", reader.malformed_rows());
  metrics.count(prefix + "lines_skipped", reader.lines_skipped());
  metrics.count(prefix + "rotations", reader.rotations_seen());

  stats.bytes = counter_at("bytes_consumed") - bytes_before;
  stats.lines = counter_at("lines") - lines_before;
  stats.records = counter_at("records") - records_before;
  stats.malformed_rows = counter_at("rows_malformed") - malformed_before;
  stats.skipped_lines = counter_at("lines_skipped") - skipped_before;
  stats.rotations = counter_at("rotations") - rotations_before;

  for (const auto& error : reader.errors()) {
    if (report.sample_errors.size() >= IngestReport::kMaxSampleErrors) break;
    report.sample_errors.push_back(std::string(stream_name) + " line " +
                                   std::to_string(error.line_number) + ": " +
                                   error.message);
  }
  if (options.mode == IngestMode::kStrict && reader.lines_skipped() > 0) {
    const auto& first = reader.errors().front();
    throw IngestError(std::string(stream_name) + " log line " +
                      std::to_string(first.line_number) + ": " + first.message);
  }
}

}  // namespace

StudyReport StudyPipeline::run_from_text(std::string_view ssl_log_text,
                                         std::string_view x509_log_text,
                                         const IngestOptions& options,
                                         obs::RunContext* obs) const {
  // Ingestion accounting always flows through a registry; without an
  // injected context a run-local one keeps the single-source guarantee.
  obs::RunContext local;
  obs::RunContext* ctx = obs != nullptr ? obs : &local;

  IngestReport ingest;
  ingest.populated = true;
  ingest.mode = options.mode;

  std::vector<zeek::SslLogRecord> ssl;
  std::vector<zeek::X509LogRecord> x509;
  {
    obs::StageTimer timer(*ctx, "ingest");
    auto ssl_reader = zeek::make_streaming_ssl_reader(
        [&ssl](zeek::SslLogRecord record) { ssl.push_back(std::move(record)); });
    drive_stream(ssl_reader, ssl_log_text, "ssl", options, ctx->metrics,
                 ingest.ssl, ingest);

    auto x509_reader = zeek::make_streaming_x509_reader(
        [&x509](zeek::X509LogRecord record) { x509.push_back(std::move(record)); });
    drive_stream(x509_reader, x509_log_text, "x509", options, ctx->metrics,
                 ingest.x509, ingest);
  }
  // The stage triple counts rows that carried (or should have carried) data;
  // header/comment lines are neither admitted nor dropped.
  publish_stage(ctx, "ingest",
                ingest.ssl.records + ingest.x509.records + ingest.skipped_total(),
                ingest.ssl.records + ingest.x509.records,
                ingest.skipped_total());

  StudyReport report = run(ssl, x509, obs);
  report.ingest = std::move(ingest);
  return report;
}

}  // namespace certchain::core
