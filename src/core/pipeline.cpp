#include "core/pipeline.hpp"

#include <algorithm>
#include <set>

#include "zeek/joiner.hpp"
#include "zeek/log_stream.hpp"

namespace certchain::core {

using chain::ChainCategory;

std::string_view ingest_mode_name(IngestMode mode) {
  switch (mode) {
    case IngestMode::kStrict: return "strict";
    case IngestMode::kLenient: return "lenient";
  }
  return "unknown";
}

StudyReport StudyPipeline::run(const std::vector<zeek::SslLogRecord>& ssl,
                               const std::vector<zeek::X509LogRecord>& x509) const {
  StudyReport report;

  // Stage 0: join SSL and X509 rows and deduplicate chains.
  const zeek::LogJoiner joiner(x509);
  CorpusIndex corpus;
  for (const zeek::SslLogRecord& record : ssl) corpus.add(joiner.join(record));
  report.totals = corpus.totals();
  report.unique_chains = corpus.unique_chain_count();

  // Stage 1: certificate enrichment — interception identification (the
  // issuer classification itself happens lazily via the trust-store set).
  const InterceptionDetector detector(*stores_, *ct_logs_, *vendors_);
  report.interception = detector.detect(corpus);
  const chain::InterceptionIssuerSet interception_issuers =
      report.interception.issuer_set();

  // Stage 2: chain categorization + usage statistics + Figure 1 data.
  std::map<ChainCategory, std::vector<const ChainObservation*>> slices;
  std::map<ChainCategory, std::set<std::string>> clients_by_category;
  for (const auto& [chain_id, observation] : corpus.chains()) {
    const ChainCategory category =
        chain::categorize_chain(observation.chain, *stores_, interception_issuers);
    slices[category].push_back(&observation);

    CategoryUsage& usage = report.categories[category];
    ++usage.chains;
    usage.connections += observation.connections;
    clients_by_category[category].insert(observation.client_ips.begin(),
                                         observation.client_ips.end());

    // Figure 1 series with the outlier rule.
    if (observation.chain.length() > kOutlierLength && observation.connections == 1) {
      ExcludedOutlier outlier;
      outlier.length = observation.chain.length();
      outlier.category = category;
      outlier.connections = observation.connections;
      outlier.established_any = observation.established > 0;
      report.excluded_outliers.push_back(outlier);
    } else {
      report.chain_lengths[category].push_back(observation.chain.length());
    }

    if (category == ChainCategory::kHybrid) {
      for (const auto& [port, count] : observation.ports.items()) {
        report.ports_hybrid.add(port, count);
      }
    }
  }
  for (auto& [category, clients] : clients_by_category) {
    report.categories[category].client_ips = clients.size();
  }

  // Stage 3: per-category structure analysis.
  const HybridAnalyzer hybrid_analyzer(*stores_, *ct_logs_, registry_);
  report.hybrid = hybrid_analyzer.analyze(slices[ChainCategory::kHybrid]);

  const NonPublicAnalyzer non_public_analyzer(registry_);
  report.non_public = non_public_analyzer.analyze(
      "Non-public-DB-only", slices[ChainCategory::kNonPublicDbOnly]);
  report.interception_chains = non_public_analyzer.analyze(
      "TLS interception", slices[ChainCategory::kTlsInterception]);

  // Stage 4: PKI relationship graphs.
  report.hybrid_graph = build_pki_graph(slices[ChainCategory::kHybrid], *stores_);
  report.non_public_graph =
      build_pki_graph(slices[ChainCategory::kNonPublicDbOnly], *stores_);
  report.interception_graph =
      build_pki_graph(slices[ChainCategory::kTlsInterception], *stores_);

  return report;
}

namespace {

/// Feeds `text` through a streaming reader in chunks, then folds the
/// reader's accounting into the ingest report. Strict mode surfaces the
/// first recorded error instead of returning.
template <typename Reader>
void drive_stream(Reader& reader, std::string_view text, const char* stream_name,
                  const IngestOptions& options, IngestStreamStats& stats,
                  IngestReport& report) {
  const std::size_t chunk =
      options.feed_chunk_bytes == 0 ? std::max<std::size_t>(1, text.size())
                                    : options.feed_chunk_bytes;
  for (std::size_t pos = 0; pos < text.size(); pos += chunk) {
    reader.feed(text.substr(pos, std::min(chunk, text.size() - pos)));
  }
  reader.finish();

  stats.lines = reader.lines_seen();
  stats.records = reader.records_emitted();
  stats.malformed_rows = reader.malformed_rows();
  stats.skipped_lines = reader.lines_skipped();
  stats.rotations = reader.rotations_seen();
  for (const auto& error : reader.errors()) {
    if (report.sample_errors.size() >= IngestReport::kMaxSampleErrors) break;
    report.sample_errors.push_back(std::string(stream_name) + " line " +
                                   std::to_string(error.line_number) + ": " +
                                   error.message);
  }
  if (options.mode == IngestMode::kStrict && reader.lines_skipped() > 0) {
    const auto& first = reader.errors().front();
    throw IngestError(std::string(stream_name) + " log line " +
                      std::to_string(first.line_number) + ": " + first.message);
  }
}

}  // namespace

StudyReport StudyPipeline::run_from_text(std::string_view ssl_log_text,
                                         std::string_view x509_log_text,
                                         const IngestOptions& options) const {
  IngestReport ingest;
  ingest.populated = true;
  ingest.mode = options.mode;

  std::vector<zeek::SslLogRecord> ssl;
  auto ssl_reader = zeek::make_streaming_ssl_reader(
      [&ssl](zeek::SslLogRecord record) { ssl.push_back(std::move(record)); });
  drive_stream(ssl_reader, ssl_log_text, "ssl", options, ingest.ssl, ingest);

  std::vector<zeek::X509LogRecord> x509;
  auto x509_reader = zeek::make_streaming_x509_reader(
      [&x509](zeek::X509LogRecord record) { x509.push_back(std::move(record)); });
  drive_stream(x509_reader, x509_log_text, "x509", options, ingest.x509, ingest);

  StudyReport report = run(ssl, x509);
  report.ingest = std::move(ingest);
  return report;
}

}  // namespace certchain::core
