// The certificate chain structure analyzer (Figure 2).
//
// StudyPipeline wires the stages of the paper's pipeline together:
//
//   Certificate Enrichment  -> issuer classification against the public
//                              databases + interception identification
//   Chain Categorization    -> public-DB-only / non-public-DB-only / hybrid /
//                              TLS interception (§3.2.2, Table 2)
//   Mismatch & Cross-sign   -> issuer-subject matching with the registry
//   Path Detection          -> complete/partial matched paths, unnecessary
//                              certificates, per-category reports
//
// Input is a StudyInput (parsed records, raw text, or streamed LogSources);
// output is a StudyReport holding every table/figure's data. Each analyzer
// can also be driven standalone — the pipeline only orchestrates.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "chain/categorizer.hpp"
#include "chain/cross_sign_registry.hpp"
#include "core/corpus.hpp"
#include "core/ct_compliance.hpp"
#include "core/dn_pool.hpp"
#include "core/ingest.hpp"
#include "core/hybrid_analysis.hpp"
#include "core/interception.hpp"
#include "core/nonpublic_analysis.hpp"
#include "core/pki_graph.hpp"
#include "core/run_options.hpp"
#include "core/study_input.hpp"
#include "ct/ct_log.hpp"
#include "netsim/simulator.hpp"
#include "truststore/trust_store.hpp"
#include "util/stats.hpp"
#include "zeek/log_io.hpp"

namespace certchain::obs {
struct RunContext;
}  // namespace certchain::obs

namespace certchain::par {
class ThreadPool;
}  // namespace certchain::par

namespace certchain::core {

/// Table 2 row.
struct CategoryUsage {
  std::size_t chains = 0;
  std::uint64_t connections = 0;
  std::size_t client_ips = 0;
};

/// A chain excluded from Figure 1 as a length outlier (the paper dropped
/// three chains of lengths 3,822, 921 and 41, each seen once).
struct ExcludedOutlier {
  std::size_t length = 0;
  chain::ChainCategory category = chain::ChainCategory::kNonPublicDbOnly;
  std::uint64_t connections = 0;
  bool established_any = false;
};

struct StudyReport {
  CorpusTotals totals;
  std::size_t unique_chains = 0;

  InterceptionReport interception;                        // Table 1
  std::map<chain::ChainCategory, CategoryUsage> categories;  // Table 2

  /// Figure 1: per-category unique-chain lengths (outliers excluded).
  std::map<chain::ChainCategory, std::vector<std::size_t>> chain_lengths;
  std::vector<ExcludedOutlier> excluded_outliers;

  HybridReport hybrid;                  // Tables 3/6/7, Figures 4/6
  NonPublicReport non_public;           // §4.3, Table 8 left column
  NonPublicReport interception_chains;  // §4.3, Table 8 right column

  /// Table 4 first column: hybrid-chain port usage.
  util::Counter<std::uint16_t> ports_hybrid;

  PkiGraph hybrid_graph;        // Figure 5
  PkiGraph non_public_graph;    // Figure 7
  PkiGraph interception_graph;  // Figure 8

  /// §4.2 extended: per-issuer-category CT compliance over unique chains
  /// (public / non-public hierarchical / self-contained).
  CtComplianceReport ct_compliance;

  /// Data-quality accounting; populated by every raw-text-bearing input
  /// (text, sources, files) — the paths that can observe line damage.
  /// Parsed-record runs leave it unpopulated.
  IngestReport ingest;
};

class StudyPipeline {
 public:
  StudyPipeline(const truststore::TrustStoreSet& stores, const ct::CtLogSet& ct_logs,
                const VendorDirectory& vendors,
                const chain::CrossSignRegistry* registry = nullptr)
      : stores_(&stores), ct_logs_(&ct_logs), vendors_(&vendors),
        registry_(registry) {}

  /// The single entry point (DESIGN.md §11): one input descriptor, one
  /// options struct, optional telemetry. Execution strategy follows from the
  /// two of them —
  ///
  ///   input kind      options.threads <= 1     options.threads > 1 / 0
  ///   kRecords        serial fold              N-way sharded (DESIGN.md §10)
  ///   kText           serial parse+fold        sharded text ingest + analyze
  ///   kSources/kFiles bounded-memory streaming fold; analysis serial/sharded
  ///
  /// and every combination produces byte-identical report text and identical
  /// deterministic metrics (streamed runs add `stream.*` counters and `mem.*`
  /// gauges on top). Streamed runs honour options.chunk_bytes and — when
  /// options.checkpoint_path is set — write a resumable fold snapshot after
  /// every chunk. Raw-text-bearing inputs populate `StudyReport::ingest`;
  /// in strict ingest mode the first damaged line raises IngestError, as
  /// does a kFiles path that cannot be opened.
  ///
  /// When `obs` is given, every Figure-2 stage reports a
  /// `stage.<name>.{in,admitted,dropped}` counter triple plus a trace span,
  /// and the per-analyzer counters land in the registry; the counts
  /// reconcile exactly with the returned StudyReport (asserted in
  /// test_pipeline_units).
  StudyReport run(const StudyInput& input, const RunOptions& options = {},
                  obs::RunContext* obs = nullptr) const;

  /// Stages 1-4 over an already-built corpus index, without re-ingesting or
  /// re-joining anything. This is the query-serving entry point (DESIGN.md
  /// §12): svc::ServiceState keeps a live CorpusIndex warm across
  /// ingest_append calls and re-analyzes it here — producing exactly the
  /// StudyReport a batch run over the same folded connections would, which
  /// is what the serve-vs-batch differential suite asserts. When the corpus
  /// certificates carry interned ids, pass their pool as `dn_pool` and
  /// categorization runs on integer compares (identical verdicts, DESIGN.md
  /// §16); a null pool keeps the canonical-string path.
  StudyReport analyze(const CorpusIndex& corpus, obs::RunContext* obs = nullptr,
                      const DnPool* dn_pool = nullptr) const;

  /// Figure 1 outlier rule: drop unique chains longer than this when they
  /// were observed exactly once.
  static constexpr std::size_t kOutlierLength = 30;

 private:
  // Per-input-kind drivers behind run()'s dispatch.
  StudyReport run_records(const std::vector<zeek::SslLogRecord>& ssl,
                          const std::vector<zeek::X509LogRecord>& x509,
                          const RunOptions& options, obs::RunContext* obs) const;
  /// `dn_pool` (optional everywhere below) is the run's interning pool: the
  /// joiner parses each distinct DN spelling once through it and the analysis
  /// stages compare ids. Callers that already interned their records (the
  /// text paths) pass theirs; a null pool makes the driver create a run-local
  /// one.
  StudyReport run_records_serial(const std::vector<zeek::SslLogRecord>& ssl,
                                 const std::vector<zeek::X509LogRecord>& x509,
                                 obs::RunContext* obs,
                                 DnPool* dn_pool = nullptr) const;
  StudyReport run_text(std::string_view ssl_log_text,
                       std::string_view x509_log_text, const RunOptions& options,
                       obs::RunContext* obs) const;
  StudyReport run_text_serial(std::string_view ssl_log_text,
                              std::string_view x509_log_text,
                              const IngestOptions& options,
                              obs::RunContext* obs) const;
  /// The bounded-memory streaming engine (pipeline_stream.cpp): X509 is
  /// streamed into the joiner index first, then SSL chunk by chunk — each
  /// chunk folds into a shard-like partial corpus merged in arrival order —
  /// with optional checkpoint/resume (DESIGN.md §11).
  StudyReport run_streaming(LogSource& ssl_source, LogSource& x509_source,
                            const RunOptions& options,
                            obs::RunContext* obs) const;

  // Stages 1-4 over a built corpus (the code shared by every execution
  // strategy once joining is done). Publishes the join/enrich/categorize/
  // structure/graphs stage triples and counters; the caller owns the
  // enclosing "pipeline" stage timer.
  StudyReport analyze_corpus(const CorpusIndex& corpus, obs::RunContext* obs,
                             const DnPool* dn_pool = nullptr) const;
  StudyReport analyze_corpus_on_pool(par::ThreadPool& pool,
                                     const CorpusIndex& corpus,
                                     obs::RunContext* obs,
                                     const DnPool* dn_pool = nullptr) const;

  /// The sharded analysis path; `pool` carries the worker count.
  StudyReport run_on_pool(par::ThreadPool& pool,
                          const std::vector<zeek::SslLogRecord>& ssl,
                          const std::vector<zeek::X509LogRecord>& x509,
                          obs::RunContext* obs, DnPool* dn_pool = nullptr) const;

  const truststore::TrustStoreSet* stores_;
  const ct::CtLogSet* ct_logs_;
  const VendorDirectory* vendors_;
  const chain::CrossSignRegistry* registry_;
};

}  // namespace certchain::core
