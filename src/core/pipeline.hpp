// The certificate chain structure analyzer (Figure 2).
//
// StudyPipeline wires the stages of the paper's pipeline together:
//
//   Certificate Enrichment  -> issuer classification against the public
//                              databases + interception identification
//   Chain Categorization    -> public-DB-only / non-public-DB-only / hybrid /
//                              TLS interception (§3.2.2, Table 2)
//   Mismatch & Cross-sign   -> issuer-subject matching with the registry
//   Path Detection          -> complete/partial matched paths, unnecessary
//                              certificates, per-category reports
//
// Input is raw Zeek log content (or already-parsed records); output is a
// StudyReport holding every table/figure's data. Each analyzer can also be
// driven standalone — the pipeline only orchestrates.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "chain/categorizer.hpp"
#include "chain/cross_sign_registry.hpp"
#include "core/corpus.hpp"
#include "core/ingest.hpp"
#include "core/hybrid_analysis.hpp"
#include "core/interception.hpp"
#include "core/nonpublic_analysis.hpp"
#include "core/pki_graph.hpp"
#include "ct/ct_log.hpp"
#include "netsim/simulator.hpp"
#include "truststore/trust_store.hpp"
#include "util/stats.hpp"
#include "zeek/log_io.hpp"

namespace certchain::obs {
struct RunContext;
}  // namespace certchain::obs

namespace certchain::par {
class ThreadPool;
}  // namespace certchain::par

namespace certchain::core {

/// Table 2 row.
struct CategoryUsage {
  std::size_t chains = 0;
  std::uint64_t connections = 0;
  std::size_t client_ips = 0;
};

/// A chain excluded from Figure 1 as a length outlier (the paper dropped
/// three chains of lengths 3,822, 921 and 41, each seen once).
struct ExcludedOutlier {
  std::size_t length = 0;
  chain::ChainCategory category = chain::ChainCategory::kNonPublicDbOnly;
  std::uint64_t connections = 0;
  bool established_any = false;
};

struct StudyReport {
  CorpusTotals totals;
  std::size_t unique_chains = 0;

  InterceptionReport interception;                        // Table 1
  std::map<chain::ChainCategory, CategoryUsage> categories;  // Table 2

  /// Figure 1: per-category unique-chain lengths (outliers excluded).
  std::map<chain::ChainCategory, std::vector<std::size_t>> chain_lengths;
  std::vector<ExcludedOutlier> excluded_outliers;

  HybridReport hybrid;                  // Tables 3/6/7, Figures 4/6
  NonPublicReport non_public;           // §4.3, Table 8 left column
  NonPublicReport interception_chains;  // §4.3, Table 8 right column

  /// Table 4 first column: hybrid-chain port usage.
  util::Counter<std::uint16_t> ports_hybrid;

  PkiGraph hybrid_graph;        // Figure 5
  PkiGraph non_public_graph;    // Figure 7
  PkiGraph interception_graph;  // Figure 8

  /// Data-quality accounting; populated only by run_from_text (the raw-text
  /// path is the only one that can observe line damage).
  IngestReport ingest;
};

/// Execution options for the sharded pipeline path (DESIGN.md §10).
struct RunOptions {
  IngestOptions ingest;
  /// Worker/shard count: 1 (default) runs the serial path; 0 resolves to
  /// hardware concurrency; N > 1 runs N-way sharded with a deterministic
  /// merge. Any value produces byte-identical reports and identical
  /// deterministic metrics — the contract the parallel-diff suite enforces.
  std::size_t threads = 1;
};

class StudyPipeline {
 public:
  StudyPipeline(const truststore::TrustStoreSet& stores, const ct::CtLogSet& ct_logs,
                const VendorDirectory& vendors,
                const chain::CrossSignRegistry* registry = nullptr)
      : stores_(&stores), ct_logs_(&ct_logs), vendors_(&vendors),
        registry_(registry) {}

  /// Runs on parsed records. When `obs` is given, every Figure-2 stage
  /// reports a `stage.<name>.{in,admitted,dropped}` counter triple plus a
  /// trace span, and the per-analyzer counters land in the registry; the
  /// counts reconcile exactly with the returned StudyReport (asserted in
  /// test_pipeline_units).
  StudyReport run(const std::vector<zeek::SslLogRecord>& ssl,
                  const std::vector<zeek::X509LogRecord>& x509,
                  obs::RunContext* obs = nullptr) const;

  /// Sharded execution on parsed records: SSL rows are joined and folded
  /// into per-shard corpora, unique chains are categorized per shard, and
  /// the per-category analyzers run concurrently; every merge is
  /// deterministic (stable ordering by corpus key, cross-shard certificate
  /// dedupe, counter summation, histogram merge), so the returned report is
  /// byte-identical to the serial run's. With options.threads <= 1 this IS
  /// the serial path.
  StudyReport run(const std::vector<zeek::SslLogRecord>& ssl,
                  const std::vector<zeek::X509LogRecord>& x509,
                  const RunOptions& options,
                  obs::RunContext* obs = nullptr) const;

  /// Convenience overloads.
  StudyReport run(const netsim::GeneratedLogs& logs,
                  obs::RunContext* obs = nullptr) const {
    return run(logs.ssl, logs.x509, obs);
  }

  /// Runs on raw Zeek log text (the full parse -> join -> analyze path).
  /// Ingestion is driven through the streaming readers in chunks; the
  /// returned report's `ingest` block carries exact malformed/skipped line
  /// counts. In strict mode the first damaged line raises IngestError; in
  /// lenient mode (the default) damage is counted and skipped.
  StudyReport run_from_text(std::string_view ssl_log_text,
                            std::string_view x509_log_text,
                            const IngestOptions& options = {},
                            obs::RunContext* obs = nullptr) const;

  /// Sharded raw-text execution: each log is split into line-aligned text
  /// shards, parsed by independent primed streaming readers with
  /// shard-local metrics registries (merged in shard order), then analyzed
  /// via the sharded run(). Ingestion accounting, sample errors (absolute
  /// line numbers), strict-mode failure, report text and deterministic
  /// metrics all match the serial path exactly.
  StudyReport run_from_text(std::string_view ssl_log_text,
                            std::string_view x509_log_text,
                            const RunOptions& options,
                            obs::RunContext* obs = nullptr) const;

  /// Figure 1 outlier rule: drop unique chains longer than this when they
  /// were observed exactly once.
  static constexpr std::size_t kOutlierLength = 30;

 private:
  /// The sharded analysis path; `pool` carries the worker count.
  StudyReport run_on_pool(par::ThreadPool& pool,
                          const std::vector<zeek::SslLogRecord>& ssl,
                          const std::vector<zeek::X509LogRecord>& x509,
                          obs::RunContext* obs) const;

  const truststore::TrustStoreSet* stores_;
  const ct::CtLogSet* ct_logs_;
  const VendorDirectory* vendors_;
  const chain::CrossSignRegistry* registry_;
};

}  // namespace certchain::core
