#include "core/pipeline_detail.hpp"

namespace certchain::core::detail {

using chain::ChainCategory;

std::optional<obs::StageTimer> stage_timer(obs::RunContext* obs,
                                           const char* name) {
  std::optional<obs::StageTimer> timer;
  if (obs != nullptr) timer.emplace(*obs, name);
  return timer;
}

void publish_stage(obs::RunContext* obs, const char* stage, std::uint64_t in,
                   std::uint64_t admitted, std::uint64_t dropped) {
  if (obs == nullptr) return;
  const std::string prefix = std::string("stage.") + stage + ".";
  obs->metrics.count(prefix + "in", in);
  obs->metrics.count(prefix + "admitted", admitted);
  obs->metrics.count(prefix + "dropped", dropped);
}

void CategorizeFold::add(const ChainObservation& observation,
                         ChainCategory category) {
  slices[category].push_back(&observation);

  CategoryUsage& usage = categories[category];
  ++usage.chains;
  usage.connections += observation.connections;
  clients_by_category[category].insert(observation.client_ips.begin(),
                                       observation.client_ips.end());

  // Figure 1 series with the outlier rule.
  if (observation.chain.length() > StudyPipeline::kOutlierLength &&
      observation.connections == 1) {
    ExcludedOutlier outlier;
    outlier.length = observation.chain.length();
    outlier.category = category;
    outlier.connections = observation.connections;
    outlier.established_any = observation.established > 0;
    excluded_outliers.push_back(outlier);
  } else {
    chain_lengths[category].push_back(observation.chain.length());
  }

  if (category == ChainCategory::kHybrid) {
    for (const auto& [port, count] : observation.ports.items()) {
      ports_hybrid.add(port, count);
    }
  }
}

void CategorizeFold::merge_from(CategorizeFold&& other) {
  for (auto& [category, observations] : other.slices) {
    auto& mine = slices[category];
    mine.insert(mine.end(), observations.begin(), observations.end());
  }
  for (const auto& [category, usage] : other.categories) {
    CategoryUsage& mine = categories[category];
    mine.chains += usage.chains;
    mine.connections += usage.connections;
  }
  for (auto& [category, clients] : other.clients_by_category) {
    clients_by_category[category].merge(clients);
  }
  for (auto& [category, lengths] : other.chain_lengths) {
    auto& mine = chain_lengths[category];
    mine.insert(mine.end(), lengths.begin(), lengths.end());
  }
  excluded_outliers.insert(excluded_outliers.end(),
                           other.excluded_outliers.begin(),
                           other.excluded_outliers.end());
  ports_hybrid.merge_from(other.ports_hybrid);
}

void CategorizeFold::finish(StudyReport& report) {
  report.categories = std::move(categories);
  report.chain_lengths = std::move(chain_lengths);
  report.excluded_outliers = std::move(excluded_outliers);
  report.ports_hybrid = std::move(ports_hybrid);
  for (auto& [category, clients] : clients_by_category) {
    report.categories[category].client_ips = clients.size();
  }
}

void publish_join_counters(obs::RunContext* obs, const StudyReport& report) {
  if (obs == nullptr) return;
  obs::MetricsRegistry& metrics = obs->metrics;
  metrics.count("pipeline.connections", report.totals.connections);
  metrics.count("pipeline.connections.tls13", report.totals.tls13_connections);
  metrics.count("pipeline.connections.incomplete_joins",
                report.totals.incomplete_joins);
  metrics.count("pipeline.unique_chains", report.unique_chains);
  metrics.count("pipeline.distinct_certificates",
                report.totals.distinct_certificates);
}

void publish_enrich_counters(obs::RunContext* obs, const StudyReport& report) {
  if (obs == nullptr) return;
  obs->metrics.count("enrich.interception.issuers",
                     report.interception.findings.size());
  obs->metrics.count("enrich.interception.unconfirmed",
                     report.interception.unconfirmed_candidates.size());
}

void publish_categorize_counters(obs::RunContext* obs,
                                 const StudyReport& report) {
  if (obs == nullptr) return;
  obs::MetricsRegistry& metrics = obs->metrics;
  for (const auto& [category, usage] : report.categories) {
    const std::string slug = obs::metric_slug(chain::chain_category_name(category));
    metrics.count("categorize.chains." + slug, usage.chains);
    metrics.count("categorize.connections." + slug, usage.connections);
  }
  for (const auto& [category, lengths] : report.chain_lengths) {
    for (const std::size_t length : lengths) {
      metrics.observe("pipeline.chain_length", static_cast<double>(length));
    }
  }
}

std::uint64_t structure_in_count(const CategorySlices& slices) {
  std::uint64_t in = 0;
  for (const ChainCategory category :
       {ChainCategory::kHybrid, ChainCategory::kNonPublicDbOnly,
        ChainCategory::kTlsInterception}) {
    const auto it = slices.find(category);
    if (it != slices.end()) in += it->second.size();
  }
  return in;
}

void publish_structure_counters(obs::RunContext* obs,
                                const CategorySlices& slices) {
  if (obs == nullptr) return;
  obs::MetricsRegistry& metrics = obs->metrics;
  const auto slice_size = [&slices](ChainCategory category) -> std::uint64_t {
    const auto it = slices.find(category);
    return it == slices.end() ? 0 : it->second.size();
  };
  metrics.count("structure.hybrid.chains", slice_size(ChainCategory::kHybrid));
  metrics.count("structure.non_public.chains",
                slice_size(ChainCategory::kNonPublicDbOnly));
  metrics.count("structure.interception.chains",
                slice_size(ChainCategory::kTlsInterception));
}

void publish_graph_counters(obs::RunContext* obs, const StudyReport& report) {
  if (obs == nullptr) return;
  obs::MetricsRegistry& metrics = obs->metrics;
  const auto graph_counters = [&metrics](const char* name, const PkiGraph& graph) {
    const std::string prefix = std::string("graphs.") + name + ".";
    metrics.count(prefix + "nodes", graph.node_count());
    metrics.count(prefix + "issuance_links", graph.issuance_links().size());
    metrics.count(prefix + "complex_intermediates",
                  graph.complex_intermediates().size());
  };
  graph_counters("hybrid", report.hybrid_graph);
  graph_counters("non_public", report.non_public_graph);
  graph_counters("interception", report.interception_graph);
}

void publish_ct_compliance_counters(obs::RunContext* obs,
                                    const StudyReport& report) {
  if (obs == nullptr) return;
  obs::MetricsRegistry& metrics = obs->metrics;
  const auto bucket_counters = [&metrics](const char* name,
                                          const CtComplianceBucket& bucket) {
    const std::string prefix = std::string("ct.compliance.") + name + ".";
    metrics.count(prefix + "chains", bucket.chains);
    metrics.count(prefix + "ct_logged", bucket.ct_logged);
    metrics.count(prefix + "with_scts", bucket.with_scts);
    metrics.count(prefix + "policy_compliant", bucket.policy_compliant);
  };
  bucket_counters("public", report.ct_compliance.public_db);
  bucket_counters("non_public_hierarchical",
                  report.ct_compliance.non_public_hierarchical);
  bucket_counters("self_contained", report.ct_compliance.self_contained);
}

}  // namespace certchain::core::detail
