// Internal helpers shared by the serial (pipeline.cpp) and sharded
// (pipeline_parallel.cpp) StudyPipeline paths.
//
// The differential guarantee — serial and N-thread runs produce
// byte-identical reports and identical deterministic counters — is cheap to
// uphold because both paths flow through the same code here: the per-chain
// categorization fold, and every counter-publishing block. The two paths can
// only drift if one of these folds drifts, which the parallel-diff suite
// catches. Not part of the public API.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/run_context.hpp"

namespace certchain::core::detail {

/// Opens a StageTimer only when telemetry is attached.
std::optional<obs::StageTimer> stage_timer(obs::RunContext* obs,
                                           const char* name);

/// Publishes the reserved manifest triple for one stage.
void publish_stage(obs::RunContext* obs, const char* stage, std::uint64_t in,
                   std::uint64_t admitted, std::uint64_t dropped);

/// The per-category slice view stage 2 hands to the structure/graph stages.
using CategorySlices =
    std::map<chain::ChainCategory, std::vector<const ChainObservation*>>;

/// Stage-2 accumulator: the per-chain categorization fold, usable serially
/// (one fold over the whole corpus) or sharded (one fold per shard, merged
/// in shard order). Chains must be added in corpus iteration order within a
/// fold; merging folds of consecutive corpus ranges in range order then
/// reproduces the serial fold exactly — including the order of slice
/// vectors, Figure 1 length series and excluded outliers.
struct CategorizeFold {
  CategorySlices slices;
  std::map<chain::ChainCategory, CategoryUsage> categories;
  std::map<chain::ChainCategory, std::set<std::string>> clients_by_category;
  std::map<chain::ChainCategory, std::vector<std::size_t>> chain_lengths;
  std::vector<ExcludedOutlier> excluded_outliers;
  util::Counter<std::uint16_t> ports_hybrid;

  /// Folds one categorized chain in (the body of the serial stage-2 loop).
  void add(const ChainObservation& observation, chain::ChainCategory category);

  /// Appends another fold; call in shard-index order.
  void merge_from(CategorizeFold&& other);

  /// Moves everything except `slices` into the report and resolves the
  /// per-category distinct-client counts.
  void finish(StudyReport& report);
};

// Per-stage counter publication, always computed from the (merged) report so
// serial and sharded runs cannot disagree. Each is a no-op without obs.
void publish_join_counters(obs::RunContext* obs, const StudyReport& report);
void publish_enrich_counters(obs::RunContext* obs, const StudyReport& report);
void publish_categorize_counters(obs::RunContext* obs, const StudyReport& report);
void publish_structure_counters(obs::RunContext* obs,
                                const CategorySlices& slices);
void publish_graph_counters(obs::RunContext* obs, const StudyReport& report);
void publish_ct_compliance_counters(obs::RunContext* obs,
                                    const StudyReport& report);

/// Records-in count for the structure/graphs stages: the three analyzed
/// category slices.
std::uint64_t structure_in_count(const CategorySlices& slices);

}  // namespace certchain::core::detail
