// The sharded StudyPipeline path (DESIGN.md §10).
//
// Every stage follows the same scheme: split the input into per-shard slots,
// run the shard bodies on the pool, then merge the slots **in shard order**
// on the coordinating thread. Because each merge is either order-independent
// (sums, set unions, min/max) or a concatenation of consecutive input ranges
// in range order, the merged state is exactly what the serial fold over the
// whole input produces — which is why the reports come out byte-identical.
// The parallel-diff suite (tests/test_parallel_diff.cpp) enforces that
// contract against the serial path for every release.
#include <algorithm>
#include <functional>
#include <iterator>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/pipeline_detail.hpp"
#include "obs/run_context.hpp"
#include "obs/stopwatch.hpp"
#include "par/shard.hpp"
#include "par/thread_pool.hpp"
#include "truststore/issuer_classifier.hpp"
#include "zeek/joiner.hpp"
#include "zeek/log_stream.hpp"

namespace certchain::core {

using chain::ChainCategory;
using detail::publish_stage;
using detail::stage_timer;

namespace {

/// Attaches a worker-measured shard span under the currently open stage
/// span. Coordinator-thread only; the Trace is not thread-safe.
void attach_shard_span(obs::RunContext* obs, const char* stage,
                       std::size_t shard, double wall_ms) {
  if (obs == nullptr) return;
  obs->trace.attach_closed(
      std::string(stage) + ".shard" + std::to_string(shard), wall_ms);
}

/// Sharded equivalent of pipeline.cpp's drive_stream: line-aligned text
/// shards, a header-state scan + serial prefix combine so every shard's
/// reader starts in the exact state a serial reader would be in at its
/// boundary, then a primed parallel parse into per-shard slots. Records,
/// ingestion counters (via shard-local registries merged in shard order),
/// sample errors (absolute line numbers) and the strict-mode failure are all
/// identical to the serial pass.
template <typename Record>
void ingest_stream_sharded(par::ThreadPool& pool, std::string_view text,
                           const char* stream_name,
                           const std::string& expected_fields,
                           const IngestOptions& options, obs::RunContext& ctx,
                           IngestStreamStats& stats, IngestReport& report,
                           std::vector<Record>& out, DnPool* dn_pool) {
  using Reader = zeek::StreamingLogReader<Record>;
  const std::size_t shard_count = pool.size();
  const std::vector<par::TextShard> shards =
      par::split_line_aligned(text, shard_count);

  // Phase 1: header-state scan per shard, combined left-to-right into the
  // reader entry state (in-body flag + absolute line offset) per boundary.
  std::vector<zeek::ShardHeaderScan> scans(shards.size());
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
      tasks.push_back([&scans, &shards, &expected_fields, i] {
        scans[i] =
            zeek::scan_shard_header_state(shards[i].text, expected_fields);
      });
    }
    pool.run_batch(std::move(tasks));
  }
  std::vector<char> entry_in_body(shards.size(), 0);
  std::vector<std::size_t> entry_offset(shards.size(), 0);
  {
    bool in_body = false;
    std::size_t offset = 0;
    for (std::size_t i = 0; i < shards.size(); ++i) {
      entry_in_body[i] = in_body ? 1 : 0;
      entry_offset[i] = offset;
      if (scans[i].has_directive) in_body = scans[i].exit_in_body;
      offset += scans[i].newlines;
    }
  }

  // Phase 2: primed parallel parse into per-shard slots. Each shard interns
  // DNs into its own pool (no sharing, no locks); the id-remap merge below
  // reconciles the shard-local ids.
  struct ShardSlot {
    std::vector<Record> records;
    obs::MetricsRegistry metrics;
    std::vector<typename Reader::LineError> errors;
    std::size_t lines_skipped = 0;
    double wall_ms = 0.0;
    DnPool dn_pool;
  };
  std::vector<ShardSlot> slots(shards.size());
  const std::string prefix = std::string("ingest.") + stream_name + ".";
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
      tasks.push_back([&, i, dn_pool] {
        obs::Stopwatch watch;
        ShardSlot& slot = slots[i];
        Reader reader(expected_fields, [&slot](Record record) {
          slot.records.push_back(std::move(record));
        });
        if (dn_pool != nullptr) reader.set_dn_pool(&slot.dn_pool);
        reader.prime(entry_in_body[i] != 0, entry_offset[i]);
        const std::string_view shard = shards[i].text;
        const std::size_t chunk = options.feed_chunk_bytes == 0
                                      ? std::max<std::size_t>(1, shard.size())
                                      : options.feed_chunk_bytes;
        for (std::size_t pos = 0; pos < shard.size(); pos += chunk) {
          reader.feed(shard.substr(pos, std::min(chunk, shard.size() - pos)));
        }
        reader.finish();
        slot.metrics.count(prefix + "bytes_consumed", reader.bytes_consumed());
        slot.metrics.count(prefix + "lines", reader.lines_seen());
        slot.metrics.count(prefix + "records", reader.records_emitted());
        slot.metrics.count(prefix + "rows_malformed", reader.malformed_rows());
        slot.metrics.count(prefix + "lines_skipped", reader.lines_skipped());
        slot.metrics.count(prefix + "rotations", reader.rotations_seen());
        slot.errors = reader.errors();
        slot.lines_skipped = reader.lines_skipped();
        slot.wall_ms = watch.elapsed_ms();
      });
    }
    pool.run_batch(std::move(tasks));
  }

  // Phase 3: deterministic merge in shard order. Stats are read back from
  // the registry exactly like the serial path, so the single-source
  // guarantee (report == metrics export) holds here too.
  const auto counter_at = [&ctx, &prefix](const char* leaf) {
    return ctx.metrics.counter(prefix + leaf);
  };
  const std::uint64_t bytes_before = counter_at("bytes_consumed");
  const std::uint64_t lines_before = counter_at("lines");
  const std::uint64_t records_before = counter_at("records");
  const std::uint64_t malformed_before = counter_at("rows_malformed");
  const std::uint64_t skipped_before = counter_at("lines_skipped");
  const std::uint64_t rotations_before = counter_at("rotations");

  const std::string span_stage = std::string("ingest.") + stream_name;
  std::size_t total_skipped = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    ShardSlot& slot = slots[i];
    ctx.metrics.merge_from(slot.metrics);
    attach_shard_span(&ctx, span_stage.c_str(), i, slot.wall_ms);
    total_skipped += slot.lines_skipped;
    if (dn_pool != nullptr) {
      // Id-remap merge protocol (DESIGN.md §16): absorb the shard pool in
      // shard order and rewrite the shard-local ids. Because each shard's
      // ids follow first-occurrence order within the shard, absorbing in
      // shard order reproduces exactly the ids a serial reader would have
      // minted over the whole stream.
      const std::vector<DnId> id_map = dn_pool->absorb(slot.dn_pool);
      for (Record& record : slot.records) zeek::remap_dn_ids(record, id_map);
    }
    out.insert(out.end(), std::make_move_iterator(slot.records.begin()),
               std::make_move_iterator(slot.records.end()));
  }

  stats.bytes = counter_at("bytes_consumed") - bytes_before;
  stats.lines = counter_at("lines") - lines_before;
  stats.records = counter_at("records") - records_before;
  stats.malformed_rows = counter_at("rows_malformed") - malformed_before;
  stats.skipped_lines = counter_at("lines_skipped") - skipped_before;
  stats.rotations = counter_at("rotations") - rotations_before;

  // Shard-order concatenation of the per-shard error samples IS stream
  // order, so the first kMaxSampleErrors (and the strict-mode first error)
  // match the serial reader's.
  for (const ShardSlot& slot : slots) {
    for (const auto& error : slot.errors) {
      if (report.sample_errors.size() >= IngestReport::kMaxSampleErrors) break;
      report.sample_errors.push_back(std::string(stream_name) + " line " +
                                     std::to_string(error.line_number) + ": " +
                                     error.message);
    }
  }
  if (options.mode == IngestMode::kStrict && total_skipped > 0) {
    for (const ShardSlot& slot : slots) {
      if (slot.errors.empty()) continue;
      const auto& first = slot.errors.front();
      throw IngestError(std::string(stream_name) + " log line " +
                        std::to_string(first.line_number) + ": " +
                        first.message);
    }
  }
}

}  // namespace

StudyReport StudyPipeline::run_text(std::string_view ssl_log_text,
                                    std::string_view x509_log_text,
                                    const RunOptions& options,
                                    obs::RunContext* obs) const {
  const std::size_t threads = par::resolve_threads(options.threads);
  if (threads <= 1) {
    return run_text_serial(ssl_log_text, x509_log_text, options.ingest, obs);
  }
  par::ThreadPool pool(threads);

  obs::RunContext local;
  obs::RunContext* ctx = obs != nullptr ? obs : &local;
  if (obs != nullptr) {
    obs->set_config("par.threads", static_cast<std::uint64_t>(pool.size()));
  }

  IngestReport ingest;
  ingest.populated = true;
  ingest.mode = options.ingest.mode;

  // The run pool. Shard readers intern into private pools; the merge absorbs
  // them in shard order (ssl stream first, then x509 — the serial drive
  // order), so the merged ids match the serial text path's exactly.
  DnPool dn_pool;
  std::vector<zeek::SslLogRecord> ssl;
  std::vector<zeek::X509LogRecord> x509;
  {
    obs::StageTimer timer(*ctx, "ingest");
    ingest_stream_sharded<zeek::SslLogRecord>(
        pool, ssl_log_text, "ssl", zeek::ssl_log_fields(), options.ingest,
        *ctx, ingest.ssl, ingest, ssl, &dn_pool);
    ingest_stream_sharded<zeek::X509LogRecord>(
        pool, x509_log_text, "x509", zeek::x509_log_fields(), options.ingest,
        *ctx, ingest.x509, ingest, x509, &dn_pool);
  }
  publish_stage(ctx, "ingest",
                ingest.ssl.records + ingest.x509.records + ingest.skipped_total(),
                ingest.ssl.records + ingest.x509.records,
                ingest.skipped_total());

  StudyReport report = run_on_pool(pool, ssl, x509, obs, &dn_pool);
  report.ingest = std::move(ingest);
  return report;
}

StudyReport StudyPipeline::run_on_pool(par::ThreadPool& pool,
                                       const std::vector<zeek::SslLogRecord>& ssl,
                                       const std::vector<zeek::X509LogRecord>& x509,
                                       obs::RunContext* obs,
                                       DnPool* dn_pool) const {
  auto pipeline_timer = stage_timer(obs, "pipeline");
  const std::size_t shard_count = pool.size();

  // Stage 0: the joiner index is built once — on the coordinator, against
  // the run's DnPool, so the pool is complete and read-only before any
  // worker touches it — and shared read-only; SSL rows fold into per-shard
  // corpora, merged in shard order (order-independent reductions +
  // cross-shard certificate dedupe inside merge_from).
  DnPool local_pool;
  DnPool* run_pool = dn_pool != nullptr ? dn_pool : &local_pool;
  zeek::LogJoiner joiner;
  joiner.set_dn_pool(run_pool);
  for (const zeek::X509LogRecord& record : x509) joiner.add(record);
  CorpusIndex corpus;
  {
    auto timer = stage_timer(obs, "join");
    std::vector<CorpusIndex> partials(shard_count);
    std::vector<double> wall(shard_count, 0.0);
    par::parallel_for_chunks(
        &pool, ssl.size(), shard_count,
        [&partials, &wall, &joiner, &ssl](std::size_t chunk, std::size_t begin,
                                          std::size_t end) {
          obs::Stopwatch watch;
          for (std::size_t i = begin; i < end; ++i) {
            partials[chunk].add(joiner, ssl[i]);
          }
          wall[chunk] = watch.elapsed_ms();
        });
    for (std::size_t i = 0; i < shard_count; ++i) {
      attach_shard_span(obs, "join", i, wall[i]);
      corpus.merge_from(std::move(partials[i]));
    }
  }
  return analyze_corpus_on_pool(pool, corpus, obs, run_pool);
}

StudyReport StudyPipeline::analyze_corpus_on_pool(par::ThreadPool& pool,
                                                  const CorpusIndex& corpus,
                                                  obs::RunContext* obs,
                                                  const DnPool* dn_pool) const {
  StudyReport report;
  const std::size_t shard_count = pool.size();
  report.totals = corpus.totals();
  report.unique_chains = corpus.unique_chain_count();
  publish_stage(obs, "join", report.totals.connections,
                report.totals.with_certificates,
                report.totals.connections - report.totals.with_certificates);
  detail::publish_join_counters(obs, report);

  // Stage 1: interception identification, sharded over the unique chains.
  chain::InterceptionIssuerSet interception_issuers;
  {
    auto timer = stage_timer(obs, "enrich");
    const InterceptionDetector detector(*stores_, *ct_logs_, *vendors_);
    report.interception = detector.detect(corpus, &pool);
    interception_issuers = report.interception.issuer_set();
  }
  publish_stage(obs, "enrich", report.unique_chains, report.unique_chains, 0);
  detail::publish_enrich_counters(obs, report);

  // Stage 2: per-shard categorization folds over consecutive ranges of the
  // corpus map, merged in range order — reproducing the serial fold exactly,
  // including slice vector order (what the structure stage iterates).
  detail::CategorySlices slices;
  {
    auto timer = stage_timer(obs, "categorize");
    std::vector<const ChainObservation*> observations;
    observations.reserve(corpus.chains().size());
    for (const auto& [chain_id, observation] : corpus.chains()) {
      observations.push_back(&observation);
    }
    std::vector<detail::CategorizeFold> folds(shard_count);
    std::vector<double> wall(shard_count, 0.0);
    if (dn_pool != nullptr) {
      // Shared read-only pool + id set; one classifier per shard (its memo
      // mutates on lookup, so instances are not shared across workers).
      const std::set<DnId> interception_ids =
          chain::issuer_ids_for(interception_issuers, *dn_pool);
      par::parallel_for_chunks(
          &pool, observations.size(), shard_count,
          [&folds, &wall, &observations, &interception_issuers,
           &interception_ids, dn_pool, this](std::size_t chunk,
                                             std::size_t begin,
                                             std::size_t end) {
            obs::Stopwatch watch;
            truststore::IssuerClassifier classifier(*stores_, *dn_pool);
            for (std::size_t i = begin; i < end; ++i) {
              const ChainObservation& observation = *observations[i];
              folds[chunk].add(observation,
                               chain::categorize_chain(observation.chain,
                                                       classifier,
                                                       interception_issuers,
                                                       interception_ids));
            }
            wall[chunk] = watch.elapsed_ms();
          });
    } else {
      par::parallel_for_chunks(
          &pool, observations.size(), shard_count,
          [&folds, &wall, &observations, &interception_issuers, this](
              std::size_t chunk, std::size_t begin, std::size_t end) {
            obs::Stopwatch watch;
            for (std::size_t i = begin; i < end; ++i) {
              const ChainObservation& observation = *observations[i];
              folds[chunk].add(observation,
                               chain::categorize_chain(observation.chain, *stores_,
                                                       interception_issuers));
            }
            wall[chunk] = watch.elapsed_ms();
          });
    }
    detail::CategorizeFold fold;
    for (std::size_t i = 0; i < shard_count; ++i) {
      attach_shard_span(obs, "categorize", i, wall[i]);
      fold.merge_from(std::move(folds[i]));
    }
    slices = std::move(fold.slices);
    fold.finish(report);
  }
  publish_stage(obs, "categorize", report.unique_chains, report.unique_chains, 0);
  publish_stage(obs, "figure1", report.unique_chains,
                report.unique_chains - report.excluded_outliers.size(),
                report.excluded_outliers.size());
  detail::publish_categorize_counters(obs, report);

  // The three analyzed slices, materialized before any batch launches:
  // map operator[] inserts, and the map must not mutate under the workers.
  const std::vector<const ChainObservation*>& hybrid_slice =
      slices[ChainCategory::kHybrid];
  const std::vector<const ChainObservation*>& non_public_slice =
      slices[ChainCategory::kNonPublicDbOnly];
  const std::vector<const ChainObservation*>& interception_slice =
      slices[ChainCategory::kTlsInterception];

  // Stage 3: the per-category structure analyzers are independent const
  // computations over disjoint slices — one task each.
  {
    auto timer = stage_timer(obs, "structure");
    std::vector<double> wall(3, 0.0);
    std::vector<std::function<void()>> tasks;
    tasks.push_back([this, &report, &hybrid_slice, &wall, dn_pool] {
      obs::Stopwatch watch;
      // The analyzer builds its own per-call classifier, so the shared pool
      // is read-only here and safe alongside the other structure tasks.
      const HybridAnalyzer analyzer(*stores_, *ct_logs_, registry_, dn_pool);
      report.hybrid = analyzer.analyze(hybrid_slice);
      wall[0] = watch.elapsed_ms();
    });
    tasks.push_back([this, &report, &non_public_slice, &wall] {
      obs::Stopwatch watch;
      const NonPublicAnalyzer analyzer(registry_);
      report.non_public = analyzer.analyze("Non-public-DB-only", non_public_slice);
      wall[1] = watch.elapsed_ms();
    });
    tasks.push_back([this, &report, &interception_slice, &wall] {
      obs::Stopwatch watch;
      const NonPublicAnalyzer analyzer(registry_);
      report.interception_chains =
          analyzer.analyze("TLS interception", interception_slice);
      wall[2] = watch.elapsed_ms();
    });
    pool.run_batch(std::move(tasks));
    attach_shard_span(obs, "structure.hybrid", 0, wall[0]);
    attach_shard_span(obs, "structure.non_public", 1, wall[1]);
    attach_shard_span(obs, "structure.interception", 2, wall[2]);
  }
  const std::uint64_t structure_in = detail::structure_in_count(slices);
  publish_stage(obs, "structure", structure_in, structure_in, 0);
  detail::publish_structure_counters(obs, slices);

  // Stage 4: the three PKI graphs, likewise independent.
  {
    auto timer = stage_timer(obs, "graphs");
    std::vector<std::function<void()>> tasks;
    tasks.push_back([this, &report, &hybrid_slice, dn_pool] {
      report.hybrid_graph = build_pki_graph(hybrid_slice, *stores_, dn_pool);
    });
    tasks.push_back([this, &report, &non_public_slice, dn_pool] {
      report.non_public_graph =
          build_pki_graph(non_public_slice, *stores_, dn_pool);
    });
    tasks.push_back([this, &report, &interception_slice, dn_pool] {
      report.interception_graph =
          build_pki_graph(interception_slice, *stores_, dn_pool);
    });
    pool.run_batch(std::move(tasks));
  }
  publish_stage(obs, "graphs", structure_in, structure_in, 0);
  detail::publish_graph_counters(obs, report);

  // Stage 5: CT compliance, sharded over the same materialized observation
  // order as categorization; per-shard reports merge additively, so the
  // result is identical to the serial fold.
  {
    auto timer = stage_timer(obs, "ct_compliance");
    const CtComplianceAnalyzer ct_analyzer(*stores_, *ct_logs_);
    std::vector<const ChainObservation*> observations;
    observations.reserve(corpus.chains().size());
    for (const auto& [chain_id, observation] : corpus.chains()) {
      observations.push_back(&observation);
    }
    std::vector<CtComplianceReport> partials(shard_count);
    std::vector<double> wall(shard_count, 0.0);
    par::parallel_for_chunks(
        &pool, observations.size(), shard_count,
        [&partials, &wall, &observations, &ct_analyzer](
            std::size_t chunk, std::size_t begin, std::size_t end) {
          obs::Stopwatch watch;
          for (std::size_t i = begin; i < end; ++i) {
            ct_analyzer.add(*observations[i], partials[chunk]);
          }
          wall[chunk] = watch.elapsed_ms();
        });
    for (std::size_t i = 0; i < shard_count; ++i) {
      attach_shard_span(obs, "ct_compliance", i, wall[i]);
      report.ct_compliance.merge_from(partials[i]);
    }
  }
  publish_stage(obs, "ct_compliance", report.unique_chains, report.unique_chains, 0);
  detail::publish_ct_compliance_counters(obs, report);

  return report;
}

}  // namespace certchain::core
