// The bounded-memory streaming StudyPipeline path (DESIGN.md §11).
//
// The in-memory paths hold every parsed record (and, for text, the whole log
// body) resident at once; at campus scale that is tens of GB for what is
// ultimately a small deduplicated corpus. This engine consumes LogSources in
// fixed-size chunks instead:
//
//   Phase A — X509: streamed fully into parsed records. X509.log carries one
//   row per distinct delivered certificate, so this phase's residency is
//   bounded by the corpus's certificate population, not by traffic volume.
//   A running FNV-1a digest fingerprints the stream for checkpoint resume.
//
//   Phase B — SSL: the dominant stream (one row per connection) is read
//   chunk by chunk. Each chunk's records are joined and folded into a
//   shard-like partial CorpusIndex which is merged into the run corpus in
//   arrival order — the same merge the sharded pipeline uses (DESIGN.md
//   §10), and merging consecutive partials in order reproduces the serial
//   fold exactly. Peak residency is O(chunk_bytes) + the deduplicated corpus
//   + the joiner index, never O(total SSL bytes).
//
// After every SSL chunk the complete fold state is checkpointable
// (stream_checkpoint.hpp); a killed run re-ingests the small X509 stream,
// validates both stream digests, seeks past the folded SSL prefix and
// continues — producing the byte-identical report an uninterrupted run
// yields. Streamed runs add `stream.*` counters and the `mem.peak_rss_bytes`
// gauge on top of the serial path's metrics; everything else (report text,
// counters, histograms, manifest stage accounting) is identical at every
// chunk size, which tests/test_streaming.cpp asserts.
#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/pipeline_detail.hpp"
#include "core/stream_checkpoint.hpp"
#include "obs/resource.hpp"
#include "obs/run_context.hpp"
#include "obs/stopwatch.hpp"
#include "par/thread_pool.hpp"
#include "util/hash.hpp"
#include "zeek/joiner.hpp"
#include "zeek/log_stream.hpp"

namespace certchain::core {

using detail::publish_stage;
using detail::stage_timer;

namespace {

/// Bounds-checked counter snapshot/delta helper matching drive_stream's
/// single-source discipline: publish the reader's totals, then read the
/// stats back FROM the registry.
struct StreamCounterFrame {
  std::string prefix;
  std::uint64_t bytes = 0, lines = 0, records = 0;
  std::uint64_t malformed = 0, skipped = 0, rotations = 0;

  StreamCounterFrame(obs::MetricsRegistry& metrics, const char* stream_name)
      : prefix(std::string("ingest.") + stream_name + ".") {
    bytes = metrics.counter(prefix + "bytes_consumed");
    lines = metrics.counter(prefix + "lines");
    records = metrics.counter(prefix + "records");
    malformed = metrics.counter(prefix + "rows_malformed");
    skipped = metrics.counter(prefix + "lines_skipped");
    rotations = metrics.counter(prefix + "rotations");
  }

  template <typename Reader>
  void publish(obs::MetricsRegistry& metrics, const Reader& reader,
               IngestStreamStats& stats) const {
    metrics.count(prefix + "bytes_consumed", reader.bytes_consumed());
    metrics.count(prefix + "lines", reader.lines_seen());
    metrics.count(prefix + "records", reader.records_emitted());
    metrics.count(prefix + "rows_malformed", reader.malformed_rows());
    metrics.count(prefix + "lines_skipped", reader.lines_skipped());
    metrics.count(prefix + "rotations", reader.rotations_seen());

    stats.bytes = metrics.counter(prefix + "bytes_consumed") - bytes;
    stats.lines = metrics.counter(prefix + "lines") - lines;
    stats.records = metrics.counter(prefix + "records") - records;
    stats.malformed_rows = metrics.counter(prefix + "rows_malformed") - malformed;
    stats.skipped_lines = metrics.counter(prefix + "lines_skipped") - skipped;
    stats.rotations = metrics.counter(prefix + "rotations") - rotations;
  }
};

/// Appends a reader's recorded errors to the capped sample and raises the
/// strict-mode failure — the same text, in the same stream order (ssl before
/// x509), as the serial drive_stream.
template <typename Reader>
void account_stream_errors(const Reader& reader, const char* stream_name,
                           const IngestOptions& options, IngestReport& report) {
  for (const auto& error : reader.errors()) {
    if (report.sample_errors.size() >= IngestReport::kMaxSampleErrors) break;
    report.sample_errors.push_back(std::string(stream_name) + " line " +
                                   std::to_string(error.line_number) + ": " +
                                   error.message);
  }
  if (options.mode == IngestMode::kStrict && reader.lines_skipped() > 0) {
    const auto& first = reader.errors().front();
    throw IngestError(std::string(stream_name) + " log line " +
                      std::to_string(first.line_number) + ": " + first.message);
  }
}

/// Re-reads the already-folded SSL prefix and checks its running digest
/// against the checkpoint. On success the source is positioned exactly at
/// `offset`, ready for the next chunk; memory stays O(chunk). Returns false
/// (source position unspecified) on seek failure, premature EOF or mismatch.
bool verify_ssl_prefix(LogSource& source, std::uint64_t offset,
                       std::uint64_t expected_state, std::size_t chunk_bytes,
                       std::string& buffer) {
  if (!source.seek(0)) return false;
  std::uint64_t state = util::fnv1a64({});
  std::uint64_t remaining = offset;
  while (remaining > 0) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk_bytes, remaining));
    const std::size_t got = source.read(buffer, want);
    if (got == 0) return false;
    state = util::fnv1a64_continue(state, buffer);
    remaining -= got;
  }
  return state == expected_state;
}

}  // namespace

StudyReport StudyPipeline::run_streaming(LogSource& ssl_source,
                                         LogSource& x509_source,
                                         const RunOptions& options,
                                         obs::RunContext* obs) const {
  obs::RunContext local;
  obs::RunContext* ctx = obs != nullptr ? obs : &local;
  const std::size_t chunk_bytes = options.chunk_bytes == 0
                                      ? RunOptions::kDefaultChunkBytes
                                      : options.chunk_bytes;
  if (obs != nullptr) {
    obs->set_config("stream.ssl_source", ssl_source.name());
    obs->set_config("stream.x509_source", x509_source.name());
    obs->set_config("stream.chunk_bytes",
                    static_cast<std::uint64_t>(chunk_bytes));
  }

  IngestReport ingest;
  ingest.populated = true;
  ingest.mode = options.ingest.mode;

  const StreamCounterFrame ssl_frame(ctx->metrics, "ssl");
  const StreamCounterFrame x509_frame(ctx->metrics, "x509");

  // The run's DnPool: one sequential consumer, so the readers and the
  // incremental joiner share it directly — no shard pools, no remap. Its
  // residency is bounded by the distinct-DN population, far below the
  // certificate index this engine already keeps.
  DnPool dn_pool;
  CorpusIndex corpus;
  std::string buffer;
  {
    obs::StageTimer timer(*ctx, "ingest");

    // Phase A: stream X509 fully; residency ~ distinct certificates.
    std::vector<zeek::X509LogRecord> x509_records;
    auto x509_reader = zeek::make_streaming_x509_reader(
        [&x509_records](zeek::X509LogRecord record) {
          x509_records.push_back(std::move(record));
        });
    x509_reader.set_dn_pool(&dn_pool);
    std::uint64_t x509_digest = util::fnv1a64({});
    {
      std::uint64_t chunk_index = 0;
      while (true) {
        obs::Stopwatch watch;
        const std::size_t got = x509_source.read(buffer, chunk_bytes);
        if (got == 0) break;
        x509_digest = util::fnv1a64_continue(x509_digest, buffer);
        x509_reader.feed(buffer);
        ctx->metrics.count("stream.chunk.x509");
        ctx->metrics.count("stream.chunk.x509_bytes", got);
        ctx->trace.attach_closed(
            "ingest.x509.chunk" + std::to_string(chunk_index++),
            watch.elapsed_ms());
      }
      x509_reader.finish();
    }

    // Phase B: join index, then the SSL chunk fold. The "join" span covers
    // the index build; the per-record joins happen inside the chunk fold
    // below (the span also keeps the manifest's stage order identical to the
    // serial path, where join is a standalone stage).
    std::optional<zeek::LogJoiner> joiner_storage;
    {
      obs::StageTimer join_timer(*ctx, "join");
      joiner_storage.emplace();
      joiner_storage->set_dn_pool(&dn_pool);
      for (const zeek::X509LogRecord& record : x509_records) {
        joiner_storage->add(record);
      }
    }
    const zeek::LogJoiner& joiner = *joiner_storage;
    x509_records.clear();
    x509_records.shrink_to_fit();

    CorpusIndex* current = nullptr;
    auto ssl_reader = zeek::make_streaming_ssl_reader(
        [&joiner, &current](zeek::SslLogRecord record) {
          current->add(joiner, record);
        });
    ssl_reader.set_dn_pool(&dn_pool);

    std::uint64_t ssl_digest = util::fnv1a64({});
    std::uint64_t ssl_offset = 0;
    std::uint64_t chunks_done = 0;

    // Resume: a checkpoint is accepted only when its mode matches, the
    // re-ingested X509 stream digests to the recorded value, and re-reading
    // the SSL prefix reproduces the recorded running digest (the re-read
    // leaves the source positioned at the resume offset).
    if (!options.checkpoint_path.empty()) {
      if (const std::optional<std::string> text =
              read_file_text(options.checkpoint_path)) {
        std::map<std::string, x509::Certificate> by_fingerprint;
        for (const auto& [fuid, cert] : joiner.certificates()) {
          by_fingerprint.emplace(cert.fingerprint(), cert);
        }
        std::string error;
        const std::optional<StreamCheckpoint> checkpoint =
            decode_stream_checkpoint(*text, by_fingerprint, corpus, &error);
        bool resumed = false;
        if (checkpoint && checkpoint->mode == options.ingest.mode &&
            checkpoint->x509_digest == x509_digest &&
            verify_ssl_prefix(ssl_source, checkpoint->ssl_offset,
                              checkpoint->ssl_digest_state, chunk_bytes,
                              buffer)) {
          ssl_reader.restore(checkpoint->ssl_reader);
          ssl_digest = checkpoint->ssl_digest_state;
          ssl_offset = checkpoint->ssl_offset;
          chunks_done = checkpoint->chunks_done;
          resumed = true;
          ctx->metrics.count("stream.resume.loaded");
        }
        if (!resumed) {
          corpus = CorpusIndex();  // drop any partially restored state
          ctx->metrics.count("stream.resume.rejected");
          if (!ssl_source.seek(0)) {
            throw IngestError(
                "stream checkpoint rejected and SSL source cannot rewind: " +
                std::string(ssl_source.name()));
          }
        }
      }
    }

    while (true) {
      obs::Stopwatch watch;
      const std::size_t got = ssl_source.read(buffer, chunk_bytes);
      if (got == 0) break;
      ssl_digest = util::fnv1a64_continue(ssl_digest, buffer);
      ssl_offset += got;
      CorpusIndex partial;
      current = &partial;
      ssl_reader.feed(buffer);
      current = nullptr;
      corpus.merge_from(std::move(partial));
      ctx->metrics.count("stream.chunk.ssl");
      ctx->metrics.count("stream.chunk.ssl_bytes", got);
      ctx->trace.attach_closed("ingest.ssl.chunk" + std::to_string(chunks_done),
                               watch.elapsed_ms());
      ++chunks_done;

      if (!options.checkpoint_path.empty()) {
        StreamCheckpoint checkpoint;
        checkpoint.mode = options.ingest.mode;
        checkpoint.x509_digest = x509_digest;
        checkpoint.ssl_digest_state = ssl_digest;
        checkpoint.ssl_offset = ssl_offset;
        checkpoint.chunks_done = chunks_done;
        checkpoint.ssl_reader = ssl_reader.checkpoint();
        if (write_stream_checkpoint(options.checkpoint_path, checkpoint,
                                    corpus)) {
          ctx->metrics.count("stream.checkpoint.written");
        }
      }
    }
    {
      // finish() may still emit the trailing unterminated line's record.
      CorpusIndex tail;
      current = &tail;
      ssl_reader.finish();
      current = nullptr;
      corpus.merge_from(std::move(tail));
    }

    // Publish + account in serial drive_stream order: ssl fully first (so a
    // strict-mode SSL failure carries the identical first-error text and
    // leaves X509 counters unpublished), then x509.
    ssl_frame.publish(ctx->metrics, ssl_reader, ingest.ssl);
    account_stream_errors(ssl_reader, "ssl", options.ingest, ingest);
    x509_frame.publish(ctx->metrics, x509_reader, ingest.x509);
    account_stream_errors(x509_reader, "x509", options.ingest, ingest);

    // The fold is complete and valid; the checkpoint has served its purpose.
    if (!options.checkpoint_path.empty()) {
      if (std::remove(options.checkpoint_path.c_str()) == 0) {
        ctx->metrics.count("stream.checkpoint.removed");
      }
    }
  }
  publish_stage(ctx, "ingest",
                ingest.ssl.records + ingest.x509.records + ingest.skipped_total(),
                ingest.ssl.records + ingest.x509.records,
                ingest.skipped_total());

  StudyReport report;
  const std::size_t threads = par::resolve_threads(options.threads);
  if (threads <= 1) {
    auto pipeline_timer = stage_timer(obs, "pipeline");
    report = analyze_corpus(corpus, obs, &dn_pool);
  } else {
    par::ThreadPool pool(threads);
    if (obs != nullptr) {
      obs->set_config("par.threads", static_cast<std::uint64_t>(pool.size()));
    }
    auto pipeline_timer = stage_timer(obs, "pipeline");
    report = analyze_corpus_on_pool(pool, corpus, obs, &dn_pool);
  }
  report.ingest = std::move(ingest);

  ctx->metrics.set_gauge("mem.peak_rss_bytes",
                         static_cast<double>(obs::peak_rss_bytes()));
  return report;
}

}  // namespace certchain::core
