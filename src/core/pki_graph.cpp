#include "core/pki_graph.hpp"

#include <optional>

#include "chain/matcher.hpp"

namespace certchain::core {

std::string_view cert_role_name(CertRole role) {
  switch (role) {
    case CertRole::kLeaf: return "leaf";
    case CertRole::kIntermediate: return "intermediate";
    case CertRole::kRoot: return "root";
  }
  return "unknown";
}

std::size_t PkiGraph::intern_node(const x509::Certificate& cert,
                                  const truststore::TrustStoreSet& stores,
                                  truststore::IssuerClassifier* classifier) {
  const std::string fingerprint = cert.fingerprint();
  const auto it = by_fingerprint_.find(fingerprint);
  if (it != by_fingerprint_.end()) return it->second;
  PkiGraphNode node;
  node.fingerprint = fingerprint;
  node.subject = cert.subject.to_string();
  node.issuer_class = classifier != nullptr ? classifier->classify(cert)
                                            : stores.classify_certificate(cert);
  node.role = CertRole::kLeaf;  // promoted later as evidence accumulates
  const std::size_t index = nodes_.size();
  nodes_.push_back(std::move(node));
  by_fingerprint_.emplace(fingerprint, index);
  return index;
}

void PkiGraph::promote_role(std::size_t index, CertRole role) {
  // Role lattice: leaf < intermediate < root; promotion only.
  PkiGraphNode& node = nodes_.at(index);
  if (static_cast<int>(role) > static_cast<int>(node.role)) node.role = role;
}

void PkiGraph::note_chain(const std::vector<std::size_t>& node_indices,
                          const std::vector<bool>& pair_matched) {
  for (const std::size_t index : node_indices) ++nodes_.at(index).chain_count;
  // Co-occurrence: all unordered pairs in the chain. Quadratic in chain
  // length, so the pathological misconfigured chains (the paper's 3,822-cert
  // outlier would mean ~7.3M edges) only contribute adjacency links.
  if (node_indices.size() <= kMaxCoOccurrenceChain) {
  for (std::size_t a = 0; a < node_indices.size(); ++a) {
    for (std::size_t b = a + 1; b < node_indices.size(); ++b) {
      const std::size_t lo = std::min(node_indices[a], node_indices[b]);
      const std::size_t hi = std::max(node_indices[a], node_indices[b]);
      if (lo != hi) co_edges_.emplace(lo, hi);
    }
  }
  }
  // Issuance links: matched adjacent pairs only.
  for (std::size_t i = 0; i + 1 < node_indices.size(); ++i) {
    if (i < pair_matched.size() && pair_matched[i] &&
        node_indices[i] != node_indices[i + 1]) {
      links_.emplace(node_indices[i], node_indices[i + 1]);
    }
  }
}

std::map<std::pair<CertRole, truststore::IssuerClass>, std::size_t>
PkiGraph::node_breakdown() const {
  std::map<std::pair<CertRole, truststore::IssuerClass>, std::size_t> out;
  for (const PkiGraphNode& node : nodes_) {
    ++out[{node.role, node.issuer_class}];
  }
  return out;
}

std::size_t PkiGraph::issuance_degree(std::size_t index) const {
  std::set<std::size_t> neighbors;
  for (const auto& [lower, upper] : links_) {
    if (lower == index) neighbors.insert(upper);
    if (upper == index) neighbors.insert(lower);
  }
  return neighbors.size();
}

std::vector<std::size_t> PkiGraph::complex_intermediates(std::size_t threshold) const {
  // Per-intermediate set of *intermediate* neighbors over issuance links.
  std::map<std::size_t, std::set<std::size_t>> neighbors;
  for (const auto& [lower, upper] : links_) {
    if (nodes_[lower].role == CertRole::kIntermediate &&
        nodes_[upper].role == CertRole::kIntermediate) {
      neighbors[lower].insert(upper);
      neighbors[upper].insert(lower);
    }
  }
  std::vector<std::size_t> out;
  for (const auto& [index, set] : neighbors) {
    if (set.size() >= threshold) out.push_back(index);
  }
  return out;
}

std::size_t PkiGraph::connected_components() const {
  if (nodes_.empty()) return 0;
  std::vector<std::size_t> parent(nodes_.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& [a, b] : co_edges_) {
    const std::size_t ra = find(a);
    const std::size_t rb = find(b);
    if (ra != rb) parent[ra] = rb;
  }
  std::set<std::size_t> roots;
  for (std::size_t i = 0; i < parent.size(); ++i) roots.insert(find(i));
  return roots.size();
}

PkiGraph build_pki_graph(const std::vector<const ChainObservation*>& chains,
                         const truststore::TrustStoreSet& stores,
                         const core::DnPool* dn_pool, std::size_t max_length) {
  PkiGraph graph;
  // One classifier for the whole build: its DnId memo carries across chains,
  // so a corpus that repeats the same few issuers classifies each one once.
  std::optional<truststore::IssuerClassifier> classifier;
  if (dn_pool != nullptr) classifier.emplace(stores, *dn_pool);
  truststore::IssuerClassifier* memo =
      classifier.has_value() ? &*classifier : nullptr;
  for (const ChainObservation* observation : chains) {
    const auto& chain = observation->chain;
    if (chain.empty() || chain.length() > max_length) continue;
    std::vector<std::size_t> indices;
    indices.reserve(chain.length());
    for (const x509::Certificate& cert : chain) {
      indices.push_back(graph.intern_node(cert, stores, memo));
    }
    const chain::MatchResult match = chain::match_chain(chain);
    std::vector<bool> matched;
    matched.reserve(match.pairs.size());
    for (const chain::PairMatch& pair : match.pairs) matched.push_back(pair.matched);
    graph.note_chain(indices, matched);

    // Role evidence.
    for (std::size_t i = 0; i < chain.length(); ++i) {
      const x509::Certificate& cert = chain.at(i);
      if (cert.is_self_signed() && chain.length() > 1) {
        graph.promote_role(indices[i], CertRole::kRoot);
      } else if (cert.is_ca()) {
        graph.promote_role(indices[i], CertRole::kIntermediate);
      }
      // A certificate that issues the one below it is at least intermediate.
      if (i > 0 && i - 1 < matched.size() && matched[i - 1]) {
        if (cert.is_self_signed()) {
          graph.promote_role(indices[i], CertRole::kRoot);
        } else {
          graph.promote_role(indices[i], CertRole::kIntermediate);
        }
      }
    }
  }
  return graph;
}

}  // namespace certchain::core
