// Certificate relationship graphs (Figures 5, 7, 8).
//
// Figure 5 draws the certificates of hybrid chains as a graph: nodes are
// distinct certificates colored by issuer class and sized by role, and two
// nodes share an edge when they co-occur in at least one chain. Figures 7
// and 8 look at issuance *links* (matched issuer-subject adjacency) inside
// non-public-only and interception chains and pull out the "complex PKI
// structures": intermediates linked to three or more distinct intermediates.
// PkiGraph carries both edge sets and the statistics the figures summarize.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/corpus.hpp"
#include "core/dn_pool.hpp"
#include "truststore/issuer_classifier.hpp"
#include "truststore/trust_store.hpp"

namespace certchain::core {

enum class CertRole : std::uint8_t { kLeaf, kIntermediate, kRoot };

std::string_view cert_role_name(CertRole role);

struct PkiGraphNode {
  std::string fingerprint;
  std::string subject;  // display
  truststore::IssuerClass issuer_class = truststore::IssuerClass::kNonPublicDb;
  CertRole role = CertRole::kLeaf;
  std::size_t chain_count = 0;  // in how many distinct chains it appears
};

class PkiGraph {
 public:
  const std::vector<PkiGraphNode>& nodes() const { return nodes_; }
  /// Undirected co-occurrence edges (Figure 5 semantics), as index pairs
  /// with first < second.
  const std::set<std::pair<std::size_t, std::size_t>>& co_occurrence_edges() const {
    return co_edges_;
  }
  /// Directed issuance links: (lower, upper) for each matched adjacent pair
  /// ever observed (Figures 7/8 semantics).
  const std::set<std::pair<std::size_t, std::size_t>>& issuance_links() const {
    return links_;
  }

  std::size_t node_count() const { return nodes_.size(); }

  /// Node counts split by (role, issuer class).
  std::map<std::pair<CertRole, truststore::IssuerClass>, std::size_t>
  node_breakdown() const;

  /// Indices of intermediates linked (by issuance, either direction) to at
  /// least `threshold` distinct intermediates — the complex structures of
  /// Figures 7/8.
  std::vector<std::size_t> complex_intermediates(std::size_t threshold = 3) const;

  /// Number of connected components under co-occurrence edges.
  std::size_t connected_components() const;

  /// Degree (issuance links, both directions) of node `index`.
  std::size_t issuance_degree(std::size_t index) const;

  /// Chains longer than this contribute issuance links but no co-occurrence
  /// edges (all-pairs is quadratic; see note_chain).
  static constexpr std::size_t kMaxCoOccurrenceChain = 64;

  // Construction API (used by build_pki_graph). With a classifier the
  // issuer-class lookup is a DnId memo load (§16) instead of a canonical-
  // string probe; verdicts are identical either way.
  std::size_t intern_node(const x509::Certificate& cert,
                          const truststore::TrustStoreSet& stores,
                          truststore::IssuerClassifier* classifier = nullptr);
  void note_chain(const std::vector<std::size_t>& node_indices,
                  const std::vector<bool>& pair_matched);
  void promote_role(std::size_t index, CertRole role);

 private:
  std::vector<PkiGraphNode> nodes_;
  std::map<std::string, std::size_t, std::less<>> by_fingerprint_;
  std::set<std::pair<std::size_t, std::size_t>> co_edges_;
  std::set<std::pair<std::size_t, std::size_t>> links_;
};

/// Builds the graph over a slice of the corpus. Roles are inferred: a
/// self-signed CA (or any self-signed certificate in a multi-cert chain) is
/// a root; a certificate that issues another observed certificate (or is
/// CA:TRUE) is an intermediate; everything else is a leaf. Chains longer
/// than `max_length` are excluded entirely (the Figure 1 outlier chains
/// would otherwise flood the graph with thousands of junk nodes). A non-null
/// `dn_pool` routes issuer classification through a DnId-memoized
/// IssuerClassifier; certificates without an interned issuer id fall back to
/// the string path, so graphs are byte-identical with or without the pool.
PkiGraph build_pki_graph(const std::vector<const ChainObservation*>& chains,
                         const truststore::TrustStoreSet& stores,
                         const core::DnPool* dn_pool = nullptr,
                         std::size_t max_length = 30);

}  // namespace certchain::core
