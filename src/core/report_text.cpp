#include "core/report_text.hpp"

#include "obs/export.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace certchain::core {

namespace {

void render_totals(std::string& out, const StudyReport& report) {
  out += util::render_banner("Corpus");
  out += "connections: " + util::with_commas(report.totals.connections) +
         " (with certificates: " + util::with_commas(report.totals.with_certificates) +
         ", TLS1.3-opaque: " + util::with_commas(report.totals.tls13_connections) +
         ", incomplete joins: " + util::with_commas(report.totals.incomplete_joins) +
         ")\n";
  out += "unique chains: " + util::with_commas(report.unique_chains) +
         "   distinct certificates: " +
         util::with_commas(report.totals.distinct_certificates) + "\n";
  if (!report.excluded_outliers.empty()) {
    out += "length outliers excluded from Figure 1 series: " +
           std::to_string(report.excluded_outliers.size()) + "\n";
  }
  out += "\n";
}

void render_categories(std::string& out, const StudyReport& report) {
  out += util::render_banner("Chain categories (Table 2)");
  util::TextTable table({"Category", "Chains", "Connections", "Client IPs"});
  for (const auto& [category, usage] : report.categories) {
    table.add_row({std::string(chain::chain_category_name(category)),
                   util::with_commas(usage.chains),
                   util::with_commas(usage.connections),
                   util::with_commas(usage.client_ips)});
  }
  out += table.render();
  out += "\n";
}

void render_interception(std::string& out, const StudyReport& report) {
  out += util::render_banner("TLS interception (Table 1)");
  util::TextTable table({"Category", "Issuers", "Connections", "Client IPs"});
  for (const auto& row : report.interception.category_rows()) {
    table.add_row({row.category, std::to_string(row.issuers),
                   util::with_commas(row.connections),
                   util::with_commas(row.client_ips)});
  }
  out += table.render();
  out += "unconfirmed CT-mismatch candidates: " +
         std::to_string(report.interception.unconfirmed_candidates.size()) + "\n\n";
}

void render_hybrid(std::string& out, const StudyReport& report) {
  const HybridReport& hybrid = report.hybrid;
  out += util::render_banner("Hybrid chain structures (Tables 3/6/7)");
  util::TextTable table({"Structure", "Chains", "Est. rate %"});
  table.add_row({"complete matched path",
                 std::to_string(hybrid.complete_nonpub_to_pub +
                                hybrid.complete_pub_to_private),
                 util::percent(hybrid.usage_complete.establish_rate(), 1.0)});
  table.add_row({"contains complete path + extras",
                 std::to_string(hybrid.contains_complete_path),
                 util::percent(hybrid.usage_contains.establish_rate(), 1.0)});
  table.add_row({"no complete matched path",
                 std::to_string(hybrid.no_complete_path),
                 util::percent(hybrid.usage_no_path.establish_rate(), 1.0)});
  out += table.render();
  out += "anchored non-public leaves CT-logged: " +
         std::to_string(hybrid.anchored_ct_logged) + "/" +
         std::to_string(hybrid.complete_nonpub_to_pub) +
         "; expired leaves: " + std::to_string(hybrid.anchored_expired_leaf) +
         "; Fake-LE leftovers: " + std::to_string(hybrid.fake_le_chains) + "\n\n";
}

void render_non_public(std::string& out, const StudyReport& report) {
  const NonPublicReport& nonpub = report.non_public;
  out += util::render_banner("Non-public-DB-only chains (Sec. 4.3)");
  out += "single-cert: " + util::percent(nonpub.single_fraction(), 1.0) +
         "% (self-signed " +
         util::percent(nonpub.single_self_signed_fraction(), 1.0) +
         "%); DGA cluster: " + std::to_string(nonpub.dga_chains) + " chains\n";
  out += "multi-cert matched paths: " +
         util::percent(nonpub.is_matched_path_fraction(), 1.0) +
         "%; basicConstraints omitted: first " +
         util::percent(nonpub.bc_omitted_first_fraction(), 1.0) + "% / later " +
         util::percent(nonpub.bc_omitted_later_fraction(), 1.0) + "%\n\n";
}

void render_ct_compliance(std::string& out, const StudyReport& report) {
  const CtComplianceReport& ct = report.ct_compliance;
  out += util::render_banner("CT compliance by issuer category (Sec. 4.2)");
  util::TextTable table({"Issuer category", "Chains", "Connections", "CT-logged",
                         "With SCTs", "Policy-OK"});
  const auto row = [&table](const char* name, const CtComplianceBucket& bucket) {
    table.add_row({name, util::with_commas(bucket.chains),
                   util::with_commas(bucket.connections),
                   util::with_commas(bucket.ct_logged),
                   util::with_commas(bucket.with_scts),
                   util::with_commas(bucket.policy_compliant)});
  };
  row("public", ct.public_db);
  row("non-public hierarchical", ct.non_public_hierarchical);
  row("self-contained", ct.self_contained);
  out += table.render();
  out += "CT-logged leaves: " + util::with_commas(ct.total_ct_logged()) + "/" +
         util::with_commas(ct.total_chains()) + " unique chains\n\n";
}

void render_graphs(std::string& out, const StudyReport& report) {
  out += util::render_banner("PKI graphs (Figures 5/7/8)");
  const auto line = [&](const char* name, const PkiGraph& graph) {
    out += std::string(name) + ": " + std::to_string(graph.node_count()) +
           " nodes, " + std::to_string(graph.issuance_links().size()) +
           " issuance links, " +
           std::to_string(graph.complex_intermediates().size()) +
           " complex intermediates\n";
  };
  line("hybrid", report.hybrid_graph);
  line("non-public", report.non_public_graph);
  line("interception", report.interception_graph);
  out += "\n";
}

void render_data_quality(std::string& out, const StudyReport& report) {
  const IngestReport& ingest = report.ingest;
  if (!ingest.populated) return;
  out += util::render_banner("Data quality / scan health");
  out += "ingestion mode: " + std::string(ingest_mode_name(ingest.mode)) + "\n";
  util::TextTable table({"Stream", "Bytes", "Lines", "Records", "Malformed",
                         "Skipped", "Rotations"});
  const auto row = [&table](const char* name, const IngestStreamStats& stats) {
    table.add_row({name, util::with_commas(stats.bytes),
                   util::with_commas(stats.lines),
                   util::with_commas(stats.records),
                   util::with_commas(stats.malformed_rows),
                   util::with_commas(stats.skipped_lines),
                   util::with_commas(stats.rotations)});
  };
  row("SSL.log", ingest.ssl);
  row("X509.log", ingest.x509);
  out += table.render();
  if (!ingest.sample_errors.empty()) {
    out += "first errors:\n";
    for (const std::string& error : ingest.sample_errors) {
      out += "  " + error + "\n";
    }
  }
  out += "\n";
}

}  // namespace

std::string render_report_text(const StudyReport& report,
                               const ReportTextOptions& options) {
  std::string out;
  if (options.totals) render_totals(out, report);
  if (options.categories) render_categories(out, report);
  if (options.interception) render_interception(out, report);
  if (options.hybrid) render_hybrid(out, report);
  if (options.non_public) render_non_public(out, report);
  if (options.ct_compliance) render_ct_compliance(out, report);
  if (options.graphs) render_graphs(out, report);
  if (options.data_quality) render_data_quality(out, report);
  if (options.telemetry != nullptr) {
    out += util::render_banner("Telemetry");
    obs::TextExportOptions telemetry_options;
    telemetry_options.trace = options.telemetry_trace;
    out += obs::render_metrics_text(*options.telemetry, telemetry_options);
    out += "\n";
  }
  return out;
}

std::string render_scan_health(const RevisitScanHealth& health) {
  std::string out;
  out += util::render_banner("Scan health");
  out += "targets scanned: " + util::with_commas(health.scanned) +
         "  (clean: " + util::with_commas(health.reachable_clean) +
         ", degraded: " + util::with_commas(health.reachable_degraded) +
         ", unreachable: " + util::with_commas(health.unreachable) + ")\n";
  const scanner::ScanLedger& ledger = health.ledger;
  out += "attempts: " + util::with_commas(ledger.attempts) +
         "  retries: " + util::with_commas(ledger.retries) +
         "  backoff: " + util::with_commas(ledger.backoff_ms_total) + " ms\n";
  out += "salvage: " + util::with_commas(ledger.certs_salvaged) +
         " certs kept, " + util::with_commas(ledger.certs_dropped) +
         " lost (salvage rate " +
         util::percent(ledger.salvage_rate(), 1.0) + "%)\n";
  if (!ledger.error_counts.empty()) {
    out += "attempt errors:";
    for (const auto& [error, count] : ledger.error_counts) {
      out += " " + std::string(scanner::scan_error_name(error)) + "=" +
             util::with_commas(count);
    }
    out += "\n";
  }
  return out;
}

}  // namespace certchain::core
