// Text rendering for StudyReport.
//
// One place that turns the pipeline's report into the aligned-table text the
// CLI (tools/certchain_analyze) and examples print, so downstream users get
// the condensed study summary without re-implementing the formatting.
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace certchain::core {

/// Sections the renderer can emit.
struct ReportTextOptions {
  bool totals = true;
  bool categories = true;        // Table 2-style
  bool interception = true;      // Table 1-style
  bool hybrid = true;            // Table 3/6/7 digest
  bool non_public = true;        // §4.3 digest
  bool graphs = false;           // node/edge summaries
};

/// Renders the selected sections of the report as plain text.
std::string render_report_text(const StudyReport& report,
                               const ReportTextOptions& options = {});

}  // namespace certchain::core
