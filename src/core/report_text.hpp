// Text rendering for StudyReport.
//
// One place that turns the pipeline's report into the aligned-table text the
// CLI (tools/certchain_analyze) and examples print, so downstream users get
// the condensed study summary without re-implementing the formatting.
#pragma once

#include <string>

#include "core/pipeline.hpp"
#include "core/revisit.hpp"

namespace certchain::obs {
struct RunContext;
}  // namespace certchain::obs

namespace certchain::core {

/// Sections the renderer can emit.
struct ReportTextOptions {
  bool totals = true;
  bool categories = true;        // Table 2-style
  bool interception = true;      // Table 1-style
  bool hybrid = true;            // Table 3/6/7 digest
  bool non_public = true;        // §4.3 digest
  bool ct_compliance = true;     // §4.2 per-issuer-category CT analytics
  bool graphs = false;           // node/edge summaries
  /// Ingestion accounting; emitted only when the run consumed raw log text
  /// or streams (parsed-record runs have nothing to report on).
  bool data_quality = true;
  /// When set, a "Telemetry" section (obs::render_metrics_text) is appended:
  /// counters, per-stage admit/drop manifest, wall times.
  const obs::RunContext* telemetry = nullptr;
  /// Include the trace tree inside the telemetry section.
  bool telemetry_trace = false;
};

/// Renders the selected sections of the report as plain text.
std::string render_report_text(const StudyReport& report,
                               const ReportTextOptions& options = {});

/// Renders a revisit campaign's scan-health block (reachable / degraded /
/// unreachable populations plus the retry ledger) — the "data quality"
/// companion for §5 tables produced under fault injection.
std::string render_scan_health(const RevisitScanHealth& health);

}  // namespace certchain::core
