#include "core/revisit.hpp"

#include "chain/matcher.hpp"
#include "util/strings.hpp"

namespace certchain::core {

using truststore::IssuerClass;

namespace {

/// Adapts a perfect-network ScanResult to the resilient result shape so both
/// scanner flavours drive one analysis code path.
scanner::ResilientScanResult wrap_pristine(scanner::ScanResult scan) {
  scanner::ResilientScanResult result;
  result.attempts = 1;
  result.error = scan.reachable ? scanner::ScanError::kNone
                                : scanner::ScanError::kUnreachable;
  result.scan = std::move(scan);
  return result;
}

void record_health(RevisitScanHealth& health,
                   const scanner::ResilientScanResult& result) {
  ++health.scanned;
  if (!result.scan.reachable || result.scan.chain.empty()) {
    ++health.unreachable;
  } else if (result.degraded) {
    ++health.reachable_degraded;
  } else {
    ++health.reachable_clean;
  }
}

}  // namespace

bool RevisitAnalyzer::all_public(const chain::CertificateChain& chain) const {
  if (chain.empty()) return false;
  for (const x509::Certificate& cert : chain) {
    if (stores_->classify_certificate(cert) != IssuerClass::kPublicDb) return false;
  }
  return true;
}

bool RevisitAnalyzer::all_non_public(const chain::CertificateChain& chain) const {
  if (chain.empty()) return false;
  for (const x509::Certificate& cert : chain) {
    if (stores_->classify_certificate(cert) != IssuerClass::kNonPublicDb) return false;
  }
  return true;
}

bool RevisitAnalyzer::is_lets_encrypt_chain(const chain::CertificateChain& chain) {
  if (chain.empty()) return false;
  const auto organization = chain.first().issuer.organization();
  const auto cn = chain.first().issuer.common_name();
  const std::string haystack = util::to_lower(organization.value_or("")) + "/" +
                               util::to_lower(cn.value_or(""));
  return util::contains(haystack, "let's encrypt") ||
         util::contains(haystack, "lets encrypt") || util::contains(haystack, "isrg");
}

HybridRevisitReport RevisitAnalyzer::analyze_hybrid_impl(
    const std::vector<const netsim::ServerEndpoint*>& servers,
    const ScanFn& scan_endpoint) const {
  HybridRevisitReport report;
  report.previous_servers = servers.size();

  for (const netsim::ServerEndpoint* server : servers) {
    const scanner::ResilientScanResult result = scan_endpoint(*server);
    record_health(report.scan_health, result);
    const scanner::ScanResult& scan = result.scan;
    if (!scan.reachable || scan.chain.empty()) continue;
    ++report.reachable;

    if (all_public(scan.chain)) {
      ++report.now_all_public;
      if (is_lets_encrypt_chain(scan.chain)) ++report.now_lets_encrypt;
      continue;
    }
    if (all_non_public(scan.chain)) {
      ++report.now_all_non_public;
      continue;
    }
    ++report.still_hybrid;
    const chain::HybridClassification cls =
        chain::classify_hybrid(scan.chain, *stores_, registry_);
    switch (cls.structure) {
      case chain::HybridStructure::kCompleteNonPubToPub:
      case chain::HybridStructure::kCompletePubToPrivate:
        ++report.still_complete_no_extras;
        break;
      case chain::HybridStructure::kContainsCompletePath:
        ++report.still_complete_with_extras;
        break;
      case chain::HybridStructure::kNoCompletePath:
        ++report.still_no_path;
        break;
    }
  }
  return report;
}

NonPublicRevisitReport RevisitAnalyzer::analyze_non_public_impl(
    const std::vector<const netsim::ServerEndpoint*>& servers,
    const ScanFn& scan_endpoint, std::uint64_t previous_connections,
    std::uint64_t previous_no_sni_connections) const {
  NonPublicRevisitReport report;
  report.previous_connections = previous_connections;
  report.previous_no_sni_connections = previous_no_sni_connections;

  for (const netsim::ServerEndpoint* server : servers) {
    // Without an SNI on record there is nothing to connect to by name — the
    // paper could only extract servers whose connections carried one.
    if (server->domain.empty()) continue;
    ++report.scannable_servers;

    const scanner::ResilientScanResult result = scan_endpoint(*server);
    record_health(report.scan_health, result);
    const scanner::ScanResult& scan = result.scan;
    if (!scan.reachable || scan.chain.empty()) continue;
    ++report.reachable;

    if (all_non_public(scan.chain)) ++report.still_non_public;

    if (scan.chain.length() > 1) {
      ++report.now_multi_cert;
      // Classify what this server used to serve.
      const auto& previous = server->chain;
      if (previous.length() > 1) {
        ++report.previously_multi;
      } else if (previous.length() == 1 && previous.first_is_self_signed()) {
        ++report.previously_single_self_signed;
      } else if (previous.length() == 1) {
        ++report.previously_single_distinct;
      }
      const chain::PathAnalysis analysis =
          chain::analyze_paths(scan.chain, registry_, /*require_leaf=*/false);
      if (analysis.is_complete_path()) ++report.now_multi_complete_matched;
    }
  }
  return report;
}

HybridRevisitReport RevisitAnalyzer::analyze_hybrid(
    const std::vector<const netsim::ServerEndpoint*>& servers,
    const scanner::ActiveScanner& scanner) const {
  return analyze_hybrid_impl(servers, [&scanner](const netsim::ServerEndpoint& s) {
    return wrap_pristine(s.domain.empty() ? scanner.scan_ip(s.ip, s.port)
                                          : scanner.scan_domain(s.domain, s.port));
  });
}

HybridRevisitReport RevisitAnalyzer::analyze_hybrid(
    const std::vector<const netsim::ServerEndpoint*>& servers,
    scanner::ResilientScanner& scanner) const {
  const scanner::ScanLedger before = scanner.ledger();
  HybridRevisitReport report =
      analyze_hybrid_impl(servers, [&scanner](const netsim::ServerEndpoint& s) {
        return s.domain.empty() ? scanner.scan_ip(s.ip, s.port)
                                : scanner.scan_domain(s.domain, s.port);
      });
  report.scan_health.ledger = scanner.ledger().delta_since(before);
  return report;
}

NonPublicRevisitReport RevisitAnalyzer::analyze_non_public(
    const std::vector<const netsim::ServerEndpoint*>& servers,
    const scanner::ActiveScanner& scanner, std::uint64_t previous_connections,
    std::uint64_t previous_no_sni_connections) const {
  return analyze_non_public_impl(
      servers,
      [&scanner](const netsim::ServerEndpoint& s) {
        return wrap_pristine(scanner.scan_domain(s.domain, s.port));
      },
      previous_connections, previous_no_sni_connections);
}

NonPublicRevisitReport RevisitAnalyzer::analyze_non_public(
    const std::vector<const netsim::ServerEndpoint*>& servers,
    scanner::ResilientScanner& scanner, std::uint64_t previous_connections,
    std::uint64_t previous_no_sni_connections) const {
  const scanner::ScanLedger before = scanner.ledger();
  NonPublicRevisitReport report = analyze_non_public_impl(
      servers,
      [&scanner](const netsim::ServerEndpoint& s) {
        return scanner.scan_domain(s.domain, s.port);
      },
      previous_connections, previous_no_sni_connections);
  report.scan_health.ledger = scanner.ledger().delta_since(before);
  return report;
}

}  // namespace certchain::core
