#include "core/revisit.hpp"

#include "chain/matcher.hpp"
#include "util/strings.hpp"

namespace certchain::core {

using truststore::IssuerClass;

bool RevisitAnalyzer::all_public(const chain::CertificateChain& chain) const {
  if (chain.empty()) return false;
  for (const x509::Certificate& cert : chain) {
    if (stores_->classify_certificate(cert) != IssuerClass::kPublicDb) return false;
  }
  return true;
}

bool RevisitAnalyzer::all_non_public(const chain::CertificateChain& chain) const {
  if (chain.empty()) return false;
  for (const x509::Certificate& cert : chain) {
    if (stores_->classify_certificate(cert) != IssuerClass::kNonPublicDb) return false;
  }
  return true;
}

bool RevisitAnalyzer::is_lets_encrypt_chain(const chain::CertificateChain& chain) {
  if (chain.empty()) return false;
  const auto organization = chain.first().issuer.organization();
  const auto cn = chain.first().issuer.common_name();
  const std::string haystack = util::to_lower(organization.value_or("")) + "/" +
                               util::to_lower(cn.value_or(""));
  return util::contains(haystack, "let's encrypt") ||
         util::contains(haystack, "lets encrypt") || util::contains(haystack, "isrg");
}

HybridRevisitReport RevisitAnalyzer::analyze_hybrid(
    const std::vector<const netsim::ServerEndpoint*>& servers,
    const scanner::ActiveScanner& scanner) const {
  HybridRevisitReport report;
  report.previous_servers = servers.size();

  for (const netsim::ServerEndpoint* server : servers) {
    const scanner::ScanResult scan =
        server->domain.empty() ? scanner.scan_ip(server->ip, server->port)
                               : scanner.scan_domain(server->domain, server->port);
    if (!scan.reachable || scan.chain.empty()) continue;
    ++report.reachable;

    if (all_public(scan.chain)) {
      ++report.now_all_public;
      if (is_lets_encrypt_chain(scan.chain)) ++report.now_lets_encrypt;
      continue;
    }
    if (all_non_public(scan.chain)) {
      ++report.now_all_non_public;
      continue;
    }
    ++report.still_hybrid;
    const chain::HybridClassification cls =
        chain::classify_hybrid(scan.chain, *stores_, registry_);
    switch (cls.structure) {
      case chain::HybridStructure::kCompleteNonPubToPub:
      case chain::HybridStructure::kCompletePubToPrivate:
        ++report.still_complete_no_extras;
        break;
      case chain::HybridStructure::kContainsCompletePath:
        ++report.still_complete_with_extras;
        break;
      case chain::HybridStructure::kNoCompletePath:
        ++report.still_no_path;
        break;
    }
  }
  return report;
}

NonPublicRevisitReport RevisitAnalyzer::analyze_non_public(
    const std::vector<const netsim::ServerEndpoint*>& servers,
    const scanner::ActiveScanner& scanner,
    std::uint64_t previous_connections,
    std::uint64_t previous_no_sni_connections) const {
  NonPublicRevisitReport report;
  report.previous_connections = previous_connections;
  report.previous_no_sni_connections = previous_no_sni_connections;

  for (const netsim::ServerEndpoint* server : servers) {
    // Without an SNI on record there is nothing to connect to by name — the
    // paper could only extract servers whose connections carried one.
    if (server->domain.empty()) continue;
    ++report.scannable_servers;

    const scanner::ScanResult scan =
        scanner.scan_domain(server->domain, server->port);
    if (!scan.reachable || scan.chain.empty()) continue;
    ++report.reachable;

    if (all_non_public(scan.chain)) ++report.still_non_public;

    if (scan.chain.length() > 1) {
      ++report.now_multi_cert;
      // Classify what this server used to serve.
      const auto& previous = server->chain;
      if (previous.length() > 1) {
        ++report.previously_multi;
      } else if (previous.length() == 1 && previous.first_is_self_signed()) {
        ++report.previously_single_self_signed;
      } else if (previous.length() == 1) {
        ++report.previously_single_distinct;
      }
      const chain::PathAnalysis analysis =
          chain::analyze_paths(scan.chain, registry_, /*require_leaf=*/false);
      if (analysis.is_complete_path()) ++report.now_multi_complete_matched;
    }
  }
  return report;
}

}  // namespace certchain::core
