// The November-2024 retrospective study (§5).
//
// The paper re-contacted the servers that had delivered hybrid and
// non-public-DB-only chains during the collection window and compared the
// freshly scanned chains with the logged ones. Two findings: (1) most former
// hybrid servers moved to public-DB issuers — largely Let's Encrypt; (2)
// formerly single-certificate non-public servers now deliver hierarchical
// multi-certificate chains, almost all of them complete matched paths.
//
// Both analyses run against either the perfect-network ActiveScanner or the
// ResilientScanner (retry/backoff/salvage under an injected FaultPlan). In
// the resilient case every report carries a RevisitScanHealth block so the
// tables can state their measured population the way the paper states its
// exclusions (reachable / degraded / unreachable, plus the retry ledger).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chain/categorizer.hpp"
#include "netsim/endpoint.hpp"
#include "scanner/resilient_scanner.hpp"
#include "scanner/scanner.hpp"
#include "truststore/trust_store.hpp"

namespace certchain::core {

/// Scan-health accounting for one revisit campaign: how many targets were
/// contacted, how many answered cleanly, how many only via a salvaged
/// partial bundle, and what the retry machinery spent getting there.
struct RevisitScanHealth {
  std::size_t scanned = 0;
  std::size_t reachable_clean = 0;
  std::size_t reachable_degraded = 0;
  std::size_t unreachable = 0;
  scanner::ScanLedger ledger;

  bool reconciles() const {
    return scanned == reachable_clean + reachable_degraded + unreachable;
  }
};

struct HybridRevisitReport {
  std::size_t previous_servers = 0;
  std::size_t reachable = 0;

  std::size_t now_all_public = 0;
  std::size_t now_lets_encrypt = 0;  // subset of now_all_public
  std::size_t now_all_non_public = 0;
  std::size_t still_hybrid = 0;

  // Breakdown of the still-hybrid servers.
  std::size_t still_complete_no_extras = 0;
  std::size_t still_complete_with_extras = 0;
  std::size_t still_no_path = 0;

  RevisitScanHealth scan_health;
};

struct NonPublicRevisitReport {
  std::uint64_t previous_connections = 0;
  std::uint64_t previous_no_sni_connections = 0;

  std::size_t scannable_servers = 0;  // had an SNI we could extract
  std::size_t reachable = 0;
  std::size_t still_non_public = 0;

  std::size_t now_multi_cert = 0;
  // History of the now-multi-cert servers (the paper's 39.00% / 53.44% /
  // 7.56% split).
  std::size_t previously_multi = 0;
  std::size_t previously_single_self_signed = 0;
  std::size_t previously_single_distinct = 0;

  std::size_t now_multi_complete_matched = 0;  // 97.61% in the paper

  RevisitScanHealth scan_health;
};

class RevisitAnalyzer {
 public:
  RevisitAnalyzer(const truststore::TrustStoreSet& stores,
                  const chain::CrossSignRegistry* registry = nullptr)
      : stores_(&stores), registry_(registry) {}

  /// Revisits the servers that delivered hybrid chains in epoch 1.
  HybridRevisitReport analyze_hybrid(
      const std::vector<const netsim::ServerEndpoint*>& servers,
      const scanner::ActiveScanner& scanner) const;

  /// Same, over the resilient path: retries, backoff, salvage; the report's
  /// scan_health carries this campaign's share of the scanner's ledger.
  HybridRevisitReport analyze_hybrid(
      const std::vector<const netsim::ServerEndpoint*>& servers,
      scanner::ResilientScanner& scanner) const;

  /// Revisits the servers that delivered non-public-DB-only chains.
  NonPublicRevisitReport analyze_non_public(
      const std::vector<const netsim::ServerEndpoint*>& servers,
      const scanner::ActiveScanner& scanner,
      std::uint64_t previous_connections,
      std::uint64_t previous_no_sni_connections) const;

  NonPublicRevisitReport analyze_non_public(
      const std::vector<const netsim::ServerEndpoint*>& servers,
      scanner::ResilientScanner& scanner,
      std::uint64_t previous_connections,
      std::uint64_t previous_no_sni_connections) const;

  /// True if every certificate in the chain was issued by a public-DB
  /// issuer.
  bool all_public(const chain::CertificateChain& chain) const;
  bool all_non_public(const chain::CertificateChain& chain) const;

  /// Heuristic Let's Encrypt detection on the scanned leaf.
  static bool is_lets_encrypt_chain(const chain::CertificateChain& chain);

 private:
  using ScanFn =
      std::function<scanner::ResilientScanResult(const netsim::ServerEndpoint&)>;

  HybridRevisitReport analyze_hybrid_impl(
      const std::vector<const netsim::ServerEndpoint*>& servers,
      const ScanFn& scan) const;
  NonPublicRevisitReport analyze_non_public_impl(
      const std::vector<const netsim::ServerEndpoint*>& servers,
      const ScanFn& scan, std::uint64_t previous_connections,
      std::uint64_t previous_no_sni_connections) const;

  const truststore::TrustStoreSet* stores_;
  const chain::CrossSignRegistry* registry_;
};

}  // namespace certchain::core
