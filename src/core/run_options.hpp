// Execution options for every StudyPipeline entry point and for the
// standalone parallel analyzers (interception, cert_stats).
//
// One options struct covers the whole execution envelope: ingestion policy,
// worker count, and the streaming knobs (chunk size, checkpoint path) that
// only apply when the input is a LogSource. Keeping them together is the
// point of the PR-4 API redesign — callers configure a run once instead of
// choosing among overloads (DESIGN.md §11).
#pragma once

#include <cstddef>
#include <string>

#include "core/ingest.hpp"
#include "par/exec.hpp"

namespace certchain::core {

struct RunOptions {
  IngestOptions ingest;

  /// Worker/shard count: 1 (default) runs the serial path; 0 resolves to
  /// hardware concurrency; N > 1 runs N-way sharded with a deterministic
  /// merge. Any value produces byte-identical reports and identical
  /// deterministic metrics — the contract the parallel-diff suite enforces.
  std::size_t threads = 1;

  /// Streaming read granularity for LogSource inputs: bytes pulled from the
  /// source per chunk (each chunk is parsed, joined, and folded into the
  /// corpus before the next is read, so peak residency is O(chunk) + the
  /// deduplicated corpus state, not O(total log bytes)). 0 falls back to the
  /// default. Ignored for in-memory inputs. The report is byte-identical at
  /// every chunk size.
  std::size_t chunk_bytes = kDefaultChunkBytes;
  static constexpr std::size_t kDefaultChunkBytes = 4 * 1024 * 1024;

  /// When non-empty, streamed runs write a versioned fold snapshot
  /// (certchain.stream.checkpoint) to this path after every chunk and, if
  /// the file already exists and matches the inputs, resume from it instead
  /// of starting over. The file is removed on successful completion. Ignored
  /// for in-memory inputs.
  std::string checkpoint_path;

  /// The layer-neutral projection consumed by analyzers below core.
  par::ExecOptions exec() const { return par::ExecOptions{threads}; }
};

}  // namespace certchain::core
