#include "core/stream_checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdint>

namespace certchain::core {

namespace {

/// 64-bit digests round-trip as fixed-width hex strings: the JSON layer
/// stores numbers as doubles, which cannot represent every uint64 exactly.
std::string to_hex(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buffer);
}

bool from_hex(std::string_view text, std::uint64_t& out) {
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  out = value;
  return true;
}

bool read_uint(const obs::json::Value& object, const char* key,
               std::uint64_t& out) {
  const obs::json::Value* member = object.find(key);
  if (member == nullptr || !member->is_number() || member->num < 0) return false;
  out = static_cast<std::uint64_t>(member->num);
  return true;
}

bool read_size(const obs::json::Value& object, const char* key,
               std::size_t& out) {
  std::uint64_t value = 0;
  if (!read_uint(object, key, value)) return false;
  out = static_cast<std::size_t>(value);
  return true;
}

bool read_hex(const obs::json::Value& object, const char* key,
              std::uint64_t& out) {
  const obs::json::Value* member = object.find(key);
  if (member == nullptr || !member->is_string()) return false;
  return from_hex(member->string, out);
}

void write_reader(obs::json::Writer& writer,
                  const zeek::ReaderCheckpoint& reader) {
  writer.begin_object();
  writer.key("buffer");
  writer.value_string(reader.buffer);
  writer.key("in_body");
  writer.value_bool(reader.in_body);
  writer.key("line_offset");
  writer.value_uint(reader.line_offset);
  writer.key("bytes_consumed");
  writer.value_uint(reader.bytes_consumed);
  writer.key("lines_seen");
  writer.value_uint(reader.lines_seen);
  writer.key("records_emitted");
  writer.value_uint(reader.records_emitted);
  writer.key("lines_skipped");
  writer.value_uint(reader.lines_skipped);
  writer.key("malformed_rows");
  writer.value_uint(reader.malformed_rows);
  writer.key("rotations_seen");
  writer.value_uint(reader.rotations_seen);
  writer.key("errors");
  writer.begin_array();
  for (const zeek::ReaderLineError& error : reader.errors) {
    writer.begin_object();
    writer.key("line");
    writer.value_uint(error.line_number);
    writer.key("message");
    writer.value_string(error.message);
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
}

bool read_reader(const obs::json::Value& value, zeek::ReaderCheckpoint& out) {
  if (!value.is_object()) return false;
  const obs::json::Value* buffer = value.find("buffer");
  const obs::json::Value* in_body = value.find("in_body");
  if (buffer == nullptr || !buffer->is_string() || in_body == nullptr ||
      in_body->kind != obs::json::Value::Kind::kBool) {
    return false;
  }
  out.buffer = buffer->string;
  out.in_body = in_body->boolean;
  if (!read_size(value, "line_offset", out.line_offset) ||
      !read_size(value, "bytes_consumed", out.bytes_consumed) ||
      !read_size(value, "lines_seen", out.lines_seen) ||
      !read_size(value, "records_emitted", out.records_emitted) ||
      !read_size(value, "lines_skipped", out.lines_skipped) ||
      !read_size(value, "malformed_rows", out.malformed_rows) ||
      !read_size(value, "rotations_seen", out.rotations_seen)) {
    return false;
  }
  const obs::json::Value* errors = value.find("errors");
  if (errors == nullptr || !errors->is_array()) return false;
  for (const obs::json::Value& entry : errors->array) {
    if (!entry.is_object()) return false;
    zeek::ReaderLineError error;
    const obs::json::Value* message = entry.find("message");
    if (message == nullptr || !message->is_string() ||
        !read_size(entry, "line", error.line_number)) {
      return false;
    }
    error.message = message->string;
    out.errors.push_back(std::move(error));
  }
  return true;
}

}  // namespace

std::string encode_stream_checkpoint(const StreamCheckpoint& checkpoint,
                                     const CorpusIndex& corpus) {
  obs::json::Writer writer;
  writer.begin_object();
  writer.key("schema");
  writer.value_string(kStreamCheckpointSchema);
  writer.key("version");
  writer.value_uint(kStreamCheckpointVersion);
  writer.key("mode");
  writer.value_string(ingest_mode_name(checkpoint.mode));
  writer.key("x509_digest");
  writer.value_string(to_hex(checkpoint.x509_digest));
  writer.key("ssl_digest_state");
  writer.value_string(to_hex(checkpoint.ssl_digest_state));
  writer.key("ssl_offset");
  writer.value_uint(checkpoint.ssl_offset);
  writer.key("chunks_done");
  writer.value_uint(checkpoint.chunks_done);
  writer.key("ssl_reader");
  write_reader(writer, checkpoint.ssl_reader);
  writer.key("corpus");
  corpus.write_snapshot(writer);
  writer.end_object();
  return std::move(writer).str();
}

std::optional<StreamCheckpoint> decode_stream_checkpoint(
    std::string_view text,
    const std::map<std::string, x509::Certificate>& by_fingerprint,
    CorpusIndex& corpus, std::string* error) {
  const auto fail = [error](const std::string& message)
      -> std::optional<StreamCheckpoint> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  std::string parse_error;
  const std::optional<obs::json::Value> root =
      obs::json::parse(text, &parse_error);
  if (!root) return fail("checkpoint parse failed: " + parse_error);
  if (!root->is_object()) return fail("checkpoint is not an object");

  const obs::json::Value* schema = root->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kStreamCheckpointSchema) {
    return fail("checkpoint schema mismatch");
  }
  std::uint64_t version = 0;
  if (!read_uint(*root, "version", version) ||
      version != static_cast<std::uint64_t>(kStreamCheckpointVersion)) {
    return fail("unsupported checkpoint version");
  }

  StreamCheckpoint checkpoint;
  const obs::json::Value* mode = root->find("mode");
  if (mode == nullptr || !mode->is_string()) return fail("checkpoint mode missing");
  if (mode->string == ingest_mode_name(IngestMode::kStrict)) {
    checkpoint.mode = IngestMode::kStrict;
  } else if (mode->string == ingest_mode_name(IngestMode::kLenient)) {
    checkpoint.mode = IngestMode::kLenient;
  } else {
    return fail("checkpoint mode unrecognized: " + mode->string);
  }

  if (!read_hex(*root, "x509_digest", checkpoint.x509_digest) ||
      !read_hex(*root, "ssl_digest_state", checkpoint.ssl_digest_state) ||
      !read_uint(*root, "ssl_offset", checkpoint.ssl_offset) ||
      !read_uint(*root, "chunks_done", checkpoint.chunks_done)) {
    return fail("checkpoint frontier fields malformed");
  }

  const obs::json::Value* reader = root->find("ssl_reader");
  if (reader == nullptr || !read_reader(*reader, checkpoint.ssl_reader)) {
    return fail("checkpoint ssl_reader malformed");
  }

  const obs::json::Value* snapshot = root->find("corpus");
  std::string corpus_error;
  if (snapshot == nullptr ||
      !corpus.restore_snapshot(*snapshot, by_fingerprint, &corpus_error)) {
    return fail("checkpoint corpus malformed: " + corpus_error);
  }
  return checkpoint;
}

bool write_stream_checkpoint(const std::string& path,
                             const StreamCheckpoint& checkpoint,
                             const CorpusIndex& corpus) {
  return write_file_atomic(path, encode_stream_checkpoint(checkpoint, corpus));
}

bool write_file_atomic(const std::string& path, std::string_view text) {
  const std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool written =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  // fclose alone only reaches the page cache; the rename below must never
  // publish a file whose bytes could still vanish in a power loss — the
  // svc compaction resets the WAL immediately after this returns.
  const bool durable = written && std::fflush(file) == 0 &&
                       ::fsync(::fileno(file)) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!durable || !closed) {
    std::remove(tmp_path.c_str());
    return false;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return false;
  }
  // The rename itself lives in the directory entry: sync that too, so the
  // publish survives power loss. Best-effort — the file's own fsync above
  // is the hard requirement, and a lost rename merely resurfaces the old
  // file, which every caller treats as "recovery replays more".
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : (slash == 0 ? "/" : path.substr(0, slash));
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return true;
}

std::optional<std::string> read_file_text(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::string text;
  char buffer[64 * 1024];
  while (true) {
    const std::size_t got = std::fread(buffer, 1, sizeof(buffer), file);
    if (got == 0) break;
    text.append(buffer, got);
  }
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!ok) return std::nullopt;
  return text;
}

}  // namespace certchain::core
