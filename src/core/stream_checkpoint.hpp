// Versioned stream-checkpoint snapshots (DESIGN.md §11).
//
// The streaming engine folds the SSL stream chunk by chunk; after each chunk
// the complete fold state — partial corpus, SSL reader state, ingest
// frontier, chunk accounting — is a small, serializable value. A
// StreamCheckpoint captures it, obs::json carries it to disk under the
// schema `certchain.stream.checkpoint` v1, and a killed run resumes from the
// last chunk boundary instead of starting over. The X509 phase is never
// checkpointed: X509.log is one row per distinct certificate (orders of
// magnitude smaller than SSL.log), so resume re-ingests it from scratch and
// verifies the stream digest recorded here to reject snapshots taken against
// different inputs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/corpus.hpp"
#include "core/ingest.hpp"
#include "zeek/log_stream.hpp"

namespace certchain::core {

inline constexpr std::string_view kStreamCheckpointSchema =
    "certchain.stream.checkpoint";
inline constexpr int kStreamCheckpointVersion = 1;

struct StreamCheckpoint {
  IngestMode mode = IngestMode::kLenient;

  /// FNV-1a over every X509 source byte; resume recomputes it from its own
  /// X509 ingest and refuses to continue on mismatch.
  std::uint64_t x509_digest = 0;
  /// Running FNV-1a over the SSL bytes consumed so far (carried forward so
  /// the completed run can report a whole-stream digest).
  std::uint64_t ssl_digest_state = 0;

  /// Byte offset the SSL source resumes reading at.
  std::uint64_t ssl_offset = 0;
  /// Chunks folded so far (continues the `stream.chunk.ssl` counter).
  std::uint64_t chunks_done = 0;

  zeek::ReaderCheckpoint ssl_reader;
};

/// Serializes checkpoint + corpus into the schema-versioned JSON document.
std::string encode_stream_checkpoint(const StreamCheckpoint& checkpoint,
                                     const CorpusIndex& corpus);

/// Parses a checkpoint document and restores the corpus through
/// `by_fingerprint` (see CorpusIndex::restore_snapshot). Returns nullopt
/// with `error` set on schema/version mismatch or malformed content.
std::optional<StreamCheckpoint> decode_stream_checkpoint(
    std::string_view text,
    const std::map<std::string, x509::Certificate>& by_fingerprint,
    CorpusIndex& corpus, std::string* error);

/// File helpers. Writes are atomic-enough for the single-writer case (write
/// to `<path>.tmp`, then rename). Returns false on I/O failure.
bool write_stream_checkpoint(const std::string& path,
                             const StreamCheckpoint& checkpoint,
                             const CorpusIndex& corpus);
std::optional<std::string> read_file_text(const std::string& path);

/// Atomic-enough whole-file replace for the single-writer case: writes
/// `<path>.tmp`, fsyncs it, renames over `path`, then fsyncs the containing
/// directory (best-effort). The svc snapshot and WAL compaction reuse this
/// (DESIGN.md §13); a crash — process kill or power loss — leaves either
/// the old file or the complete new one, never a torn mix.
bool write_file_atomic(const std::string& path, std::string_view text);

}  // namespace certchain::core
