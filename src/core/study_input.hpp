// StudyInput: one value describing where a study run's data comes from.
//
// PR 3 left StudyPipeline with six run/run_from_text overloads; this wrapper
// collapses them behind the single entry point
// `StudyPipeline::run(const StudyInput&, const RunOptions&, obs::RunContext*)`
// (DESIGN.md §11). An input is one of:
//
//   records  — already-parsed SSL/X509 rows (or a netsim::GeneratedLogs),
//              held by reference; no ingestion accounting.
//   text     — raw Zeek log text resident in memory; the full
//              parse -> join -> analyze path with ingest accounting.
//   sources  — two LogSource streams consumed chunk by chunk through the
//              bounded-memory streaming engine (checkpointable).
//   files    — paths opened as FileLogSources at run time; a path that
//              cannot be opened raises IngestError from run().
//
// Referenced records/text must outlive the run() call (they are not copied).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/log_source.hpp"
#include "netsim/simulator.hpp"
#include "zeek/records.hpp"

namespace certchain::core {

class StudyInput {
 public:
  enum class Kind { kRecords, kText, kSources, kFiles };

  static StudyInput records(const std::vector<zeek::SslLogRecord>& ssl,
                            const std::vector<zeek::X509LogRecord>& x509) {
    StudyInput input(Kind::kRecords);
    input.ssl_records_ = &ssl;
    input.x509_records_ = &x509;
    return input;
  }

  static StudyInput records(const netsim::GeneratedLogs& logs) {
    return records(logs.ssl, logs.x509);
  }

  static StudyInput text(std::string_view ssl_log_text,
                         std::string_view x509_log_text) {
    StudyInput input(Kind::kText);
    input.ssl_text_ = ssl_log_text;
    input.x509_text_ = x509_log_text;
    return input;
  }

  static StudyInput sources(std::shared_ptr<LogSource> ssl,
                            std::shared_ptr<LogSource> x509) {
    StudyInput input(Kind::kSources);
    input.ssl_source_ = std::move(ssl);
    input.x509_source_ = std::move(x509);
    return input;
  }

  static StudyInput files(std::string ssl_path, std::string x509_path) {
    StudyInput input(Kind::kFiles);
    input.ssl_path_ = std::move(ssl_path);
    input.x509_path_ = std::move(x509_path);
    return input;
  }

  Kind kind() const { return kind_; }
  bool streamed() const {
    return kind_ == Kind::kSources || kind_ == Kind::kFiles;
  }

  // kRecords accessors.
  const std::vector<zeek::SslLogRecord>& ssl_records() const {
    return *ssl_records_;
  }
  const std::vector<zeek::X509LogRecord>& x509_records() const {
    return *x509_records_;
  }

  // kText accessors.
  std::string_view ssl_text() const { return ssl_text_; }
  std::string_view x509_text() const { return x509_text_; }

  // kSources / kFiles: materializes the stream (files are opened here).
  // Returns nullptr when a file path cannot be opened — run() converts that
  // into an IngestError naming the path.
  std::shared_ptr<LogSource> open_ssl_source() const {
    return open_source(ssl_source_, ssl_path_);
  }
  std::shared_ptr<LogSource> open_x509_source() const {
    return open_source(x509_source_, x509_path_);
  }
  const std::string& ssl_path() const { return ssl_path_; }
  const std::string& x509_path() const { return x509_path_; }

  /// Short description for telemetry config ("records", "text", ...).
  std::string_view describe() const {
    switch (kind_) {
      case Kind::kRecords: return "records";
      case Kind::kText: return "text";
      case Kind::kSources: return "sources";
      case Kind::kFiles: return "files";
    }
    return "unknown";
  }

 private:
  explicit StudyInput(Kind kind) : kind_(kind) {}

  static std::shared_ptr<LogSource> open_source(
      const std::shared_ptr<LogSource>& source, const std::string& path) {
    if (source != nullptr) return source;
    return std::shared_ptr<LogSource>(open_file_source(path));
  }

  Kind kind_;
  const std::vector<zeek::SslLogRecord>* ssl_records_ = nullptr;
  const std::vector<zeek::X509LogRecord>* x509_records_ = nullptr;
  std::string_view ssl_text_;
  std::string_view x509_text_;
  std::shared_ptr<LogSource> ssl_source_;
  std::shared_ptr<LogSource> x509_source_;
  std::string ssl_path_;
  std::string x509_path_;
};

}  // namespace certchain::core
