#include "core/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

namespace certchain::core {

std::string month_key(util::SimTime t) {
  const util::CivilTime civil = util::to_civil(t);
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d", civil.year, civil.month);
  return buffer;
}

namespace {

/// Months from `begin` to `end` inclusive, chronological.
std::vector<std::string> month_span(util::SimTime begin, util::SimTime end) {
  std::vector<std::string> months;
  util::CivilTime civil = util::to_civil(begin);
  int year = civil.year;
  int month = civil.month;
  const std::string last = month_key(end);
  while (true) {
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "%04d-%02d", year, month);
    months.emplace_back(buffer);
    if (months.back() == last) break;
    if (++month > 12) {
      month = 1;
      ++year;
    }
    if (months.size() > 1200) break;  // defensive bound
  }
  return months;
}

}  // namespace

TimelineReport build_timeline(const CorpusIndex& corpus,
                              const truststore::TrustStoreSet& stores,
                              const chain::InterceptionIssuerSet& interception) {
  TimelineReport report;
  if (corpus.chains().empty()) return report;

  // Corpus-wide month span.
  util::SimTime earliest = 0;
  util::SimTime latest = 0;
  bool first = true;
  for (const auto& [id, observation] : corpus.chains()) {
    if (first) {
      earliest = observation.first_seen;
      latest = observation.last_seen;
      first = false;
    } else {
      earliest = std::min(earliest, observation.first_seen);
      latest = std::max(latest, observation.last_seen);
    }
  }
  report.months = month_span(earliest, latest);
  std::map<std::string, std::size_t> month_index;
  for (std::size_t i = 0; i < report.months.size(); ++i) {
    month_index[report.months[i]] = i;
  }

  const auto series_for = [&](chain::ChainCategory category)
      -> std::vector<MonthlyRow>& {
    auto& series = report.series[category];
    if (series.empty()) {
      series.resize(report.months.size());
      for (std::size_t i = 0; i < report.months.size(); ++i) {
        series[i].month = report.months[i];
      }
    }
    return series;
  };

  for (const auto& [id, observation] : corpus.chains()) {
    const chain::ChainCategory category =
        chain::categorize_chain(observation.chain, stores, interception);
    auto& series = series_for(category);

    // New-chain attribution: month of first observation.
    series[month_index.at(month_key(observation.first_seen))].new_chains += 1;

    // Connection attribution: uniform spread across the observation span
    // (documented approximation — per-connection timestamps are not retained
    // in the deduplicated corpus).
    const std::size_t begin = month_index.at(month_key(observation.first_seen));
    const std::size_t end = month_index.at(month_key(observation.last_seen));
    const std::size_t span = end - begin + 1;
    for (std::size_t i = begin; i <= end; ++i) {
      series[i].connections += observation.connections / span;
      series[i].established += observation.established / span;
    }
    // Remainders land in the first month so totals are preserved.
    series[begin].connections += observation.connections % span;
    series[begin].established += observation.established % span;
  }
  return report;
}

}  // namespace certchain::core
