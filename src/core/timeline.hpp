// Monthly time series over the collection window (extension analysis).
//
// The paper aggregates its 12 months into one view; this analyzer keeps the
// longitudinal axis: per-month connection volume and newly-seen unique
// chains per category, plus the share of misconfigured hybrid deliveries
// over time. Useful for spotting drift (e.g., a vendor rollout mid-window)
// that the aggregate tables hide.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chain/categorizer.hpp"
#include "core/corpus.hpp"
#include "truststore/trust_store.hpp"

namespace certchain::core {

/// Month key "YYYY-MM".
std::string month_key(util::SimTime t);

struct MonthlyRow {
  std::string month;  // "2020-09"
  std::uint64_t connections = 0;
  std::uint64_t established = 0;
  std::size_t new_chains = 0;  // chains first seen this month
};

struct TimelineReport {
  /// Per category, rows in chronological order (months with zero activity
  /// for a category are included with zero counts so series align).
  std::map<chain::ChainCategory, std::vector<MonthlyRow>> series;

  /// All months covered, sorted.
  std::vector<std::string> months;
};

/// Builds the timeline. Connections are attributed to the month of their
/// SSL.log timestamp; a chain is "new" in the month of its first
/// observation. Note: per-chain monthly connection counts are approximated
/// by spreading the chain's connections uniformly over its observation span
/// months when exact timestamps are not retained per connection — here the
/// corpus keeps first/last timestamps per chain, so the uniform-spread
/// approximation is documented behaviour.
TimelineReport build_timeline(const CorpusIndex& corpus,
                              const truststore::TrustStoreSet& stores,
                              const chain::InterceptionIssuerSet& interception);

}  // namespace certchain::core
