#include "crypto/sim_crypto.hpp"

#include "util/hash.hpp"

namespace certchain::crypto {

namespace {

// Internal trapdoor: the secret is a fixed digest of the seed, and the public
// material is a digest of the secret. verify() re-derives the secret from the
// *seed registry* implicitly by storing secret-derivation inside material:
// material = digest(secret || "pub"), and signatures bind to material rather
// than the secret directly, so verification needs only public data.
std::string derive_secret(std::string_view seed, KeyAlgorithm algorithm) {
  std::string tagged("secret/");
  tagged.append(key_algorithm_name(algorithm));
  tagged.push_back('/');
  tagged.append(seed);
  return certchain::util::digest256_hex(tagged);
}

std::string derive_material(std::string_view secret) {
  std::string tagged("pub/");
  tagged.append(secret);
  return certchain::util::digest256_hex(tagged);
}

std::string compute_signature_value(std::string_view material,
                                    SignatureAlgorithm algorithm,
                                    std::string_view message) {
  // Signatures bind to the public material so that verification is possible
  // from public data alone. (In a real scheme this would be forgeable; here
  // the simulation only needs sign/verify consistency.)
  std::string tagged("sig/");
  tagged.append(signature_algorithm_name(algorithm));
  tagged.push_back('/');
  tagged.append(material);
  tagged.push_back('/');
  tagged.append(message);
  return certchain::util::digest256_hex(tagged);
}

}  // namespace

std::string_view key_algorithm_name(KeyAlgorithm algorithm) {
  switch (algorithm) {
    case KeyAlgorithm::kRsa2048: return "rsa2048";
    case KeyAlgorithm::kRsa4096: return "rsa4096";
    case KeyAlgorithm::kEcdsaP256: return "ecdsa-p256";
    case KeyAlgorithm::kEd25519: return "ed25519";
    case KeyAlgorithm::kGostR3410: return "gost-r3410";
  }
  return "unknown";
}

std::string_view signature_algorithm_name(SignatureAlgorithm algorithm) {
  switch (algorithm) {
    case SignatureAlgorithm::kSimSha256WithRsa: return "sha256WithRSAEncryption";
    case SignatureAlgorithm::kSimSha1WithRsa: return "sha1WithRSAEncryption";
    case SignatureAlgorithm::kSimEcdsaSha256: return "ecdsa-with-SHA256";
    case SignatureAlgorithm::kSimEd25519: return "Ed25519";
    case SignatureAlgorithm::kSimGost: return "gostSignature";
  }
  return "unknown";
}

SignatureAlgorithm default_signature_algorithm(KeyAlgorithm key_algorithm) {
  switch (key_algorithm) {
    case KeyAlgorithm::kRsa2048:
    case KeyAlgorithm::kRsa4096:
      return SignatureAlgorithm::kSimSha256WithRsa;
    case KeyAlgorithm::kEcdsaP256:
      return SignatureAlgorithm::kSimEcdsaSha256;
    case KeyAlgorithm::kEd25519:
      return SignatureAlgorithm::kSimEd25519;
    case KeyAlgorithm::kGostR3410:
      return SignatureAlgorithm::kSimGost;
  }
  return SignatureAlgorithm::kSimSha256WithRsa;
}

int SimPublicKey::bits() const {
  switch (algorithm) {
    case KeyAlgorithm::kRsa2048: return 2048;
    case KeyAlgorithm::kRsa4096: return 4096;
    case KeyAlgorithm::kEcdsaP256: return 256;
    case KeyAlgorithm::kEd25519: return 255;
    case KeyAlgorithm::kGostR3410: return 256;
  }
  return 0;
}

SimKeyPair generate_keypair(KeyAlgorithm algorithm, std::string_view seed) {
  SimKeyPair pair;
  pair.private_key.secret = derive_secret(seed, algorithm);
  pair.public_key.algorithm = algorithm;
  pair.public_key.material = derive_material(pair.private_key.secret);
  pair.private_key.public_key = pair.public_key;
  return pair;
}

SimSignature sign(const SimPrivateKey& key, std::string_view message) {
  SimSignature signature;
  signature.algorithm = default_signature_algorithm(key.public_key.algorithm);
  signature.value =
      compute_signature_value(key.public_key.material, signature.algorithm, message);
  return signature;
}

VerifyStatus verify(const SimPublicKey& key, std::string_view message,
                    const SimSignature& signature, bool accept_all_algorithms) {
  if (key.malformed) return VerifyStatus::kMalformedKey;
  if (!accept_all_algorithms && key.algorithm == KeyAlgorithm::kGostR3410) {
    return VerifyStatus::kUnrecognizedKey;
  }
  const std::string expected =
      compute_signature_value(key.material, signature.algorithm, message);
  return expected == signature.value ? VerifyStatus::kOk : VerifyStatus::kBadSignature;
}

std::string_view verify_status_name(VerifyStatus status) {
  switch (status) {
    case VerifyStatus::kOk: return "ok";
    case VerifyStatus::kBadSignature: return "bad-signature";
    case VerifyStatus::kUnrecognizedKey: return "unrecognized-key";
    case VerifyStatus::kMalformedKey: return "malformed-key";
  }
  return "unknown";
}

}  // namespace certchain::crypto
