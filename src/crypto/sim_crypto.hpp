// Simulated public-key cryptography.
//
// The paper's X509 logs carry no keys or signatures; only the Appendix D
// evaluation (on actively rescanned chains) performs key–signature chain
// validation. To reproduce that comparison without a real crypto library, we
// implement a *deterministic simulated* signature scheme:
//
//   - a keypair is derived from a seed; the private "secret" is a digest of
//     the seed, and the public key material is a digest of the secret;
//   - sign(message) = digest(secret || algorithm || message);
//   - verify re-derives the expected signature from the public key via an
//     internal trapdoor (the secret is recoverable from key material inside
//     this module only).
//
// The scheme preserves exactly the semantics the study needs — a signature
// verifies iff it was produced by the matching key over the same bytes — and
// supports the corner cases of Table 5: "unrecognized key algorithms" that a
// validator cannot process, and malformed key blobs that fail to parse.
// It provides NO security whatsoever.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace certchain::crypto {

/// Key algorithms. kGostR3410 plays the role of the keys the Python
/// `cryptography` package did not recognize in the paper's Appendix D.
enum class KeyAlgorithm : std::uint8_t {
  kRsa2048,
  kRsa4096,
  kEcdsaP256,
  kEd25519,
  kGostR3410,  // treated as "unrecognized" by the standard validator
};

std::string_view key_algorithm_name(KeyAlgorithm algorithm);

/// Signature algorithms (hash + key family). kSimSha1WithRsa models legacy
/// issuers still seen among non-public-DB CAs.
enum class SignatureAlgorithm : std::uint8_t {
  kSimSha256WithRsa,
  kSimSha1WithRsa,
  kSimEcdsaSha256,
  kSimEd25519,
  kSimGost,
};

std::string_view signature_algorithm_name(SignatureAlgorithm algorithm);

/// The signature algorithm conventionally paired with a key algorithm.
SignatureAlgorithm default_signature_algorithm(KeyAlgorithm key_algorithm);

/// A public key. `material` is an opaque hex blob; `malformed` marks blobs
/// that fail to parse (ASN.1-level damage in the real world).
struct SimPublicKey {
  KeyAlgorithm algorithm = KeyAlgorithm::kRsa2048;
  std::string material;
  bool malformed = false;

  bool operator==(const SimPublicKey&) const = default;

  /// Nominal key size in bits, as a real parser would report.
  int bits() const;
};

/// A private key; holds the matching public key for convenience.
struct SimPrivateKey {
  SimPublicKey public_key;
  std::string secret;  // never serialized into certificates
};

struct SimKeyPair {
  SimPrivateKey private_key;
  SimPublicKey public_key;
};

/// A detached signature over some message bytes.
struct SimSignature {
  SignatureAlgorithm algorithm = SignatureAlgorithm::kSimSha256WithRsa;
  std::string value;  // hex digest
  bool operator==(const SimSignature&) const = default;
};

/// Deterministically derives a keypair from a seed string. The same seed and
/// algorithm always produce the same pair, which keeps simulated CA
/// hierarchies stable across runs.
SimKeyPair generate_keypair(KeyAlgorithm algorithm, std::string_view seed);

/// Signs message bytes.
SimSignature sign(const SimPrivateKey& key, std::string_view message);

/// Signature verification outcome. kUnrecognizedKey reproduces the Appendix D
/// "public keys not recognized by the package" rows; kMalformedKey reproduces
/// the ASN.1 parsing failure row.
enum class VerifyStatus : std::uint8_t {
  kOk,
  kBadSignature,
  kUnrecognizedKey,
  kMalformedKey,
};

std::string_view verify_status_name(VerifyStatus status);

/// Verifies `signature` over `message` with `key`. A verifier modeled on the
/// paper's toolchain (Python cryptography) rejects kGostR3410 keys as
/// unrecognized; set `accept_all_algorithms` to model a tolerant verifier.
VerifyStatus verify(const SimPublicKey& key, std::string_view message,
                    const SimSignature& signature,
                    bool accept_all_algorithms = false);

}  // namespace certchain::crypto
