#include "ct/ct_log.hpp"

#include <algorithm>
#include <set>

#include "util/strings.hpp"

namespace certchain::ct {

namespace {

/// Allocation-free re-verification of one candidate entry against a query
/// (both already lowercased): exact name equality, or an RFC 6125 wildcard
/// covering exactly one extra left label — the same predicate as
/// x509::wildcard_matches, inlined so million-entry scans stay cold-free.
bool entry_covers(const std::vector<std::string>& domains,
                  std::string_view query) {
  for (const std::string& d : domains) {
    if (d == query) return true;
    if (!util::starts_with(d, "*.")) continue;
    const std::string_view suffix = std::string_view(d).substr(1);  // ".example"
    if (!util::ends_with(query, suffix)) continue;
    const std::string_view label = query.substr(0, query.size() - suffix.size());
    if (!label.empty() && label.find('.') == std::string_view::npos) return true;
  }
  return false;
}

}  // namespace

CtLog::CtLog(std::string name)
    : name_(std::move(name)), log_id_(util::digest256_hex("ct-log-id/" + name_)) {}

std::string CtLog::entry_leaf_bytes(const x509::Certificate& cert) {
  // The tree commits to the full certificate content.
  return cert.tbs_bytes() + cert.signature.value;
}

std::size_t CtLog::index_entry(LogEntry entry, const Digest256& leaf) {
  const std::size_t index = tree_.append_leaf_hash(leaf);
  entry.index = index;
  for (const std::string& domain : entry.domains) {
    domains_.add(domain, static_cast<std::uint32_t>(index), entry.validity);
  }
  by_fingerprint_.emplace(entry.certificate_fingerprint, index);
  entries_.push_back(std::move(entry));
  return index;
}

x509::EmbeddedSct CtLog::submit(const x509::Certificate& cert, util::SimTime now) {
  const std::string fingerprint = cert.fingerprint();
  const auto existing = by_fingerprint_.find(fingerprint);
  if (existing != by_fingerprint_.end()) {
    return x509::EmbeddedSct{log_id_, entries_[existing->second].logged_at};
  }

  LogEntry entry;
  entry.certificate_fingerprint = fingerprint;
  entry.serial = cert.serial;
  entry.issuer = cert.issuer;
  entry.subject = cert.subject;
  entry.validity = cert.validity;
  entry.logged_at = now;
  for (const std::string& san : cert.subject_alt_names) {
    entry.domains.push_back(util::to_lower(san));
  }
  if (entry.domains.empty()) {
    if (const auto cn = cert.subject.common_name()) {
      entry.domains.push_back(util::to_lower(*cn));
    }
  }

  index_entry(std::move(entry), leaf_hash(entry_leaf_bytes(cert)));
  return x509::EmbeddedSct{log_id_, now};
}

std::size_t CtLog::append_entry(LogEntry entry, const Digest256& leaf) {
  return index_entry(std::move(entry), leaf);
}

bool CtLog::contains(const x509::Certificate& cert) const {
  return contains_fingerprint(cert.fingerprint());
}

bool CtLog::contains_fingerprint(std::string_view fingerprint) const {
  return by_fingerprint_.find(fingerprint) != by_fingerprint_.end();
}

std::optional<std::size_t> CtLog::entry_index_for(
    std::string_view fingerprint) const {
  const auto it = by_fingerprint_.find(fingerprint);
  if (it == by_fingerprint_.end()) return std::nullopt;
  return it->second;
}

bool CtLog::contains_matching(const x509::Certificate& cert) const {
  // Narrow by domain first (the realistic crt.sh-style query), then match
  // the identifying fields.
  std::vector<const LogEntry*> candidates;
  for (const std::string& san : cert.subject_alt_names) {
    for (const LogEntry* entry : entries_for_domain(san)) candidates.push_back(entry);
  }
  if (candidates.empty()) {
    if (const auto cn = cert.subject.common_name()) {
      for (const LogEntry* entry : entries_for_domain(*cn)) candidates.push_back(entry);
    }
  }
  for (const LogEntry* entry : candidates) {
    if (entry->serial == cert.serial && entry->issuer.matches(cert.issuer) &&
        entry->subject.matches(cert.subject) &&
        entry->validity.overlaps(cert.validity)) {
      return true;
    }
  }
  return false;
}

std::vector<const LogEntry*> CtLog::entries_for_domain(std::string_view domain) const {
  std::vector<const LogEntry*> out;
  const std::string lowered = util::to_lower(domain);
  // Candidates are already sorted + deduplicated; wildcard-bucket hits are
  // re-verified against the entry's own patterns so semantics match the
  // legacy full scan exactly.
  for (const std::uint32_t index : domains_.candidates(lowered)) {
    const LogEntry& entry = entries_[index];
    if (entry_covers(entry.domains, lowered)) out.push_back(&entry);
  }
  return out;
}

std::vector<x509::DistinguishedName> CtLog::issuers_for_domain(
    std::string_view domain, const util::TimeRange& period) const {
  std::vector<x509::DistinguishedName> issuers;
  std::set<std::string> seen;
  const std::string lowered = util::to_lower(domain);
  for (const std::uint32_t index : domains_.candidates(lowered, period)) {
    const LogEntry& entry = entries_[index];
    if (!entry_covers(entry.domains, lowered)) continue;
    if (!entry.validity.overlaps(period)) continue;
    if (seen.insert(entry.issuer.canonical()).second) {
      issuers.push_back(entry.issuer);
    }
  }
  return issuers;
}

std::vector<Digest256> CtLog::prove_inclusion(const x509::Certificate& cert) const {
  const auto index = entry_index_for(cert.fingerprint());
  if (!index) return {};
  return tree_.inclusion_proof(*index);
}

std::optional<std::vector<Digest256>> CtLog::prove_consistency(
    std::size_t old_size, std::size_t new_size) const {
  if (old_size > new_size || new_size > tree_.size()) return std::nullopt;
  return tree_.consistency_proof(old_size, new_size);
}

bool CtLog::check_inclusion(const x509::Certificate& cert,
                            const std::vector<Digest256>& proof) const {
  const auto index = entry_index_for(cert.fingerprint());
  if (!index) return false;
  return verify_inclusion(entry_leaf_bytes(cert), *index, tree_.size(), proof,
                          tree_.root_hash());
}

CtLogSet::CtLogSet(std::size_t count, std::string_view prefix) {
  logs_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    logs_.emplace_back(std::string(prefix) + std::to_string(i));
  }
}

const CtLog* CtLogSet::find_log(std::string_view log_id) const {
  for (const CtLog& log : logs_) {
    if (log.log_id() == log_id) return &log;
  }
  return nullptr;
}

x509::Certificate CtLogSet::submit_and_embed(
    const x509::Certificate& cert, util::SimTime now,
    std::optional<std::size_t> log_count) {
  x509::Certificate embedded = cert;
  embedded.scts.clear();
  // Default: exactly what the Chrome-style policy demands for this lifetime,
  // so long-lived certificates come out compliant without the caller doing
  // the policy math.
  const std::size_t requested =
      log_count.value_or(required_sct_count(cert.validity.duration()));
  const std::size_t n = std::min(requested, logs_.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Logs record the certificate *without* the embedded SCTs (precert
    // semantics): submit the original.
    embedded.scts.push_back(logs_[i].submit(cert, now));
  }
  return embedded;
}

std::size_t CtLogSet::required_sct_count(util::SimTime lifetime_seconds) {
  return lifetime_seconds <= 180 * util::kSecondsPerDay ? 2 : 3;
}

bool CtLogSet::complies(const x509::Certificate& cert) const {
  std::set<std::string> distinct_logs;
  // The logged entry is the SCT-free precertificate.
  x509::Certificate precert = cert;
  precert.scts.clear();
  const std::string fingerprint = precert.fingerprint();
  for (const x509::EmbeddedSct& sct : cert.scts) {
    const CtLog* log = find_log(sct.log_id);
    if (log == nullptr) continue;
    if (!log->contains_fingerprint(fingerprint)) continue;
    distinct_logs.insert(sct.log_id);
  }
  return distinct_logs.size() >= required_sct_count(cert.validity.duration());
}

std::vector<x509::DistinguishedName> CtLogSet::issuers_for_domain(
    std::string_view domain, const util::TimeRange& period) const {
  std::vector<x509::DistinguishedName> out;
  std::set<std::string> seen;
  for (const CtLog& log : logs_) {
    for (auto& issuer : log.issuers_for_domain(domain, period)) {
      if (seen.insert(issuer.canonical()).second) out.push_back(std::move(issuer));
    }
  }
  return out;
}

bool CtLogSet::logged_anywhere(const x509::Certificate& cert) const {
  x509::Certificate precert = cert;
  precert.scts.clear();
  const std::string fingerprint = precert.fingerprint();
  for (const CtLog& log : logs_) {
    if (log.contains_fingerprint(fingerprint)) return true;
  }
  // Also accept the as-delivered form (some submitters log final certs).
  const std::string final_fingerprint = cert.fingerprint();
  for (const CtLog& log : logs_) {
    if (log.contains_fingerprint(final_fingerprint)) return true;
  }
  return false;
}

bool CtLogSet::logged_matching(const x509::Certificate& cert) const {
  for (const CtLog& log : logs_) {
    if (log.contains_matching(cert)) return true;
  }
  return false;
}

}  // namespace certchain::ct
