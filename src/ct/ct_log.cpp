#include "ct/ct_log.hpp"

#include <algorithm>
#include <set>

#include "util/strings.hpp"

namespace certchain::ct {

CtLog::CtLog(std::string name)
    : name_(std::move(name)), log_id_(util::digest256_hex("ct-log-id/" + name_)) {}

std::string CtLog::entry_leaf_bytes(const x509::Certificate& cert) {
  // The tree commits to the full certificate content.
  return cert.tbs_bytes() + cert.signature.value;
}

x509::EmbeddedSct CtLog::submit(const x509::Certificate& cert, util::SimTime now) {
  const std::string fingerprint = cert.fingerprint();
  const auto existing = by_fingerprint_.find(fingerprint);
  if (existing != by_fingerprint_.end()) {
    return x509::EmbeddedSct{log_id_, entries_[existing->second].logged_at};
  }

  LogEntry entry;
  entry.index = tree_.append(entry_leaf_bytes(cert));
  entry.certificate_fingerprint = fingerprint;
  entry.serial = cert.serial;
  entry.issuer = cert.issuer;
  entry.subject = cert.subject;
  entry.validity = cert.validity;
  entry.logged_at = now;
  for (const std::string& san : cert.subject_alt_names) {
    entry.domains.push_back(util::to_lower(san));
  }
  if (entry.domains.empty()) {
    if (const auto cn = cert.subject.common_name()) {
      entry.domains.push_back(util::to_lower(*cn));
    }
  }

  const std::size_t index = entries_.size();
  for (const std::string& domain : entry.domains) {
    if (util::starts_with(domain, "*.")) {
      wildcard_entries_.push_back(index);
    } else {
      by_exact_domain_[domain].push_back(index);
    }
  }
  by_fingerprint_.emplace(fingerprint, index);
  entries_.push_back(std::move(entry));
  return x509::EmbeddedSct{log_id_, now};
}

bool CtLog::contains(const x509::Certificate& cert) const {
  return contains_fingerprint(cert.fingerprint());
}

bool CtLog::contains_fingerprint(std::string_view fingerprint) const {
  return by_fingerprint_.contains(std::string(fingerprint));
}

bool CtLog::contains_matching(const x509::Certificate& cert) const {
  // Narrow by domain first (the realistic crt.sh-style query), then match
  // the identifying fields.
  std::vector<const LogEntry*> candidates;
  for (const std::string& san : cert.subject_alt_names) {
    for (const LogEntry* entry : entries_for_domain(san)) candidates.push_back(entry);
  }
  if (candidates.empty()) {
    if (const auto cn = cert.subject.common_name()) {
      for (const LogEntry* entry : entries_for_domain(*cn)) candidates.push_back(entry);
    }
  }
  for (const LogEntry* entry : candidates) {
    if (entry->serial == cert.serial && entry->issuer.matches(cert.issuer) &&
        entry->subject.matches(cert.subject) &&
        entry->validity.overlaps(cert.validity)) {
      return true;
    }
  }
  return false;
}

std::vector<const LogEntry*> CtLog::entries_for_domain(std::string_view domain) const {
  std::vector<const LogEntry*> out;
  std::set<std::size_t> seen;
  const std::string lowered = util::to_lower(domain);
  const auto it = by_exact_domain_.find(lowered);
  if (it != by_exact_domain_.end()) {
    for (const std::size_t index : it->second) {
      if (seen.insert(index).second) out.push_back(&entries_[index]);
    }
  }
  for (const std::size_t index : wildcard_entries_) {
    if (seen.contains(index)) continue;
    for (const std::string& pattern : entries_[index].domains) {
      if (x509::wildcard_matches(pattern, lowered)) {
        seen.insert(index);
        out.push_back(&entries_[index]);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LogEntry* a, const LogEntry* b) { return a->index < b->index; });
  return out;
}

std::vector<x509::DistinguishedName> CtLog::issuers_for_domain(
    std::string_view domain, const util::TimeRange& period) const {
  std::vector<x509::DistinguishedName> issuers;
  std::set<std::string> seen;
  for (const LogEntry* entry : entries_for_domain(domain)) {
    if (!entry->validity.overlaps(period)) continue;
    if (seen.insert(entry->issuer.canonical()).second) {
      issuers.push_back(entry->issuer);
    }
  }
  return issuers;
}

std::vector<Digest256> CtLog::prove_inclusion(const x509::Certificate& cert) const {
  const auto it = by_fingerprint_.find(cert.fingerprint());
  if (it == by_fingerprint_.end()) return {};
  return tree_.inclusion_proof(entries_[it->second].index);
}

std::vector<Digest256> CtLog::prove_consistency(std::size_t old_size) const {
  return tree_.consistency_proof(old_size, tree_.size());
}

bool CtLog::check_inclusion(const x509::Certificate& cert,
                            const std::vector<Digest256>& proof) const {
  const auto it = by_fingerprint_.find(cert.fingerprint());
  if (it == by_fingerprint_.end()) return false;
  return verify_inclusion(entry_leaf_bytes(cert), entries_[it->second].index,
                          tree_.size(), proof, tree_.root_hash());
}

CtLogSet::CtLogSet(std::size_t count, std::string_view prefix) {
  logs_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    logs_.emplace_back(std::string(prefix) + std::to_string(i));
  }
}

const CtLog* CtLogSet::find_log(std::string_view log_id) const {
  for (const CtLog& log : logs_) {
    if (log.log_id() == log_id) return &log;
  }
  return nullptr;
}

x509::Certificate CtLogSet::submit_and_embed(const x509::Certificate& cert,
                                             util::SimTime now,
                                             std::size_t log_count) {
  x509::Certificate embedded = cert;
  embedded.scts.clear();
  const std::size_t n = std::min(log_count, logs_.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Logs record the certificate *without* the embedded SCTs (precert
    // semantics): submit the original.
    embedded.scts.push_back(logs_[i].submit(cert, now));
  }
  return embedded;
}

std::size_t CtLogSet::required_sct_count(util::SimTime lifetime_seconds) {
  return lifetime_seconds <= 180 * util::kSecondsPerDay ? 2 : 3;
}

bool CtLogSet::complies(const x509::Certificate& cert) const {
  std::set<std::string> distinct_logs;
  // The logged entry is the SCT-free precertificate.
  x509::Certificate precert = cert;
  precert.scts.clear();
  const std::string fingerprint = precert.fingerprint();
  for (const x509::EmbeddedSct& sct : cert.scts) {
    const CtLog* log = find_log(sct.log_id);
    if (log == nullptr) continue;
    if (!log->contains_fingerprint(fingerprint)) continue;
    distinct_logs.insert(sct.log_id);
  }
  return distinct_logs.size() >= required_sct_count(cert.validity.duration());
}

std::vector<x509::DistinguishedName> CtLogSet::issuers_for_domain(
    std::string_view domain, const util::TimeRange& period) const {
  std::vector<x509::DistinguishedName> out;
  std::set<std::string> seen;
  for (const CtLog& log : logs_) {
    for (auto& issuer : log.issuers_for_domain(domain, period)) {
      if (seen.insert(issuer.canonical()).second) out.push_back(std::move(issuer));
    }
  }
  return out;
}

bool CtLogSet::logged_anywhere(const x509::Certificate& cert) const {
  x509::Certificate precert = cert;
  precert.scts.clear();
  const std::string fingerprint = precert.fingerprint();
  for (const CtLog& log : logs_) {
    if (log.contains_fingerprint(fingerprint)) return true;
  }
  // Also accept the as-delivered form (some submitters log final certs).
  const std::string final_fingerprint = cert.fingerprint();
  for (const CtLog& log : logs_) {
    if (log.contains_fingerprint(final_fingerprint)) return true;
  }
  return false;
}

bool CtLogSet::logged_matching(const x509::Certificate& cert) const {
  for (const CtLog& log : logs_) {
    if (log.contains_matching(cert)) return true;
  }
  return false;
}

}  // namespace certchain::ct
