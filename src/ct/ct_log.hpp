// Certificate Transparency logs.
//
// Two consumers in the study:
//   1. interception detection (§3.2.1) — "does CT record a *different* issuer
//      for this domain during this validity period?";
//   2. CT-logging compliance (§4.2) — non-public-DB leaves anchored to public
//      trust roots and used on public-facing domains must be CT-logged; the
//      paper confirms all 26 such leaves were.
// CtLog couples an incremental Merkle tree (src/ct/merkle_inc, O(log n)
// appends and proofs, leaf hashes only) with a sharded domain+validity index
// (src/ct/domain_index) so both queries run against the same append-only
// structure at million-entry scale, and issues SCTs on submission the way a
// real log front-end does. The ct::Monitor (src/ct/monitor) tails these
// accessors to audit consistency between signed tree heads.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ct/domain_index.hpp"
#include "ct/merkle.hpp"
#include "ct/merkle_inc.hpp"
#include "util/time.hpp"
#include "x509/certificate.hpp"

namespace certchain::ct {

/// One logged (pre)certificate entry.
struct LogEntry {
  std::size_t index = 0;
  std::string certificate_fingerprint;
  std::string serial;
  x509::DistinguishedName issuer;
  x509::DistinguishedName subject;
  std::vector<std::string> domains;  // SAN DNS names (lowercased)
  util::TimeRange validity;
  util::SimTime logged_at = 0;
};

/// A signed-tree-head snapshot: the tree size and the MTH over it. (The
/// simulation carries no signatures; the digest plays the signed root.)
struct TreeHead {
  std::size_t tree_size = 0;
  Digest256 root;
};

/// A single CT log.
class CtLog {
 public:
  explicit CtLog(std::string name);

  const std::string& name() const { return name_; }
  /// Stable identifier derived from the log name (plays the RFC 6962 log id).
  const std::string& log_id() const { return log_id_; }

  std::size_t size() const { return entries_.size(); }

  /// Submits a certificate; returns the SCT the caller may embed. Idempotent
  /// per certificate fingerprint (resubmission returns the original SCT).
  x509::EmbeddedSct submit(const x509::Certificate& cert, util::SimTime now);

  /// Bulk ingestion fast path (datagen, bench): appends a pre-built entry
  /// whose leaf hash the caller already computed, skipping certificate
  /// construction entirely. Returns the assigned index. Not idempotent —
  /// the caller owns fingerprint uniqueness.
  std::size_t append_entry(LogEntry entry, const Digest256& leaf);

  /// True if this exact certificate is logged.
  bool contains(const x509::Certificate& cert) const;
  bool contains_fingerprint(std::string_view fingerprint) const;

  /// Entry index for a fingerprint, if logged. The svc ct_prove_inclusion
  /// endpoint keys on this to answer NOT_FOUND as a typed error.
  std::optional<std::size_t> entry_index_for(std::string_view fingerprint) const;

  /// Field-level lookup: true if an entry matches the certificate's subject,
  /// issuer, serial and validity. This is how log data (which carries no key
  /// material, hence no stable fingerprint) is checked against CT — the
  /// paper's "we query CT logs and confirm" step (§4.2).
  bool contains_matching(const x509::Certificate& cert) const;

  /// All entries whose domains cover `domain` (exact or wildcard match).
  std::vector<const LogEntry*> entries_for_domain(std::string_view domain) const;

  /// Issuer DNs of logged certificates covering `domain` with validity
  /// overlapping `period`. This is the interception-detection query: an
  /// observed issuer absent from this result set is a mismatch.
  std::vector<x509::DistinguishedName> issuers_for_domain(
      std::string_view domain, const util::TimeRange& period) const;

  /// Signed-tree-head style accessors.
  Digest256 root_hash() const { return tree_.root_hash(); }
  Digest256 root_hash(std::size_t n) const { return tree_.root_hash(n); }
  TreeHead tree_head() const { return TreeHead{tree_.size(), tree_.root_hash()}; }
  const Digest256& leaf_hash_at(std::size_t index) const {
    return tree_.leaf_hash_at(index);
  }

  std::vector<Digest256> prove_inclusion(const x509::Certificate& cert) const;
  /// Audit path for entry `index` in the tree of the first `n` entries.
  std::vector<Digest256> prove_inclusion_at(std::size_t index,
                                            std::size_t n) const {
    return tree_.inclusion_proof(index, n);
  }

  /// Consistency proof from `old_size` to the current tree. Bounds-checked:
  /// an old_size beyond the current tree (a monitor that saw a *larger* tree
  /// than we hold — the rollback case) yields nullopt instead of throwing.
  std::optional<std::vector<Digest256>> prove_consistency(
      std::size_t old_size) const {
    return prove_consistency(old_size, tree_.size());
  }
  /// Consistency proof between the trees of the first `old_size` and first
  /// `new_size` entries; nullopt when either bound is out of range.
  std::optional<std::vector<Digest256>> prove_consistency(
      std::size_t old_size, std::size_t new_size) const;

  /// Verifies an inclusion proof against the current tree head.
  bool check_inclusion(const x509::Certificate& cert,
                       const std::vector<Digest256>& proof) const;

  const std::vector<LogEntry>& entries() const { return entries_; }

 private:
  static std::string entry_leaf_bytes(const x509::Certificate& cert);
  /// Shared indexing tail of submit/append_entry: appends the leaf hash,
  /// stamps entry.index, indexes fingerprint and domains.
  std::size_t index_entry(LogEntry entry, const Digest256& leaf);

  std::string name_;
  std::string log_id_;
  IncrementalMerkleTree tree_;
  std::vector<LogEntry> entries_;
  // Transparent comparator: lookups are heterogeneous string_view probes,
  // no per-query std::string allocation.
  std::map<std::string, std::size_t, std::less<>> by_fingerprint_;
  DomainIndex domains_;
};

/// A set of logs plus the Chrome-style CT policy the paper references [20]:
/// certificates need SCTs from >= `required_sct_count(lifetime)` distinct
/// logs to comply.
class CtLogSet {
 public:
  /// Creates `count` logs named "<prefix>N".
  explicit CtLogSet(std::size_t count = 3, std::string_view prefix = "sim-ct-log-");

  std::size_t log_count() const { return logs_.size(); }
  CtLog& log(std::size_t index) { return logs_[index]; }
  const CtLog& log(std::size_t index) const { return logs_[index]; }

  /// Finds the log with the given id, or nullptr.
  const CtLog* find_log(std::string_view log_id) const;

  /// Submits to the first `log_count` logs and embeds the SCTs in a copy of
  /// the certificate, returning it (the "CT-compliant issuance" flow). By
  /// default the SCT count follows the Chrome policy for the certificate's
  /// lifetime — required_sct_count(cert.validity.duration()) — so >180-day
  /// certificates are issued policy-compliant; pass an explicit count to
  /// override (e.g. to model under-logged issuance).
  x509::Certificate submit_and_embed(
      const x509::Certificate& cert, util::SimTime now,
      std::optional<std::size_t> log_count = std::nullopt);

  /// Chrome-style requirement: 2 SCTs for lifetimes <= 180 days, else 3.
  static std::size_t required_sct_count(util::SimTime lifetime_seconds);

  /// True if the certificate carries enough SCTs from distinct known logs
  /// and each referenced log actually contains it.
  bool complies(const x509::Certificate& cert) const;

  /// Union interception query across all logs.
  std::vector<x509::DistinguishedName> issuers_for_domain(
      std::string_view domain, const util::TimeRange& period) const;

  /// True if any log contains the certificate.
  bool logged_anywhere(const x509::Certificate& cert) const;

  /// Field-level union lookup (see CtLog::contains_matching).
  bool logged_matching(const x509::Certificate& cert) const;

 private:
  std::vector<CtLog> logs_;
};

}  // namespace certchain::ct
