#include "ct/domain_index.hpp"

#include <algorithm>
#include <cctype>

#include "util/hash.hpp"
#include "util/strings.hpp"

namespace certchain::ct {

namespace {

/// Lowercases `text` into `buffer` only when it actually carries uppercase
/// characters; the common already-lowercase query stays a zero-copy view.
std::string_view lower_into(std::string_view text, std::string& buffer) {
  const bool has_upper =
      std::any_of(text.begin(), text.end(), [](unsigned char c) {
        return std::isupper(c) != 0;
      });
  if (!has_upper) return text;
  buffer.assign(text);
  for (char& c : buffer) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return buffer;
}

/// The wildcard bucket a query probes: everything after the first label.
/// Empty when the name has no parent (single label), meaning no wildcard
/// pattern can cover it.
std::string_view parent_suffix(std::string_view domain) {
  const std::size_t dot = domain.find('.');
  if (dot == std::string_view::npos || dot + 1 >= domain.size()) return {};
  return domain.substr(dot + 1);
}

}  // namespace

DomainIndex::DomainIndex(std::size_t shard_count)
    : shards_(shard_count == 0 ? 1 : shard_count) {}

const DomainIndex::Shard& DomainIndex::shard_for(std::string_view key) const {
  return shards_[util::fnv1a64(key) % shards_.size()];
}

DomainIndex::Shard& DomainIndex::shard_for(std::string_view key) {
  return shards_[util::fnv1a64(key) % shards_.size()];
}

void DomainIndex::add(std::string_view domain, std::uint32_t entry,
                      const util::TimeRange& validity) {
  if (domain.empty()) return;
  if (util::starts_with(domain, "*.")) {
    const std::string_view suffix = domain.substr(2);
    auto& bucket = shard_for(suffix).wildcard;
    auto it = bucket.find(suffix);
    if (it == bucket.end()) {
      it = bucket.emplace(std::string(suffix), std::vector<DomainPosting>{}).first;
    }
    it->second.push_back(DomainPosting{entry, validity});
  } else {
    auto& bucket = shard_for(domain).exact;
    auto it = bucket.find(domain);
    if (it == bucket.end()) {
      it = bucket.emplace(std::string(domain), std::vector<DomainPosting>{}).first;
    }
    it->second.push_back(DomainPosting{entry, validity});
  }
  ++postings_;
}

template <typename Filter>
std::vector<std::uint32_t> DomainIndex::collect(std::string_view domain,
                                                Filter&& keep) const {
  std::string buffer;
  const std::string_view lowered = lower_into(domain, buffer);

  std::vector<std::uint32_t> out;
  const auto& exact_bucket = shard_for(lowered).exact;
  if (const auto it = exact_bucket.find(lowered); it != exact_bucket.end()) {
    for (const DomainPosting& p : it->second) {
      if (keep(p)) out.push_back(p.entry);
    }
  }
  if (const std::string_view suffix = parent_suffix(lowered); !suffix.empty()) {
    const auto& wild_bucket = shard_for(suffix).wildcard;
    if (const auto it = wild_bucket.find(suffix); it != wild_bucket.end()) {
      for (const DomainPosting& p : it->second) {
        if (keep(p)) out.push_back(p.entry);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::uint32_t> DomainIndex::candidates(std::string_view domain) const {
  return collect(domain, [](const DomainPosting&) { return true; });
}

std::vector<std::uint32_t> DomainIndex::candidates(
    std::string_view domain, const util::TimeRange& period) const {
  return collect(domain, [&period](const DomainPosting& p) {
    return p.validity.overlaps(period);
  });
}

}  // namespace certchain::ct
