// Sharded domain + validity index for CT log entries (DESIGN.md §14.2).
//
// The study-scale CtLog answered entries_for_domain with a std::map lookup
// plus a linear scan over *every* wildcard entry — O(wildcards) per query,
// which drowns at millions of entries. DomainIndex replaces both sides:
//
//   - names are label-sharded: shard = fnv1a64(lowercased key) % shard_count,
//     so large logs spread their postings across independent maps (and a
//     future concurrent ingest can lock per shard);
//   - exact names index under themselves; a wildcard `*.suffix` indexes
//     under its bucket key `suffix`. A query for `a.b.example` probes its
//     exact shard and the wildcard bucket of its parent suffix `b.example` —
//     RFC 6125 wildcards match exactly one extra left label, so that single
//     bucket covers every pattern that could match;
//   - every map uses a transparent comparator (std::less<>), so lookups are
//     heterogeneous string_view probes with zero per-query allocations
//     (the lowercase fold reuses one caller-provided buffer);
//   - postings carry the entry's validity range so time-windowed queries
//     (issuers_for_domain) can filter before touching the entry store.
//
// Semantics are proven identical to the legacy scan by the brute-force
// differential test in tests/test_ct_log.cpp. One deliberate nuance kept
// from the legacy code: a query string that is itself a wildcard pattern
// (e.g. "*.wild.example") matches entries carrying that exact pattern,
// because x509::wildcard_matches(p, p) is true — the bucket probe covers it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace certchain::ct {

/// One indexed (name -> entry) edge.
struct DomainPosting {
  std::uint32_t entry = 0;       // index into CtLog::entries()
  util::TimeRange validity;      // copied from the entry for early filtering
};

class DomainIndex {
 public:
  explicit DomainIndex(std::size_t shard_count = 16);

  /// Indexes one already-lowercased domain (exact name or `*.suffix`
  /// wildcard pattern) for `entry`.
  void add(std::string_view domain, std::uint32_t entry,
           const util::TimeRange& validity);

  /// Entry indices whose indexed names may cover `domain` (exact hits are
  /// definitive; wildcard-bucket hits still need x509::wildcard_matches
  /// re-verification by the caller). Sorted ascending, deduplicated.
  /// `domain` is matched case-insensitively.
  std::vector<std::uint32_t> candidates(std::string_view domain) const;

  /// Same, keeping only postings whose validity overlaps `period`.
  std::vector<std::uint32_t> candidates(std::string_view domain,
                                        const util::TimeRange& period) const;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t posting_count() const { return postings_; }

 private:
  using Bucket = std::map<std::string, std::vector<DomainPosting>, std::less<>>;

  struct Shard {
    Bucket exact;      // keyed by the full name
    Bucket wildcard;   // keyed by the suffix after "*."
  };

  const Shard& shard_for(std::string_view key) const;
  Shard& shard_for(std::string_view key);

  template <typename Filter>
  std::vector<std::uint32_t> collect(std::string_view domain,
                                     Filter&& keep) const;

  std::vector<Shard> shards_;
  std::size_t postings_ = 0;
};

}  // namespace certchain::ct
