#include "ct/merkle.hpp"

#include <stdexcept>

namespace certchain::ct {

namespace {

std::string digest_bytes(const Digest256& digest) {
  // Fixed-width byte rendering for feeding digests back into the hash.
  std::string out;
  out.reserve(32);
  for (const std::uint64_t word : digest.words) {
    for (int shift = 56; shift >= 0; shift -= 8) {
      out.push_back(static_cast<char>((word >> shift) & 0xFF));
    }
  }
  return out;
}

/// Largest power of two strictly less than n (n >= 2).
std::size_t split_point(std::size_t n) {
  std::size_t k = 1;
  while (k * 2 < n) k *= 2;
  return k;
}

}  // namespace

Digest256 leaf_hash(std::string_view data) {
  std::string buffer;
  buffer.reserve(data.size() + 1);
  buffer.push_back('\x00');
  buffer.append(data);
  return util::digest256(buffer);
}

Digest256 node_hash(const Digest256& left, const Digest256& right) {
  std::string buffer;
  buffer.reserve(65);
  buffer.push_back('\x01');
  buffer.append(digest_bytes(left));
  buffer.append(digest_bytes(right));
  return util::digest256(buffer);
}

std::size_t MerkleTree::append(std::string_view leaf_data) {
  leaves_.emplace_back(leaf_data);
  leaf_hashes_.push_back(leaf_hash(leaf_data));
  return leaves_.size() - 1;
}

Digest256 MerkleTree::subtree_hash(std::size_t begin, std::size_t end) const {
  const std::size_t n = end - begin;
  if (n == 0) return util::digest256("");
  if (n == 1) return leaf_hashes_[begin];
  const std::size_t k = split_point(n);
  return node_hash(subtree_hash(begin, begin + k), subtree_hash(begin + k, end));
}

Digest256 MerkleTree::root_hash(std::size_t n) const {
  if (n > size()) throw std::out_of_range("MerkleTree::root_hash: n > size");
  return subtree_hash(0, n);
}

std::vector<Digest256> MerkleTree::subtree_inclusion(std::size_t index,
                                                     std::size_t begin,
                                                     std::size_t end) const {
  const std::size_t n = end - begin;
  if (n <= 1) return {};
  const std::size_t k = split_point(n);
  std::vector<Digest256> path;
  if (index < k) {
    path = subtree_inclusion(index, begin, begin + k);
    path.push_back(subtree_hash(begin + k, end));
  } else {
    path = subtree_inclusion(index - k, begin + k, end);
    path.push_back(subtree_hash(begin, begin + k));
  }
  return path;
}

std::vector<Digest256> MerkleTree::inclusion_proof(std::size_t index,
                                                   std::size_t n) const {
  if (n > size() || index >= n) {
    throw std::out_of_range("MerkleTree::inclusion_proof: bad index/size");
  }
  return subtree_inclusion(index, 0, n);
}

std::vector<Digest256> MerkleTree::subproof(std::size_t m, std::size_t begin,
                                            std::size_t end, bool whole) const {
  const std::size_t n = end - begin;
  if (m == n) {
    if (whole) return {};
    return {subtree_hash(begin, end)};
  }
  const std::size_t k = split_point(n);
  std::vector<Digest256> proof;
  if (m <= k) {
    proof = subproof(m, begin, begin + k, whole);
    proof.push_back(subtree_hash(begin + k, end));
  } else {
    proof = subproof(m - k, begin + k, end, false);
    proof.push_back(subtree_hash(begin, begin + k));
  }
  return proof;
}

std::vector<Digest256> MerkleTree::consistency_proof(std::size_t m,
                                                     std::size_t n) const {
  if (m > n || n > size()) {
    throw std::out_of_range("MerkleTree::consistency_proof: bad sizes");
  }
  if (m == 0 || m == n) return {};
  return subproof(m, 0, n, true);
}

bool verify_inclusion(std::string_view leaf_data, std::size_t index, std::size_t n,
                      const std::vector<Digest256>& proof, const Digest256& root) {
  return verify_inclusion_hash(leaf_hash(leaf_data), index, n, proof, root);
}

bool verify_inclusion_hash(const Digest256& leaf, std::size_t index, std::size_t n,
                           const std::vector<Digest256>& proof,
                           const Digest256& root) {
  if (n == 0 || index >= n) return false;
  std::size_t fn = index;
  std::size_t sn = n - 1;
  Digest256 r = leaf;
  for (const Digest256& v : proof) {
    if (sn == 0) return false;
    if ((fn & 1) == 1 || fn == sn) {
      r = node_hash(v, r);
      if ((fn & 1) == 0) {
        while (fn != 0 && (fn & 1) == 0) {
          fn >>= 1;
          sn >>= 1;
        }
      }
    } else {
      r = node_hash(r, v);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return sn == 0 && r == root;
}

bool verify_consistency(std::size_t m, std::size_t n, const Digest256& old_root,
                        const Digest256& new_root,
                        const std::vector<Digest256>& proof) {
  if (m > n) return false;
  if (m == n) return proof.empty() && old_root == new_root;
  if (m == 0) return proof.empty();  // empty tree is consistent with anything
  // If m is an exact power-of-two prefix, the proof starts from old_root.
  std::vector<Digest256> path = proof;
  if ((m & (m - 1)) == 0) {
    path.insert(path.begin(), old_root);
  }
  if (path.empty()) return false;

  std::size_t fn = m - 1;
  std::size_t sn = n - 1;
  while ((fn & 1) == 1) {
    fn >>= 1;
    sn >>= 1;
  }
  Digest256 fr = path.front();
  Digest256 sr = path.front();
  for (std::size_t i = 1; i < path.size(); ++i) {
    const Digest256& c = path[i];
    if (sn == 0) return false;
    if ((fn & 1) == 1 || fn == sn) {
      fr = node_hash(c, fr);
      sr = node_hash(c, sr);
      if ((fn & 1) == 0) {
        while (fn != 0 && (fn & 1) == 0) {
          fn >>= 1;
          sn >>= 1;
        }
      }
    } else {
      sr = node_hash(sr, c);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return fr == old_root && sr == new_root && sn == 0;
}

}  // namespace certchain::ct
