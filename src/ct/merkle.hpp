// RFC 6962 Merkle hash tree.
//
// CT logs are append-only Merkle trees; inclusion proofs let a client check a
// certificate is logged, and consistency proofs let monitors check the log
// never rewrote history. This is a faithful implementation of the RFC 6962
// tree algorithms (leaf/node domain separation, MTH splitting at the largest
// power of two) over the simulated digest from src/util.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/hash.hpp"

namespace certchain::ct {

using util::Digest256;

/// Leaf hash: H(0x00 || data).
Digest256 leaf_hash(std::string_view data);

/// Interior node hash: H(0x01 || left || right).
Digest256 node_hash(const Digest256& left, const Digest256& right);

/// An append-only Merkle tree over opaque leaf byte strings.
class MerkleTree {
 public:
  /// Appends a leaf; returns its index.
  std::size_t append(std::string_view leaf_data);

  std::size_t size() const { return leaves_.size(); }

  /// MTH over the first `n` leaves (n <= size). n == 0 yields H(empty).
  Digest256 root_hash(std::size_t n) const;
  Digest256 root_hash() const { return root_hash(size()); }

  /// RFC 6962 audit path for leaf `index` in the tree of the first `n`
  /// leaves. Empty for a single-leaf tree.
  std::vector<Digest256> inclusion_proof(std::size_t index, std::size_t n) const;
  std::vector<Digest256> inclusion_proof(std::size_t index) const {
    return inclusion_proof(index, size());
  }

  /// RFC 6962 consistency proof between the trees of the first `m` and first
  /// `n` leaves (m <= n).
  std::vector<Digest256> consistency_proof(std::size_t m, std::size_t n) const;

 private:
  Digest256 subtree_hash(std::size_t begin, std::size_t end) const;
  std::vector<Digest256> subtree_inclusion(std::size_t index, std::size_t begin,
                                           std::size_t end) const;
  std::vector<Digest256> subproof(std::size_t m, std::size_t begin, std::size_t end,
                                  bool whole) const;

  std::vector<Digest256> leaf_hashes_;
  std::vector<std::string> leaves_;
};

/// Verifies an inclusion proof: does `leaf_data` at `index` belong to the
/// tree of size `n` with root `root`?
bool verify_inclusion(std::string_view leaf_data, std::size_t index, std::size_t n,
                      const std::vector<Digest256>& proof, const Digest256& root);

/// Same check starting from a precomputed leaf hash. Monitors work from leaf
/// hashes served by the log — they never hold the full leaf bytes.
bool verify_inclusion_hash(const Digest256& leaf, std::size_t index, std::size_t n,
                           const std::vector<Digest256>& proof,
                           const Digest256& root);

/// Verifies a consistency proof between roots of sizes m and n.
bool verify_consistency(std::size_t m, std::size_t n, const Digest256& old_root,
                        const Digest256& new_root,
                        const std::vector<Digest256>& proof);

}  // namespace certchain::ct
