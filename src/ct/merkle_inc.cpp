#include "ct/merkle_inc.hpp"

#include <stdexcept>

namespace certchain::ct {

namespace {

/// Largest power of two strictly less than n (n >= 2) — the RFC 6962 split.
std::size_t split_point(std::size_t n) {
  std::size_t k = 1;
  while (k * 2 < n) k *= 2;
  return k;
}

}  // namespace

std::size_t IncrementalMerkleTree::append_leaf_hash(const Digest256& leaf) {
  if (levels_.empty()) levels_.emplace_back();
  levels_[0].push_back(leaf);
  const std::size_t index = levels_[0].size() - 1;

  // Binary-counter carry: while the index at the current level is odd, the
  // pair (i-1, i) just became complete — hash it one level up.
  std::size_t i = index;
  std::size_t level = 0;
  while ((i & 1) == 1) {
    if (levels_.size() == level + 1) levels_.emplace_back();
    levels_[level + 1].push_back(
        node_hash(levels_[level][i - 1], levels_[level][i]));
    i >>= 1;
    ++level;
  }
  return index;
}

const Digest256& IncrementalMerkleTree::leaf_hash_at(std::size_t index) const {
  if (index >= size()) {
    throw std::out_of_range("IncrementalMerkleTree::leaf_hash_at: bad index");
  }
  return levels_[0][index];
}

Digest256 IncrementalMerkleTree::range_hash(std::size_t begin,
                                            std::size_t end) const {
  const std::size_t n = end - begin;
  if (n == 0) return util::digest256("");
  if (n == 1) return levels_[0][begin];
  // A perfect aligned range [i * 2^j, (i + 1) * 2^j) is cached at level j.
  // Power-of-two width + begin aligned to the width <=> cache hit, because
  // the carry loop filled levels_[j][begin >> j] when leaf end-1 arrived
  // (its level-0 index ends in j ones).
  if ((n & (n - 1)) == 0 && (begin & (n - 1)) == 0) {
    std::size_t level = 0;
    for (std::size_t w = n; w > 1; w >>= 1) ++level;
    return levels_[level][begin >> level];
  }
  const std::size_t k = split_point(n);
  // The left half is perfect and aligned whenever the range ever splits on
  // the right spine of the tree, so this recursion is O(log n) deep with an
  // O(1) left branch at every step.
  return node_hash(range_hash(begin, begin + k), range_hash(begin + k, end));
}

Digest256 IncrementalMerkleTree::root_hash(std::size_t n) const {
  if (n > size()) {
    throw std::out_of_range("IncrementalMerkleTree::root_hash: n > size");
  }
  return range_hash(0, n);
}

std::vector<Digest256> IncrementalMerkleTree::range_inclusion(
    std::size_t index, std::size_t begin, std::size_t end) const {
  const std::size_t n = end - begin;
  if (n <= 1) return {};
  const std::size_t k = split_point(n);
  std::vector<Digest256> path;
  if (index < k) {
    path = range_inclusion(index, begin, begin + k);
    path.push_back(range_hash(begin + k, end));
  } else {
    path = range_inclusion(index - k, begin + k, end);
    path.push_back(range_hash(begin, begin + k));
  }
  return path;
}

std::vector<Digest256> IncrementalMerkleTree::inclusion_proof(
    std::size_t index, std::size_t n) const {
  if (n > size() || index >= n) {
    throw std::out_of_range("IncrementalMerkleTree::inclusion_proof: bad index/size");
  }
  return range_inclusion(index, 0, n);
}

std::vector<Digest256> IncrementalMerkleTree::subproof(std::size_t m,
                                                       std::size_t begin,
                                                       std::size_t end,
                                                       bool whole) const {
  const std::size_t n = end - begin;
  if (m == n) {
    if (whole) return {};
    return {range_hash(begin, end)};
  }
  const std::size_t k = split_point(n);
  std::vector<Digest256> proof;
  if (m <= k) {
    proof = subproof(m, begin, begin + k, whole);
    proof.push_back(range_hash(begin + k, end));
  } else {
    proof = subproof(m - k, begin + k, end, false);
    proof.push_back(range_hash(begin, begin + k));
  }
  return proof;
}

std::vector<Digest256> IncrementalMerkleTree::consistency_proof(
    std::size_t m, std::size_t n) const {
  if (m > n || n > size()) {
    throw std::out_of_range("IncrementalMerkleTree::consistency_proof: bad sizes");
  }
  if (m == 0 || m == n) return {};
  return subproof(m, 0, n, true);
}

}  // namespace certchain::ct
