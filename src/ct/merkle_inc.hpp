// Incremental RFC 6962 Merkle hash tree (DESIGN.md §14.1).
//
// The recursive MerkleTree in ct/merkle recomputes every subtree hash on
// every root_hash()/proof call — O(n) per signed tree head — and retains the
// full leaf byte strings forever. That is fine for a study-scale corpus and
// it stays in the tree as the differential reference, but a log front-end
// that signs a tree head per batch over millions of entries needs both
// appends and proofs in O(log n).
//
// IncrementalMerkleTree stores one vector of digests per tree level:
// levels_[0] holds the leaf hashes, and levels_[j+1][i] is the node hash of
// levels_[j][2i] and levels_[j][2i+1] — i.e. every *complete* (perfect,
// aligned) subtree hash is cached the moment its last leaf arrives. Appending
// leaf i propagates carries exactly like a binary counter increment: while
// the new index is odd at the current level, the freshly completed pair is
// hashed one level up. Amortized O(1) hash work per append, ~2n digests of
// memory, no leaf bytes retained.
//
// Proofs and roots reduce to range_hash(begin, end) over the RFC 6962
// recursion. The key invariant: at every split the *left* half is a perfect
// aligned subtree, so it is answered from the cache in O(1); only the right
// spine recurses. root_hash / inclusion_proof / consistency_proof are
// therefore O(log n) with no recomputation, and produce digests identical to
// the recursive implementation (proven by the seeded differential suite in
// tests/test_ct_incremental.cpp).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ct/merkle.hpp"
#include "util/hash.hpp"

namespace certchain::ct {

/// Append-only Merkle tree over leaf *hashes* with cached subtree digests.
/// Drop-in digest-compatible with MerkleTree; throws the same
/// std::out_of_range on out-of-bounds arguments.
class IncrementalMerkleTree {
 public:
  /// Appends a leaf by its content; returns its index.
  std::size_t append(std::string_view leaf_data) {
    return append_leaf_hash(leaf_hash(leaf_data));
  }

  /// Appends a precomputed leaf hash; returns its index. This is the bulk
  /// ingestion fast path (datagen, bench) — the caller hashes, the tree
  /// only carries.
  std::size_t append_leaf_hash(const Digest256& leaf);

  std::size_t size() const {
    return levels_.empty() ? 0 : levels_[0].size();
  }

  /// Leaf hash of entry `index` (index < size).
  const Digest256& leaf_hash_at(std::size_t index) const;

  /// MTH over the first `n` leaves (n <= size). n == 0 yields H(empty).
  Digest256 root_hash(std::size_t n) const;
  Digest256 root_hash() const { return root_hash(size()); }

  /// RFC 6962 audit path for leaf `index` in the tree of the first `n`
  /// leaves. Empty for a single-leaf tree.
  std::vector<Digest256> inclusion_proof(std::size_t index, std::size_t n) const;
  std::vector<Digest256> inclusion_proof(std::size_t index) const {
    return inclusion_proof(index, size());
  }

  /// RFC 6962 consistency proof between the trees of the first `m` and
  /// first `n` leaves (m <= n).
  std::vector<Digest256> consistency_proof(std::size_t m, std::size_t n) const;

 private:
  /// MTH of leaves [begin, end). Cache hit when the range is a perfect
  /// aligned subtree; otherwise splits at the largest power of two < n,
  /// where the left half always hits.
  Digest256 range_hash(std::size_t begin, std::size_t end) const;
  std::vector<Digest256> range_inclusion(std::size_t index, std::size_t begin,
                                         std::size_t end) const;
  std::vector<Digest256> subproof(std::size_t m, std::size_t begin,
                                  std::size_t end, bool whole) const;

  // levels_[0] = leaf hashes; levels_[j][i] = hash of the perfect subtree
  // over leaves [i * 2^j, (i + 1) * 2^j).
  std::vector<std::vector<Digest256>> levels_;
};

}  // namespace certchain::ct
