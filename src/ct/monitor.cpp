#include "ct/monitor.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace certchain::ct {

std::optional<std::vector<Digest256>> CtLogView::consistency(
    std::size_t m, std::size_t n) const {
  return log_->prove_consistency(m, n);
}

std::optional<LogClient::InclusionAnswer> CtLogView::inclusion(
    std::size_t index, std::size_t n) const {
  if (n > log_->size() || index >= n) return std::nullopt;
  return InclusionAnswer{log_->leaf_hash_at(index),
                         log_->prove_inclusion_at(index, n)};
}

const char* violation_kind_name(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kRollback: return "rollback";
    case Violation::Kind::kRootMismatch: return "root_mismatch";
    case Violation::Kind::kConsistency: return "consistency";
    case Violation::Kind::kInclusion: return "inclusion";
  }
  return "unknown";
}

Monitor::Monitor(MonitorConfig config, obs::MetricsRegistry* metrics)
    : config_(config), metrics_(metrics) {}

void Monitor::watch(std::shared_ptr<LogClient> client) {
  const std::lock_guard<std::mutex> lock(mutex_);
  watched_.push_back(Watched{std::move(client), false, TreeHead{}});
}

void Monitor::record(Violation violation) {
  if (metrics_ != nullptr) {
    metrics_->count("ct.monitor.violations");
    switch (violation.kind) {
      case Violation::Kind::kRollback:
        metrics_->count("ct.monitor.rollbacks");
        break;
      case Violation::Kind::kRootMismatch:
        metrics_->count("ct.monitor.root_mismatches");
        break;
      case Violation::Kind::kConsistency:
        metrics_->count("ct.monitor.consistency_violations");
        break;
      case Violation::Kind::kInclusion:
        metrics_->count("ct.monitor.inclusion_failures");
        break;
    }
  }
  violations_.push_back(std::move(violation));
}

std::size_t Monitor::audit_locked(Watched& watched, util::Rng& rng) {
  const std::size_t before = violations_.size();
  const TreeHead head = watched.client->tree_head();
  const std::string log_id = watched.client->log_id();

  const auto head_verified = [this] {
    sth_verified_++;
    if (metrics_ != nullptr) metrics_->count("ct.monitor.sth_verified");
  };

  bool head_ok = true;
  if (!watched.has_checkpoint) {
    // First observation: nothing to compare against; the head becomes the
    // baseline the next poll must extend.
    head_verified();
  } else if (head.tree_size < watched.checkpoint.tree_size) {
    head_ok = false;
    record(Violation{Violation::Kind::kRollback, log_id,
                     watched.checkpoint.tree_size, head.tree_size,
                     "tree size shrank below checkpoint"});
  } else if (head.tree_size == watched.checkpoint.tree_size) {
    if (head.root == watched.checkpoint.root) {
      head_verified();
    } else {
      head_ok = false;
      record(Violation{Violation::Kind::kRootMismatch, log_id,
                       watched.checkpoint.tree_size, head.tree_size,
                       "same tree size, different root"});
    }
  } else {
    const auto proof =
        watched.client->consistency(watched.checkpoint.tree_size, head.tree_size);
    const bool consistent =
        proof.has_value() &&
        verify_consistency(watched.checkpoint.tree_size, head.tree_size,
                           watched.checkpoint.root, head.root, *proof);
    if (consistent) {
      head_verified();
    } else {
      head_ok = false;
      record(Violation{Violation::Kind::kConsistency, log_id,
                       watched.checkpoint.tree_size, head.tree_size,
                       proof.has_value() ? "consistency proof failed to verify"
                                         : "log refused consistency proof"});
    }
  }

  // Sampled inclusion audit against the advertised head: even a consistent
  // head is worthless if the log cannot prove the entries it claims.
  if (head.tree_size > 0) {
    for (std::size_t s = 0; s < config_.inclusion_samples; ++s) {
      const std::size_t index = rng.next_below(head.tree_size);
      inclusion_checks_++;
      if (metrics_ != nullptr) metrics_->count("ct.monitor.inclusion_checks");
      const auto answer = watched.client->inclusion(index, head.tree_size);
      const bool proven =
          answer.has_value() &&
          verify_inclusion_hash(answer->leaf, index, head.tree_size,
                                answer->path, head.root);
      if (!proven) {
        inclusion_failures_++;
        record(Violation{Violation::Kind::kInclusion, log_id,
                         watched.checkpoint.tree_size, head.tree_size,
                         "sampled entry " + std::to_string(index) +
                             " failed inclusion proof"});
      }
    }
  }

  // Advance the checkpoint only past heads that verified — a misbehaving
  // log stays pinned to the last good checkpoint and keeps alarming.
  if (head_ok) {
    watched.checkpoint = head;
    watched.has_checkpoint = true;
  }
  return violations_.size() - before;
}

std::size_t Monitor::poll_once() {
  const std::lock_guard<std::mutex> lock(mutex_);
  polls_++;
  if (metrics_ != nullptr) metrics_->count("ct.monitor.polls");
  util::Rng rng(config_.seed ^ (polls_ * 0x9e3779b97f4a7c15ULL));
  std::size_t fresh = 0;
  for (Watched& watched : watched_) {
    fresh += audit_locked(watched, rng);
  }
  if (metrics_ != nullptr) {
    metrics_->set_gauge("ct.monitor.watched_logs",
                        static_cast<double>(watched_.size()));
  }
  return fresh;
}

std::vector<Violation> Monitor::violations() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return violations_;
}

MonitorStatus Monitor::status() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MonitorStatus status;
  status.polls = polls_;
  status.sth_verified = sth_verified_;
  status.inclusion_checks = inclusion_checks_;
  status.inclusion_failures = inclusion_failures_;
  status.violation_count = violations_.size();
  status.checkpoints.reserve(watched_.size());
  for (const Watched& watched : watched_) {
    MonitorStatus::Checkpoint checkpoint;
    checkpoint.log_id = watched.client->log_id();
    checkpoint.tree_size = watched.has_checkpoint ? watched.checkpoint.tree_size : 0;
    if (watched.has_checkpoint) checkpoint.root = watched.checkpoint.root;
    status.checkpoints.push_back(std::move(checkpoint));
  }
  return status;
}

}  // namespace certchain::ct
