// Continuous CT monitor/auditor (DESIGN.md §14.3).
//
// A CT monitor tails one or more logs and holds them to the append-only
// contract: every new signed tree head must be consistent with the last one
// the monitor saw (RFC 6962 §5.3), and entries the log claims to hold must
// actually be provable against the advertised root. Monitor keeps one
// checkpoint (tree_size, root) per watched log and, on every poll:
//
//   1. fetches the current tree head;
//   2. flags a *rollback* if the tree shrank, a *root mismatch* if the size
//      held but the root changed, and a *consistency violation* if the log
//      cannot produce a verifying consistency proof from the checkpoint to
//      the new head (the history-rewrite case);
//   3. samples K seeded-random entries and verifies their inclusion proofs
//      against the new head (leaf-hash based — the monitor never holds leaf
//      bytes), flagging *inclusion failures*;
//   4. advances the checkpoint only when the head verified cleanly, so a
//      misbehaving log keeps tripping the alarm instead of being forgiven.
//
// Logs are reached through the LogClient interface so tests can substitute
// deliberately history-rewriting fakes, and a future remote monitor can wrap
// the svc ct_sth/ct_prove_inclusion endpoints. Every outcome is counted in
// an obs::MetricsRegistry under ct.monitor.* — the svc ct_monitor_status
// endpoint and the certchain_ctmon tool surface those counters.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ct/ct_log.hpp"
#include "util/rng.hpp"

namespace certchain::obs {
class MetricsRegistry;
}

namespace certchain::ct {

/// Read-side view of a log, as a monitor sees it. All sizes are entry
/// counts; proofs are answered for *observed* tree sizes, so an honest
/// client answers for any size it ever advertised.
class LogClient {
 public:
  struct InclusionAnswer {
    Digest256 leaf;                // leaf hash of the sampled entry
    std::vector<Digest256> path;   // audit path in the tree of size n
  };

  virtual ~LogClient() = default;
  virtual std::string log_id() const = 0;
  virtual TreeHead tree_head() const = 0;
  /// Consistency proof between previously observed sizes m <= n. nullopt
  /// means the log refused/cannot prove — itself a violation signal.
  virtual std::optional<std::vector<Digest256>> consistency(
      std::size_t m, std::size_t n) const = 0;
  /// Leaf hash + audit path for `index` in the tree of the first `n` entries.
  virtual std::optional<InclusionAnswer> inclusion(std::size_t index,
                                                   std::size_t n) const = 0;
};

/// LogClient over an in-process CtLog (the honest adapter). The log must
/// outlive the view.
class CtLogView : public LogClient {
 public:
  explicit CtLogView(const CtLog& log) : log_(&log) {}

  std::string log_id() const override { return log_->log_id(); }
  TreeHead tree_head() const override { return log_->tree_head(); }
  std::optional<std::vector<Digest256>> consistency(
      std::size_t m, std::size_t n) const override;
  std::optional<InclusionAnswer> inclusion(std::size_t index,
                                           std::size_t n) const override;

 private:
  const CtLog* log_;
};

struct MonitorConfig {
  /// Inclusion proofs sampled per log per poll (0 disables sampling).
  std::size_t inclusion_samples = 4;
  /// Seed for the sampling schedule; forked per poll so schedules are
  /// deterministic but non-repeating.
  std::uint64_t seed = 0x0c711;
};

/// One detected violation of the log's append-only contract.
struct Violation {
  enum class Kind {
    kRollback,      // tree shrank below the checkpoint
    kRootMismatch,  // same size, different root
    kConsistency,   // no verifying consistency proof checkpoint -> head
    kInclusion,     // sampled entry failed its inclusion proof
  };
  Kind kind = Kind::kConsistency;
  std::string log_id;
  std::size_t checkpoint_size = 0;
  std::size_t observed_size = 0;
  std::string detail;
};

const char* violation_kind_name(Violation::Kind kind);

/// Point-in-time summary for status endpoints.
struct MonitorStatus {
  std::uint64_t polls = 0;
  std::uint64_t sth_verified = 0;
  std::uint64_t inclusion_checks = 0;
  std::uint64_t inclusion_failures = 0;
  std::size_t violation_count = 0;
  struct Checkpoint {
    std::string log_id;
    std::size_t tree_size = 0;
    Digest256 root;
  };
  std::vector<Checkpoint> checkpoints;  // in watch order
};

class Monitor {
 public:
  explicit Monitor(MonitorConfig config = {},
                   obs::MetricsRegistry* metrics = nullptr);

  /// Adds a log to the watch list. The first poll establishes its baseline
  /// checkpoint.
  void watch(std::shared_ptr<LogClient> client);

  /// Audits every watched log once; returns the number of new violations.
  /// Thread-safe against status()/violations() from other threads.
  std::size_t poll_once();

  std::vector<Violation> violations() const;
  MonitorStatus status() const;

 private:
  struct Watched {
    std::shared_ptr<LogClient> client;
    bool has_checkpoint = false;
    TreeHead checkpoint;
  };

  void record(Violation violation);
  std::size_t audit_locked(Watched& watched, util::Rng& rng);

  MonitorConfig config_;
  obs::MetricsRegistry* metrics_;
  mutable std::mutex mutex_;
  std::vector<Watched> watched_;
  std::vector<Violation> violations_;
  std::uint64_t polls_ = 0;
  std::uint64_t sth_verified_ = 0;
  std::uint64_t inclusion_checks_ = 0;
  std::uint64_t inclusion_failures_ = 0;
};

}  // namespace certchain::ct
