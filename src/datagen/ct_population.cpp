#include "datagen/ct_population.hpp"

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace certchain::datagen {

namespace {

std::vector<x509::DistinguishedName> issuer_pool(
    const CtPopulationConfig& config) {
  std::vector<x509::DistinguishedName> pool;
  pool.reserve(config.issuers_per_category * 3);
  for (std::size_t i = 0; i < config.issuers_per_category; ++i) {
    pool.push_back(x509::DistinguishedName{}
                       .add("CN", "Sim Public CA " + std::to_string(i))
                       .add("O", "Public Trust Services")
                       .add("C", "US"));
  }
  for (std::size_t i = 0; i < config.issuers_per_category; ++i) {
    pool.push_back(x509::DistinguishedName{}
                       .add("CN", "Campus Private CA " + std::to_string(i))
                       .add("O", "Campus IT")
                       .add("C", "DE"));
  }
  for (std::size_t i = 0; i < config.issuers_per_category; ++i) {
    // Self-contained devices: issuer == subject (appliance style).
    pool.push_back(x509::DistinguishedName{}
                       .add("CN", "appliance-" + std::to_string(i) + ".local"));
  }
  return pool;
}

}  // namespace

std::size_t populate_ct_log(ct::CtLog& log, const CtPopulationConfig& config) {
  util::Rng rng(config.seed);
  const std::vector<x509::DistinguishedName> issuers = issuer_pool(config);
  const std::size_t base_index = log.size();

  for (std::size_t i = 0; i < config.entries; ++i) {
    ct::LogEntry entry;
    const std::uint64_t serial_word = rng.next_u64();
    entry.serial = "ct-serial-" + std::to_string(serial_word);
    entry.certificate_fingerprint =
        util::digest256_hex("ct-population/" + log.name() + "/" +
                            std::to_string(base_index + i) + "/" +
                            std::to_string(serial_word));
    entry.issuer = issuers[rng.next_below(issuers.size())];

    const std::size_t campus = rng.next_below(64);
    const std::size_t svc = base_index + i;
    const std::string host = "svc" + std::to_string(svc) + ".campus" +
                             std::to_string(campus) + ".example";
    entry.subject = x509::DistinguishedName{}.add("CN", host);
    if (config.wildcard_every != 0 && i % config.wildcard_every == 0) {
      entry.domains.push_back("*.campus" + std::to_string(campus) + ".example");
    } else {
      entry.domains.push_back(host);
    }
    const std::size_t extra =
        config.extra_domain_max == 0 ? 0 : rng.next_below(config.extra_domain_max + 1);
    for (std::size_t d = 0; d < extra; ++d) {
      entry.domains.push_back("alt" + std::to_string(d) + "." + host);
    }

    const util::SimTime begin =
        static_cast<util::SimTime>(rng.next_below(365)) * util::kSecondsPerDay;
    const util::SimTime lifetime_days = 30 + rng.next_below(360);
    entry.validity =
        util::TimeRange{begin, begin + lifetime_days * util::kSecondsPerDay};
    entry.logged_at = begin;

    // The leaf hash commits to the synthetic identity; real certificate
    // bytes are never materialized on this path.
    const ct::Digest256 leaf =
        ct::leaf_hash(entry.certificate_fingerprint + "|" + entry.serial + "|" + host);
    log.append_entry(std::move(entry), leaf);
  }
  return config.entries;
}

}  // namespace certchain::datagen
