// Million-entry CT log populations (DESIGN.md §14.6).
//
// The study scenario submits real simulated certificates through the issuance
// flow, which tops out around tens of thousands of entries — enough for the
// corpus, nowhere near enough to exercise a monitor-grade log. populate_ct_log
// grows a CtLog to arbitrary size through the bulk append_entry path: it
// synthesizes deterministic LogEntry rows (issuer pool spanning the three
// §4.2 issuer categories, svcN.campusM.example domains with a wildcard share,
// serials and validity windows derived from one seeded Rng) and precomputed
// leaf hashes, skipping certificate construction entirely. One seed, one
// population — bench_ext_ct and the CI smoke lane replay identical logs.
#pragma once

#include <cstdint>

#include "ct/ct_log.hpp"

namespace certchain::datagen {

struct CtPopulationConfig {
  std::size_t entries = 1'000'000;
  std::uint64_t seed = 20200901;
  /// Distinct issuer DNs drawn per category (public / non-public / self).
  std::size_t issuers_per_category = 8;
  /// Domains per entry beyond the first (entries get 1..1+extra_domain_max).
  std::size_t extra_domain_max = 2;
  /// Every Nth entry's first domain is a wildcard pattern (0 = none).
  std::size_t wildcard_every = 16;
};

/// Appends `config.entries` deterministic entries to `log` via the bulk
/// path; returns the number appended.
std::size_t populate_ct_log(ct::CtLog& log, const CtPopulationConfig& config);

}  // namespace certchain::datagen
