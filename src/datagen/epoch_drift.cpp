#include "datagen/epoch_drift.hpp"

#include <string>
#include <utility>

#include "core/revisit.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "x509/distinguished_name.hpp"

namespace certchain::datagen {

namespace {

/// Leaf validity for drift-issued chains (a year from the first fleet epoch).
util::TimeRange drift_validity() {
  return {util::make_time(2024, 11, 1), util::make_time(2025, 11, 1)};
}

/// The name a drift-issued leaf is bound to: the SNI when there is one,
/// the bare IP otherwise.
std::string endpoint_name(const netsim::ServerEndpoint& endpoint) {
  return endpoint.domain.empty() ? endpoint.ip : endpoint.domain;
}

bool chain_all_public(const truststore::TrustStoreSet& stores,
                      const chain::CertificateChain& chain) {
  if (chain.empty()) return false;
  for (const x509::Certificate& cert : chain) {
    if (stores.classify_certificate(cert) != truststore::IssuerClass::kPublicDb) {
      return false;
    }
  }
  return true;
}

bool chain_all_non_public(const truststore::TrustStoreSet& stores,
                          const chain::CertificateChain& chain) {
  if (chain.empty()) return false;
  for (const x509::Certificate& cert : chain) {
    if (stores.classify_certificate(cert) != truststore::IssuerClass::kNonPublicDb) {
      return false;
    }
  }
  return true;
}

/// [leaf, intermediate, root] under the endpoint's own drift hierarchy;
/// make_enterprise_ca memoizes, so re-keys reuse the same CA.
chain::CertificateChain enterprise_chain(netsim::PkiWorld& world,
                                         const std::string& organization,
                                         const std::string& name) {
  netsim::PrivateCaHierarchy& hierarchy = world.make_enterprise_ca(organization, true);
  x509::DistinguishedName subject;
  subject.add("CN", name).add("O", organization);
  x509::CertificateAuthority& issuer =
      hierarchy.intermediate_ca ? *hierarchy.intermediate_ca : hierarchy.root_ca;
  chain::CertificateChain chain;
  chain.push_back(issuer.issue_leaf(subject, name, drift_validity()));
  if (hierarchy.intermediate_cert) chain.push_back(*hierarchy.intermediate_cert);
  chain.push_back(hierarchy.root_cert);
  return chain;
}

}  // namespace

EpochDrifter::EpochDrifter(Scenario& scenario, EpochDriftConfig config,
                           std::size_t epoch_count) {
  if (epoch_count == 0) return;
  epochs_.reserve(epoch_count);
  epochs_.push_back(scenario.endpoints);

  const truststore::TrustStoreSet& stores = scenario.world.stores();
  for (std::size_t e = 1; e < epoch_count; ++e) {
    std::vector<netsim::ServerEndpoint> next = epochs_.back();
    for (netsim::ServerEndpoint& endpoint : next) {
      const std::string name = endpoint_name(endpoint);
      util::Rng rng = util::Rng(config.seed)
                          .fork(static_cast<std::uint64_t>(e))
                          .fork(util::stable_salt(endpoint.ip + ":" +
                                                  std::to_string(endpoint.port)));
      const std::string drift_org = "Drift Enterprise " + name;

      if (!endpoint.revisit_chain.has_value()) {
        // Offline server: may come back, freshly provisioned.
        if (rng.bernoulli(config.churn_rate)) {
          if (!endpoint.domain.empty()) {
            endpoint.revisit_chain = scenario.world.issue_public_chain(
                "lets-encrypt", endpoint.domain, drift_validity());
          } else {
            chain::CertificateChain chain;
            chain.push_back(
                scenario.world.make_self_signed(drift_org, name, drift_validity()));
            endpoint.revisit_chain = std::move(chain);
          }
        }
        continue;
      }

      // Reachable server: churn off, shift issuer, upgrade hierarchy, or
      // re-key — first matching draw wins, in that order.
      if (rng.bernoulli(config.churn_rate)) {
        endpoint.revisit_chain.reset();
        continue;
      }
      const chain::CertificateChain& current = *endpoint.revisit_chain;
      const bool lets_encrypt = core::RevisitAnalyzer::is_lets_encrypt_chain(current);
      const bool all_public = chain_all_public(stores, current);
      const bool all_non_public = chain_all_non_public(stores, current);

      if (!lets_encrypt && !endpoint.domain.empty() &&
          rng.bernoulli(config.issuer_shift_rate)) {
        endpoint.revisit_chain = scenario.world.issue_public_chain(
            "lets-encrypt", endpoint.domain, drift_validity());
        continue;
      }
      if (all_non_public && current.length() == 1 &&
          rng.bernoulli(config.hierarchy_upgrade_rate)) {
        endpoint.revisit_chain = enterprise_chain(scenario.world, drift_org, name);
        continue;
      }
      if (rng.bernoulli(config.rekey_probability)) {
        if (lets_encrypt && !endpoint.domain.empty()) {
          endpoint.revisit_chain = scenario.world.issue_public_chain(
              "lets-encrypt", endpoint.domain, drift_validity());
        } else if (all_public && !endpoint.domain.empty()) {
          endpoint.revisit_chain = scenario.world.issue_public_chain(
              "digicert", endpoint.domain, drift_validity());
        } else if (all_non_public && current.length() > 1) {
          endpoint.revisit_chain = enterprise_chain(scenario.world, drift_org, name);
        } else if (all_non_public) {
          const auto& leaf = current.first();
          chain::CertificateChain chain;
          chain.push_back(scenario.world.make_self_signed(
              leaf.subject.organization().value_or(drift_org),
              leaf.subject.common_name().value_or(name), drift_validity()));
          endpoint.revisit_chain = std::move(chain);
        } else if (!endpoint.domain.empty()) {
          // Mixed/hybrid chains re-issue as clean public chains.
          endpoint.revisit_chain = scenario.world.issue_public_chain(
              "digicert", endpoint.domain, drift_validity());
        }
      }
    }
    epochs_.push_back(std::move(next));
  }
}

}  // namespace certchain::datagen
