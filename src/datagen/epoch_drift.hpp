// Multi-epoch population drift for the continuous revisit fleet.
//
// The study scenario ends at the §5 revisit: every endpoint carries one
// `revisit_chain` (the November-2024 view). The fleet needs that view to
// keep evolving, so EpochDrifter materializes N successive revisit
// populations from the scenario, applying the §5 forces as per-epoch
// probabilities:
//
//   - issuer-mix shift: non-Let's-Encrypt servers migrate to fresh
//     Let's Encrypt chains (the paper's dominant §5 observation);
//   - rotation/re-key: servers re-issue within their current category
//     with a new key pair (fingerprint and key material both change);
//   - hierarchy upgrades: single-certificate non-public servers move to
//     3-certificate private hierarchies (the paper's second finding);
//   - endpoint churn: servers drop offline and come back.
//
// All epochs are generated eagerly at construction in endpoint order with
// per-endpoint forked RNG streams, so the same (scenario seed, drift seed,
// epoch count) always yields byte-identical populations — and the PkiWorld
// mutations (new leaves, CT log appends, enterprise CAs) happen exactly
// once, before any analysis looks at the world.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "datagen/scenario.hpp"
#include "netsim/endpoint.hpp"

namespace certchain::datagen {

/// Per-epoch drift probabilities; all draws are per endpoint per epoch.
struct EpochDriftConfig {
  std::uint64_t seed = 0xD21F7;
  /// Reachable non-Let's-Encrypt server migrates to a Let's Encrypt chain.
  double issuer_shift_rate = 0.10;
  /// Reachable server re-issues within its category with a fresh key.
  double rekey_probability = 0.15;
  /// Reachable server drops offline / offline server comes back.
  double churn_rate = 0.05;
  /// Single-certificate non-public server upgrades to a 3-cert hierarchy.
  double hierarchy_upgrade_rate = 0.20;
};

/// Materializes `epoch_count` successive revisit populations. Epoch 0 is the
/// scenario's own revisit view; epoch e is derived from epoch e-1.
class EpochDrifter {
 public:
  EpochDrifter(Scenario& scenario, EpochDriftConfig config,
               std::size_t epoch_count);

  std::size_t epoch_count() const { return epochs_.size(); }
  const std::vector<netsim::ServerEndpoint>& epoch(std::size_t index) const {
    return epochs_.at(index);
  }

 private:
  std::vector<std::vector<netsim::ServerEndpoint>> epochs_;
};

}  // namespace certchain::datagen
