// Hybrid-chain population (exactly 321 chains, §4.2) and the revisit-epoch
// chain assignment (§5).
#include <cmath>
#include <cstdio>

#include "datagen/scenario.hpp"

namespace certchain::datagen {

using netsim::PkiWorld;
using netsim::ServerEndpoint;
using x509::DistinguishedName;

namespace {

std::string hybrid_ip(std::size_t index) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "203.0.%u.%u",
                static_cast<unsigned>((113 + (index >> 8)) & 0xFF),
                static_cast<unsigned>(index & 0xFF));
  return buffer;
}

std::uint16_t hybrid_port_sample(util::Rng& rng) {
  const double p = rng.uniform();
  if (p < 0.9721) return 443;
  if (p < 0.9857) return 8443;
  if (p < 0.9979) return 8088;
  if (p < 0.9997) return 25;
  return 9191;
}

/// A leaf issued by a public CA's intermediate, CT-logged (used as building
/// block in most hybrid shapes).
chain::CertificateChain public_leaf_and_int(PkiWorld& world, const char* ca,
                                            const std::string& domain,
                                            util::TimeRange validity) {
  return world.issue_public_chain(ca, domain, validity, /*include_root=*/false);
}

}  // namespace

namespace detail {

void add_hybrid_endpoints(Scenario& scenario, const ScenarioConfig& config,
                          util::Rng& rng) {
  (void)config;
  PkiWorld& world = scenario.world;
  const util::TimeRange validity = PkiWorld::default_leaf_validity();
  const double hybrid_share = 0.065;  // of all connections (inflated vs the
                                      // paper's 0.03% for statistical
                                      // stability; see EXPERIMENTS.md)
  std::size_t hybrid_index = 0;
  std::vector<std::size_t> endpoint_indices;

  const auto add_endpoint = [&](chain::CertificateChain chain, double weight,
                                double establish, const std::string& label,
                                bool with_domain = true) -> ServerEndpoint& {
    ServerEndpoint endpoint;
    endpoint.ip = hybrid_ip(hybrid_index);
    endpoint.port = hybrid_port_sample(rng);
    if (with_domain) {
      endpoint.domain = "hybrid" + std::to_string(hybrid_index) + ".sim-org.example";
    }
    endpoint.chain = std::move(chain);
    endpoint.popularity = weight;
    endpoint.establish_probability = establish;
    endpoint.tls13_fraction = 0.0;
    endpoint.no_sni_fraction = 0.1;
    endpoint.validation_status = "unable to get local issuer certificate";
    endpoint.label = label;
    ++hybrid_index;
    endpoint_indices.push_back(scenario.endpoints.size());
    scenario.endpoints.push_back(std::move(endpoint));
    return scenario.endpoints.back();
  };

  // Within-category weight budget: 36 complete (heavier), 70 contains, 215
  // no-path, roughly matching the paper's per-bucket connection volumes.
  const double w_complete = hybrid_share * 0.30 / 36.0;
  const double w_contains = hybrid_share * 0.25 / 70.0;
  const double w_no_path = hybrid_share * 0.45 / 215.0;

  // ---- Table 3 bucket 1a: 26 complete paths, non-public leaf anchored to a
  // public root (Table 6: 16 government + 10 corporate). Three carry leaves
  // that expired long before observation (the longest > 5 years).
  const struct {
    const char* sub_ca;
    std::size_t count;
  } anchored[] = {
      {"veterans-affairs", 6}, {"klid", 5}, {"iti", 5},  // 16 government
      {"symantec-private", 5}, {"signkorea", 5},         // 10 corporate
  };
  std::size_t anchored_built = 0;
  for (const auto& spec : anchored) {
    for (std::size_t i = 0; i < spec.count; ++i, ++anchored_built) {
      const std::string domain = "svc" + std::to_string(i) + "." +
                                 std::string(spec.sub_ca) + ".sim-gov.example";
      util::TimeRange leaf_validity = validity;
      double establish = 0.978;
      if (anchored_built < 3) {
        // Expired leaves; the first one by more than five years.
        const int years_expired = anchored_built == 0 ? 6 : 2;
        leaf_validity = {util::make_time(2010, 1, 1),
                         util::make_time(2021 - years_expired, 1, 1)};
        establish = 0.90;
      }
      chain::CertificateChain chain =
          world.issue_sub_ca_chain(spec.sub_ca, domain, leaf_validity);
      ServerEndpoint& endpoint = add_endpoint(std::move(chain), w_complete,
                                              establish, "hybrid/complete/nonpub-to-pub");
      endpoint.domain = domain;  // keep the sub-CA domain for CT consistency
    }
  }

  // ---- Table 3 bucket 1b: 10 complete paths, public leaf + intermediates
  // followed by a non-public certificate whose subject mirrors the public
  // anchor (the Scalyr / Canal+ pattern, Appendix F.1).
  for (std::size_t i = 0; i < 10; ++i) {
    const bool scalyr = i < 5;
    netsim::PrivateCaHierarchy& backer =
        world.private_ca(scalyr ? "scalyr" : "canal-plus");
    const std::string domain = scalyr
                                   ? "app" + std::to_string(i) + ".sim-scalyr.example"
                                   : "backend" + std::to_string(i) +
                                         ".sim-canal-plus.example";
    chain::CertificateChain chain =
        public_leaf_and_int(world, "sectigo", domain, validity);
    chain.push_back(world.public_ca("sectigo").root_cert);
    // The private "shadow anchor": subject = the public root's DN, issuer =
    // the organization's internal CA.
    x509::Certificate shadow =
        x509::CertificateBuilder()
            .serial(backer.root_ca.next_serial())
            .subject(world.public_ca("sectigo").root_ca.name())
            .issuer(backer.root_ca.name())
            .validity(validity)
            .public_key(backer.root_ca.public_key())
            .ca(true)
            .sign_with(backer.root_ca.private_key());
    chain.push_back(std::move(shadow));
    ServerEndpoint& endpoint = add_endpoint(std::move(chain), w_complete, 0.9849,
                                            "hybrid/complete/pub-to-private");
    endpoint.domain = domain;
  }

  // ---- Table 3 bucket 2: 70 chains containing a complete matched path plus
  // unnecessary certificates (Appendix F.2 composition).
  const auto fresh_domain = [&](const char* tag) {
    return std::string(tag) + std::to_string(hybrid_index) + ".sim-org.example";
  };

  // (a) 14 Let's Encrypt staging leftovers: valid LE path + "Fake LE
  //     Intermediate X1" appended.
  for (std::size_t i = 0; i < 14; ++i) {
    const std::string domain = fresh_domain("le");
    chain::CertificateChain chain =
        public_leaf_and_int(world, "lets-encrypt", domain, validity);
    chain.push_back(world.public_ca("lets-encrypt").root_cert);
    chain.push_back(world.fake_le_intermediate());
    add_endpoint(std::move(chain), w_contains, 0.9204, "hybrid/contains/fake-le")
        .domain = domain;
  }
  // (b) 11 enterprise self-signed appends (one is the HP "tester" cert).
  for (std::size_t i = 0; i < 11; ++i) {
    const std::string domain = fresh_domain("corp");
    chain::CertificateChain chain =
        public_leaf_and_int(world, "digicert", domain, validity);
    if (i == 0) {
      chain.push_back(world.make_self_signed("Sim HP Inc", "tester", validity));
    } else {
      chain.push_back(world.make_self_signed("Sim Enterprise " + std::to_string(i),
                                             "internal-ca-" + std::to_string(i),
                                             validity));
    }
    add_endpoint(std::move(chain), w_contains, 0.9204,
                 "hybrid/contains/enterprise-append")
        .domain = domain;
  }
  // (c) 8 Athenz appliance appends.
  for (std::size_t i = 0; i < 8; ++i) {
    const std::string domain = fresh_domain("ath");
    chain::CertificateChain chain =
        public_leaf_and_int(world, "godaddy", domain, validity);
    chain.push_back(world.public_ca("godaddy").root_cert);
    chain.push_back(world.private_ca("athenz").root_cert);
    add_endpoint(std::move(chain), w_contains, 0.9204, "hybrid/contains/athenz")
        .domain = domain;
  }
  // (d) 19 multi-root appends: extra public roots plus an enterprise cert.
  for (std::size_t i = 0; i < 19; ++i) {
    const std::string domain = fresh_domain("mr");
    chain::CertificateChain chain =
        public_leaf_and_int(world, "comodo", domain, validity);
    chain.push_back(world.public_ca("comodo").root_cert);
    chain.push_back(world.public_ca("globalsign").root_cert);  // foreign root
    chain.push_back(world.make_self_signed("Sim Opco " + std::to_string(i),
                                           "opco-root", validity));
    add_endpoint(std::move(chain), w_contains, 0.9204, "hybrid/contains/multi-root")
        .domain = domain;
  }
  // (e) 18 chains that *begin* with a foreign leaf before the complete path
  //     (the validation-breaking order of §4.2).
  for (std::size_t i = 0; i < 18; ++i) {
    const std::string domain = fresh_domain("lead");
    x509::Certificate stray = world.make_self_signed(
        "Sim Legacy " + std::to_string(i), "old." + domain, validity);
    // Distinct issuer so it is a foreign *leaf*, not a self-signed root.
    DistinguishedName stray_issuer;
    stray_issuer.add("CN", "Sim Legacy Issuing CA").add("O", "Sim Legacy");
    stray.issuer = stray_issuer;

    chain::CertificateChain chain;
    chain.push_back(std::move(stray));
    for (const x509::Certificate& cert :
         public_leaf_and_int(world, "sectigo", domain, validity)) {
      chain.push_back(cert);
    }
    chain.push_back(world.public_ca("sectigo").root_cert);
    add_endpoint(std::move(chain), w_contains, 0.9204, "hybrid/contains/leading-leaf")
        .domain = domain;
  }

  // ---- Table 3 bucket 3: 215 chains with no complete matched path, in the
  // Table 7 split 108 / 13 / 61 / 27 / 5 / 1.
  // (a) 108 self-signed non-public leaves followed by mismatched pairs (100
  //     of them the classic localhost certificate). Severity varies so the
  //     Figure 6 mismatch-ratio histogram spreads over (0, 1]: some chains
  //     mismatch everywhere (ratio 1.0), some embed a matched leafless CA
  //     pair (~0.67), and some carry a longer matched ladder capped by a
  //     stray certificate (~0.4).
  for (std::size_t i = 0; i < 108; ++i) {
    chain::CertificateChain chain;
    if (i < 100) {
      chain.push_back(world.make_localhost_certificate("hyb-" + std::to_string(i)));
    } else {
      chain.push_back(world.make_self_signed("Sim Appliance H" + std::to_string(i),
                                             "appliance.local", validity));
    }
    if (i < 22) {
      // Fully mismatched continuation: orphan public intermediate (+ stray).
      chain.push_back(world.public_ca(i % 2 == 0 ? "digicert" : "globalsign")
                          .intermediate_certs.front());
      if (i % 3 == 0) {
        chain.push_back(world.make_self_signed("Sim Stray H" + std::to_string(i),
                                               "stray-h", validity));
      }
    } else if (i < 42) {
      // Matched [intermediate, root] pair embedded: ratio 2/3.
      netsim::PublicCaHierarchy& ca = world.public_ca(i % 2 == 0 ? "godaddy" : "comodo");
      chain.push_back(ca.intermediate_certs.front());
      chain.push_back(ca.root_cert);
      chain.push_back(world.make_self_signed("Sim Stray H" + std::to_string(i),
                                             "stray-h", validity));
    } else {
      // Matched 4-cert leafless ladder capped by a stray: ratio 2/5.
      netsim::PrivateCaHierarchy& org =
          world.make_enterprise_ca("Sim HLadder " + std::to_string(i % 6), true);
      const util::TimeRange ca_validity{util::make_time(2016, 1, 1),
                                        util::make_time(2031, 1, 1)};
      x509::CertificateAuthority rung1(
          DistinguishedName::parse_or_die("CN=Sim HLadder " + std::to_string(i) +
                                          " CA L1,O=Sim HLadder,C=US"),
          "hladder1/" + std::to_string(i));
      const x509::Certificate rung1_cert =
          org.intermediate_ca->issue_intermediate(rung1, ca_validity);
      x509::CertificateAuthority rung2(
          DistinguishedName::parse_or_die("CN=Sim HLadder " + std::to_string(i) +
                                          " CA L2,O=Sim HLadder,C=US"),
          "hladder2/" + std::to_string(i));
      const x509::Certificate rung2_cert = rung1.issue_intermediate(rung2, ca_validity);
      chain.push_back(rung2_cert);
      chain.push_back(rung1_cert);
      chain.push_back(*org.intermediate_cert);
      chain.push_back(org.root_cert);
      // Keep the chain hybrid: the stray is a public orphan intermediate.
      chain.push_back(world.public_ca("digicert").intermediate_certs.front());
    }
    add_endpoint(std::move(chain), w_no_path, 0.58,
                 "hybrid/nopath/self-signed-then-mismatch");
  }
  // (b) 13 self-signed leaf replacing the original leaf of a valid public
  //     sub-chain.
  for (std::size_t i = 0; i < 13; ++i) {
    chain::CertificateChain chain;
    chain.push_back(world.make_self_signed("Sim Replaced " + std::to_string(i),
                                           "replaced-" + std::to_string(i),
                                           validity));
    chain.push_back(world.public_ca("godaddy").intermediate_certs.front());
    chain.push_back(world.public_ca("godaddy").root_cert);
    add_endpoint(std::move(chain), w_no_path, 0.58,
                 "hybrid/nopath/self-signed-then-valid-subchain");
  }
  // (c) 61 fully mismatched chains; 40 contain a public leaf whose issuing
  //     intermediate is missing (§4.2's 56-chain observation, part 1).
  for (std::size_t i = 0; i < 61; ++i) {
    const std::string domain = fresh_domain("br");
    chain::CertificateChain chain;
    if (i < 40) {
      chain::CertificateChain issued =
          public_leaf_and_int(world, "digicert", domain, validity);
      chain.push_back(issued.first());  // leaf without its intermediate
      chain.push_back(world.public_ca("comodo").root_cert);  // unrelated root
    } else {
      x509::Certificate orphan = world.make_self_signed(
          "Sim Orphan " + std::to_string(i), "orphan-" + std::to_string(i), validity);
      DistinguishedName orphan_issuer;
      orphan_issuer.add("CN", "Sim Orphan Issuer " + std::to_string(i));
      orphan.issuer = orphan_issuer;
      chain.push_back(std::move(orphan));
      chain.push_back(world.public_ca("globalsign").intermediate_certs.front());
    }
    chain.push_back(world.make_self_signed("Sim Tail " + std::to_string(i),
                                           "tail-" + std::to_string(i), validity));
    // Give the tail a distinct issuer so the top is not a self-signed root.
    {
      // (rebuild the last cert's issuer in place)
      chain::CertificateChain fixed;
      for (std::size_t k = 0; k + 1 < chain.length(); ++k) fixed.push_back(chain.at(k));
      x509::Certificate tail = chain.at(chain.length() - 1);
      DistinguishedName tail_issuer;
      tail_issuer.add("CN", "Sim Tail Issuer " + std::to_string(i));
      tail.issuer = tail_issuer;
      fixed.push_back(std::move(tail));
      chain = std::move(fixed);
    }
    ServerEndpoint& endpoint = add_endpoint(std::move(chain), w_no_path,
                                            i < 40 ? 0.5608 : 0.58,
                                            "hybrid/nopath/all-mismatched");
    if (i < 40) endpoint.domain = domain;
  }
  // (d) 27 partially mismatched chains (leafless matched runs preceded by a
  //     foreign leaf); 16 carry a public leaf missing its intermediate
  //     (§4.2's 56-chain observation, part 2). Lengths vary so the Figure 6
  //     mismatch-ratio histogram spreads over (0, 1).
  for (std::size_t i = 0; i < 27; ++i) {
    const std::string domain = fresh_domain("pm");
    chain::CertificateChain chain;
    if (i < 16) {
      chain::CertificateChain issued =
          public_leaf_and_int(world, "sectigo", domain, validity);
      chain.push_back(issued.first());  // public leaf, intermediate absent
    } else {
      x509::Certificate foreign = world.make_self_signed(
          "Sim Foreign " + std::to_string(i), "foreign-" + std::to_string(i),
          validity);
      DistinguishedName foreign_issuer;
      foreign_issuer.add("CN", "Sim Foreign Issuer " + std::to_string(i));
      foreign.issuer = foreign_issuer;
      chain.push_back(std::move(foreign));
    }
    // Matched leafless CA ladder of varying length hanging off a public
    // root (root itself not delivered, so the run never completes a path
    // but the public-issued top rung keeps the chain hybrid). Chain order
    // is bottom-up: [foreign leaf, rung_k, ..., rung_1].
    const std::size_t run_length = 2 + (i % 8);  // 2..9 matched CA certs
    std::vector<x509::CertificateAuthority> rungs;
    std::vector<x509::Certificate> rung_certs;
    x509::CertificateAuthority* previous = &world.public_ca("comodo").root_ca;
    for (std::size_t r = 0; r < run_length; ++r) {
      x509::CertificateAuthority rung(
          DistinguishedName::parse_or_die(
              "CN=Sim Ladder " + std::to_string(i) + " CA L" + std::to_string(r) +
              ",O=Sim Ladder,C=US"),
          "ladder/" + std::to_string(i) + "/" + std::to_string(r));
      rung_certs.push_back(previous->issue_intermediate(
          rung, {util::make_time(2016, 1, 1), util::make_time(2031, 1, 1)}));
      rungs.push_back(std::move(rung));
      previous = &rungs.back();
    }
    for (auto it = rung_certs.rbegin(); it != rung_certs.rend(); ++it) {
      chain.push_back(*it);
    }
    ServerEndpoint& endpoint = add_endpoint(std::move(chain), w_no_path,
                                            i < 16 ? 0.5608 : 0.58,
                                            "hybrid/nopath/partial-mismatch");
    if (i < 16) endpoint.domain = domain;
  }
  // (e) 5 non-public roots appended to a truncated (leafless) public
  //     sub-chain.
  for (std::size_t i = 0; i < 5; ++i) {
    chain::CertificateChain chain;
    chain.push_back(world.public_ca("digicert").intermediate_certs.front());
    chain.push_back(world.public_ca("digicert").root_cert);
    chain.push_back(world.make_self_signed("Sim Shadow Root " + std::to_string(i),
                                           "shadow-root-" + std::to_string(i),
                                           validity));
    add_endpoint(std::move(chain), w_no_path, 0.58,
                 "hybrid/nopath/root-appended");
  }
  // (f) 1 non-public root plus additional mismatches.
  {
    chain::CertificateChain chain;
    chain.push_back(world.public_ca("digicert").intermediate_certs.front());
    chain.push_back(world.public_ca("globalsign").intermediate_certs.front());
    chain.push_back(world.make_self_signed("Sim Shadow Root X", "shadow-x", validity));
    add_endpoint(std::move(chain), w_no_path, 0.58,
                 "hybrid/nopath/root-and-mismatches");
  }

  // 19 servers present multiple distinct hybrid chains over the period
  // (§4.2): pair up 38 of the no-path endpoints onto 19 shared servers.
  {
    std::size_t paired = 0;
    for (std::size_t i = 0; i + 1 < endpoint_indices.size() && paired < 19; i += 2) {
      ServerEndpoint& first = scenario.endpoints[endpoint_indices[101 + i]];
      ServerEndpoint& second = scenario.endpoints[endpoint_indices[101 + i + 1]];
      // Same server (ip:port), different SNI virtual hosts — domains stay
      // distinct so the revisit scanner resolves each chain independently.
      second.ip = first.ip;
      second.port = first.port;
      ++paired;
    }
  }
}

// ---------------------------------------------------------------------------
// Revisit-epoch chains (§5).
// ---------------------------------------------------------------------------
void assign_revisit_chains(Scenario& scenario, const ScenarioConfig& config,
                           util::Rng& rng) {
  (void)config;
  PkiWorld& world = scenario.world;
  const util::TimeRange revisit_validity = {util::make_time(2024, 10, 1),
                                            util::make_time(2025, 1, 1)};

  // --- hybrid servers: 51 unreachable; of the 270 reachable, 231 now all
  // public (Let's Encrypt dominant), 4 all non-public, 35 still hybrid
  // (9 complete / 3 complete+extras / 23 no path).
  std::vector<std::size_t> hybrid_indices;
  for (std::size_t i = 0; i < scenario.endpoints.size(); ++i) {
    if (scenario.endpoints[i].label.rfind("hybrid/", 0) == 0) {
      hybrid_indices.push_back(i);
    }
  }
  util::Rng shuffle_rng = rng.fork(0x5e51);
  shuffle_rng.shuffle(hybrid_indices);

  std::size_t cursor = 0;
  const auto take = [&](std::size_t count) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < count && cursor < hybrid_indices.size();
         ++i, ++cursor) {
      out.push_back(hybrid_indices[cursor]);
    }
    return out;
  };

  for (const std::size_t index : take(51)) {
    scenario.endpoints[index].revisit_chain = std::nullopt;  // unreachable
  }
  std::size_t le_count = 0;
  for (const std::size_t index : take(231)) {
    ServerEndpoint& endpoint = scenario.endpoints[index];
    const std::string domain = endpoint.domain.empty()
                                   ? "re" + std::to_string(index) + ".sim-org.example"
                                   : endpoint.domain;
    if (endpoint.domain.empty()) endpoint.domain = domain;
    // ~91% migrate to Let's Encrypt, the rest to another public CA.
    const bool lets_encrypt = le_count < 210;
    ++le_count;
    endpoint.revisit_chain = world.issue_public_chain(
        lets_encrypt ? "lets-encrypt" : "digicert", domain, revisit_validity, false);
  }
  for (const std::size_t index : take(4)) {
    ServerEndpoint& endpoint = scenario.endpoints[index];
    netsim::PrivateCaHierarchy& hierarchy =
        world.make_enterprise_ca("Sim Holdout " + std::to_string(index), true);
    const std::string domain = endpoint.domain.empty()
                                   ? "ho" + std::to_string(index) + ".sim-org.example"
                                   : endpoint.domain;
    DistinguishedName subject;
    subject.add("CN", domain);
    chain::CertificateChain chain;
    chain.push_back(
        hierarchy.intermediate_ca->issue_leaf(subject, domain, revisit_validity));
    chain.push_back(*hierarchy.intermediate_cert);
    chain.push_back(hierarchy.root_cert);
    endpoint.revisit_chain = std::move(chain);
  }
  // 9 still-hybrid complete paths (reuse the Table 6 shape).
  for (const std::size_t index : take(9)) {
    ServerEndpoint& endpoint = scenario.endpoints[index];
    const std::string domain = endpoint.domain.empty()
                                   ? "sh" + std::to_string(index) + ".sim-org.example"
                                   : endpoint.domain;
    endpoint.revisit_chain =
        world.issue_sub_ca_chain("symantec-private", domain, revisit_validity);
  }
  // 3 still-hybrid with unnecessary certificates (the trio §5 validates with
  // Chrome and OpenSSL).
  for (const std::size_t index : take(3)) {
    ServerEndpoint& endpoint = scenario.endpoints[index];
    const std::string domain = endpoint.domain.empty()
                                   ? "sx" + std::to_string(index) + ".sim-org.example"
                                   : endpoint.domain;
    chain::CertificateChain chain =
        world.issue_public_chain("fpki", domain, revisit_validity, true);
    chain.push_back(world.make_self_signed("Sim Leftover", "leftover-" +
                                           std::to_string(index), revisit_validity));
    endpoint.revisit_chain = std::move(chain);
    endpoint.label += "+revisit-validator-case";
  }
  // The rest (23) remain no-path hybrids in 2024: a fresh localhost-style
  // self-signed leaf in front of an orphan public intermediate.
  while (cursor < hybrid_indices.size()) {
    ServerEndpoint& endpoint = scenario.endpoints[hybrid_indices[cursor]];
    chain::CertificateChain still_broken;
    still_broken.push_back(world.make_localhost_certificate(
        "revisit-" + std::to_string(hybrid_indices[cursor])));
    still_broken.push_back(
        world.public_ca("globalsign").intermediate_certs.front());
    endpoint.revisit_chain = std::move(still_broken);
    ++cursor;
  }

  // --- non-public servers: scannable ones (with a domain) stay non-public;
  // most single-cert servers upgrade to hierarchical multi-cert chains.
  std::size_t upgrade_counter = 0;
  for (ServerEndpoint& endpoint : scenario.endpoints) {
    if (endpoint.label.rfind("nonpub/", 0) != 0) continue;
    if (endpoint.label == "nonpub/outlier") {
      endpoint.revisit_chain = std::nullopt;
      continue;
    }
    if (endpoint.domain.empty()) {
      endpoint.revisit_chain = endpoint.chain;  // unreachable by name anyway
      continue;
    }
    const bool was_single = endpoint.chain.is_single();
    const bool was_self_signed = was_single && endpoint.chain.first_is_self_signed();

    double upgrade_probability = 0.0;
    if (was_single) {
      // Calibrated so the revisit lands near the paper's 79.40% multi-cert
      // share with the 39.00 / 53.44 / 7.56 history split.
      upgrade_probability = was_self_signed ? 0.68 : 0.94;
    }
    if (!was_single) {
      // Multi-cert servers refresh their hierarchy but stay multi-cert.
      endpoint.revisit_chain = endpoint.chain;
      continue;
    }
    if (!rng.bernoulli(upgrade_probability)) {
      endpoint.revisit_chain = endpoint.chain;  // still the single cert
      continue;
    }
    // Upgrade: a fresh private hierarchy; ~2.4% come out broken (97.61% of
    // the new multi-cert chains are complete matched paths).
    netsim::PrivateCaHierarchy& hierarchy = world.make_enterprise_ca(
        "Sim Upgraded " + std::to_string(upgrade_counter / 6), true);
    ++upgrade_counter;
    DistinguishedName subject;
    subject.add("CN", endpoint.domain);
    chain::CertificateChain chain;
    chain.push_back(hierarchy.intermediate_ca->issue_leaf_no_bc(
        subject, endpoint.domain, revisit_validity));
    if (rng.bernoulli(0.976)) {
      chain.push_back(*hierarchy.intermediate_cert);
      chain.push_back(hierarchy.root_cert);
    } else {
      chain.push_back(hierarchy.root_cert);  // missing intermediate: broken
    }
    endpoint.revisit_chain = std::move(chain);
  }
}

}  // namespace detail

}  // namespace certchain::datagen
