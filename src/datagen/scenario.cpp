#include "datagen/scenario.hpp"

#include <cmath>
#include <cstdio>
#include <optional>

#include "obs/run_context.hpp"
#include "util/hash.hpp"

namespace certchain::datagen {

using netsim::PkiWorld;
using netsim::ServerEndpoint;
using x509::DistinguishedName;

namespace {

std::string server_ip(std::size_t index) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "198.51.%zu.%zu", (index >> 8) & 0xFF,
                index & 0xFF);
  return buffer;
}

/// Weighted port sampler built from a Table 4 column.
std::uint16_t sample_port(util::Rng& rng,
                          std::initializer_list<std::pair<std::uint16_t, double>> table) {
  std::vector<double> weights;
  std::vector<std::uint16_t> ports;
  for (const auto& [port, weight] : table) {
    ports.push_back(port);
    weights.push_back(weight);
  }
  return ports[rng.pick_weighted(
      std::span<const double>(weights.data(), weights.size()))];
}

std::uint16_t nonpub_single_port(util::Rng& rng) {
  return sample_port(rng, {{443, 46.29}, {8888, 21.52}, {33854, 19.08},
                           {13000, 4.22}, {25, 1.30}, {9000, 3.0}, {8080, 2.5},
                           {10443, 2.09}});
}

std::uint16_t nonpub_multi_port(util::Rng& rng) {
  return sample_port(rng, {{443, 83.51}, {8531, 4.18}, {9093, 2.85}, {38881, 1.81},
                           {6443, 1.45}, {9443, 3.2}, {8443, 3.0}});
}

std::uint16_t interception_port(util::Rng& rng) {
  return sample_port(rng, {{8013, 35.40}, {4437, 25.14}, {14430, 16.34},
                           {443, 13.36}, {514, 3.53}, {9443, 3.1}, {8443, 3.13}});
}

/// Rounds a scaled count, keeping at least `minimum`.
std::size_t scaled(double value, double scale, std::size_t minimum = 1) {
  const auto count = static_cast<std::size_t>(std::llround(value * scale));
  return std::max(count, minimum);
}

}  // namespace

netsim::GeneratedLogs Scenario::generate_logs(obs::RunContext* obs) const {
  const netsim::CampusSimulator simulator(endpoints);
  if (obs == nullptr) return simulator.run(traffic);

  obs::StageTimer timer(*obs, "simulate");
  netsim::TrafficConfig instrumented = traffic;
  instrumented.metrics = &obs->metrics;
  return simulator.run(instrumented);
}

namespace detail {

// ---------------------------------------------------------------------------
// Public-DB-only endpoints (the Figure 1 backdrop: mode at chain length 2).
// ---------------------------------------------------------------------------
void add_public_endpoints(Scenario& scenario, const ScenarioConfig& config,
                          util::Rng& rng) {
  PkiWorld& world = scenario.world;
  const std::size_t count = scaled(240000.0, config.chain_scale, 200);
  const util::TimeRange validity = PkiWorld::default_leaf_validity();
  const char* ca_names[] = {"digicert", "sectigo",    "lets-encrypt", "godaddy",
                            "comodo",   "globalsign", "symantec",     "usertrust"};

  // Popularity budget: public traffic is ~14.5% of the corpus.
  const double per_endpoint_weight = 0.145 / static_cast<double>(count);

  for (std::size_t i = 0; i < count; ++i) {
    const std::string domain = "www" + std::to_string(i) + ".sim-public.example";
    const char* ca = ca_names[rng.next_below(std::size(ca_names))];

    // Realistic leaf lifetimes: ACME issuers rotate 90-day certificates,
    // traditional CAs issue up to the CA/B Forum 398-day ceiling. Issuance
    // is staggered so every certificate covers a slice of the window.
    const bool acme = std::string_view(ca) == "lets-encrypt";
    const util::SimTime lifetime =
        (acme ? 90 : 398) * util::kSecondsPerDay;
    const util::SimTime issue_at =
        util::study::collection_window().begin -
        rng.uniform_int(0, 60) * util::kSecondsPerDay;
    const util::TimeRange leaf_validity{issue_at, issue_at + lifetime};

    ServerEndpoint endpoint;
    endpoint.ip = server_ip(scenario.endpoints.size());
    endpoint.port = 443;
    endpoint.domain = domain;
    endpoint.popularity = per_endpoint_weight * rng.uniform(0.3, 3.0);
    endpoint.establish_probability = 0.985;
    endpoint.tls13_fraction = 0.25;
    endpoint.resumption_fraction = 0.2;  // busy public sites resume sessions
    endpoint.validation_status = "ok";
    endpoint.label = "public/standard";

    const double shape = rng.uniform();
    if (shape < 0.66) {
      // [leaf, intermediate] — root omitted (the dominant shape).
      endpoint.chain = world.issue_public_chain(ca, domain, leaf_validity, false);
    } else if (shape < 0.89) {
      // [leaf, intermediate, root].
      endpoint.chain = world.issue_public_chain(ca, domain, leaf_validity, true);
    } else if (shape < 0.95) {
      // Leaf alone (server misconfigured to omit intermediates).
      chain::CertificateChain full =
          world.issue_public_chain(ca, domain, leaf_validity, false);
      chain::CertificateChain leaf_only;
      leaf_only.push_back(full.first());
      endpoint.chain = std::move(leaf_only);
      endpoint.label = "public/leaf-only";
    } else {
      // Cross-signed delivery: leaf under USERTrust followed directly by the
      // AAA root — textual mismatch covered by the cross-sign registry.
      chain::CertificateChain cross =
          world.issue_public_chain("usertrust", domain, leaf_validity, false);
      cross.push_back(world.public_ca("sectigo").root_cert);
      endpoint.chain = std::move(cross);
      endpoint.label = "public/cross-signed";
    }
    endpoint.revisit_chain = endpoint.chain;  // stable through 2024
    scenario.endpoints.push_back(std::move(endpoint));
  }
}

// ---------------------------------------------------------------------------
// Non-public-DB-only endpoints (§4.3): singles (self-signed, localhost, DGA)
// plus multi-certificate private hierarchies, a complex-PKI cluster, a few
// broken chains, and the three Figure 1 length outliers.
// ---------------------------------------------------------------------------
void add_non_public_endpoints(Scenario& scenario, const ScenarioConfig& config,
                              util::Rng& rng) {
  PkiWorld& world = scenario.world;
  const util::TimeRange validity = PkiWorld::default_leaf_validity();

  // Paper scale: 429K chains; 78.10% single (94.19% of them self-signed).
  const std::size_t total = scaled(429000.0, config.chain_scale, 400);
  const auto single_count = static_cast<std::size_t>(total * 0.7810);
  const auto single_self_signed =
      static_cast<std::size_t>(single_count * 0.9419);
  const std::size_t single_distinct_all = single_count - single_self_signed;
  // The DGA cluster keeps a floor of 20 chains but can never exceed the
  // distinct-issuer budget (tiny scales would otherwise underflow).
  const std::size_t dga_count = std::min(
      single_distinct_all,
      std::max<std::size_t>(
          20, static_cast<std::size_t>(static_cast<double>(total) * 0.009)));
  const std::size_t single_distinct_misc = single_distinct_all - dga_count;
  const std::size_t multi_count = total - single_count;

  // Connection budget: non-public traffic is ~66% of the corpus; singles
  // carry 64.7% of it (140M of 216.47M).
  const double single_weight =
      0.66 * 0.647 / static_cast<double>(std::max<std::size_t>(single_count, 1));
  const double multi_weight =
      0.66 * 0.353 / static_cast<double>(std::max<std::size_t>(multi_count, 1));

  // --- single, self-signed --------------------------------------------------
  for (std::size_t i = 0; i < single_self_signed; ++i) {
    ServerEndpoint endpoint;
    endpoint.ip = server_ip(scenario.endpoints.size());
    endpoint.port = nonpub_single_port(rng);
    const double kind = rng.uniform();
    chain::CertificateChain chain;
    if (kind < 0.45) {
      chain.push_back(world.make_localhost_certificate("np-" + std::to_string(i)));
    } else {
      const std::string org = "Sim Appliance " + std::to_string(i % 400);
      chain.push_back(world.make_self_signed(
          org, "device-" + std::to_string(i) + ".internal", validity));
    }
    endpoint.chain = std::move(chain);
    // 86.70% of single-cert connections lack an SNI; half the servers are
    // IP-only and can never be rescanned by name (§5).
    if (rng.bernoulli(0.5)) {
      endpoint.domain = "host" + std::to_string(i) + ".sim-nonpub.example";
      endpoint.no_sni_fraction = 0.867;
    }
    endpoint.popularity = single_weight * rng.uniform(0.2, 4.0);
    endpoint.establish_probability = 0.78;
    endpoint.tls13_fraction = 0.0;
    endpoint.validation_status = "self signed certificate";
    endpoint.label = "nonpub/single-self-signed";
    scenario.endpoints.push_back(std::move(endpoint));
  }

  // --- single, DGA cluster ---------------------------------------------------
  for (std::size_t i = 0; i < dga_count; ++i) {
    ServerEndpoint endpoint;
    endpoint.ip = server_ip(scenario.endpoints.size());
    endpoint.port = nonpub_single_port(rng);
    chain::CertificateChain chain;
    chain.push_back(world.make_dga_certificate(rng));
    endpoint.chain = std::move(chain);
    endpoint.popularity = single_weight * 0.3;
    endpoint.establish_probability = 0.35;
    endpoint.tls13_fraction = 0.0;
    endpoint.no_sni_fraction = 1.0;
    endpoint.validation_status = "unable to get local issuer certificate";
    endpoint.label = "nonpub/single-dga";
    scenario.endpoints.push_back(std::move(endpoint));
  }

  // --- single, distinct issuer/subject (non-DGA) -----------------------------
  for (std::size_t i = 0; i < single_distinct_misc; ++i) {
    const std::string org = "Sim Gadget " + std::to_string(i);
    x509::Certificate issuer_less = world.make_self_signed(
        org, "ca." + std::to_string(i) + ".gadget.internal", validity);
    // Rewrite the issuer to a different internal name: issued by an unseen
    // private CA, delivered without it.
    DistinguishedName issuer;
    issuer.add("CN", "Sim Gadget Issuing CA " + std::to_string(i % 50))
        .add("O", org);
    issuer_less.issuer = issuer;

    ServerEndpoint endpoint;
    endpoint.ip = server_ip(scenario.endpoints.size());
    endpoint.port = nonpub_single_port(rng);
    chain::CertificateChain chain;
    chain.push_back(std::move(issuer_less));
    endpoint.chain = std::move(chain);
    if (rng.bernoulli(0.8)) {
      endpoint.domain = "gadget" + std::to_string(i) + ".sim-nonpub.example";
      endpoint.no_sni_fraction = 0.6;
    }
    endpoint.popularity = single_weight * rng.uniform(0.2, 2.0);
    endpoint.establish_probability = 0.6;
    endpoint.tls13_fraction = 0.0;
    endpoint.validation_status = "unable to get local issuer certificate";
    endpoint.label = "nonpub/single-distinct";
    scenario.endpoints.push_back(std::move(endpoint));
  }

  // --- multi-certificate private hierarchies ---------------------------------
  // 99.76% of multi-cert chains are complete matched paths; reserve a
  // handful for contains/no-path (Table 8) and ~12 for the Figure 7
  // complex-PKI cluster.
  const std::size_t broken_no_path = std::max<std::size_t>(1, multi_count / 470);
  const std::size_t broken_contains = std::max<std::size_t>(1, multi_count / 940);
  const std::size_t complex_cluster = 12;
  const std::size_t reserved = broken_no_path + broken_contains + complex_cluster;
  const std::size_t plain_multi = multi_count > reserved ? multi_count - reserved : 0;

  for (std::size_t i = 0; i < plain_multi; ++i) {
    const std::string org = "Sim Private Org " + std::to_string(i % (plain_multi / 3 + 1));
    netsim::PrivateCaHierarchy& hierarchy = world.make_enterprise_ca(org, true);
    const std::string domain = "svc" + std::to_string(i) + "." +
                               std::to_string(i % 97) + ".sim-corp.example";

    DistinguishedName subject;
    subject.add("CN", domain).add("O", org);
    // §4.3: non-public issuers routinely omit basicConstraints.
    x509::Certificate leaf =
        rng.bernoulli(0.5531)
            ? hierarchy.intermediate_ca->issue_leaf_no_bc(subject, domain, validity)
            : hierarchy.intermediate_ca->issue_leaf(subject, domain, validity);

    chain::CertificateChain chain;
    chain.push_back(std::move(leaf));
    x509::Certificate intermediate = *hierarchy.intermediate_cert;
    if (rng.bernoulli(0.7832)) intermediate.basic_constraints = x509::BasicConstraints{};
    chain.push_back(std::move(intermediate));
    if (rng.bernoulli(0.6)) {
      x509::Certificate root = hierarchy.root_cert;
      if (rng.bernoulli(0.7832)) root.basic_constraints = x509::BasicConstraints{};
      chain.push_back(std::move(root));
    }

    ServerEndpoint endpoint;
    endpoint.ip = server_ip(scenario.endpoints.size());
    endpoint.port = nonpub_multi_port(rng);
    if (rng.bernoulli(0.8)) {
      endpoint.domain = domain;
      endpoint.no_sni_fraction = 0.6;
    }
    endpoint.chain = std::move(chain);
    endpoint.popularity = multi_weight * rng.uniform(0.3, 3.0);
    endpoint.establish_probability = 0.92;
    endpoint.tls13_fraction = 0.0;
    endpoint.validation_status = "unable to get local issuer certificate";
    endpoint.label = "nonpub/multi-matched";
    scenario.endpoints.push_back(std::move(endpoint));
  }

  // Complex-PKI cluster (Figure 7): one private root, intermediate I1 issued
  // by the root, and I2..I4 issued by I1; chains [leaf, Ik, I1, root] link
  // I1 to three distinct intermediates.
  {
    netsim::PrivateCaHierarchy& mega = world.make_enterprise_ca("Sim MegaCorp", true);
    x509::CertificateAuthority& i1 = *mega.intermediate_ca;
    std::vector<x509::CertificateAuthority> subs;
    std::vector<x509::Certificate> sub_certs;
    for (int k = 2; k <= 4; ++k) {
      x509::CertificateAuthority sub(
          DistinguishedName::parse_or_die(
              "CN=Sim MegaCorp Issuing CA " + std::to_string(k) +
              ",O=Sim MegaCorp,C=US"),
          "megacorp-sub/" + std::to_string(k));
      sub_certs.push_back(
          i1.issue_intermediate(sub, {util::make_time(2016, 1, 1),
                                      util::make_time(2031, 1, 1)}));
      subs.push_back(std::move(sub));
    }
    for (std::size_t i = 0; i < complex_cluster; ++i) {
      const std::size_t branch = i % subs.size();
      const std::string domain =
          "mega" + std::to_string(i) + ".sim-megacorp.example";
      DistinguishedName subject;
      subject.add("CN", domain).add("O", "Sim MegaCorp");
      chain::CertificateChain chain;
      chain.push_back(subs[branch].issue_leaf_no_bc(subject, domain, validity));
      chain.push_back(sub_certs[branch]);
      chain.push_back(*mega.intermediate_cert);
      chain.push_back(mega.root_cert);

      ServerEndpoint endpoint;
      endpoint.ip = server_ip(scenario.endpoints.size());
      endpoint.port = nonpub_multi_port(rng);
      endpoint.domain = domain;
      endpoint.no_sni_fraction = 0.3;
      endpoint.chain = std::move(chain);
      endpoint.popularity = multi_weight;
      endpoint.establish_probability = 0.92;
      endpoint.tls13_fraction = 0.0;
      endpoint.validation_status = "unable to get local issuer certificate";
      endpoint.label = "nonpub/multi-complex";
      scenario.endpoints.push_back(std::move(endpoint));
    }
  }

  // Broken multi-cert chains (the 0.24% of Table 8).
  for (std::size_t i = 0; i < broken_no_path; ++i) {
    chain::CertificateChain chain;
    chain.push_back(world.make_self_signed("Sim Broken " + std::to_string(i),
                                           "a.broken.internal", validity));
    chain.push_back(world.make_self_signed("Sim Unrelated " + std::to_string(i),
                                           "b.broken.internal", validity));
    ServerEndpoint endpoint;
    endpoint.ip = server_ip(scenario.endpoints.size());
    endpoint.port = nonpub_multi_port(rng);
    endpoint.chain = std::move(chain);
    endpoint.popularity = multi_weight * 0.3;
    endpoint.establish_probability = 0.3;
    endpoint.tls13_fraction = 0.0;
    endpoint.label = "nonpub/multi-no-path";
    scenario.endpoints.push_back(std::move(endpoint));
  }
  for (std::size_t i = 0; i < broken_contains; ++i) {
    netsim::PrivateCaHierarchy& hierarchy =
        world.make_enterprise_ca("Sim Semi Broken " + std::to_string(i), true);
    const std::string domain = "semi" + std::to_string(i) + ".sim-corp.example";
    DistinguishedName subject;
    subject.add("CN", domain);
    chain::CertificateChain chain;
    chain.push_back(hierarchy.intermediate_ca->issue_leaf_no_bc(subject, domain, validity));
    chain.push_back(*hierarchy.intermediate_cert);
    chain.push_back(world.make_self_signed("Sim Stray " + std::to_string(i),
                                           "stray.internal", validity));
    ServerEndpoint endpoint;
    endpoint.ip = server_ip(scenario.endpoints.size());
    endpoint.port = nonpub_multi_port(rng);
    endpoint.chain = std::move(chain);
    endpoint.popularity = multi_weight * 0.3;
    endpoint.establish_probability = 0.6;
    endpoint.tls13_fraction = 0.0;
    endpoint.label = "nonpub/multi-contains";
    scenario.endpoints.push_back(std::move(endpoint));
  }

  // Figure 1 length outliers: 3,822 / 921 / 41 certificates, each seen once
  // in an unestablished connection.
  if (config.include_length_outliers) {
    for (const std::size_t length : {std::size_t{3822}, std::size_t{921},
                                     std::size_t{41}}) {
      chain::CertificateChain chain;
      for (std::size_t i = 0; i < length; ++i) {
        chain.push_back(world.make_self_signed(
            "Sim Outlier", "junk-" + std::to_string(length) + "-" + std::to_string(i),
            validity));
      }
      ServerEndpoint endpoint;
      endpoint.ip = server_ip(scenario.endpoints.size());
      endpoint.port = 443;
      endpoint.chain = std::move(chain);
      endpoint.popularity = 0.0;  // only the coverage sweep reaches it
      endpoint.establish_probability = 0.0;
      endpoint.tls13_fraction = 0.0;
      endpoint.label = "nonpub/outlier";
      scenario.endpoints.push_back(std::move(endpoint));
    }
  }
}

// ---------------------------------------------------------------------------
// TLS interception endpoints (Table 1): 80 vendors forging chains for real
// public domains; the genuine certificates are CT-logged so the detector's
// cross-reference finds the issuer mismatch.
// ---------------------------------------------------------------------------
void add_interception_endpoints(Scenario& scenario, const ScenarioConfig& config,
                                util::Rng& rng) {
  PkiWorld& world = scenario.world;
  const util::TimeRange validity = PkiWorld::default_leaf_validity();

  // Vendor directory — the analysis-side "manual investigation" lookup.
  for (netsim::InterceptionDeployment& deployment : world.interception()) {
    const core::VendorInfo info{
        deployment.vendor.name,
        std::string(interception_category_name(deployment.vendor.category))};
    scenario.vendors[deployment.intermediate_ca.name().canonical()] = info;
    scenario.vendors[deployment.root_ca.name().canonical()] = info;
  }

  // Category connection shares (Table 1 %) and client-IP budgets scaled to
  // the pool (paper: 17,915 / 4,787 / 35 / 25 / 14 / 73).
  struct CategoryPlan {
    netsim::InterceptionCategory category;
    double connection_share;   // of interception traffic
    std::size_t clients;
    std::size_t chains_per_vendor;
  };
  const CategoryPlan plans[] = {
      {netsim::InterceptionCategory::kSecurityNetwork, 0.9474, 1790, 0},
      {netsim::InterceptionCategory::kBusinessCorporate, 0.0499, 479, 0},
      {netsim::InterceptionCategory::kHealthEducation, 0.0002, 4, 0},
      {netsim::InterceptionCategory::kGovernmentPublic, 0.0024, 3, 0},
      {netsim::InterceptionCategory::kBankFinance, 0.00004, 2, 0},
      {netsim::InterceptionCategory::kOther, 0.00006, 7, 0},
  };

  // Unique interception chains: paper scale 301K with 13.24% single-cert.
  const std::size_t total_chains = scaled(301000.0, config.chain_scale, 300);
  // Distribute chains: Security&Network carries most unique chains too.
  const double chain_shares[] = {0.62, 0.215, 0.066, 0.04, 0.02, 0.039};

  const netsim::ClientPool pool = netsim::make_campus_client_pool(config.client_count);
  std::size_t client_cursor = 0;
  const double interception_traffic_share = 0.13;  // of all connections

  std::size_t vendor_begin = 0;
  for (std::size_t plan_index = 0; plan_index < std::size(plans); ++plan_index) {
    const CategoryPlan& plan = plans[plan_index];
    // Vendors of this category (they are contiguous in builtin order).
    std::vector<netsim::InterceptionDeployment*> vendors;
    for (netsim::InterceptionDeployment& deployment : world.interception()) {
      if (deployment.vendor.category == plan.category) vendors.push_back(&deployment);
    }
    (void)vendor_begin;

    // Client slice for this category.
    std::vector<std::string> category_clients;
    for (std::size_t c = 0; c < plan.clients && client_cursor < pool.ips.size();
         ++c, ++client_cursor) {
      category_clients.push_back(pool.ips[client_cursor]);
    }
    if (category_clients.empty()) category_clients.push_back(pool.ips[0]);

    const std::size_t category_chains = std::max<std::size_t>(
        vendors.size(),
        static_cast<std::size_t>(total_chains * chain_shares[plan_index]));
    const double per_chain_weight =
        interception_traffic_share * plan.connection_share /
        static_cast<double>(category_chains);

    for (std::size_t i = 0; i < category_chains; ++i) {
      netsim::InterceptionDeployment& deployment = *vendors[i % vendors.size()];
      ServerEndpoint endpoint;
      endpoint.ip = server_ip(scenario.endpoints.size());
      endpoint.port = interception_port(rng);
      endpoint.restricted_clients = category_clients;
      endpoint.popularity = per_chain_weight * rng.uniform(0.3, 3.0);
      endpoint.establish_probability = 0.97;
      endpoint.tls13_fraction = 0.0;
      endpoint.no_sni_fraction = 0.0;
      endpoint.validation_status = "unable to get local issuer certificate";

      // The first round-robin pass gives every vendor one forged chain with
      // an SNI, so the CT-mismatch detector can always confirm the vendor
      // (a vendor whose only chains are SNI-less singles would be invisible
      // to the paper's method).
      const double kind = i < vendors.size() ? 1.0 : rng.uniform();
      if (kind < 0.1324) {
        // Single-certificate middlebox chains; 93.43% self-signed. Each
        // appliance instance generates its own certificate under the
        // vendor's CA name, so the chains are distinct per endpoint.
        const std::string instance_seed =
            "appliance/" + deployment.vendor.name + "/" + std::to_string(i);
        const auto keys = crypto::generate_keypair(
            crypto::KeyAlgorithm::kRsa2048, instance_seed);
        x509::CertificateBuilder builder;
        builder.serial(util::digest256_hex(instance_seed).substr(0, 16))
            .validity(validity);
        chain::CertificateChain chain;
        if (rng.bernoulli(0.9343)) {
          builder.subject(deployment.root_ca.name()).ca(true);
          chain.push_back(builder.self_sign(keys.private_key));
        } else {
          builder.subject(deployment.intermediate_ca.name())
              .issuer(deployment.root_ca.name())
              .public_key(keys.public_key)
              .ca(true);
          chain.push_back(builder.sign_with(deployment.root_ca.private_key()));
        }
        endpoint.chain = std::move(chain);
        endpoint.label = "interception/single";
      } else {
        // Forged 3-cert chain for a "real" domain whose genuine certificate
        // is CT-logged under a public issuer.
        const std::string domain =
            "site" + std::to_string(scenario.endpoints.size()) + ".sim-web.example";
        (void)world.issue_public_chain("digicert", domain, validity, false);
        endpoint.domain = domain;
        const double sub_kind = rng.uniform();
        if (sub_kind < 0.9894) {
          endpoint.chain = deployment.forge_chain(domain, validity);
          endpoint.label = "interception/forged";
        } else if (sub_kind < 0.9894 + 0.008) {
          // No matched path: forged leaf followed by an unrelated vendor's
          // intermediate (middlebox misconfiguration).
          chain::CertificateChain broken = deployment.forge_chain(domain, validity);
          chain::CertificateChain mixed;
          mixed.push_back(broken.first());
          const std::size_t other =
              (i + 1) % world.interception().size();
          mixed.push_back(world.interception()[other].intermediate_cert);
          endpoint.chain = std::move(mixed);
          endpoint.label = "interception/no-path";
          endpoint.establish_probability = 0.5;
        } else {
          // Contains a matched path plus a stray root appended.
          chain::CertificateChain extra = deployment.forge_chain(domain, validity);
          const std::size_t other = (i + 7) % world.interception().size();
          extra.push_back(world.interception()[other].root_cert);
          endpoint.chain = std::move(extra);
          endpoint.label = "interception/contains";
        }
      }
      endpoint.revisit_chain = endpoint.chain;
      scenario.endpoints.push_back(std::move(endpoint));
    }
  }

  // Figure 8 complex cluster: one vendor's root signs several inspection
  // intermediates that are chained through a shared hub intermediate.
  {
    netsim::InterceptionDeployment& deployment = world.interception().front();
    std::vector<x509::CertificateAuthority> spokes;
    std::vector<x509::Certificate> spoke_certs;
    for (int k = 0; k < 3; ++k) {
      x509::CertificateAuthority spoke(
          DistinguishedName::parse_or_die(
              "CN=" + deployment.vendor.name + " Regional CA " + std::to_string(k) +
              ",O=" + deployment.vendor.name + ",C=US"),
          "intercept-spoke/" + std::to_string(k));
      spoke_certs.push_back(deployment.intermediate_ca.issue_intermediate(
          spoke, {util::make_time(2016, 1, 1), util::make_time(2031, 1, 1)}));
      spokes.push_back(std::move(spoke));
    }
    for (std::size_t i = 0; i < 9; ++i) {
      const std::size_t branch = i % spokes.size();
      const std::string domain =
          "deep" + std::to_string(i) + ".sim-web.example";
      (void)world.issue_public_chain("globalsign", domain, validity, false);
      DistinguishedName subject;
      subject.add("CN", domain);
      chain::CertificateChain chain;
      chain.push_back(spokes[branch].issue_leaf(subject, domain, validity));
      chain.push_back(spoke_certs[branch]);
      chain.push_back(deployment.intermediate_cert);
      chain.push_back(deployment.root_cert);

      ServerEndpoint endpoint;
      endpoint.ip = server_ip(scenario.endpoints.size());
      endpoint.port = interception_port(rng);
      endpoint.domain = domain;
      endpoint.restricted_clients = {netsim::make_campus_client_pool(
          config.client_count).ips[i % config.client_count]};
      endpoint.chain = std::move(chain);
      endpoint.popularity = 0.0005;
      endpoint.establish_probability = 0.97;
      endpoint.tls13_fraction = 0.0;
      endpoint.label = "interception/complex";
      scenario.endpoints.push_back(std::move(endpoint));
    }
    // The spoke CAs also intercept: register them in the directory so the
    // detector can attribute their forged leaves.
    for (const x509::CertificateAuthority& spoke : spokes) {
      scenario.vendors[spoke.name().canonical()] = core::VendorInfo{
          deployment.vendor.name,
          std::string(interception_category_name(deployment.vendor.category))};
    }
  }
}

}  // namespace detail

std::unique_ptr<Scenario> build_study_scenario(const ScenarioConfig& config,
                                               obs::RunContext* obs) {
  auto scenario = std::make_unique<Scenario>(config.seed);
  util::Rng rng(config.seed ^ 0xD47A6E5ULL);

  std::optional<obs::StageTimer> scenario_timer;
  if (obs != nullptr) {
    scenario_timer.emplace(*obs, "scenario");
    obs->set_config("scenario.seed", config.seed);
    obs->set_config("scenario.chain_scale", std::to_string(config.chain_scale));
    obs->set_config("scenario.total_connections", config.total_connections);
    obs->set_config("scenario.client_count",
                    static_cast<std::uint64_t>(config.client_count));
  }
  // Runs one population builder under its own span and counts the endpoints
  // it appended.
  const auto build_population = [&](const char* name, auto&& builder) {
    std::optional<obs::StageTimer> timer;
    if (obs != nullptr) timer.emplace(*obs, std::string("datagen.") + name);
    const std::size_t before = scenario->endpoints.size();
    builder(*scenario, config, rng);
    if (obs != nullptr) {
      obs->metrics.count(std::string("datagen.endpoints.") + name,
                         scenario->endpoints.size() - before);
    }
  };
  build_population("public", detail::add_public_endpoints);
  build_population("non_public", detail::add_non_public_endpoints);
  build_population("interception", detail::add_interception_endpoints);
  build_population("hybrid", detail::add_hybrid_endpoints);
  detail::assign_revisit_chains(*scenario, config, rng);
  if (obs != nullptr) {
    obs->metrics.count("datagen.endpoints", scenario->endpoints.size());
  }

  scenario->traffic.connections = config.total_connections;
  scenario->traffic.window = util::study::collection_window();
  scenario->traffic.client_count = config.client_count;
  scenario->traffic.seed = config.seed;
  scenario->traffic.ensure_coverage = true;
  return scenario;
}

}  // namespace certchain::datagen
