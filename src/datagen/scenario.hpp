// Calibrated study corpus generation.
//
// Builds the full simulated campus scenario: the PKI world, a server
// population whose chain structures mirror the paper's composition, the
// interception deployments, the vendor directory (the "manual
// investigation" lookup), and the revisit-epoch chains. Population sizes
// follow the paper with a configurable scale factor for the large
// categories, while the small exact counts are kept exact:
//
//   - hybrid chains: exactly 321 = 36 complete (26 non-pub->pub per Table 6
//     + 10 pub->private) + 70 contains-path (14 Fake-LE + Athenz + enterprise
//     appends + leading foreign leaves, App. F.2) + 215 no-path in the
//     Table 7 split 108/13/61/27/5/1;
//   - interception: exactly 80 issuers in Table 1's category sizes;
//   - the three Figure 1 length outliers (3,822 / 921 / 41), each delivered
//     in exactly one unestablished connection;
//   - large categories (public-only, non-public-DB-only, interception
//     chains) scaled by `chain_scale` from the paper's 429K / 301K with the
//     structural fractions preserved (78.10% single, 94.19% self-signed,
//     99.76% matched paths, ...).
//
// Everything is deterministic in `seed`.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/interception.hpp"
#include "netsim/endpoint.hpp"
#include "netsim/pki_world.hpp"
#include "netsim/simulator.hpp"

namespace certchain::obs {
struct RunContext;
}  // namespace certchain::obs

namespace certchain::datagen {

struct ScenarioConfig {
  std::uint64_t seed = 20200901;

  /// Scale for the large chain populations (1.0 would reproduce the paper's
  /// absolute counts; the default keeps runtimes laptop-friendly).
  double chain_scale = 1.0 / 200.0;

  /// Total TLS connections to synthesize across all categories.
  std::uint64_t total_connections = 120000;

  /// NAT pool size.
  std::size_t client_count = 5000;

  /// Include the three giant outlier chains (slow to build at ~4.8k
  /// certificates; tests that don't need Figure 1 can switch them off).
  bool include_length_outliers = true;
};

/// The generated world. PkiWorld owns the trust stores / CT logs / registry
/// the analysis needs; endpoints are consumed by CampusSimulator and the
/// ActiveScanner.
struct Scenario {
  explicit Scenario(std::uint64_t seed) : world(seed) {}

  netsim::PkiWorld world;
  std::vector<netsim::ServerEndpoint> endpoints;
  core::VendorDirectory vendors;
  netsim::TrafficConfig traffic;

  /// Convenience: runs the simulator over the endpoints. With telemetry
  /// attached, generation runs under a "simulate" span and reports
  /// `netsim.*` counters.
  netsim::GeneratedLogs generate_logs(obs::RunContext* obs = nullptr) const;
};

/// Builds the full study scenario. With telemetry attached, the build runs
/// under a "scenario" span with one child span per endpoint-population
/// builder, and per-population endpoint counts land as `datagen.*` counters.
std::unique_ptr<Scenario> build_study_scenario(const ScenarioConfig& config = {},
                                               obs::RunContext* obs = nullptr);

/// Internal builders, exposed for targeted tests and benches. Each appends
/// endpoints labeled with its structural intent.
namespace detail {
void add_public_endpoints(Scenario& scenario, const ScenarioConfig& config,
                          util::Rng& rng);
void add_non_public_endpoints(Scenario& scenario, const ScenarioConfig& config,
                              util::Rng& rng);
void add_interception_endpoints(Scenario& scenario, const ScenarioConfig& config,
                                util::Rng& rng);
void add_hybrid_endpoints(Scenario& scenario, const ScenarioConfig& config,
                          util::Rng& rng);
void assign_revisit_chains(Scenario& scenario, const ScenarioConfig& config,
                           util::Rng& rng);
}  // namespace detail

}  // namespace certchain::datagen
