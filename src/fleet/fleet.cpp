#include "fleet/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>

#include "obs/metrics.hpp"
#include "scanner/scanner.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "zeek/joiner.hpp"
#include "zeek/log_io.hpp"
#include "zeek/records.hpp"

namespace certchain::fleet {

namespace {

/// One deduplicated scan target.
struct Target {
  std::string name;   // "domain:port" or "ip:port"
  std::string domain; // empty on the IP route
  std::string ip;
  std::uint16_t port = 443;
};

std::vector<Target> build_targets(
    const std::vector<netsim::ServerEndpoint>& population) {
  std::vector<Target> targets;
  targets.reserve(population.size());
  std::set<std::string> seen;
  for (const netsim::ServerEndpoint& endpoint : population) {
    Target target;
    target.domain = endpoint.domain;
    target.ip = endpoint.ip;
    target.port = endpoint.port;
    const std::string& host = endpoint.domain.empty() ? endpoint.ip : endpoint.domain;
    target.name = host + ":" + std::to_string(endpoint.port);
    if (seen.insert(target.name).second) targets.push_back(std::move(target));
  }
  return targets;
}

}  // namespace

ScanFleet::ScanFleet(FleetConfig config, const truststore::TrustStoreSet& stores,
                     obs::MetricsRegistry* metrics)
    : config_(std::move(config)),
      stores_(&stores),
      metrics_(metrics),
      pool_(std::max<std::size_t>(1, config_.workers)) {}

ScanFleet::~ScanFleet() = default;

std::uint64_t ScanFleet::acquire_token(const std::string& target,
                                       std::uint64_t now_ms) {
  const double rate = std::max(config_.rate.tokens_per_second, 1e-9);
  const double burst = std::max(config_.rate.burst, 1.0);
  Bucket& bucket = buckets_[target];
  if (!bucket.primed) {
    bucket.primed = true;
    bucket.tokens = burst;
    bucket.last_ms = now_ms;
  }
  if (now_ms > bucket.last_ms) {
    const double refill =
        static_cast<double>(now_ms - bucket.last_ms) * rate / 1000.0;
    bucket.tokens = std::min(burst, bucket.tokens + refill);
    bucket.last_ms = now_ms;
  }
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return 0;
  }
  // Not enough tokens: the scan waits (virtually) until one accrues.
  const double deficit = 1.0 - bucket.tokens;
  const auto wait_ms =
      static_cast<std::uint64_t>(std::ceil(deficit * 1000.0 / rate));
  bucket.tokens = 0.0;
  bucket.last_ms = now_ms + wait_ms;
  return wait_ms;
}

EpochOutcome ScanFleet::run_epoch(
    const std::vector<netsim::ServerEndpoint>& population,
    netsim::FaultPlan& plan) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint32_t epoch_index = static_cast<std::uint32_t>(epoch_);
  plan.set_epoch(epoch_index);

  const std::vector<Target> targets = build_targets(population);
  const scanner::ActiveScanner scanner(population);

  EpochOutcome outcome;
  const std::uint64_t epoch_start_ms =
      static_cast<std::uint64_t>(epoch_) * config_.interval_ms;
  std::vector<std::uint64_t> waits(targets.size(), 0);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    waits[i] = acquire_token(targets[i].name, epoch_start_ms);
    if (waits[i] > 0) {
      ++outcome.rate_limited;
      outcome.rate_wait_ms += waits[i];
    }
  }

  // One ResilientScanner per target, jitter-seeded from (fleet seed, epoch,
  // target): results do not depend on worker count or chunk boundaries.
  std::vector<scanner::ResilientScanResult> results(targets.size());
  std::vector<scanner::ScanLedger> ledgers(targets.size());
  const std::size_t chunks =
      std::max<std::size_t>(1, std::min(targets.size(), config_.workers * 4));
  par::parallel_for_chunks(
      &pool_, targets.size(), chunks,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const Target& target = targets[i];
          scanner::RetryPolicy policy = config_.retry;
          policy.jitter_seed = config_.seed ^ util::stable_salt(target.name) ^
                               (0x9E3779B97F4A7C15ULL * (epoch_ + 1));
          scanner::ResilientScanner resilient(scanner, plan, policy, nullptr);
          results[i] = target.domain.empty()
                           ? resilient.scan_ip(target.ip, target.port)
                           : resilient.scan_domain(target.domain, target.port);
          results[i].elapsed_ms += static_cast<std::uint32_t>(waits[i]);
          ledgers[i] = resilient.ledger();
        }
      });

  std::vector<std::pair<std::string, scanner::ResilientScanResult>> scans;
  scans.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    outcome.ledger.merge(ledgers[i]);
    scans.emplace_back(targets[i].name, results[i]);
  }

  // Synthesize the Zeek view of this campaign: one SSL row per reachable
  // target, one X509 row per never-before-seen certificate (fleet-wide
  // registry, mirroring the simulator's per-run fuid registry).
  const util::SimTime ts =
      config_.base_ts +
      static_cast<util::SimTime>(epoch_) *
          std::max<util::SimTime>(1, config_.interval_ms / 1000);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const scanner::ResilientScanResult& result = results[i];
    if (!result.reachable()) continue;
    const Target& target = targets[i];

    zeek::SslLogRecord ssl;
    ssl.ts = ts;
    ssl.uid = util::zeek_style_conn_uid(conn_counter_, config_.seed);
    ssl.id_orig_h = config_.orig_h;
    ssl.id_orig_p = static_cast<std::uint16_t>(40000 + (conn_counter_ % 20000));
    ++conn_counter_;
    ssl.id_resp_h = target.ip;
    ssl.id_resp_p = target.port;
    ssl.version = "TLSv12";
    ssl.cipher = "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256";
    ssl.resumed = false;
    ssl.established = true;
    if (!target.domain.empty()) ssl.server_name = target.domain;

    const chain::CertificateChain& chain = result.scan.chain;
    for (const x509::Certificate& cert : chain) {
      const std::string fingerprint = cert.fingerprint();
      auto it = fuid_by_fingerprint_.find(fingerprint);
      if (it == fuid_by_fingerprint_.end()) {
        const std::string fuid = util::zeek_style_fuid(fingerprint);
        it = fuid_by_fingerprint_.emplace(fingerprint, fuid).first;
        outcome.x509_rows.push_back(
            zeek::render_x509_row(zeek::record_from_certificate(cert, ts, fuid)));
      }
      ssl.cert_chain_fuids.push_back(it->second);
    }
    if (!chain.empty()) {
      ssl.subject = chain.first().subject.to_string();
      ssl.issuer = chain.first().issuer.to_string();
    }
    outcome.ssl_rows.push_back(zeek::render_ssl_row(ssl));
  }

  outcome.summary = core::summarize_epoch(epoch_, scans, outcome.ledger, *stores_);
  cumulative_.merge(outcome.ledger);
  summaries_.push_back(outcome.summary);
  ++epoch_;

  if (metrics_ != nullptr) {
    metrics_->count("fleet.epochs_completed");
    metrics_->count("fleet.targets.scanned", outcome.ledger.targets);
    metrics_->count("fleet.targets.failed", outcome.ledger.failures);
    metrics_->count("fleet.targets.salvaged", outcome.ledger.salvaged);
    metrics_->count("fleet.rate.limited", outcome.rate_limited);
    metrics_->count("fleet.rate.wait_ms", outcome.rate_wait_ms);
    metrics_->count("fleet.rows.ssl", outcome.ssl_rows.size());
    metrics_->count("fleet.rows.x509", outcome.x509_rows.size());
    for (const auto& result : results) {
      metrics_->observe("fleet.scan.virtual_ms",
                        static_cast<double>(result.elapsed_ms));
    }
    const auto wall_end = std::chrono::steady_clock::now();
    metrics_->observe_timing(
        "fleet.epoch.ms",
        std::chrono::duration<double, std::milli>(wall_end - wall_start).count());
  }
  return outcome;
}

}  // namespace certchain::fleet
