// The continuous revisit fleet (ROADMAP: multi-epoch active re-scans).
//
// A ScanFleet re-scans a simulated server population on a schedule: one
// `run_epoch` call per scheduled epoch, each against whatever population
// view the caller supplies (typically datagen::EpochDrifter output) under a
// seeded netsim::FaultPlan. Inside an epoch the fleet
//
//   - rate-limits per target with token buckets over the fleet's virtual
//     clock (politeness: a target contacted faster than its bucket refills
//     charges a virtual wait, never a wall-clock one);
//   - scans concurrently on a par::ThreadPool, one ResilientScanner per
//     target with a target-derived jitter seed, so results are byte-stable
//     no matter how many workers run or how chunks land;
//   - folds results into a core::EpochSummary plus Zeek SSL/X509 body rows
//     rendered through the same writers the simulator uses — feeding the
//     rows through svc ingest_append reproduces, byte for byte, a batch
//     run over the concatenated epochs (proven by the Fleet differential
//     suite);
//   - accounts every movement in per-epoch and cumulative ScanLedgers and
//     mirrors them as `fleet.*` metrics.
//
// Determinism: same config seed + same fault plan + same populations ⇒
// byte-identical summaries, rows, and ledgers across runs and thread
// counts. Only `fleet.epoch.ms` (wall time) varies.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/epoch_delta.hpp"
#include "netsim/endpoint.hpp"
#include "netsim/faults.hpp"
#include "par/thread_pool.hpp"
#include "scanner/resilient_scanner.hpp"
#include "truststore/trust_store.hpp"
#include "util/time.hpp"

namespace certchain::obs {
class MetricsRegistry;
}  // namespace certchain::obs

namespace certchain::fleet {

/// Per-target token bucket knobs. Tokens refill continuously at
/// `tokens_per_second` up to `burst`; each scan costs one token.
struct RateLimit {
  double tokens_per_second = 20.0;
  double burst = 2.0;
};

struct FleetConfig {
  std::size_t workers = 4;
  /// Virtual spacing between epoch starts (drives bucket refill and row
  /// timestamps; epochs never sleep wall-clock time).
  std::uint32_t interval_ms = 60000;
  RateLimit rate;
  scanner::RetryPolicy retry;
  std::uint64_t seed = 20241101;
  /// Timestamp of epoch 0's rows; epoch e stamps base_ts + e·interval.
  util::SimTime base_ts = 1730419200;  // 2024-11-01 00:00:00 UTC
  /// Source address the synthesized SSL rows carry.
  std::string orig_h = "10.99.0.1";
};

/// Everything one completed epoch produced.
struct EpochOutcome {
  core::EpochSummary summary;
  scanner::ScanLedger ledger;          // this epoch's share of the accounting
  std::vector<std::string> ssl_rows;   // Zeek body rows, no trailing newline
  std::vector<std::string> x509_rows;  // one per first-seen certificate
  std::uint64_t rate_limited = 0;      // scans that waited on their bucket
  std::uint64_t rate_wait_ms = 0;      // total virtual wait
};

class ScanFleet {
 public:
  ScanFleet(FleetConfig config, const truststore::TrustStoreSet& stores,
            obs::MetricsRegistry* metrics = nullptr);
  ~ScanFleet();

  /// Scans one epoch of the population under `plan` (the plan's epoch is set
  /// to this campaign's index, so fault draws are independent per epoch).
  EpochOutcome run_epoch(const std::vector<netsim::ServerEndpoint>& population,
                         netsim::FaultPlan& plan);

  std::size_t epochs_completed() const { return epoch_; }
  const scanner::ScanLedger& ledger() const { return cumulative_; }
  const std::vector<core::EpochSummary>& summaries() const { return summaries_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    std::uint64_t last_ms = 0;
    bool primed = false;
  };

  /// Charges one token at virtual time `now_ms`; returns the wait in ms.
  std::uint64_t acquire_token(const std::string& target, std::uint64_t now_ms);

  FleetConfig config_;
  const truststore::TrustStoreSet* stores_;
  obs::MetricsRegistry* metrics_;
  par::ThreadPool pool_;

  std::size_t epoch_ = 0;
  scanner::ScanLedger cumulative_;
  std::vector<core::EpochSummary> summaries_;
  std::map<std::string, Bucket> buckets_;
  /// Fleet-wide first-seen registry: certificates emit one X509 row ever,
  /// exactly like the simulator's per-run fuid registry.
  std::map<std::string, std::string> fuid_by_fingerprint_;
  std::uint64_t conn_counter_ = 0;
};

}  // namespace certchain::fleet
