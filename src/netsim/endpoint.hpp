// Server endpoint model for the campus simulator.
//
// Every TLS server the campus population talks to is a ServerEndpoint: an
// ip:port, an optional domain (SNI), the certificate chain it delivered
// during the collection window, and an optional second-epoch chain for the
// November-2024 revisit (§5). Population construction — how many endpoints
// of each structural kind exist and with what chains — lives in src/datagen;
// this header only defines the shapes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chain/chain.hpp"
#include "util/time.hpp"

namespace certchain::netsim {

struct ServerEndpoint {
  std::string ip;
  std::uint16_t port = 443;
  /// Primary domain; empty for IP-only services (a large share of
  /// non-public-DB-only traffic carries no SNI, §4.3).
  std::string domain;

  /// Chain delivered during the 2020-21 collection window, leaf first.
  chain::CertificateChain chain;

  /// Chain delivered to the 2024 active scan; nullopt = server unreachable
  /// at revisit time (the paper reached 270 of 321 hybrid servers).
  std::optional<chain::CertificateChain> revisit_chain;

  /// Relative connection volume (zipf-ish weights set by datagen).
  double popularity = 1.0;

  /// Probability a connection to this server completes the handshake —
  /// calibrated by datagen from the chain's structural class (the paper's
  /// §4.2 establishment rates). The client-mix story behind the number is
  /// exercised separately by the validation benches.
  double establish_probability = 0.95;

  /// Fraction of connections that omit SNI.
  double no_sni_fraction = 0.0;

  /// Fraction of connections negotiated as TLS 1.3 (certificates encrypted;
  /// such connections appear in SSL.log without cert_chain_fuids, §6.3).
  double tls13_fraction = 0.25;

  /// Fraction of connections that resume a previous session (abbreviated
  /// handshake: no certificates on the wire, `resumed=T` in SSL.log).
  double resumption_fraction = 0.0;

  /// Non-empty: only these client IPs ever reach this endpoint (used for
  /// interception deployments, which affect specific client machines).
  std::vector<std::string> restricted_clients;

  /// What Zeek's validation column reports for the delivered chain.
  std::string validation_status = "unable to get local issuer certificate";

  /// Free-form datagen tag recording the intended structural class, e.g.
  /// "hybrid/complete/nonpub-to-pub" — used by tests to check the analyzer
  /// recovers the intended class, never read by the pipeline itself.
  std::string label;
};

/// The simulated client population behind campus NAT.
struct ClientPool {
  std::vector<std::string> ips;
};

/// Builds a deterministic pool of `count` campus client IPs ("10.x.y.z").
ClientPool make_campus_client_pool(std::size_t count);

}  // namespace certchain::netsim
