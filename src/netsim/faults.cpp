#include "netsim/faults.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace certchain::netsim {

namespace {

double clamp01(double value) { return std::clamp(value, 0.0, 1.0); }

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kConnectTimeout: return "connect-timeout";
    case FaultKind::kConnectionReset: return "connection-reset";
    case FaultKind::kTruncatedHandshake: return "truncated-handshake";
    case FaultKind::kByteCorruption: return "byte-corruption";
    case FaultKind::kTransientUnreachable: return "transient-unreachable";
    case FaultKind::kPersistentUnreachable: return "persistent-unreachable";
    case FaultKind::kSlowResponse: return "slow-response";
  }
  return "unknown";
}

double FaultRates::attempt_total() const {
  return clamp01(connect_timeout) + clamp01(connection_reset) +
         clamp01(truncated_handshake) + clamp01(byte_corruption) +
         clamp01(transient_unreachable) + clamp01(slow_response);
}

bool FaultRates::any() const {
  return attempt_total() > 0.0 || clamp01(persistent_unreachable) > 0.0;
}

FaultRates FaultRates::uniform(double r) {
  FaultRates rates;
  rates.connect_timeout = r;
  rates.connection_reset = r;
  rates.truncated_handshake = r;
  rates.byte_corruption = r;
  rates.transient_unreachable = r;
  rates.persistent_unreachable = r;
  rates.slow_response = r;
  return rates;
}

bool FaultPlan::enabled() const {
  if (rates_.any()) return true;
  for (const auto& [target, rates] : overrides_) {
    if (rates.any()) return true;
  }
  return false;
}

const FaultRates& FaultPlan::rates_for(std::string_view target) const {
  const auto it = overrides_.find(target);
  return it == overrides_.end() ? rates_ : it->second;
}

FaultEvent FaultPlan::decide(std::string_view target, std::uint32_t attempt) const {
  FaultEvent event;
  const FaultRates& rates = rates_for(target);
  if (!rates.any()) return event;

  const std::uint64_t target_salt = util::stable_salt(target);
  const std::uint64_t epoch_salt =
      (static_cast<std::uint64_t>(epoch_) << 32) | 0x9D5AULL;

  // Persistent unreachability is a property of the (target, epoch), not of
  // the attempt: every retry sees the same dead host.
  {
    util::Rng persistent_rng = util::Rng(seed_).fork(target_salt ^ epoch_salt);
    if (persistent_rng.bernoulli(clamp01(rates.persistent_unreachable))) {
      event.kind = FaultKind::kPersistentUnreachable;
      return event;
    }
  }

  util::Rng rng = util::Rng(seed_).fork(target_salt ^ epoch_salt)
                      .fork(0xA77E0000ULL + attempt);
  const double total = rates.attempt_total();
  if (total <= 0.0) return event;

  // One uniform draw walks the cumulative rate ladder. If the rates sum past
  // 1 the selection degrades to proportional (every attempt faults).
  const double scale = total > 1.0 ? total : 1.0;
  double u = rng.uniform() * scale;
  const auto take = [&u](double rate) {
    u -= clamp01(rate);
    return u < 0.0;
  };

  if (take(rates.connect_timeout)) {
    event.kind = FaultKind::kConnectTimeout;
  } else if (take(rates.connection_reset)) {
    event.kind = FaultKind::kConnectionReset;
  } else if (take(rates.truncated_handshake)) {
    event.kind = FaultKind::kTruncatedHandshake;
    // Keep between 10% and 90% of the bundle: always lose something, always
    // keep enough bytes for a salvage attempt to be interesting.
    event.truncate_fraction = rng.uniform(0.10, 0.90);
  } else if (take(rates.byte_corruption)) {
    event.kind = FaultKind::kByteCorruption;
    event.corrupt_bytes = 1 + static_cast<std::uint32_t>(rng.next_below(16));
  } else if (take(rates.transient_unreachable)) {
    event.kind = FaultKind::kTransientUnreachable;
  } else if (take(rates.slow_response)) {
    event.kind = FaultKind::kSlowResponse;
    event.delay_ms = 500 + static_cast<std::uint32_t>(rng.next_below(9500));
  }
  if (event.kind != FaultKind::kNone) {
    event.payload_salt = rng.next_u64();
  }
  return event;
}

std::string FaultPlan::damage_bundle(const FaultEvent& event,
                                     std::string_view bundle) {
  switch (event.kind) {
    case FaultKind::kTruncatedHandshake: {
      const auto keep = static_cast<std::size_t>(
          static_cast<double>(bundle.size()) *
          std::clamp(event.truncate_fraction, 0.0, 1.0));
      return std::string(bundle.substr(0, keep));
    }
    case FaultKind::kByteCorruption: {
      std::string damaged(bundle);
      if (damaged.empty()) return damaged;
      util::Rng rng(event.payload_salt ^ 0xC0220F7EDULL);
      for (std::uint32_t i = 0; i < event.corrupt_bytes; ++i) {
        const std::size_t pos =
            static_cast<std::size_t>(rng.next_below(damaged.size()));
        damaged[pos] = static_cast<char>(rng.next_below(256));
      }
      return damaged;
    }
    default:
      return std::string(bundle);
  }
}

}  // namespace certchain::netsim
