// Deterministic network fault injection.
//
// Real campus-scale re-scanning (§5, Appendix D) runs into connect timeouts,
// TCP resets, handshakes that die mid-flight (truncated -showcerts output),
// bit-flipped bytes on bad links, endpoints that are down for a minute vs.
// gone for good, and servers that answer after seconds of silence. The
// deterministic ActiveScanner cannot express any of that, so the resilient
// scanning path is wired through a FaultPlan: a seeded schedule that, for a
// given (target, epoch, attempt) triple, decides which fault — if any — the
// connection experiences. Same seed + same rates => byte-identical fault
// schedule, so every failure-mode experiment is exactly reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace certchain::netsim {

/// The fault vocabulary a connection attempt can hit.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  /// SYN goes unanswered until the connect timer fires.
  kConnectTimeout,
  /// RST during or right after the handshake; no certificate bytes arrive.
  kConnectionReset,
  /// The handshake dies mid-certificate-message: only a byte prefix of the
  /// PEM bundle arrives (the parseable prefix chain is salvageable).
  kTruncatedHandshake,
  /// Random bytes of the delivered bundle are corrupted in flight; damaged
  /// PEM blocks fail to decode, intact ones survive.
  kByteCorruption,
  /// Endpoint is down for this attempt only; a retry can succeed.
  kTransientUnreachable,
  /// Endpoint is down for the whole epoch; retries never help.
  kPersistentUnreachable,
  /// The server answers correctly but slowly (eats into the deadline).
  kSlowResponse,
};

std::string_view fault_kind_name(FaultKind kind);

/// Per-fault probabilities, evaluated per connection attempt (persistent
/// unreachability is evaluated once per target per epoch). Rates are clamped
/// to [0,1]; if the attempt-level rates sum past 1 the draw is proportional.
struct FaultRates {
  double connect_timeout = 0.0;
  double connection_reset = 0.0;
  double truncated_handshake = 0.0;
  double byte_corruption = 0.0;
  double transient_unreachable = 0.0;
  double persistent_unreachable = 0.0;
  double slow_response = 0.0;

  /// Sum of the attempt-level rates (everything but persistent).
  double attempt_total() const;
  bool any() const;

  /// Uniform shorthand: every fault kind at rate `r` (persistent included).
  static FaultRates uniform(double r);
};

/// What one connection attempt experiences.
struct FaultEvent {
  FaultKind kind = FaultKind::kNone;
  /// kTruncatedHandshake: fraction of the bundle's bytes that arrived.
  double truncate_fraction = 1.0;
  /// kByteCorruption: number of bytes flipped.
  std::uint32_t corrupt_bytes = 0;
  /// kSlowResponse: extra server-side delay charged to the deadline.
  std::uint32_t delay_ms = 0;
  /// Salt for payload damage so byte positions are reproducible too.
  std::uint64_t payload_salt = 0;
};

/// A seeded, composable fault schedule. Stateless per query: decide() is a
/// pure function of (seed, rates, epoch, target, attempt).
class FaultPlan {
 public:
  /// Default plan injects nothing (the zero-fault plan is the identity).
  FaultPlan() = default;
  FaultPlan(std::uint64_t seed, FaultRates rates) : seed_(seed), rates_(rates) {}

  /// Per-target override, composable on top of the default rates (e.g. one
  /// flaky building, one dead subnet). Matches the scan target string
  /// ("domain:port" or "ip:port").
  void set_target_rates(const std::string& target, FaultRates rates) {
    overrides_[target] = rates;
  }

  /// Epoch knob: the §5 revisit can be replayed under different epochs of
  /// the same plan (fault draws are independent across epochs).
  void set_epoch(std::uint32_t epoch) { epoch_ = epoch; }
  std::uint32_t epoch() const { return epoch_; }

  std::uint64_t seed() const { return seed_; }
  const FaultRates& default_rates() const { return rates_; }

  /// True if any configured rate can ever fire.
  bool enabled() const;

  /// The fault (if any) injected into attempt number `attempt` (0-based)
  /// against `target` in the current epoch.
  FaultEvent decide(std::string_view target, std::uint32_t attempt) const;

  /// Applies an event's payload damage (truncation / byte corruption) to a
  /// delivered PEM bundle. Deterministic in the event. Other kinds return
  /// the bundle unchanged.
  static std::string damage_bundle(const FaultEvent& event, std::string_view bundle);

 private:
  const FaultRates& rates_for(std::string_view target) const;

  std::uint64_t seed_ = 0;
  FaultRates rates_;
  std::map<std::string, FaultRates, std::less<>> overrides_;
  std::uint32_t epoch_ = 0;
};

}  // namespace certchain::netsim
