#include "netsim/pki_world.hpp"

#include <stdexcept>

#include "util/hash.hpp"

namespace certchain::netsim {

using truststore::RootProgram;
using x509::CertificateAuthority;
using x509::DistinguishedName;

namespace {

util::TimeRange root_validity() {
  return {util::make_time(2000, 1, 1), util::make_time(2040, 1, 1)};
}

util::TimeRange intermediate_validity() {
  return {util::make_time(2015, 1, 1), util::make_time(2032, 1, 1)};
}

DistinguishedName dn(std::string_view text) {
  return DistinguishedName::parse_or_die(text);
}

}  // namespace

std::string_view interception_category_name(InterceptionCategory category) {
  switch (category) {
    case InterceptionCategory::kSecurityNetwork: return "Security & Network";
    case InterceptionCategory::kBusinessCorporate: return "Business & Corporate";
    case InterceptionCategory::kHealthEducation: return "Health & Education";
    case InterceptionCategory::kGovernmentPublic: return "Government & Public Service";
    case InterceptionCategory::kBankFinance: return "Bank & Finance";
    case InterceptionCategory::kOther: return "Other";
  }
  return "unknown";
}

std::vector<InterceptionVendor> builtin_interception_vendors() {
  std::vector<InterceptionVendor> vendors;
  const auto add = [&](std::string name, InterceptionCategory category) {
    vendors.push_back(InterceptionVendor{std::move(name), category});
  };

  // Security & Network: 31 issuers (94.74% of interception connections).
  const char* security_names[] = {
      "Sim Zscaler",      "Sim McAfee Web Gateway", "Sim FireEye",
      "Sim Fortinet",     "Sim Palo Alto Networks", "Sim Sophos",
      "Sim Blue Coat",    "Sim Cisco Umbrella",     "Sim Forcepoint",
      "Sim Barracuda",    "Sim WatchGuard",         "Sim SonicWall",
      "Sim Check Point",  "Sim Netskope",           "Sim iboss",
      "Sim Kaspersky",    "Sim Bitdefender",        "Sim ESET",
      "Sim Avast",        "Sim AVG",                "Sim Trend Micro",
      "Sim F-Secure",     "Sim Webroot",            "Sim Untangle",
      "Sim Smoothwall",   "Sim ContentKeeper",      "Sim Lightspeed",
      "Sim GFI Kerio",    "Sim Cyren",              "Sim DNSFilter",
      "Sim Sangfor"};
  for (const char* name : security_names) {
    add(name, InterceptionCategory::kSecurityNetwork);
  }

  // Business & Corporate: 27 issuers.
  add("Sim Freddie Mac", InterceptionCategory::kBusinessCorporate);
  for (int i = 1; i <= 26; ++i) {
    add("Sim Corporate Proxy " + std::to_string(i),
        InterceptionCategory::kBusinessCorporate);
  }

  // Health & Education: 10 issuers.
  add("Sim Securly", InterceptionCategory::kHealthEducation);
  add("Sim GoGuardian", InterceptionCategory::kHealthEducation);
  for (int i = 1; i <= 8; ++i) {
    add("Sim School District " + std::to_string(i),
        InterceptionCategory::kHealthEducation);
  }

  // Government & Public Service: 6 issuers.
  for (int i = 1; i <= 6; ++i) {
    add("Sim Government Department " + std::to_string(i),
        InterceptionCategory::kGovernmentPublic);
  }

  // Bank & Finance: 3 issuers.
  add("Sim Nationwide", InterceptionCategory::kBankFinance);
  add("Sim Finance Gateway 1", InterceptionCategory::kBankFinance);
  add("Sim Finance Gateway 2", InterceptionCategory::kBankFinance);

  // Other: 3 issuers.
  for (int i = 1; i <= 3; ++i) {
    add("Sim Misc Proxy " + std::to_string(i), InterceptionCategory::kOther);
  }
  return vendors;
}

chain::CertificateChain InterceptionDeployment::forge_chain(
    const std::string& domain, util::TimeRange validity) {
  DistinguishedName subject;
  subject.add("CN", domain).add("O", vendor.name + " Forged");
  chain::CertificateChain forged;
  forged.push_back(intermediate_ca.issue_leaf(subject, domain, validity));
  forged.push_back(intermediate_cert);
  forged.push_back(root_cert);
  return forged;
}

PkiWorld::PkiWorld(std::uint64_t seed)
    : seed_(seed), host_store_(RootProgram::kMozillaNss), ct_logs_(3) {
  build_public_cas();
  build_private_cas();
  build_interception();
}

util::TimeRange PkiWorld::default_leaf_validity() {
  // Issued shortly before the collection window opens and valid past its
  // end, so an in-window observation sees a live certificate.
  return {util::make_time(2020, 7, 1), util::make_time(2022, 1, 1)};
}

void PkiWorld::build_public_cas() {
  struct Spec {
    const char* short_name;
    const char* root_dn;
    std::vector<const char*> intermediate_dns;
    bool in_host_store;
  };
  const std::vector<Spec> specs = {
      {"digicert", "CN=Sim DigiCert Global Root CA,O=Sim DigiCert Inc,C=US",
       {"CN=Sim DigiCert TLS RSA SHA256 2020 CA1,O=Sim DigiCert Inc,C=US"}, true},
      {"sectigo", "CN=Sim AAA Certificate Services,O=Sim Comodo CA Limited,C=GB",
       {"CN=Sim Sectigo RSA Domain Validation Secure Server CA,O=Sim Sectigo Limited,C=GB"},
       true},
      {"usertrust",
       "CN=Sim USERTrust RSA Certification Authority,O=Sim The USERTRUST Network,C=US",
       {},
       true},
      {"lets-encrypt", "CN=Sim ISRG Root X1,O=Sim Internet Security Research Group,C=US",
       {"CN=Sim R3,O=Sim Let's Encrypt,C=US"}, true},
      {"godaddy",
       "CN=Sim Go Daddy Root Certificate Authority - G2,O=Sim GoDaddy.com LLC,C=US",
       {"CN=Sim Go Daddy Secure Certificate Authority - G2,O=Sim GoDaddy.com LLC,C=US"},
       true},
      {"comodo", "CN=Sim COMODO RSA Certification Authority,O=Sim COMODO CA Limited,C=GB",
       {"CN=Sim COMODO RSA Organization Validation CA,O=Sim COMODO CA Limited,C=GB"},
       true},
      {"globalsign", "CN=Sim GlobalSign Root CA,O=Sim GlobalSign nv-sa,C=BE",
       {"CN=Sim GlobalSign RSA OV SSL CA 2018,O=Sim GlobalSign nv-sa,C=BE"}, true},
      {"symantec",
       "CN=Sim Symantec Class 3 Public Primary Certification Authority,O=Sim Symantec Corporation,C=US",
       {"CN=Sim Symantec Class 3 Secure Server CA - G4,O=Sim Symantec Corporation,C=US"},
       true},
      // Anchors deliberately absent from the host OS store: their chains
      // validate in Chrome-like clients but not in the OpenSSL-like host.
      {"fpki", "CN=Sim Federal Common Policy CA,O=U.S. Government Sim,C=US",
       {"CN=Sim Verizon SSP CA A2,O=Sim Verizon Business,C=US"}, false},
      {"kisa", "CN=Sim KISA RootCA 1,O=Sim KISA,C=KR", {}, false},
      {"icp-brasil",
       "CN=Sim Autoridade Certificadora Raiz Brasileira v5,O=Sim ICP-Brasil,C=BR",
       {"CN=Sim AC Secretaria da Receita Federal do Brasil,O=Sim ICP-Brasil,C=BR"},
       false},
  };

  for (const Spec& spec : specs) {
    PublicCaHierarchy hierarchy{
        spec.short_name,
        CertificateAuthority(dn(spec.root_dn), "public/" + std::string(spec.short_name)),
        x509::Certificate{},
        {},
        {},
        spec.in_host_store};
    hierarchy.root_cert = hierarchy.root_ca.make_root(root_validity());
    for (const char* intermediate_dn : spec.intermediate_dns) {
      CertificateAuthority intermediate(
          dn(intermediate_dn), "public-int/" + std::string(spec.short_name));
      hierarchy.intermediate_certs.push_back(hierarchy.root_ca.issue_intermediate(
          intermediate, intermediate_validity(), 0));
      hierarchy.intermediate_cas.push_back(std::move(intermediate));
    }

    stores_.add_to_all_programs(hierarchy.root_cert);
    if (spec.in_host_store) host_store_.add(hierarchy.root_cert);
    for (const x509::Certificate& cert : hierarchy.intermediate_certs) {
      truststore::CcadbRecord record;
      record.certificate = cert;
      record.chains_to_participating_root = true;
      record.publicly_audited = true;
      stores_.ccadb().add(std::move(record));
    }
    public_cas_.push_back(std::move(hierarchy));
  }

  // Cross-signing: AAA Certificate Services cross-signs the USERTrust root
  // (the Sectigo hierarchy pattern [32]). The cross-certificate is disclosed
  // in CCADB and the relationship recorded in the registry so issuer-subject
  // matching does not flag it.
  PublicCaHierarchy& sectigo = public_ca("sectigo");
  PublicCaHierarchy& usertrust = public_ca("usertrust");
  x509::Certificate cross_cert =
      sectigo.root_ca.cross_sign(usertrust.root_ca, intermediate_validity());
  truststore::CcadbRecord cross_record;
  cross_record.certificate = cross_cert;
  cross_record.chains_to_participating_root = true;
  cross_record.publicly_audited = true;
  stores_.ccadb().add(std::move(cross_record));
  cross_signs_.add_equivalence(usertrust.root_ca.name(), sectigo.root_ca.name());

  // USERTrust issues Sectigo's DV intermediate in the real hierarchy; give
  // the usertrust hierarchy one issuing intermediate of its own.
  CertificateAuthority usertrust_int(
      dn("CN=Sim USERTrust RSA Domain Validation CA,O=Sim The USERTRUST Network,C=US"),
      "public-int/usertrust");
  usertrust.intermediate_certs.push_back(
      usertrust.root_ca.issue_intermediate(usertrust_int, intermediate_validity(), 0));
  usertrust.intermediate_cas.push_back(std::move(usertrust_int));
  truststore::CcadbRecord ut_record;
  ut_record.certificate = usertrust.intermediate_certs.back();
  ut_record.chains_to_participating_root = true;
  ut_record.publicly_audited = true;
  stores_.ccadb().add(std::move(ut_record));
}

void PkiWorld::build_private_cas() {
  // Self-operated private hierarchies.
  const struct {
    const char* short_name;
    const char* root_dn;
    const char* intermediate_dn;  // nullptr = root-only
  } specs[] = {
      {"fake-le", "CN=Fake LE Root X1", "CN=Fake LE Intermediate X1"},
      {"athenz", "CN=Sim Athenz CA,O=Sim Athenz,C=US", nullptr},
      {"scalyr", "CN=Sim Scalyr Internal CA,O=Sim Scalyr Inc,C=US", nullptr},
      {"canal-plus", "CN=Sim Canal+ Internal CA,O=Sim Canal+ Group,C=FR", nullptr},
  };
  for (const auto& spec : specs) {
    PrivateCaHierarchy hierarchy{
        spec.short_name,
        CertificateAuthority(dn(spec.root_dn), "private/" + std::string(spec.short_name)),
        x509::Certificate{},
        std::nullopt,
        std::nullopt};
    hierarchy.root_cert = hierarchy.root_ca.make_root(root_validity());
    if (spec.intermediate_dn != nullptr) {
      CertificateAuthority intermediate(
          dn(spec.intermediate_dn), "private-int/" + std::string(spec.short_name));
      hierarchy.intermediate_cert = hierarchy.root_ca.issue_intermediate(
          intermediate, intermediate_validity());
      hierarchy.intermediate_ca = std::move(intermediate);
    }
    private_cas_.push_back(std::move(hierarchy));
  }
  fake_le_intermediate_ = *private_ca("fake-le").intermediate_cert;

  // Chained sub-CAs (Table 6): non-public sub-CAs whose certificates are
  // issued by public hierarchies.
  const struct {
    const char* short_name;
    const char* parent;
    const char* ca_dn;
    const char* sector;
    bool via_intermediate;  // parent's first intermediate issues the sub-CA
  } sub_specs[] = {
      {"veterans-affairs", "fpki",
       "CN=Sim Veterans Affairs CA B3,O=U.S. Department of Veterans Affairs Sim,C=US",
       "Government", true},
      {"klid", "kisa", "CN=Sim Gov of Korea KLID CA,O=Government of Korea Sim,C=KR",
       "Government", false},
      {"iti", "icp-brasil",
       "CN=Sim ITI Autoridade Certificadora,O=Instituto Nacional de Tecnologia da Informacao Sim,C=BR",
       "Government", true},
      {"symantec-private", "symantec",
       "CN=Sim Symantec Private SSL SHA1 CA,O=Sim Symantec Corporation,C=US",
       "Corporate", false},
      {"signkorea", "kisa", "CN=Sim SignKorea CA,O=Sim SignKorea,C=KR", "Corporate",
       false},
  };
  for (const auto& spec : sub_specs) {
    PublicCaHierarchy& parent = public_ca(spec.parent);
    CertificateAuthority sub_ca(dn(spec.ca_dn), "subca/" + std::string(spec.short_name));
    x509::Certificate cert =
        (spec.via_intermediate && !parent.intermediate_cas.empty())
            ? parent.intermediate_cas.front().issue_intermediate(
                  sub_ca, intermediate_validity())
            : parent.root_ca.issue_intermediate(sub_ca, intermediate_validity());
    sub_cas_.push_back(ChainedSubCa{spec.short_name, spec.parent, std::move(sub_ca),
                                    std::move(cert), spec.sector});
  }
}

void PkiWorld::build_interception() {
  for (const InterceptionVendor& vendor : builtin_interception_vendors()) {
    CertificateAuthority root(
        dn("CN=" + vendor.name + " Root CA,O=" + vendor.name + ",C=US"),
        "intercept-root/" + vendor.name);
    CertificateAuthority intermediate(
        dn("CN=" + vendor.name + " SSL Inspection CA,O=" + vendor.name + ",C=US"),
        "intercept-int/" + vendor.name);
    InterceptionDeployment deployment{
        vendor,
        std::move(root),
        x509::Certificate{},
        std::move(intermediate),
        x509::Certificate{}};
    deployment.root_cert = deployment.root_ca.make_root(root_validity());
    deployment.intermediate_cert = deployment.root_ca.issue_intermediate(
        deployment.intermediate_ca, intermediate_validity());
    interception_.push_back(std::move(deployment));
  }
}

PublicCaHierarchy& PkiWorld::public_ca(std::string_view short_name) {
  for (PublicCaHierarchy& hierarchy : public_cas_) {
    if (hierarchy.short_name == short_name) return hierarchy;
  }
  throw std::out_of_range("PkiWorld::public_ca: unknown CA " + std::string(short_name));
}

PrivateCaHierarchy& PkiWorld::private_ca(std::string_view short_name) {
  for (PrivateCaHierarchy& hierarchy : private_cas_) {
    if (hierarchy.short_name == short_name) return hierarchy;
  }
  throw std::out_of_range("PkiWorld::private_ca: unknown CA " + std::string(short_name));
}

ChainedSubCa& PkiWorld::chained_sub_ca(std::string_view short_name) {
  for (ChainedSubCa& sub_ca : sub_cas_) {
    if (sub_ca.short_name == short_name) return sub_ca;
  }
  throw std::out_of_range("PkiWorld::chained_sub_ca: unknown sub-CA " +
                          std::string(short_name));
}

chain::CertificateChain PkiWorld::issue_public_chain(std::string_view ca_short_name,
                                                     const std::string& domain,
                                                     util::TimeRange leaf_validity,
                                                     bool include_root) {
  PublicCaHierarchy& hierarchy = public_ca(ca_short_name);
  chain::CertificateChain chain;
  DistinguishedName subject;
  subject.add("CN", domain);
  if (!hierarchy.intermediate_cas.empty()) {
    x509::Certificate leaf =
        hierarchy.intermediate_cas.front().issue_leaf(subject, domain, leaf_validity);
    leaf = ct_logs_.submit_and_embed(leaf, leaf_validity.begin, 2);
    chain.push_back(std::move(leaf));
    chain.push_back(hierarchy.intermediate_certs.front());
  } else {
    x509::Certificate leaf = hierarchy.root_ca.issue_leaf(subject, domain, leaf_validity);
    leaf = ct_logs_.submit_and_embed(leaf, leaf_validity.begin, 2);
    chain.push_back(std::move(leaf));
  }
  if (include_root) chain.push_back(hierarchy.root_cert);
  return chain;
}

chain::CertificateChain PkiWorld::issue_sub_ca_chain(std::string_view sub_ca_short_name,
                                                     const std::string& domain,
                                                     util::TimeRange leaf_validity) {
  ChainedSubCa& sub_ca = chained_sub_ca(sub_ca_short_name);
  PublicCaHierarchy& parent = public_ca(sub_ca.parent_public_short_name);

  DistinguishedName subject;
  subject.add("CN", domain).add("O", *sub_ca.ca.name().organization());
  x509::Certificate leaf = sub_ca.ca.issue_leaf(subject, domain, leaf_validity);
  // Standards require these leaves in CT (§4.2); the paper found them all
  // properly logged.
  leaf = ct_logs_.submit_and_embed(leaf, leaf_validity.begin, 2);

  chain::CertificateChain chain;
  chain.push_back(std::move(leaf));
  chain.push_back(sub_ca.cert);
  // If the sub-CA was issued by the parent's intermediate, include it.
  if (!parent.intermediate_certs.empty() &&
      sub_ca.cert.issuer.matches(parent.intermediate_cas.front().name())) {
    chain.push_back(parent.intermediate_certs.front());
  }
  chain.push_back(parent.root_cert);
  return chain;
}

std::set<std::string> PkiWorld::interception_issuer_dns() const {
  std::set<std::string> out;
  for (const InterceptionDeployment& deployment : interception_) {
    out.insert(deployment.intermediate_ca.name().canonical());
    out.insert(deployment.root_ca.name().canonical());
  }
  return out;
}

PrivateCaHierarchy& PkiWorld::make_enterprise_ca(const std::string& organization,
                                                 bool with_intermediate) {
  const std::string short_name = "enterprise/" + organization;
  for (PrivateCaHierarchy& hierarchy : private_cas_) {
    if (hierarchy.short_name == short_name) return hierarchy;
  }
  PrivateCaHierarchy hierarchy{
      short_name,
      CertificateAuthority(
          dn("CN=" + organization + " Root CA,O=" + organization + ",C=US"),
          "enterprise/" + organization),
      x509::Certificate{},
      std::nullopt,
      std::nullopt};
  hierarchy.root_cert = hierarchy.root_ca.make_root(root_validity());
  if (with_intermediate) {
    CertificateAuthority intermediate(
        dn("CN=" + organization + " Issuing CA,O=" + organization + ",C=US"),
        "enterprise-int/" + organization);
    hierarchy.intermediate_cert =
        hierarchy.root_ca.issue_intermediate(intermediate, intermediate_validity());
    hierarchy.intermediate_ca = std::move(intermediate);
  }
  private_cas_.push_back(std::move(hierarchy));
  return private_cas_.back();
}

x509::Certificate PkiWorld::make_dga_certificate(util::Rng& rng) {
  // Issuer and subject follow the same www<random>com pattern but differ.
  const std::string issuer_name = "www" + rng.alpha_string(10) + "com";
  std::string subject_name = "www" + rng.alpha_string(10) + "com";
  while (subject_name == issuer_name) {
    subject_name = "www" + rng.alpha_string(10) + "com";
  }
  DistinguishedName issuer;
  issuer.add("CN", issuer_name);
  DistinguishedName subject;
  subject.add("CN", subject_name);

  const util::TimeRange window = util::study::collection_window();
  const util::SimTime start =
      window.begin + static_cast<util::SimTime>(
                         rng.uniform() * static_cast<double>(window.duration() / 2));
  const util::SimTime lifetime =
      rng.uniform_int(4, 365) * util::kSecondsPerDay;

  const auto keys = crypto::generate_keypair(crypto::KeyAlgorithm::kRsa2048,
                                             "dga/" + subject_name);
  return x509::CertificateBuilder()
      .serial(rng.hex_string(16))
      .subject(subject)
      .issuer(issuer)
      .validity({start, start + lifetime})
      .public_key(keys.public_key)
      .no_basic_constraints()
      .sign_with(keys.private_key);
}

x509::Certificate PkiWorld::make_localhost_certificate(const std::string& serial_tag) {
  DistinguishedName name = dn(
      "emailAddress=webmaster@localhost,CN=localhost,OU=none,O=none,"
      "L=Sometown,ST=Someprovince,C=US");
  const auto keys =
      crypto::generate_keypair(crypto::KeyAlgorithm::kRsa2048, "localhost/" + serial_tag);
  return x509::CertificateBuilder()
      .serial(util::digest256_hex("localhost-serial/" + serial_tag).substr(0, 16))
      .subject(name)
      .validity(default_leaf_validity())
      .no_basic_constraints()
      .self_sign(keys.private_key);
}

x509::Certificate PkiWorld::make_self_signed(const std::string& organization,
                                             const std::string& common_name,
                                             util::TimeRange validity) {
  DistinguishedName name;
  name.add("CN", common_name);
  if (!organization.empty()) name.add("O", organization);
  const std::string tag =
      organization + "/" + common_name + "/" + std::to_string(self_signed_counter_++);
  const auto keys = crypto::generate_keypair(crypto::KeyAlgorithm::kRsa2048,
                                             "self-signed/" + tag);
  return x509::CertificateBuilder()
      .serial(util::digest256_hex("self-signed-serial/" + tag).substr(0, 16))
      .subject(name)
      .validity(validity)
      .no_basic_constraints()
      .self_sign(keys.private_key);
}

}  // namespace certchain::netsim
