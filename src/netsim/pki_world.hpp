// The simulated PKI universe.
//
// Builds every certificate authority the study's corpus references:
//
//   - public-DB CAs (synthetic stand-ins for DigiCert, Sectigo/AAA, Let's
//     Encrypt/ISRG, GoDaddy, COMODO, GlobalSign, Symantec, the U.S. Federal
//     PKI, Korean and Brazilian national roots), registered in the program
//     root stores and CCADB, with one cross-signing pair recorded in the
//     cross-sign registry (the Sectigo/USERTrust pattern [32]);
//   - non-public-DB issuers: government sub-CAs chained to public anchors
//     (the Veterans-Affairs/Verizon-SSP pattern of Table 6), corporate
//     private CAs (Symantec Private SSL), enterprise self-signed hierarchies,
//     the Let's Encrypt staging pair ("Fake LE Root X1" / "Fake LE
//     Intermediate X1"), appliance defaults (localhost, HP "tester",
//     Athenz), and DGA-style certificates;
//   - TLS interception vendors (Table 1) and their 3-certificate middlebox
//     chains.
//
// The host OS store (used by the OpenSSL-like validator) deliberately holds
// only a subset of the program roots — the store-content difference behind
// the Section 5 Chrome-vs-OpenSSL disagreement.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "chain/chain.hpp"
#include "chain/cross_sign_registry.hpp"
#include "ct/ct_log.hpp"
#include "truststore/trust_store.hpp"
#include "util/rng.hpp"
#include "x509/builder.hpp"

namespace certchain::netsim {

/// Table 1 interception issuer categories.
enum class InterceptionCategory : std::uint8_t {
  kSecurityNetwork,
  kBusinessCorporate,
  kHealthEducation,
  kGovernmentPublic,
  kBankFinance,
  kOther,
};

std::string_view interception_category_name(InterceptionCategory category);

struct InterceptionVendor {
  std::string name;  // e.g. "Sim Zscaler"
  InterceptionCategory category;
};

/// The 80 interception issuers the paper identified, with the paper's
/// category sizes (31 / 27 / 10 / 6 / 3 / 3).
std::vector<InterceptionVendor> builtin_interception_vendors();

/// One public CA hierarchy: root + issuing intermediates.
struct PublicCaHierarchy {
  std::string short_name;                  // lookup key, e.g. "lets-encrypt"
  x509::CertificateAuthority root_ca;
  x509::Certificate root_cert;
  std::vector<x509::CertificateAuthority> intermediate_cas;
  std::vector<x509::Certificate> intermediate_certs;
  bool in_host_store = true;  // present in the OS store as well?
};

/// One non-public CA (self-operated root, possibly with an intermediate).
struct PrivateCaHierarchy {
  std::string short_name;
  x509::CertificateAuthority root_ca;
  x509::Certificate root_cert;
  std::optional<x509::CertificateAuthority> intermediate_ca;
  std::optional<x509::Certificate> intermediate_cert;
};

/// A non-public sub-CA anchored to a public hierarchy — the Table 6 pattern
/// (Veterans Affairs under the Federal PKI, KLID under the Korean root,
/// ITI under ICP-Brasil, Symantec Private SSL under Symantec's root). The
/// sub-CA's certificate is issued by a public-DB issuer, but the sub-CA
/// itself appears in no database, so *its* leaves are non-public-DB issued.
struct ChainedSubCa {
  std::string short_name;
  std::string parent_public_short_name;
  x509::CertificateAuthority ca;
  /// The sub-CA certificate as issued by the public parent.
  x509::Certificate cert;
  /// "Corporate" or "Government" (Table 6 row).
  std::string sector;
};

/// One interception vendor's middlebox CA.
struct InterceptionDeployment {
  InterceptionVendor vendor;
  x509::CertificateAuthority root_ca;
  x509::Certificate root_cert;
  x509::CertificateAuthority intermediate_ca;
  x509::Certificate intermediate_cert;

  /// Middlebox-forged chain for `domain`: [leaf, intermediate, root] — the
  /// 3-certificate shape that dominates interception chains (Figure 1).
  chain::CertificateChain forge_chain(const std::string& domain,
                                      util::TimeRange validity);
};

class PkiWorld {
 public:
  /// Builds the full universe deterministically from `seed`.
  explicit PkiWorld(std::uint64_t seed = 0xCE47);

  // --- databases -----------------------------------------------------------
  const truststore::TrustStoreSet& stores() const { return stores_; }
  truststore::TrustStoreSet& stores() { return stores_; }
  /// Host OS store (subset of program roots; no CCADB intermediates).
  const truststore::TrustStore& host_store() const { return host_store_; }
  const chain::CrossSignRegistry& cross_signs() const { return cross_signs_; }
  ct::CtLogSet& ct_logs() { return ct_logs_; }
  const ct::CtLogSet& ct_logs() const { return ct_logs_; }

  // --- public CAs ----------------------------------------------------------
  const std::vector<PublicCaHierarchy>& public_cas() const { return public_cas_; }
  PublicCaHierarchy& public_ca(std::string_view short_name);

  /// Issues a standard public chain for `domain`: [leaf, intermediate]
  /// (+ root when `include_root`), CT-logging the leaf.
  chain::CertificateChain issue_public_chain(std::string_view ca_short_name,
                                             const std::string& domain,
                                             util::TimeRange leaf_validity,
                                             bool include_root = false);

  // --- non-public CAs ------------------------------------------------------
  const std::vector<PrivateCaHierarchy>& private_cas() const { return private_cas_; }
  PrivateCaHierarchy& private_ca(std::string_view short_name);

  /// Creates (or returns the existing) enterprise private hierarchy for an
  /// organization name; `with_intermediate` controls the shape.
  PrivateCaHierarchy& make_enterprise_ca(const std::string& organization,
                                         bool with_intermediate);

  // --- chained sub-CAs (Table 6) --------------------------------------------
  const std::vector<ChainedSubCa>& chained_sub_cas() const { return sub_cas_; }
  ChainedSubCa& chained_sub_ca(std::string_view short_name);

  /// Issues the full Table 6 chain for `domain` under a chained sub-CA:
  /// [leaf(sub-CA), sub-CA cert, public intermediate(s)..., public root],
  /// CT-logging the leaf (the paper verified all such leaves were logged).
  chain::CertificateChain issue_sub_ca_chain(std::string_view sub_ca_short_name,
                                             const std::string& domain,
                                             util::TimeRange leaf_validity);

  // --- interception ---------------------------------------------------------
  const std::vector<InterceptionDeployment>& interception() const {
    return interception_;
  }
  std::vector<InterceptionDeployment>& interception() { return interception_; }

  /// Canonical issuer-DN set of every interception CA (leaf-signing
  /// intermediates and roots), as the analysis-side registry expects.
  std::set<std::string> interception_issuer_dns() const;

  // --- stand-alone certificate factories ------------------------------------
  /// DGA-style single certificate: issuer and subject are two *different*
  /// random "www<random>com"-patterned names (§4.3 special case); validity
  /// 4..365 days starting in the collection window.
  x509::Certificate make_dga_certificate(util::Rng& rng);

  /// The classic distro-default self-signed cert
  /// (emailAddress=webmaster@localhost, CN=localhost, ... — Table 7 fn. 5).
  x509::Certificate make_localhost_certificate(const std::string& serial_tag);

  /// Generic self-signed certificate for an org + CN.
  x509::Certificate make_self_signed(const std::string& organization,
                                     const std::string& common_name,
                                     util::TimeRange validity);

  /// The Let's Encrypt staging placeholder: issuer "Fake LE Root X1",
  /// subject "Fake LE Intermediate X1" (Appendix F.2).
  const x509::Certificate& fake_le_intermediate() const { return fake_le_intermediate_; }

  /// The collection window used for default validities.
  static util::TimeRange default_leaf_validity();

 private:
  void build_public_cas();
  void build_private_cas();
  void build_interception();

  std::uint64_t seed_;
  truststore::TrustStoreSet stores_;
  truststore::TrustStore host_store_;
  chain::CrossSignRegistry cross_signs_;
  ct::CtLogSet ct_logs_;

  std::vector<PublicCaHierarchy> public_cas_;
  std::vector<PrivateCaHierarchy> private_cas_;
  std::vector<ChainedSubCa> sub_cas_;
  std::vector<InterceptionDeployment> interception_;
  x509::Certificate fake_le_intermediate_;
  std::uint64_t self_signed_counter_ = 0;
};

}  // namespace certchain::netsim
