#include "netsim/simulator.hpp"

#include <cstdio>
#include <memory>

#include "obs/metrics.hpp"
#include "util/hash.hpp"
#include "validation/client_validators.hpp"
#include "zeek/joiner.hpp"

namespace certchain::netsim {

ClientPool make_campus_client_pool(std::size_t count) {
  ClientPool pool;
  pool.ips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "10.%zu.%zu.%zu", (i >> 16) & 0xFF,
                  (i >> 8) & 0xFF, i & 0xFF);
    pool.ips.emplace_back(buffer);
  }
  return pool;
}

CampusSimulator::CampusSimulator(std::vector<ServerEndpoint> endpoints)
    : endpoints_(std::move(endpoints)) {
  weights_.reserve(endpoints_.size());
  for (const ServerEndpoint& endpoint : endpoints_) {
    weights_.push_back(endpoint.popularity > 0 ? endpoint.popularity : 0.0);
  }
}

GeneratedLogs CampusSimulator::run(const TrafficConfig& config) const {
  GeneratedLogs logs;
  if (endpoints_.empty() || config.connections == 0) return logs;

  util::Rng rng(config.seed);
  const ClientPool pool = make_campus_client_pool(config.client_count);

  // fuid registry: one X509.log row per distinct certificate.
  std::map<std::string, std::string> fuid_by_fingerprint;

  // Emergent-model machinery: validators plus a per-(endpoint, client-kind)
  // verdict cache. Verdicts are evaluated at the window midpoint, so a chain
  // either is or is not acceptable for the whole run (expiry mid-window is a
  // second-order effect the calibrated model also ignores).
  const bool emergent = config.establishment == EstablishmentModel::kEmergent &&
                        config.stores != nullptr && config.host_store != nullptr;
  std::unique_ptr<validation::ChromeLikeValidator> browser;
  std::unique_ptr<validation::OpenSslLikeValidator> strict;
  if (emergent) {
    browser = std::make_unique<validation::ChromeLikeValidator>(*config.stores);
    strict = std::make_unique<validation::OpenSslLikeValidator>(*config.host_store);
  }
  const util::SimTime midpoint =
      config.window.begin + config.window.duration() / 2;
  enum ClientKind { kBrowser = 0, kStrict = 1, kPermissive = 2 };
  std::map<std::pair<std::size_t, int>, bool> verdict_cache;
  const auto emergent_established = [&](std::size_t endpoint_index,
                                        const ServerEndpoint& server,
                                        util::Rng& draw) -> bool {
    const double p = draw.uniform();
    ClientKind kind = kPermissive;
    if (p < config.client_mix.browser_fraction) {
      kind = kBrowser;
    } else if (p < config.client_mix.browser_fraction +
                       config.client_mix.strict_fraction) {
      kind = kStrict;
    }
    if (kind == kPermissive || server.chain.empty()) return true;
    const auto key = std::make_pair(endpoint_index, static_cast<int>(kind));
    const auto cached = verdict_cache.find(key);
    if (cached != verdict_cache.end()) return cached->second;
    const bool accepted =
        kind == kBrowser
            ? browser->validate(server.chain, midpoint).accepted()
            : strict->validate(server.chain, midpoint).accepted();
    verdict_cache.emplace(key, accepted);
    return accepted;
  };

  logs.ssl.reserve(config.connections);
  const util::SimTime window_span = config.window.duration();

  for (std::uint64_t n = 0; n < config.connections; ++n) {
    const std::size_t server_index =
        (config.ensure_coverage && n < endpoints_.size())
            ? static_cast<std::size_t>(n)
            : rng.pick_weighted(weights_);
    const ServerEndpoint& server = endpoints_[server_index];

    zeek::SslLogRecord ssl;
    ssl.ts = config.window.begin +
             static_cast<util::SimTime>(rng.uniform() * static_cast<double>(window_span));
    ssl.uid = util::zeek_style_conn_uid(n, config.seed);
    ssl.id_orig_h = server.restricted_clients.empty()
                        ? pool.ips[static_cast<std::size_t>(
                              rng.next_below(pool.ips.size()))]
                        : server.restricted_clients[static_cast<std::size_t>(
                              rng.next_below(server.restricted_clients.size()))];
    ssl.id_orig_p = static_cast<std::uint16_t>(rng.uniform_int(32768, 60999));
    ssl.id_resp_h = server.ip;
    ssl.id_resp_p = server.port;
    ssl.cipher = "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256";

    // Coverage sweeps force a certificate-visible handshake so every chain
    // is observed at least once.
    const bool coverage_pass = config.ensure_coverage && n < endpoints_.size();
    const bool tls13 = !coverage_pass && rng.bernoulli(server.tls13_fraction);
    const bool resumed =
        !coverage_pass && rng.bernoulli(server.resumption_fraction);
    ssl.version = tls13 ? "TLSv13" : "TLSv12";
    ssl.resumed = resumed;
    const bool send_sni = !server.domain.empty() &&
                          (coverage_pass || !rng.bernoulli(server.no_sni_fraction));
    if (send_sni) ssl.server_name = server.domain;

    ssl.established = emergent
                          ? emergent_established(server_index, server, rng)
                          : rng.bernoulli(server.establish_probability);

    if (!tls13 && !resumed && !server.chain.empty()) {
      for (const x509::Certificate& cert : server.chain) {
        const std::string fingerprint = cert.fingerprint();
        auto it = fuid_by_fingerprint.find(fingerprint);
        if (it == fuid_by_fingerprint.end()) {
          const std::string fuid = util::zeek_style_fuid(fingerprint);
          it = fuid_by_fingerprint.emplace(fingerprint, fuid).first;
          logs.x509.push_back(zeek::record_from_certificate(cert, ssl.ts, fuid));
        }
        ssl.cert_chain_fuids.push_back(it->second);
      }
      ssl.subject = server.chain.first().subject.to_string();
      ssl.issuer = server.chain.first().issuer.to_string();
      ssl.validation_status = server.validation_status;
    }
    logs.ssl.push_back(std::move(ssl));
  }

  if (config.metrics != nullptr) {
    std::uint64_t tls13 = 0, established = 0, with_sni = 0;
    for (const zeek::SslLogRecord& row : logs.ssl) {
      if (row.version == "TLSv13") ++tls13;
      if (row.established) ++established;
      if (!row.server_name.empty()) ++with_sni;
    }
    config.metrics->count("netsim.connections", logs.ssl.size());
    config.metrics->count("netsim.connections.tls13", tls13);
    config.metrics->count("netsim.connections.established", established);
    config.metrics->count("netsim.connections.with_sni", with_sni);
    config.metrics->count("netsim.x509_rows", logs.x509.size());
    config.metrics->count("netsim.endpoints", endpoints_.size());
  }
  return logs;
}

}  // namespace certchain::netsim
