// The campus traffic simulator.
//
// Replays a year of border-gateway TLS traffic over a ServerEndpoint
// population and renders it as Zeek SSL.log / X509.log records — the exact
// input format of the analysis pipeline. Connections are generated
// deterministically from the seed: server choice is popularity-weighted,
// clients come from the NAT pool (or an endpoint's restricted client set),
// TLS 1.3 connections hide their certificates, and the per-endpoint
// establishment probability decides the `established` column.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "netsim/endpoint.hpp"
#include "truststore/trust_store.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "zeek/records.hpp"

namespace certchain::obs {
class MetricsRegistry;
}  // namespace certchain::obs

namespace certchain::netsim {

/// How the `established` column is decided.
enum class EstablishmentModel : std::uint8_t {
  /// Per-endpoint calibrated Bernoulli draw (the default; rates taken from
  /// the paper's per-bucket numbers).
  kCalibrated,
  /// Emergent: each connection picks a client profile from `ClientMix` and
  /// runs the corresponding validator against the delivered chain. Rates
  /// then *emerge* from chain structure + store contents + client mix.
  kEmergent,
};

/// Client-population mix for the emergent model. Fractions should sum to 1;
/// the remainder is treated as permissive.
struct ClientMix {
  /// Chrome-like: path building against the maintained databases.
  double browser_fraction = 0.55;
  /// OpenSSL-like: strict presented-order walk against the host store.
  double strict_fraction = 0.15;
  /// Accepts anything (pinned apps, telemetry agents, scanners, devices
  /// that trust their own appliance certificates).
  double permissive_fraction = 0.30;
};

struct TrafficConfig {
  /// Total TLS connections to synthesize.
  std::uint64_t connections = 100000;
  /// Collection window (defaults to the paper's 12 months).
  util::TimeRange window = util::study::collection_window();
  /// NAT pool size.
  std::size_t client_count = 5000;
  std::uint64_t seed = 20200901;
  /// Guarantee every endpoint at least one connection (the paper's unique
  /// chain counts require each delivered chain to be observed); the first
  /// |endpoints| connections sweep the population once, the rest are
  /// popularity-weighted.
  bool ensure_coverage = true;

  /// Establishment decision (see EstablishmentModel). kEmergent requires
  /// `stores` and `host_store` to be set.
  EstablishmentModel establishment = EstablishmentModel::kCalibrated;
  ClientMix client_mix;
  const truststore::TrustStoreSet* stores = nullptr;
  const truststore::TrustStore* host_store = nullptr;

  /// Optional telemetry sink: generation totals land as `netsim.*` counters
  /// (connections, TLS1.3-opaque, established, emitted log rows).
  obs::MetricsRegistry* metrics = nullptr;
};

struct GeneratedLogs {
  std::vector<zeek::SslLogRecord> ssl;
  std::vector<zeek::X509LogRecord> x509;  // one row per distinct certificate

  std::size_t connection_count() const { return ssl.size(); }
};

class CampusSimulator {
 public:
  explicit CampusSimulator(std::vector<ServerEndpoint> endpoints);

  const std::vector<ServerEndpoint>& endpoints() const { return endpoints_; }

  /// Runs the traffic generation. Deterministic in (endpoints, config).
  GeneratedLogs run(const TrafficConfig& config) const;

 private:
  std::vector<ServerEndpoint> endpoints_;
  std::vector<double> weights_;
};

}  // namespace certchain::netsim
