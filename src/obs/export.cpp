#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "obs/json.hpp"

namespace certchain::obs {

namespace {

std::string format_ms(double ms) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

std::string format_value(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

void render_distribution_line(std::string& out, const std::string& name,
                              const FixedHistogram& histogram) {
  out += "  " + name + ": count=" + std::to_string(histogram.count()) +
         " sum=" + format_value(histogram.sum()) +
         " min=" + format_value(histogram.min()) +
         " max=" + format_value(histogram.max()) +
         " p50=" + format_value(histogram.p50()) +
         " p90=" + format_value(histogram.p90()) +
         " p99=" + format_value(histogram.p99()) + "\n";
}

void write_distribution_json(json::Writer& writer,
                             const FixedHistogram& histogram) {
  writer.begin_object();
  writer.key("count");
  writer.value_uint(histogram.count());
  writer.key("sum");
  writer.value_number(histogram.sum());
  writer.key("min");
  writer.value_number(histogram.min());
  writer.key("max");
  writer.value_number(histogram.max());
  writer.key("p50");
  writer.value_number(histogram.p50());
  writer.key("p90");
  writer.value_number(histogram.p90());
  writer.key("p99");
  writer.value_number(histogram.p99());
  // Sparse buckets: [upper_bound, count] pairs, +inf overflow as null bound.
  writer.key("buckets");
  writer.begin_array();
  const auto& bounds = histogram.upper_bounds();
  const auto& counts = histogram.bucket_counts();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    writer.begin_array();
    if (i < bounds.size()) {
      writer.value_number(bounds[i]);
    } else {
      writer.value_null();
    }
    writer.value_uint(counts[i]);
    writer.end_array();
  }
  writer.end_array();
  writer.end_object();
}

void write_trace_json(json::Writer& writer, const Trace::Node& node) {
  writer.begin_object();
  writer.key("name");
  writer.value_string(node.name);
  writer.key("wall_ms");
  writer.value_number(node.wall_ms);
  if (!node.children.empty()) {
    writer.key("children");
    writer.begin_array();
    for (const auto& child : node.children) write_trace_json(writer, *child);
    writer.end_array();
  }
  writer.end_object();
}

}  // namespace

std::string render_metrics_text(const RunContext& context,
                                const TextExportOptions& options) {
  const MetricsRegistry& metrics = context.metrics;
  std::string out;

  if (options.counters && !metrics.counters().empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : metrics.counters()) {
      out += "  " + name + " = " + std::to_string(value) + "\n";
    }
  }
  if (options.gauges && !metrics.gauges().empty()) {
    out += "gauges:\n";
    for (const auto& [name, value] : metrics.gauges()) {
      out += "  " + name + " = " + format_value(value) + "\n";
    }
  }
  if (options.histograms && !metrics.histograms().empty()) {
    out += "histograms:\n";
    for (const auto& [name, histogram] : metrics.histograms()) {
      render_distribution_line(out, name, histogram);
    }
  }
  if (options.timings && !metrics.timings().empty()) {
    out += "timings (ms, machine-dependent):\n";
    for (const auto& [name, histogram] : metrics.timings()) {
      render_distribution_line(out, name, histogram);
    }
  }
  if (options.manifest) {
    const RunManifest manifest = build_run_manifest(context);
    if (!manifest.config.empty()) {
      out += "run config:\n";
      for (const auto& [key, value] : manifest.config) {
        out += "  " + key + " = " + value + "\n";
      }
    }
    if (!manifest.stages.empty()) {
      out += "stages (in -> admitted + dropped, wall ms):\n";
      for (const StageManifest& stage : manifest.stages) {
        out += "  " + stage.name + ": in=" + std::to_string(stage.records_in) +
               " admitted=" + std::to_string(stage.admitted) +
               " dropped=" + std::to_string(stage.dropped);
        if (stage.timed) out += " wall=" + format_ms(stage.wall_ms) + "ms";
        if (!stage.reconciles()) out += "  [DOES NOT RECONCILE]";
        out += "\n";
      }
      out += "total traced wall time: " + format_ms(manifest.total_wall_ms) +
             " ms\n";
    }
  }
  if (options.trace && context.trace.node_count() > 0) {
    out += "trace:\n";
    out += context.trace.render();
  }
  return out;
}

std::string export_metrics_json(const RunContext& context) {
  const MetricsRegistry& metrics = context.metrics;
  json::Writer writer;
  writer.begin_object();
  writer.key("schema");
  writer.value_string(kMetricsSchemaName);
  writer.key("schema_version");
  writer.value_uint(static_cast<std::uint64_t>(kMetricsSchemaVersion));

  writer.key("counters");
  writer.begin_object();
  for (const auto& [name, value] : metrics.counters()) {
    writer.key(name);
    writer.value_uint(value);
  }
  writer.end_object();

  writer.key("gauges");
  writer.begin_object();
  for (const auto& [name, value] : metrics.gauges()) {
    writer.key(name);
    writer.value_number(value);
  }
  writer.end_object();

  writer.key("histograms");
  writer.begin_object();
  for (const auto& [name, histogram] : metrics.histograms()) {
    writer.key(name);
    write_distribution_json(writer, histogram);
  }
  writer.end_object();

  writer.key("timings_ms");
  writer.begin_object();
  for (const auto& [name, histogram] : metrics.timings()) {
    writer.key(name);
    write_distribution_json(writer, histogram);
  }
  writer.end_object();

  writer.key("trace");
  write_trace_json(writer, context.trace.root());

  const RunManifest manifest = build_run_manifest(context);
  writer.key("manifest");
  writer.begin_object();
  writer.key("config");
  writer.begin_object();
  for (const auto& [key, value] : manifest.config) {
    writer.key(key);
    writer.value_string(value);
  }
  writer.end_object();
  writer.key("total_wall_ms");
  writer.value_number(manifest.total_wall_ms);
  writer.key("stages");
  writer.begin_array();
  for (const StageManifest& stage : manifest.stages) {
    writer.begin_object();
    writer.key("name");
    writer.value_string(stage.name);
    writer.key("in");
    writer.value_uint(stage.records_in);
    writer.key("admitted");
    writer.value_uint(stage.admitted);
    writer.key("dropped");
    writer.value_uint(stage.dropped);
    writer.key("wall_ms");
    writer.value_number(stage.wall_ms);
    writer.key("reconciles");
    writer.value_bool(stage.reconciles());
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();

  writer.end_object();
  std::string out = std::move(writer).str();
  out.push_back('\n');
  return out;
}

bool write_metrics_json(const RunContext& context, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << export_metrics_json(context);
  return static_cast<bool>(out);
}

}  // namespace certchain::obs
