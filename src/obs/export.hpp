// Exporters: one telemetry state, two renderings.
//
// render_metrics_text produces the human section appended to study reports
// and printed by the profiling tools. export_metrics_json produces the
// schema-versioned machine document (counters / gauges / histograms /
// timings / trace / manifest) meant to be written next to BENCH_*.json
// results and diffed across PRs. Counters and gauges are exact; histograms
// and timings carry count/sum/min/max/p50/p90/p99 plus raw buckets.
#pragma once

#include <string>

#include "obs/manifest.hpp"
#include "obs/run_context.hpp"

namespace certchain::obs {

struct TextExportOptions {
  bool counters = true;
  bool gauges = true;
  bool histograms = true;
  bool timings = true;
  bool manifest = true;
  bool trace = false;  // the tree can get long; off by default in reports
};

/// Pretty text rendering of a run's telemetry.
std::string render_metrics_text(const RunContext& context,
                                const TextExportOptions& options = {});

/// Schema-versioned JSON document (see kMetricsSchemaName / Version).
std::string export_metrics_json(const RunContext& context);

/// Writes export_metrics_json to a file. Returns false on I/O failure.
bool write_metrics_json(const RunContext& context, const std::string& path);

}  // namespace certchain::obs
