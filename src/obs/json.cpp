#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace certchain::obs::json {

std::string quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string number(double value) {
  if (!std::isfinite(value)) return "null";
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::fabs(value) < 9e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

void Writer::open(char bracket) {
  separate();
  out_.push_back(bracket);
  first_in_scope_.push_back(true);
}

void Writer::close(char bracket) {
  out_.push_back(bracket);
  if (!first_in_scope_.empty()) first_in_scope_.pop_back();
}

void Writer::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (first_in_scope_.empty()) return;
  if (first_in_scope_.back()) {
    first_in_scope_.back() = false;
  } else {
    out_.push_back(',');
  }
}

void Writer::key(std::string_view name) {
  separate();
  out_ += quote(name);
  out_.push_back(':');
  pending_key_ = true;
}

void Writer::value_string(std::string_view text) {
  separate();
  out_ += quote(text);
}

void Writer::value_number(double value) {
  separate();
  out_ += number(value);
}

void Writer::value_uint(std::uint64_t value) {
  separate();
  out_ += std::to_string(value);
}

void Writer::value_bool(bool value) {
  separate();
  out_ += value ? "true" : "false";
}

void Writer::value_null() {
  separate();
  out_ += "null";
}

void Writer::value_raw(std::string_view json) {
  separate();
  out_ += json;
}

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Value> run() {
    skip_whitespace();
    Value value;
    if (!parse_value(value)) return std::nullopt;
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing garbage");
      return std::nullopt;
    }
    return value;
  }

 private:
  bool fail(const char* reason) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(reason) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ >= text_.size() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.kind = Value::Kind::kString; return parse_string(out.string);
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.kind = Value::Kind::kObject;
    ++pos_;  // '{'
    skip_whitespace();
    if (consume('}')) return true;
    while (true) {
      skip_whitespace();
      std::string key;
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (!consume(':')) return fail("expected ':'");
      skip_whitespace();
      Value value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out) {
    out.kind = Value::Kind::kArray;
    ++pos_;  // '['
    skip_whitespace();
    if (consume(']')) return true;
    while (true) {
      skip_whitespace();
      Value value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // The exporters only emit \u00XX control escapes; decode the
          // single-byte range and pass anything else through as '?'.
          out.push_back(code < 0x100 ? static_cast<char>(code) : '?');
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_bool(Value& out) {
    out.kind = Value::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(Value& out) {
    out.kind = Value::Kind::kNull;
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(Value& out) {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(text_[pos_]));
      ++pos_;
    }
    if (!digits) return fail("expected value");
    out.kind = Value::Kind::kNumber;
    out.num = std::strtod(std::string(text_.substr(begin, pos_ - begin)).c_str(),
                          nullptr);
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text, error).run();
}

}  // namespace certchain::obs::json
