// Minimal JSON support for the metrics exporters.
//
// The writer side is a small builder that produces compact, valid JSON with
// deterministic key order (callers iterate ordered maps). The reader side is
// a strict-enough recursive-descent parser used by the round-trip tests and
// by anything that wants to diff two exported metrics files. Neither side
// aims to be a general-purpose JSON library — no comments, no NaN/Infinity
// literals (non-finite doubles are emitted as null), UTF-8 passed through.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace certchain::obs::json {

/// Escapes and quotes a string for embedding in JSON output.
std::string quote(std::string_view text);

/// Renders a double as a JSON number (null when not finite). Integral values
/// print without a fractional part so counters stay greppable.
std::string number(double value);

/// Incremental writer for nested objects/arrays. Usage:
///   Writer w;
///   w.begin_object();
///   w.key("counters"); w.begin_object(); ... w.end_object();
///   w.end_object();
///   std::string out = std::move(w).str();
class Writer {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(std::string_view name);
  void value_string(std::string_view text);
  void value_number(double value);
  void value_uint(std::uint64_t value);
  void value_bool(bool value);
  void value_null();
  /// Emits pre-rendered JSON verbatim (caller guarantees validity).
  void value_raw(std::string_view json);

  std::string str() && { return std::move(out_); }
  const std::string& str() const& { return out_; }

 private:
  void open(char bracket);
  void close(char bracket);
  void separate();

  std::string out_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

/// Parsed JSON value.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double num = 0.0;
  std::string string;
  std::vector<std::pair<std::string, Value>> object;  // in document order
  std::vector<Value> array;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). On failure returns nullopt and, when `error` is given,
/// a short reason with the byte offset.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

}  // namespace certchain::obs::json
