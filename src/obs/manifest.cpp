#include "obs/manifest.hpp"

#include <algorithm>

namespace certchain::obs {

namespace {

constexpr std::string_view kStagePrefix = "stage.";

void sum_matching_nodes(const Trace::Node& node, std::string_view name,
                        double& wall_ms, bool& found) {
  for (const auto& child : node.children) {
    if (child->name == name) {
      wall_ms += child->wall_ms;
      found = true;
    }
    sum_matching_nodes(*child, name, wall_ms, found);
  }
}

void collect_trace_order(const Trace::Node& node,
                         std::vector<std::string>& order) {
  for (const auto& child : node.children) {
    if (std::find(order.begin(), order.end(), child->name) == order.end()) {
      order.push_back(child->name);
    }
    collect_trace_order(*child, order);
  }
}

}  // namespace

const StageManifest* RunManifest::stage(std::string_view name) const {
  for (const StageManifest& entry : stages) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

bool RunManifest::reconciles() const {
  return std::all_of(stages.begin(), stages.end(),
                     [](const StageManifest& s) { return s.reconciles(); });
}

RunManifest build_run_manifest(const RunContext& context) {
  RunManifest manifest;
  manifest.config = context.config;
  manifest.total_wall_ms = context.trace.total_ms();

  // Discover stages from the reserved counter triple. Counters are stored in
  // an ordered map, so this pass is deterministic.
  std::map<std::string, StageManifest> by_name;
  for (const auto& [name, value] : context.metrics.counters()) {
    if (name.rfind(kStagePrefix, 0) != 0) continue;
    const std::string_view rest =
        std::string_view(name).substr(kStagePrefix.size());
    const std::size_t dot = rest.rfind('.');
    if (dot == std::string_view::npos) continue;
    const std::string_view stage_name = rest.substr(0, dot);
    const std::string_view field = rest.substr(dot + 1);
    StageManifest& stage = by_name[std::string(stage_name)];
    stage.name = std::string(stage_name);
    if (field == "in") stage.records_in = value;
    else if (field == "admitted") stage.admitted = value;
    else if (field == "dropped") stage.dropped = value;
  }

  // Wall time: sum every trace node carrying the stage's name (a stage can
  // run once per input stream, e.g. "ingest" for ssl + x509).
  for (auto& [name, stage] : by_name) {
    sum_matching_nodes(context.trace.root(), name, stage.wall_ms, stage.timed);
  }

  // Order stages by first appearance in the trace (pipeline order); stages
  // that never opened a span follow alphabetically.
  std::vector<std::string> trace_order;
  collect_trace_order(context.trace.root(), trace_order);
  for (const std::string& name : trace_order) {
    const auto it = by_name.find(name);
    if (it == by_name.end()) continue;
    manifest.stages.push_back(std::move(it->second));
    by_name.erase(it);
  }
  for (auto& [name, stage] : by_name) manifest.stages.push_back(std::move(stage));
  return manifest;
}

}  // namespace certchain::obs
