// RunManifest: the accountant's view of one run.
//
// Large-scale measurement studies live or die on being able to state, for
// every processing stage, how many records went in, how many came out, and
// where the rest went. The manifest derives exactly that from the registry's
// reserved `stage.<name>.{in,admitted,dropped}` counter triple, pairs each
// stage with its wall time from the trace tree, and carries the run's config
// snapshot — enough to diff two runs ("same admit/drop counts, 2x faster")
// without re-reading logs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/run_context.hpp"

namespace certchain::obs {

/// Schema identity for the JSON export; bump kSchemaVersion on any breaking
/// change to field names or meaning (see DESIGN.md §9.3).
inline constexpr std::string_view kMetricsSchemaName = "certchain.obs.metrics";
inline constexpr int kMetricsSchemaVersion = 1;

struct StageManifest {
  std::string name;
  double wall_ms = 0.0;   // 0 when the stage never opened a span
  bool timed = false;     // true when a trace node matched the stage name
  std::uint64_t records_in = 0;
  std::uint64_t admitted = 0;
  std::uint64_t dropped = 0;

  /// The accounting invariant every stage must satisfy.
  bool reconciles() const { return records_in == admitted + dropped; }
};

struct RunManifest {
  std::map<std::string, std::string> config;
  std::vector<StageManifest> stages;  // in trace order, then alphabetical
  double total_wall_ms = 0.0;         // sum of top-level trace spans

  const StageManifest* stage(std::string_view name) const;
  bool reconciles() const;
};

/// Builds the manifest from a run's registry + trace. Stages are discovered
/// from `stage.<name>.*` counters; wall times are summed over trace nodes
/// whose name equals the stage name.
RunManifest build_run_manifest(const RunContext& context);

}  // namespace certchain::obs
