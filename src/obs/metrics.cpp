#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>

namespace certchain::obs {

std::string metric_slug(std::string_view text) {
  std::string slug;
  slug.reserve(text.size());
  for (const char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      slug.push_back(static_cast<char>(std::tolower(u)));
    } else if (c == '.') {
      slug.push_back('.');
    } else {
      slug.push_back('_');
    }
  }
  return slug;
}

std::vector<double> FixedHistogram::default_bounds() {
  // 1-2-5 decades from 0.001 to 1e7: fine enough for sub-millisecond timings
  // and wide enough for campus-scale record counts.
  std::vector<double> bounds;
  for (double decade = 0.001; decade < 5e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

FixedHistogram::FixedHistogram(std::vector<double> upper_bounds)
    : bounds_(upper_bounds.empty() ? default_bounds() : std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0) {}

void FixedHistogram::observe(double value, std::uint64_t count) {
  if (count == 0) return;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += value * static_cast<double>(count);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += count;
}

void FixedHistogram::merge_from(const FixedHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  if (bounds_ == other.bounds_) {
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  } else {
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
      if (other.counts_[i] == 0) continue;
      const double value =
          i < other.bounds_.size() ? other.bounds_[i] : other.max_;
      const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
      counts_[static_cast<std::size_t>(it - bounds_.begin())] += other.counts_[i];
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double FixedHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank target, then linear interpolation inside the bucket.
  const double target = q * static_cast<double>(count_ - 1) + 1.0;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double bucket_begin = static_cast<double>(cumulative) + 1.0;
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) + 1e-9 < target) continue;

    const double lo = i == 0 ? min_ : std::max(min_, bounds_[i - 1]);
    const double hi = i < bounds_.size() ? std::min(max_, bounds_[i]) : max_;
    const double width = static_cast<double>(counts_[i]);
    const double position =
        width <= 1.0 ? 0.0
                     : std::clamp((target - bucket_begin) / (width - 1.0), 0.0, 1.0);
    const double estimate = lo + (hi - lo) * position;
    return std::clamp(estimate, min_, max_);
  }
  return max_;
}

void MetricsRegistry::count(std::string_view name, std::uint64_t delta) {
  counters_[std::string(name)] += delta;
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  gauges_[std::string(name)] = value;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0.0 : it->second;
}

FixedHistogram& MetricsRegistry::histogram(std::string_view name,
                                           std::vector<double> bounds) {
  const auto it = histograms_.find(std::string(name));
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::string(name), FixedHistogram(std::move(bounds)))
      .first->second;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  histogram(name).observe(value);
}

void MetricsRegistry::observe_timing(std::string_view name, double ms) {
  const auto it = timings_.find(std::string(name));
  if (it != timings_.end()) {
    it->second.observe(ms);
    return;
  }
  timings_.emplace(std::string(name), FixedHistogram()).first->second.observe(ms);
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  for (const auto& [name, histogram] : other.histograms_) {
    const auto [it, inserted] = histograms_.try_emplace(name, histogram);
    if (!inserted) it->second.merge_from(histogram);
  }
  for (const auto& [name, timing] : other.timings_) {
    const auto [it, inserted] = timings_.try_emplace(name, timing);
    if (!inserted) it->second.merge_from(timing);
  }
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  timings_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace certchain::obs
