// Process-wide but injectable metrics registry.
//
// Every layer of the pipeline reports what it admitted and dropped through a
// MetricsRegistry: monotonically increasing counters, last-write gauges, and
// fixed-bucket histograms with percentile estimates. Names follow one
// convention (see DESIGN.md §9): dot-separated lowercase path segments with
// snake_case leaves, e.g. `stage.ingest.ssl.rows_malformed`. The reserved
// triple `stage.<name>.{in,admitted,dropped}` is what RunManifest folds into
// per-stage record accounting.
//
// Determinism contract: counters, gauges and histogram *counts* are exact
// functions of the input and are asserted exactly in tests. Wall time never
// enters this registry as a counter — durations live in the separate timing
// map (`observe_timing`) and in the trace tree, so exporters and tests can
// treat "numbers that must reproduce" and "numbers that depend on the
// machine" differently.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace certchain::obs {

/// Lowercases and maps every non-[a-z0-9.] character to '_' so display
/// strings ("TLS interception", "connect-timeout") can be embedded in metric
/// names without violating the naming convention.
std::string metric_slug(std::string_view text);

/// Fixed-bucket histogram: cumulative-style buckets defined by ascending
/// upper bounds plus an implicit +inf overflow bucket. Percentiles are
/// estimated by linear interpolation inside the owning bucket and clamped to
/// the observed [min, max], which makes the edge cases exact: an empty
/// histogram reports 0 everywhere, a single sample reports itself at every
/// quantile.
class FixedHistogram {
 public:
  /// `upper_bounds` must be strictly ascending; empty selects the default
  /// decade-ish grid suited to counts and millisecond timings.
  explicit FixedHistogram(std::vector<double> upper_bounds = {});

  static std::vector<double> default_bounds();

  void observe(double value, std::uint64_t count = 1);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Quantile estimate for q in [0, 1]. 0 when empty.
  double percentile(double q) const;

  /// Folds another histogram in. count/sum/min/max merge exactly regardless
  /// of grids. Bucket counts add bucket-wise when both histograms share the
  /// same bounds (the common case — every registry names one grid per
  /// series); with differing grids each foreign bucket is refiled at its
  /// upper bound (overflow at the foreign max), which keeps totals exact but
  /// makes bucket placement approximate.
  void merge_from(const FixedHistogram& other);
  double p50() const { return percentile(0.50); }
  double p90() const { return percentile(0.90); }
  double p99() const { return percentile(0.99); }

  /// Bucket upper bounds (excluding the +inf overflow bucket).
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts; size is upper_bounds().size() + 1 (last = overflow).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  // --- counters (monotonic, exact) ---------------------------------------
  void count(std::string_view name, std::uint64_t delta = 1);
  std::uint64_t counter(std::string_view name) const;
  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

  // --- gauges (last write wins) ------------------------------------------
  void set_gauge(std::string_view name, double value);
  double gauge(std::string_view name) const;
  const std::map<std::string, double>& gauges() const { return gauges_; }

  // --- value histograms (deterministic distributions, e.g. chain lengths) -
  /// Returns the named histogram, creating it with `bounds` (or the default
  /// grid) on first use. Bounds of an existing histogram are not changed.
  FixedHistogram& histogram(std::string_view name,
                            std::vector<double> bounds = {});
  void observe(std::string_view name, double value);
  const std::map<std::string, FixedHistogram>& histograms() const {
    return histograms_;
  }

  // --- timings (real durations, milliseconds; never asserted exactly) -----
  void observe_timing(std::string_view name, double ms);
  const std::map<std::string, FixedHistogram>& timings() const {
    return timings_;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           timings_.empty();
  }
  void clear();

  /// Folds another registry in — the merge step of the sharded pipeline:
  /// shard-local registries are merged into the run's registry in shard
  /// order, after which the counters are indistinguishable from a serial
  /// run's. Counters sum; gauges keep last-write-wins semantics (the merged
  /// registry's value overwrites, so merge in shard order); histograms merge
  /// via FixedHistogram::merge_from. Timings merge the same way but stay in
  /// the separate timing map — wall time never becomes a counter.
  void merge_from(const MetricsRegistry& other);

  /// The process-wide default instance. Components take a registry by
  /// pointer so tests and tools can inject their own; code that wants the
  /// ambient one passes &MetricsRegistry::global().
  static MetricsRegistry& global();

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, FixedHistogram> histograms_;
  std::map<std::string, FixedHistogram> timings_;
};

}  // namespace certchain::obs
