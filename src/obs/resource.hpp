// Process resource observation for the streaming engine's memory claims.
//
// The bounded-memory contract ("peak residency is O(chunk), not O(corpus)")
// is only credible if the pipeline can report its own high-water mark:
// streamed runs publish `mem.peak_rss_bytes` as a gauge, and
// bench_ext_streaming plots it against corpus size. Peak RSS is a
// machine-dependent number and is therefore never asserted exactly —
// exporters and tests treat it like a timing, not a counter.
#pragma once

#include <cstdint>

namespace certchain::obs {

/// The process's peak resident set size in bytes (ru_maxrss), 0 when the
/// platform cannot report it. Monotonic over the process lifetime.
std::uint64_t peak_rss_bytes();

}  // namespace certchain::obs
