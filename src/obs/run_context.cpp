#include "obs/run_context.hpp"

namespace certchain::obs {

RunContext& RunContext::global() {
  static RunContext instance;
  return instance;
}

StageTimer::StageTimer(RunContext& context, std::string name)
    : metrics_(&context.metrics),
      metric_name_("time." + name + ".ms"),
      span_(context.trace.span(std::move(name))) {}

void StageTimer::stop() {
  if (stopped_) return;
  stopped_ = true;
  const double ms = span_.elapsed_ms();
  span_.stop();
  metrics_->observe_timing(metric_name_, ms);
}

}  // namespace certchain::obs
