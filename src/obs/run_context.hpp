// The unit of observability for one run: a metrics registry, a trace tree,
// and the config snapshot the RunManifest is built from.
//
// Components accept a RunContext* (nullptr = telemetry off, zero overhead
// beyond the branch); tools that want ambient process-wide telemetry pass
// &RunContext::global(). StageTimer is the standard way to mark a pipeline
// stage: it opens a span in the trace AND records the duration into the
// registry's timing map as `time.<name>.ms`, so both the trace tree and the
// flat exporters see the same number.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace certchain::obs {

struct RunContext {
  MetricsRegistry metrics;
  Trace trace;
  /// Free-form config snapshot ("seed", "scale", "mode", ...) surfaced
  /// verbatim by the RunManifest.
  std::map<std::string, std::string> config;

  void set_config(std::string_view key, std::string_view value) {
    config[std::string(key)] = std::string(value);
  }
  void set_config(std::string_view key, std::uint64_t value) {
    config[std::string(key)] = std::to_string(value);
  }

  void clear() {
    metrics.clear();
    trace.clear();
    config.clear();
  }

  /// Ambient process-wide context, for tools that don't thread their own.
  static RunContext& global();
};

/// RAII stage scope: trace span + `time.<name>.ms` timing on close.
class StageTimer {
 public:
  StageTimer(RunContext& context, std::string name);
  StageTimer(StageTimer&&) = default;
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() { stop(); }

  /// Closes the span and records the timing; idempotent.
  void stop();

  double elapsed_ms() const { return span_.elapsed_ms(); }

 private:
  MetricsRegistry* metrics_;
  std::string metric_name_;
  Span span_;
  bool stopped_ = false;
};

}  // namespace certchain::obs
