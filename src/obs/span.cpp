#include "obs/span.hpp"

#include <cstdio>

namespace certchain::obs {

Span Trace::span(std::string name) { return Span(this, open(std::move(name))); }

void Trace::attach_closed(std::string name, double wall_ms) {
  Node* parent = open_stack_.empty() ? &root_ : open_stack_.back();
  parent->children.push_back(std::make_unique<Node>());
  Node* node = parent->children.back().get();
  node->name = std::move(name);
  node->wall_ms = wall_ms;
  node->closed = true;
}

Trace::Node* Trace::open(std::string name) {
  Node* parent = open_stack_.empty() ? &root_ : open_stack_.back();
  parent->children.push_back(std::make_unique<Node>());
  Node* node = parent->children.back().get();
  node->name = std::move(name);
  open_stack_.push_back(node);
  return node;
}

void Trace::close(Node* node, double wall_ms) {
  node->wall_ms = wall_ms;
  node->closed = true;
  // Spans are RAII so closes arrive innermost-first; tolerate out-of-order
  // closes (e.g. a moved-from span outliving its children) by unwinding.
  while (!open_stack_.empty()) {
    Node* top = open_stack_.back();
    open_stack_.pop_back();
    if (top == node) break;
    top->closed = true;
  }
}

double Trace::total_ms() const {
  double total = 0.0;
  for (const auto& child : root_.children) total += child->wall_ms;
  return total;
}

namespace {

std::size_t count_nodes(const Trace::Node& node) {
  std::size_t count = node.children.size();
  for (const auto& child : node.children) count += count_nodes(*child);
  return count;
}

void render_node(const Trace::Node& node, int depth, std::string& out) {
  char duration[48];
  std::snprintf(duration, sizeof(duration), "%10.3f ms", node.wall_ms);
  out.append(duration);
  out.append("  ");
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out.append(node.name);
  if (!node.closed) out.append(" (open)");
  out.push_back('\n');
  for (const auto& child : node.children) render_node(*child, depth + 1, out);
}

}  // namespace

std::size_t Trace::node_count() const { return count_nodes(root_); }

std::string Trace::render() const {
  std::string out;
  for (const auto& child : root_.children) render_node(*child, 0, out);
  return out;
}

void Trace::clear() {
  root_.children.clear();
  open_stack_.clear();
}

void Span::stop() {
  if (trace_ == nullptr || node_ == nullptr) return;
  trace_->close(node_, watch_.elapsed_ms());
  trace_ = nullptr;
  node_ = nullptr;
}

const std::string& Span::name() const {
  static const std::string kClosed = "(closed)";
  return node_ == nullptr ? kClosed : node_->name;
}

}  // namespace certchain::obs
