// Per-run trace tree and RAII span scopes.
//
// A Trace is a tree of named timed scopes: opening a Span makes it a child
// of the innermost open span, so nested StageTimers in the pipeline produce
// the run's call structure ("pipeline" > "join" > ...) with real wall-clock
// durations at every node. Spans close in destructor order (RAII), so the
// tree is always well-formed even on early returns and exceptions.
//
// Durations are real time and therefore non-deterministic; everything else
// about the tree (names, structure, child order) is an exact function of the
// code path and is safe to assert in tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/stopwatch.hpp"

namespace certchain::obs {

class Span;

class Trace {
 public:
  struct Node {
    std::string name;
    double wall_ms = 0.0;
    bool closed = false;
    std::vector<std::unique_ptr<Node>> children;
  };

  Trace() { root_.name = "run"; }

  // The root owns raw pointers into itself; moving would dangle the open
  // stack, so a Trace stays where it was constructed.
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Opens a span as a child of the innermost open span (or of the root).
  Span span(std::string name);

  /// Attaches an already-measured, closed child under the innermost open
  /// span (or the root). This is how parallel shards land in the trace: a
  /// Trace is not thread-safe, so workers time themselves on a Stopwatch and
  /// the coordinating thread attaches the nodes in shard order after the
  /// batch barrier — deterministic structure, real per-shard durations.
  void attach_closed(std::string name, double wall_ms);

  const Node& root() const { return root_; }

  /// Sum of the top-level spans' durations (the root itself is never timed).
  double total_ms() const;

  /// Number of nodes excluding the root.
  std::size_t node_count() const;

  /// Indented text rendering, durations in milliseconds.
  std::string render() const;

  void clear();

 private:
  friend class Span;

  Node* open(std::string name);
  void close(Node* node, double wall_ms);

  Node root_;
  std::vector<Node*> open_stack_;  // innermost open span last
};

/// RAII scope: records its wall time into the owning Trace on destruction.
class Span {
 public:
  Span(Span&& other) noexcept
      : trace_(other.trace_), node_(other.node_), watch_(other.watch_) {
    other.trace_ = nullptr;
    other.node_ = nullptr;
  }
  Span& operator=(Span&&) = delete;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { stop(); }

  /// Closes the span early; idempotent.
  void stop();

  double elapsed_ms() const { return watch_.elapsed_ms(); }
  const std::string& name() const;

 private:
  friend class Trace;
  Span(Trace* trace, Trace::Node* node) : trace_(trace), node_(node) {}

  Trace* trace_;
  Trace::Node* node_;
  Stopwatch watch_;
};

}  // namespace certchain::obs
