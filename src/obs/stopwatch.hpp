// The one clock abstraction shared by the telemetry subsystem, the bench
// harnesses and the profiling tools.
//
// Everything that measures real wall time goes through Stopwatch so there is
// exactly one place that decides which clock is read (steady_clock: immune to
// NTP steps) and one unit convention (fractional milliseconds). Count
// metrics are deterministic and asserted exactly in tests; durations are
// real and never are — keeping them behind one type makes that boundary easy
// to see at call sites.
#pragma once

#include <chrono>

namespace certchain::obs {

class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Fractional milliseconds since construction / the last restart().
  double elapsed_ms() const { return ms_between(start_, Clock::now()); }
  double elapsed_seconds() const { return elapsed_ms() / 1000.0; }

  static double ms_between(Clock::time_point begin, Clock::time_point end) {
    return std::chrono::duration<double, std::milli>(end - begin).count();
  }

 private:
  Clock::time_point start_;
};

}  // namespace certchain::obs
