// Execution options shared by every parallel-capable analyzer entry point.
//
// Layers below core (chain::lint_chains) cannot depend on core::RunOptions,
// but still want the uniform `(input, options, obs)` call shape the unified
// pipeline API uses (DESIGN.md §11). ExecOptions is the layer-neutral subset:
// just the worker count, with the same semantics RunOptions::threads has —
// resolve_threads(threads) <= 1 runs the serial code path, anything else
// builds a pool, and the result is identical either way.
#pragma once

#include <cstddef>

namespace certchain::par {

struct ExecOptions {
  /// Worker count: 1 (default) runs serial, 0 resolves to hardware
  /// concurrency, N > 1 runs N-way parallel with deterministic merges.
  std::size_t threads = 1;
};

}  // namespace certchain::par
