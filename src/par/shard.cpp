#include "par/shard.hpp"

namespace certchain::par {

std::vector<TextShard> split_line_aligned(std::string_view text,
                                          std::size_t shards) {
  std::vector<TextShard> out;
  if (shards == 0) return out;
  out.reserve(shards);

  std::size_t previous = 0;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    std::size_t boundary;
    if (shard + 1 == shards) {
      boundary = text.size();
    } else {
      // Even-split target, then advance to the first line-aligned position
      // at or after it. Searching from target - 1 accepts a target that
      // already sits just past a newline.
      const std::size_t target = (shard + 1) * text.size() / shards;
      if (target <= previous) {
        boundary = previous;
      } else {
        const std::size_t newline = text.find('\n', target - 1);
        boundary = newline == std::string_view::npos ? text.size() : newline + 1;
      }
      if (boundary < previous) boundary = previous;
    }
    out.push_back(TextShard{shard, previous,
                            text.substr(previous, boundary - previous)});
    previous = boundary;
  }
  return out;
}

}  // namespace certchain::par
