// Line-aligned text sharding.
//
// The ingestion side of the sharded pipeline: raw Zeek log text is split
// into N contiguous views whose boundaries always fall immediately after a
// '\n', so no line is ever split across shards and each shard can be parsed
// by an independent streaming reader. Concatenating the shards in index
// order reproduces the input byte-for-byte — the invariant the differential
// suite's accounting checks (bytes, lines, records) rest on.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace certchain::par {

/// One contiguous, line-aligned slice of a larger text.
struct TextShard {
  std::size_t index = 0;   // shard position, 0-based
  std::size_t offset = 0;  // byte offset of `text` within the original input
  std::string_view text;
};

/// Splits `text` into exactly `shards` line-aligned slices. Every byte of
/// the input lands in exactly one shard; a boundary is only placed at
/// position p when p == 0 or text[p - 1] == '\n'. When the text has fewer
/// lines than requested shards, the surplus shards are empty (kept so shard
/// indices stay stable for per-shard result slots). `shards` must be >= 1.
std::vector<TextShard> split_line_aligned(std::string_view text,
                                          std::size_t shards);

}  // namespace certchain::par
