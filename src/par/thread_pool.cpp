#include "par/thread_pool.hpp"

#include <exception>
#include <utility>

namespace certchain::par {

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<std::size_t>(hardware);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = resolve_threads(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.emplace_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::run_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;

  // The batch state lives on this stack frame; run_batch blocks until
  // `pending` hits zero, so the tasks' references stay valid.
  struct Batch {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t pending = 0;
    std::vector<std::exception_ptr> errors;
  };
  Batch batch;
  batch.pending = tasks.size();
  batch.errors.resize(tasks.size());

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      queue_.emplace_back([&batch, i, task = std::move(tasks[i])] {
        try {
          task();
        } catch (...) {
          batch.errors[i] = std::current_exception();
        }
        std::lock_guard<std::mutex> batch_lock(batch.mutex);
        if (--batch.pending == 0) batch.done.notify_all();
      });
    }
  }
  work_available_.notify_all();

  std::unique_lock<std::mutex> batch_lock(batch.mutex);
  batch.done.wait(batch_lock, [&batch] { return batch.pending == 0; });
  for (std::exception_ptr& error : batch.errors) {
    if (error) std::rethrow_exception(error);
  }
}

void parallel_for_chunks(
    ThreadPool* pool, std::size_t total, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (chunks == 0) return;
  const auto chunk_begin = [total, chunks](std::size_t chunk) {
    return chunk * total / chunks;
  };
  if (pool == nullptr || chunks == 1) {
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      body(chunk, chunk_begin(chunk), chunk_begin(chunk + 1));
    }
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
    tasks.emplace_back([&body, chunk, begin = chunk_begin(chunk),
                        end = chunk_begin(chunk + 1)] { body(chunk, begin, end); });
  }
  pool->run_batch(std::move(tasks));
}

}  // namespace certchain::par
