// Work-stealing-free thread pool and chunked parallel-for.
//
// The execution layer for the sharded pipeline (DESIGN.md §10). A fixed set
// of workers pulls tasks FIFO from a single queue — no stealing, no
// per-worker deques — because determinism never comes from scheduling here:
// callers write shard results into per-shard slots and merge them in shard
// order on the coordinating thread. The pool only guarantees that every task
// of a batch ran and that its writes are visible when the batch barrier
// returns (the barrier's mutex establishes the happens-before edge).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <condition_variable>
#include <thread>
#include <vector>

namespace certchain::par {

/// Resolves a requested worker count: 0 means "whatever the hardware says"
/// (at least 1); anything else is taken literally.
std::size_t resolve_threads(std::size_t requested);

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs every task and blocks until all of them finished. Tasks may run on
  /// any worker in any order; the calling thread only waits. If tasks threw,
  /// the exception of the lowest task index is rethrown after the batch
  /// drained (so a failure never leaves tasks running against destroyed
  /// caller state). Must not be called from inside one of the pool's own
  /// tasks — the workers blocking on the inner batch would deadlock.
  void run_batch(std::vector<std::function<void()>> tasks);

  /// Enqueues one task without waiting for it — the service-layer shape
  /// (svc::Server submits its long-running request-worker loops this way).
  /// The task must not throw; an escaping exception would terminate the
  /// worker thread's std::function call and the process. The destructor
  /// still drains the queue before joining, so every submitted task runs.
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

/// Splits [0, total) into exactly `chunks` contiguous index ranges — chunk k
/// is [begin_k, end_k) with begin_0 = 0, end_{chunks-1} = total, sizes as
/// even as integer division allows — and runs `body(chunk, begin, end)` for
/// every chunk, including empty ones (so per-chunk result slots stay aligned
/// with chunk indices). With a null pool or a single chunk the body runs
/// inline on the calling thread, in chunk order; otherwise chunks run as one
/// pool batch. Blocks until every chunk completed; rethrows the first
/// chunk's exception (by chunk index).
void parallel_for_chunks(
    ThreadPool* pool, std::size_t total, std::size_t chunks,
    const std::function<void(std::size_t chunk, std::size_t begin,
                             std::size_t end)>& body);

}  // namespace certchain::par
