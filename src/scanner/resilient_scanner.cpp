#include "scanner/resilient_scanner.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "x509/pem.hpp"

namespace certchain::scanner {

using netsim::FaultEvent;
using netsim::FaultKind;
using netsim::FaultPlan;

std::string_view scan_error_name(ScanError error) {
  switch (error) {
    case ScanError::kNone: return "ok";
    case ScanError::kConnectTimeout: return "connect-timeout";
    case ScanError::kConnectionReset: return "connection-reset";
    case ScanError::kTruncatedBundle: return "truncated-bundle";
    case ScanError::kCorruptBundle: return "corrupt-bundle";
    case ScanError::kUnreachable: return "unreachable";
    case ScanError::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "unknown";
}

void ScanLedger::merge(const ScanLedger& other) {
  targets += other.targets;
  attempts += other.attempts;
  retries += other.retries;
  successes += other.successes;
  salvaged += other.salvaged;
  failures += other.failures;
  backoff_ms_total += other.backoff_ms_total;
  certs_salvaged += other.certs_salvaged;
  certs_dropped += other.certs_dropped;
  for (const auto& [error, count] : other.error_counts) {
    error_counts[error] += count;
  }
}

ScanLedger ScanLedger::delta_since(const ScanLedger& before) const {
  ScanLedger delta;
  delta.targets = targets - before.targets;
  delta.attempts = attempts - before.attempts;
  delta.retries = retries - before.retries;
  delta.successes = successes - before.successes;
  delta.salvaged = salvaged - before.salvaged;
  delta.failures = failures - before.failures;
  delta.backoff_ms_total = backoff_ms_total - before.backoff_ms_total;
  delta.certs_salvaged = certs_salvaged - before.certs_salvaged;
  delta.certs_dropped = certs_dropped - before.certs_dropped;
  for (const auto& [error, count] : error_counts) {
    const auto it = before.error_counts.find(error);
    const std::uint64_t prior = it == before.error_counts.end() ? 0 : it->second;
    if (count > prior) delta.error_counts[error] = count - prior;
  }
  return delta;
}

std::string ScanLedger::to_string() const {
  std::string out;
  const auto line = [&out](const char* key, std::uint64_t value) {
    out.append(key);
    out.push_back('=');
    out.append(std::to_string(value));
    out.push_back('\n');
  };
  line("targets", targets);
  line("attempts", attempts);
  line("retries", retries);
  line("successes", successes);
  line("salvaged", salvaged);
  line("failures", failures);
  line("backoff_ms_total", backoff_ms_total);
  line("certs_salvaged", certs_salvaged);
  line("certs_dropped", certs_dropped);
  for (const auto& [error, count] : error_counts) {
    out.append("error.");
    out.append(scan_error_name(error));
    out.push_back('=');
    out.append(std::to_string(count));
    out.push_back('\n');
  }
  return out;
}

void ResilientScanner::bump(std::string_view name, std::uint64_t delta) {
  if (metrics_ != nullptr) metrics_->count(name, delta);
}

ResilientScanResult ResilientScanner::run_attempts(ScanResult pristine) {
  ResilientScanResult result;
  result.scan.target = pristine.target;
  ++ledger_.targets;
  bump("scanner.targets");

  util::Rng jitter_rng =
      util::Rng(policy_.jitter_seed).fork(util::stable_salt(pristine.target));
  const double jitter =
      std::clamp(policy_.jitter_fraction, 0.0, 1.0);

  // Best salvage candidate seen across attempts.
  bool have_salvage = false;
  ScanResult best_salvage;
  std::size_t best_salvaged_certs = 0;
  std::size_t best_dropped_certs = 0;
  ScanError best_salvage_error = ScanError::kNone;

  std::uint32_t elapsed = 0;
  ScanError last_error = ScanError::kUnreachable;
  const std::uint32_t max_attempts = std::max<std::uint32_t>(1, policy_.max_attempts);

  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff with deterministic jitter before every retry.
      double wait = static_cast<double>(policy_.base_backoff_ms) *
                    std::pow(std::max(1.0, policy_.backoff_multiplier),
                             static_cast<double>(attempt - 1));
      wait = std::min(wait, static_cast<double>(policy_.max_backoff_ms));
      if (jitter > 0.0) wait *= jitter_rng.uniform(1.0 - jitter, 1.0 + jitter);
      const auto wait_ms = static_cast<std::uint32_t>(wait);
      elapsed += wait_ms;
      ledger_.backoff_ms_total += wait_ms;
      ++ledger_.retries;
      bump("scanner.backoff_ms_total", wait_ms);
      bump("scanner.retries");
      if (elapsed >= policy_.target_deadline_ms) {
        last_error = ScanError::kDeadlineExceeded;
        break;
      }
    }

    ++ledger_.attempts;
    ++result.attempts;
    bump("scanner.attempts");
    const FaultEvent event = plan_->decide(pristine.target, attempt);

    // A host that is genuinely gone (no revisit chain / unknown target)
    // looks the same regardless of the injected fault.
    if (!pristine.reachable) {
      elapsed += policy_.connect_timeout_ms;
      last_error = ScanError::kUnreachable;
      ++ledger_.error_counts[last_error];
      bump("scanner.error.unreachable");
      continue;
    }
    if (event.kind != FaultKind::kNone) {
      bump("scanner.fault." +
           obs::metric_slug(netsim::fault_kind_name(event.kind)));
    }

    bool attempt_failed = false;
    switch (event.kind) {
      case FaultKind::kNone:
        elapsed += policy_.rtt_ms;
        break;
      case FaultKind::kSlowResponse:
        elapsed += policy_.rtt_ms + event.delay_ms;
        if (elapsed > policy_.target_deadline_ms) {
          last_error = ScanError::kDeadlineExceeded;
          attempt_failed = true;
        }
        break;
      case FaultKind::kConnectTimeout:
        elapsed += policy_.connect_timeout_ms;
        last_error = ScanError::kConnectTimeout;
        attempt_failed = true;
        break;
      case FaultKind::kConnectionReset:
        elapsed += policy_.rtt_ms;
        last_error = ScanError::kConnectionReset;
        attempt_failed = true;
        break;
      case FaultKind::kTransientUnreachable:
      case FaultKind::kPersistentUnreachable:
        elapsed += policy_.rtt_ms;
        last_error = ScanError::kUnreachable;
        attempt_failed = true;
        break;
      case FaultKind::kTruncatedHandshake:
      case FaultKind::kByteCorruption: {
        elapsed += policy_.rtt_ms;
        last_error = event.kind == FaultKind::kTruncatedHandshake
                         ? ScanError::kTruncatedBundle
                         : ScanError::kCorruptBundle;
        attempt_failed = true;
        if (policy_.salvage_partial) {
          const std::string damaged =
              FaultPlan::damage_bundle(event, pristine.pem_bundle);
          std::size_t malformed = 0;
          std::vector<x509::Certificate> certs =
              x509::decode_pem_bundle(damaged, &malformed);
          if (!certs.empty() && certs.size() > best_salvaged_certs) {
            have_salvage = true;
            best_salvaged_certs = certs.size();
            best_dropped_certs =
                pristine.chain.length() > certs.size()
                    ? pristine.chain.length() - certs.size()
                    : malformed;
            best_salvage_error = last_error;
            best_salvage.reachable = true;
            best_salvage.target = pristine.target;
            best_salvage.pem_bundle = damaged;
            best_salvage.chain = chain::CertificateChain(std::move(certs));
          }
        }
        break;
      }
    }

    if (!attempt_failed) {
      // Clean (possibly slow) full answer.
      result.scan = std::move(pristine);
      result.error = ScanError::kNone;
      result.elapsed_ms = elapsed;
      ++ledger_.successes;
      bump("scanner.successes");
      return result;
    }
    ++ledger_.error_counts[last_error];
    bump("scanner.error." + obs::metric_slug(scan_error_name(last_error)));
    if (last_error == ScanError::kDeadlineExceeded) break;
  }

  result.elapsed_ms = elapsed;
  if (have_salvage) {
    result.scan = std::move(best_salvage);
    result.degraded = true;
    result.error = best_salvage_error;
    result.salvaged_certs = best_salvaged_certs;
    result.dropped_certs = best_dropped_certs;
    ++ledger_.salvaged;
    ledger_.certs_salvaged += best_salvaged_certs;
    ledger_.certs_dropped += best_dropped_certs;
    bump("scanner.salvaged");
    bump("scanner.certs_salvaged", best_salvaged_certs);
    bump("scanner.certs_dropped", best_dropped_certs);
    return result;
  }
  result.error = last_error;
  ++ledger_.failures;
  bump("scanner.failures");
  return result;
}

ResilientScanResult ResilientScanner::scan_domain(const std::string& domain,
                                                  std::uint16_t port) {
  return run_attempts(inner_->scan_domain(domain, port));
}

ResilientScanResult ResilientScanner::scan_ip(const std::string& ip,
                                              std::uint16_t port) {
  return run_attempts(inner_->scan_ip(ip, port));
}

std::vector<ResilientScanResult> ResilientScanner::scan_all_domains() {
  std::vector<ResilientScanResult> results;
  std::vector<ScanResult> pristine = inner_->scan_all_domains();
  results.reserve(pristine.size());
  for (ScanResult& scan : pristine) results.push_back(run_attempts(std::move(scan)));
  return results;
}

std::vector<ResilientScanResult> ResilientScanner::scan_all_ips() {
  std::vector<ResilientScanResult> results;
  std::vector<ScanResult> pristine = inner_->scan_all_ips();
  results.reserve(pristine.size());
  for (ScanResult& scan : pristine) results.push_back(run_attempts(std::move(scan)));
  return results;
}

}  // namespace certchain::scanner
