// Resilient active scanning: retry, backoff, salvage, accounting.
//
// ActiveScanner answers "what does this server serve" in a perfect network.
// ResilientScanner wraps it with the discipline a real §5 revisit needs: a
// per-target attempt budget with exponential backoff and deterministic
// jitter, a virtual per-target deadline, an error taxonomy for every way an
// attempt can die (see netsim::FaultPlan), and partial-result salvage — a
// truncated or corrupted -showcerts bundle still yields the parseable prefix
// chain, flagged as degraded rather than discarded. Every scan feeds a
// ScanLedger so revisit tables can report reachable / degraded / unreachable
// populations the way the paper reports its exclusions (e.g. the 79.49%
// no-SNI share).
//
// Determinism: with the same FaultPlan seed and RetryPolicy, two runs produce
// byte-identical results and ledgers. With a zero-fault plan, results are
// identical to ActiveScanner's.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "netsim/faults.hpp"
#include "scanner/scanner.hpp"
#include "util/rng.hpp"

namespace certchain::obs {
class MetricsRegistry;
}  // namespace certchain::obs

namespace certchain::scanner {

/// Terminal classification of a scan attempt (and, for the last attempt, of
/// the whole target).
enum class ScanError : std::uint8_t {
  kNone = 0,
  kConnectTimeout,
  kConnectionReset,
  kTruncatedBundle,
  kCorruptBundle,
  kUnreachable,        // transient or persistent host-down, or host gone
  kDeadlineExceeded,   // per-target virtual deadline ran out
};

std::string_view scan_error_name(ScanError error);

/// Retry/backoff knobs. All time is virtual (milliseconds charged against
/// the per-target deadline), so runs are instant and reproducible.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;
  std::uint32_t base_backoff_ms = 100;
  double backoff_multiplier = 2.0;
  std::uint32_t max_backoff_ms = 5000;
  /// Backoff jitter: each wait is scaled by a factor drawn uniformly from
  /// [1-jitter_fraction, 1+jitter_fraction] (deterministic via jitter_seed).
  double jitter_fraction = 0.1;
  std::uint64_t jitter_seed = 0x5CA27E7ULL;
  /// Virtual cost of one round-trip / of a connect timeout.
  std::uint32_t rtt_ms = 50;
  std::uint32_t connect_timeout_ms = 1000;
  /// Per-target budget; attempts stop once it is exhausted.
  std::uint32_t target_deadline_ms = 30000;
  /// Keep the parseable prefix of a damaged bundle as a degraded result.
  bool salvage_partial = true;
};

/// ScanResult plus resilience metadata.
struct ResilientScanResult {
  ScanResult scan;
  std::uint32_t attempts = 0;
  std::uint32_t elapsed_ms = 0;      // virtual wall-clock incl. backoff
  bool degraded = false;             // salvaged from a damaged bundle
  ScanError error = ScanError::kNone;  // terminal error when !scan.reachable
  std::size_t salvaged_certs = 0;    // certs recovered from damaged bundles
  std::size_t dropped_certs = 0;     // certs lost to damage

  bool reachable() const { return scan.reachable; }
};

/// Aggregated accounting across a scan campaign. `reconciles()` is the
/// invariant the robustness suite checks: every target ends in exactly one
/// of success / salvage / failure.
struct ScanLedger {
  std::uint64_t targets = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;        // attempts beyond the first, per target
  std::uint64_t successes = 0;      // clean full-bundle results
  std::uint64_t salvaged = 0;       // degraded partial results
  std::uint64_t failures = 0;       // nothing usable within the budget
  std::uint64_t backoff_ms_total = 0;
  std::uint64_t certs_salvaged = 0;
  std::uint64_t certs_dropped = 0;
  std::map<ScanError, std::uint64_t> error_counts;  // per failed attempt

  bool reconciles() const { return targets == successes + salvaged + failures; }
  double salvage_rate() const {
    const std::uint64_t usable = successes + salvaged;
    return usable == 0 ? 0.0
                       : static_cast<double>(salvaged) / static_cast<double>(usable);
  }
  void merge(const ScanLedger& other);
  /// Counter-wise difference against an earlier snapshot of the same ledger
  /// (all fields are monotonic), for per-campaign accounting on a shared
  /// scanner.
  ScanLedger delta_since(const ScanLedger& before) const;
  /// Stable one-line-per-field rendering (used by determinism checks).
  std::string to_string() const;
};

class ResilientScanner {
 public:
  /// `metrics`, when given, mirrors every ledger movement as `scanner.*`
  /// registry counters (attempts, retries, backoff totals, per-error and
  /// injected-fault taxonomy counts) so campaign telemetry exports alongside
  /// pipeline telemetry. The ledger stays authoritative; the registry is a
  /// write-through view and the two always agree (asserted in tests).
  ResilientScanner(const ActiveScanner& inner, const netsim::FaultPlan& plan,
                   RetryPolicy policy = {},
                   obs::MetricsRegistry* metrics = nullptr)
      : inner_(&inner), plan_(&plan), policy_(policy), metrics_(metrics) {}

  ResilientScanResult scan_domain(const std::string& domain,
                                  std::uint16_t port = 443);
  ResilientScanResult scan_ip(const std::string& ip, std::uint16_t port);

  std::vector<ResilientScanResult> scan_all_domains();
  std::vector<ResilientScanResult> scan_all_ips();

  const RetryPolicy& policy() const { return policy_; }
  const ScanLedger& ledger() const { return ledger_; }
  void reset_ledger() { ledger_ = ScanLedger{}; }

 private:
  /// Runs the retry loop against the pristine (fault-free) answer.
  ResilientScanResult run_attempts(ScanResult pristine);

  /// Write-through to the attached registry (no-op when none).
  void bump(std::string_view name, std::uint64_t delta = 1);

  const ActiveScanner* inner_;
  const netsim::FaultPlan* plan_;
  RetryPolicy policy_;
  ScanLedger ledger_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace certchain::scanner
