#include "scanner/scanner.hpp"

#include "x509/pem.hpp"

namespace certchain::scanner {

ActiveScanner::ActiveScanner(const std::vector<netsim::ServerEndpoint>& endpoints)
    : endpoints_(&endpoints) {}

ScanResult ActiveScanner::scan_endpoint(const netsim::ServerEndpoint& endpoint,
                                        std::string target) const {
  ScanResult result;
  result.target = std::move(target);
  if (!endpoint.revisit_chain.has_value()) return result;  // gone by 2024
  result.reachable = true;
  result.chain = *endpoint.revisit_chain;
  result.pem_bundle = render_s_client_output(result.target, result.chain);
  return result;
}

ScanResult ActiveScanner::scan_domain(const std::string& domain,
                                      std::uint16_t port) const {
  for (const netsim::ServerEndpoint& endpoint : *endpoints_) {
    if (endpoint.domain == domain && endpoint.port == port) {
      return scan_endpoint(endpoint, domain + ":" + std::to_string(port));
    }
  }
  ScanResult unreachable;
  unreachable.target = domain + ":" + std::to_string(port);
  return unreachable;
}

ScanResult ActiveScanner::scan_ip(const std::string& ip, std::uint16_t port) const {
  for (const netsim::ServerEndpoint& endpoint : *endpoints_) {
    if (endpoint.ip == ip && endpoint.port == port) {
      return scan_endpoint(endpoint, ip + ":" + std::to_string(port));
    }
  }
  ScanResult unreachable;
  unreachable.target = ip + ":" + std::to_string(port);
  return unreachable;
}

std::vector<ScanResult> ActiveScanner::scan_all_domains() const {
  std::vector<ScanResult> results;
  for (const netsim::ServerEndpoint& endpoint : *endpoints_) {
    if (endpoint.domain.empty()) continue;
    results.push_back(scan_endpoint(
        endpoint, endpoint.domain + ":" + std::to_string(endpoint.port)));
  }
  return results;
}

std::vector<ScanResult> ActiveScanner::scan_all_ips() const {
  std::vector<ScanResult> results;
  for (const netsim::ServerEndpoint& endpoint : *endpoints_) {
    results.push_back(scan_endpoint(
        endpoint, endpoint.ip + ":" + std::to_string(endpoint.port)));
  }
  return results;
}

std::string ActiveScanner::render_s_client_output(
    const std::string& target, const chain::CertificateChain& chain) {
  std::string out;
  out.append("CONNECTED(").append(target).append(")\n");
  out.append("---\nCertificate chain\n");
  for (std::size_t i = 0; i < chain.length(); ++i) {
    const x509::Certificate& cert = chain.at(i);
    out.append(" ").append(std::to_string(i)).append(" s:");
    out.append(cert.subject.to_string()).push_back('\n');
    out.append("   i:").append(cert.issuer.to_string()).push_back('\n');
    out.append(x509::encode_pem(cert));
  }
  out.append("---\n");
  return out;
}

}  // namespace certchain::scanner
