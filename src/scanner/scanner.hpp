// Active scanner — the `openssl s_client -connect $domain:443 -showcerts`
// stand-in used for the November-2024 revisit (§5) and the Appendix D
// validation corpus.
//
// The scanner connects to the simulated server population: a scan by domain
// resolves through SNI, a scan by ip:port reaches SNI-less services. The
// result carries both the parsed chain and a rendered s_client-style text
// (PEM bundle included) so downstream tooling can exercise the full
// parse-from-PEM path.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "chain/chain.hpp"
#include "netsim/endpoint.hpp"

namespace certchain::scanner {

struct ScanResult {
  bool reachable = false;
  std::string target;       // "domain:port" or "ip:port"
  std::string pem_bundle;   // concatenated PEM blocks, leaf first
  chain::CertificateChain chain;

  std::size_t chain_length() const { return chain.length(); }
};

/// Scans the revisit-epoch view of a server population.
class ActiveScanner {
 public:
  explicit ActiveScanner(const std::vector<netsim::ServerEndpoint>& endpoints);

  /// Scans by domain (SNI route). Unknown domains and endpoints with no
  /// revisit chain are unreachable.
  ScanResult scan_domain(const std::string& domain, std::uint16_t port = 443) const;

  /// Scans by ip:port (no SNI).
  ScanResult scan_ip(const std::string& ip, std::uint16_t port) const;

  /// Scans every endpoint that has a domain (the paper could only revisit
  /// servers whose SNI it had; 79.49% of non-public connections had none).
  std::vector<ScanResult> scan_all_domains() const;

  /// IP-space sweep: scans every endpoint by ip:port regardless of SNI — the
  /// paper's future-work direction (Sec. 6.3: "active scanning of the entire
  /// IP address space"). Reaches the name-less population the domain route
  /// cannot.
  std::vector<ScanResult> scan_all_ips() const;

  /// Renders the s_client-style text for a chain (certificate list + PEM).
  static std::string render_s_client_output(const std::string& target,
                                            const chain::CertificateChain& chain);

 private:
  ScanResult scan_endpoint(const netsim::ServerEndpoint& endpoint,
                           std::string target) const;

  const std::vector<netsim::ServerEndpoint>* endpoints_;
};

}  // namespace certchain::scanner
