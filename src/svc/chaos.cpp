#include "svc/chaos.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/rng.hpp"

namespace certchain::svc {

namespace {

constexpr int kListenBacklog = 16;
constexpr std::size_t kChunkBytes = 64 * 1024;

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// EINTR-safe full write; MSG_NOSIGNAL so a dead peer is an error, not a
/// process-wide SIGPIPE.
bool write_fully(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// Flips `count` bytes of the chunk at positions drawn from `salt` — the
/// same damage discipline FaultPlan::damage_bundle applies to PEM bundles.
void corrupt_chunk(char* data, std::size_t size, std::uint32_t count,
                   std::uint64_t salt) {
  if (size == 0) return;
  std::uint64_t state = salt;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t draw = util::splitmix64(state);
    data[draw % size] ^= static_cast<char>(0xFF);
  }
}

}  // namespace

ChaosProxy::ChaosProxy(std::string upstream_host, std::uint16_t upstream_port,
                       netsim::FaultPlan plan)
    : upstream_host_(std::move(upstream_host)),
      upstream_port_(upstream_port),
      target_(upstream_host_ + ":" + std::to_string(upstream_port)),
      plan_(std::move(plan)) {}

ChaosProxy::~ChaosProxy() { stop(); }

bool ChaosProxy::start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    close_if_open(listen_fd_);
    close_if_open(wake_pipe_[0]);
    close_if_open(wake_pipe_[1]);
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = 0;  // ephemeral
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, kListenBacklog) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  if (::pipe(wake_pipe_) != 0) return fail("pipe");

  stopping_.store(false, std::memory_order_release);
  acceptor_ = std::thread([this] { acceptor_loop(); });
  started_ = true;
  return true;
}

void ChaosProxy::stop() {
  if (!started_) return;
  if (!stopping_.exchange(true, std::memory_order_acq_rel)) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Unblock every link's poll(); the threads observe EOF/error and exit.
    for (Link& link : links_) {
      if (link.client_fd >= 0) ::shutdown(link.client_fd, SHUT_RDWR);
      if (link.upstream_fd >= 0) ::shutdown(link.upstream_fd, SHUT_RDWR);
    }
  }
  for (;;) {
    Link* next = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (Link& link : links_) {
        if (link.thread.joinable()) {
          next = &link;
          break;
        }
      }
    }
    if (next == nullptr) break;
    next->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Link& link : links_) {
      close_if_open(link.client_fd);
      close_if_open(link.upstream_fd);
    }
    links_.clear();
  }
  close_if_open(listen_fd_);
  close_if_open(wake_pipe_[0]);
  close_if_open(wake_pipe_[1]);
  started_ = false;
}

ChaosStats ChaosProxy::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool ChaosProxy::dial_upstream(int* fd) const {
  *fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (*fd < 0) return false;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(upstream_port_);
  if (::inet_pton(AF_INET, upstream_host_.c_str(), &address.sin_addr) != 1 ||
      ::connect(*fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(*fd);
    *fd = -1;
    return false;
  }
  return true;
}

void ChaosProxy::acceptor_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;  // EINTR/ECONNABORTED: poll again

    const netsim::FaultEvent event = plan_.decide(target_, next_connection_++);

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.connections;
    reap_finished_links_locked();

    // Connect-level faults: the upstream never hears about this client.
    if (event.kind == netsim::FaultKind::kConnectTimeout ||
        event.kind == netsim::FaultKind::kTransientUnreachable ||
        event.kind == netsim::FaultKind::kPersistentUnreachable) {
      ++stats_.refused;
      ::close(client);
      continue;
    }

    int upstream = -1;
    if (!dial_upstream(&upstream)) {
      ++stats_.refused;
      ::close(client);
      continue;
    }

    links_.emplace_back();
    Link* link = &links_.back();
    link->client_fd = client;
    link->upstream_fd = upstream;
    link->thread = std::thread([this, link, event] { link_loop(link, event); });
  }
}

void ChaosProxy::reap_finished_links_locked() {
  for (auto it = links_.begin(); it != links_.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      close_if_open(it->client_fd);
      close_if_open(it->upstream_fd);
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
}

void ChaosProxy::link_loop(Link* link, netsim::FaultEvent event) {
  const int client = link->client_fd;
  const int upstream = link->upstream_fd;
  char buffer[kChunkBytes];
  bool first_client_chunk = true;
  bool open = true;
  std::uint64_t forwarded = 0;

  const auto count_outcome = [&](std::uint64_t ChaosStats::* field) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++(stats_.*field);
  };

  while (open && !stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{client, POLLIN, 0}, {upstream, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }

    // Responses flow back untouched; only the request direction is damaged.
    if ((fds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      ssize_t n;
      do {
        n = ::recv(upstream, buffer, sizeof(buffer), 0);
      } while (n < 0 && errno == EINTR);
      if (n <= 0) break;
      if (!write_fully(client, buffer, static_cast<std::size_t>(n))) break;
      forwarded += static_cast<std::uint64_t>(n);
    }

    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      ssize_t n;
      do {
        n = ::recv(client, buffer, sizeof(buffer), 0);
      } while (n < 0 && errno == EINTR);
      if (n <= 0) break;
      std::size_t size = static_cast<std::size_t>(n);

      if (first_client_chunk) {
        first_client_chunk = false;
        switch (event.kind) {
          case netsim::FaultKind::kConnectionReset:
            // Abrupt sever: the server saw a connection, never a byte.
            count_outcome(&ChaosStats::severed);
            open = false;
            size = 0;
            break;
          case netsim::FaultKind::kTruncatedHandshake: {
            // Forward a prefix, then hang up both sides: the upstream is
            // left holding a torn frame.
            const std::size_t keep = static_cast<std::size_t>(
                static_cast<double>(size) * event.truncate_fraction);
            write_fully(upstream, buffer, keep);
            forwarded += keep;
            count_outcome(&ChaosStats::truncated);
            open = false;
            size = 0;
            break;
          }
          case netsim::FaultKind::kByteCorruption:
            corrupt_chunk(buffer, size, event.corrupt_bytes,
                          event.payload_salt);
            count_outcome(&ChaosStats::corrupted);
            break;
          case netsim::FaultKind::kSlowResponse: {
            // Trickle: half now, stall, half later — a mid-frame stall from
            // the server's point of view.
            const std::size_t half = size / 2;
            if (!write_fully(upstream, buffer, half)) {
              open = false;
              size = 0;
              break;
            }
            forwarded += half;
            std::uint32_t delay = event.delay_ms;
            if (stall_cap_ms_ > 0 && delay > stall_cap_ms_) {
              delay = stall_cap_ms_;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
            std::memmove(buffer, buffer + half, size - half);
            size -= half;
            count_outcome(&ChaosStats::stalled);
            break;
          }
          default:
            count_outcome(&ChaosStats::clean);
            break;
        }
      }

      if (size > 0) {
        if (!write_fully(upstream, buffer, size)) break;
        forwarded += size;
      }
    }
  }

  ::shutdown(client, SHUT_RDWR);
  ::shutdown(upstream, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.bytes_forwarded += forwarded;
  }
  link->done.store(true, std::memory_order_release);
}

}  // namespace certchain::svc
