// Deterministic chaos for the serving stack (DESIGN.md §13.5).
//
// ChaosProxy is a loopback TCP shim that sits between a Client and a Server
// and injects transport faults according to a netsim::FaultPlan — the same
// seeded vocabulary the resilient-scanning path uses (§5, Appendix D), so a
// given (seed, rates) pair always replays the exact same fault schedule.
// decide() is consulted once per proxied connection, keyed by the upstream
// "host:port" target and the 0-based connection index, and maps onto the
// wire like this:
//
//   kConnectTimeout / kTransientUnreachable / kPersistentUnreachable
//       the upstream is never dialed; the accepted client socket closes
//       immediately (connect-level sever)
//   kConnectionReset
//       the first client bytes tear the connection down abruptly before
//       anything is forwarded (mid-exchange sever)
//   kTruncatedHandshake
//       truncate_fraction of the first client chunk is forwarded, then both
//       sides close — the server holds a torn frame forever
//   kByteCorruption
//       corrupt_bytes bytes of the first client chunk are flipped (positions
//       seeded by payload_salt); the stream keeps flowing — the server must
//       answer with a typed error or hang up cleanly, never crash
//   kSlowResponse
//       the first client chunk is forwarded half, then stalled delay_ms,
//       then the rest — a trickling peer that exercises the server's
//       mid-frame deadline
//   kNone
//       bytes pass through untouched in both directions
//
// Faults are injected into the client->server direction only; responses
// always flow back unmodified, so every observed failure is attributable to
// the injected fault, not the shim.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <thread>

#include "netsim/faults.hpp"

namespace certchain::svc {

/// What the proxy did, for test assertions.
struct ChaosStats {
  std::uint64_t connections = 0;      // accepted client connections
  std::uint64_t refused = 0;          // closed before dialing upstream
  std::uint64_t severed = 0;          // torn down on the first client bytes
  std::uint64_t truncated = 0;        // partial first chunk, then closed
  std::uint64_t corrupted = 0;        // first chunk bit-flipped
  std::uint64_t stalled = 0;          // first chunk trickled with a delay
  std::uint64_t clean = 0;            // fully transparent connections
  std::uint64_t bytes_forwarded = 0;  // both directions, post-damage
};

class ChaosProxy {
 public:
  /// The plan decides per-connection faults against the "host:port" target.
  ChaosProxy(std::string upstream_host, std::uint16_t upstream_port,
             netsim::FaultPlan plan);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Clamps kSlowResponse stalls to `cap` ms (0 = use the event's delay
  /// verbatim). The netsim plan draws scan-scale delays (0.5–10 s); soak
  /// tests cap them so a run stays fast while still crossing the server's
  /// deadline.
  void set_stall_cap_ms(std::uint32_t cap) { stall_cap_ms_ = cap; }

  /// Binds an ephemeral loopback port and starts proxying.
  bool start(std::string* error = nullptr);
  /// The port clients should dial (resolves after start()).
  std::uint16_t port() const { return port_; }

  /// Stops accepting, tears down every live link, joins all threads.
  void stop();

  ChaosStats stats() const;

 private:
  struct Link {
    int client_fd = -1;
    int upstream_fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void acceptor_loop();
  void link_loop(Link* link, netsim::FaultEvent event);
  bool dial_upstream(int* fd) const;
  void reap_finished_links_locked();

  std::string upstream_host_;
  std::uint16_t upstream_port_ = 0;
  std::string target_;  // "host:port", the FaultPlan key
  netsim::FaultPlan plan_;
  std::uint32_t stall_cap_ms_ = 0;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::uint32_t next_connection_ = 0;  // decide()'s attempt index

  mutable std::mutex mutex_;  // guards links_ and stats_
  std::list<Link> links_;
  ChaosStats stats_;
};

}  // namespace certchain::svc
