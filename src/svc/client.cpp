#include "svc/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace certchain::svc {

namespace {

using obs::json::Writer;

std::string string_array_payload(std::string_view first_key,
                                 const std::vector<std::string>& first,
                                 std::string_view second_key,
                                 const std::vector<std::string>& second) {
  Writer writer;
  writer.begin_object();
  writer.key(first_key);
  writer.begin_array();
  for (const std::string& row : first) writer.value_string(row);
  writer.end_array();
  writer.key(second_key);
  writer.begin_array();
  for (const std::string& row : second) writer.value_string(row);
  writer.end_array();
  writer.end_object();
  return std::move(writer).str();
}

}  // namespace

bool Client::connect(const std::string& host, std::uint16_t port,
                     std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    if (error != nullptr) *error = "inet_pton(" + host + ") failed";
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    if (error != nullptr) *error = std::string("connect: ") + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_ = FrameReader();
}

bool Client::send_raw(std::string_view bytes) {
  if (fd_ < 0) return false;
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<Frame> Client::read_frame() {
  if (fd_ < 0) return std::nullopt;
  char buffer[64 * 1024];
  for (;;) {
    DecodeResult decoded = reader_.next();
    if (decoded.status == DecodeResult::Status::kFrame) {
      return std::move(decoded.frame);
    }
    if (decoded.status == DecodeResult::Status::kError) {
      // A client that cannot trust its inbound framing must hang up,
      // recoverable or not — there is no one to send a typed error to.
      close();
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close();
      return std::nullopt;
    }
    reader_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
}

std::optional<Response> Client::call(MessageType request,
                                     std::string_view payload) {
  if (!send_raw(encode_frame(request, payload))) return std::nullopt;
  std::optional<Frame> frame = read_frame();
  if (!frame.has_value()) return std::nullopt;

  Response response;
  response.frame = std::move(*frame);
  if (!response.frame.payload.empty()) {
    if (auto parsed = obs::json::parse(response.frame.payload)) {
      response.payload = std::move(*parsed);
    }
  }
  if (response.frame.type == MessageType::kError) {
    if (const obs::json::Value* code = response.payload.find("code")) {
      for (const ErrorCode candidate :
           {ErrorCode::kBadMagic, ErrorCode::kBadVersion, ErrorCode::kBadType,
            ErrorCode::kOversized, ErrorCode::kBadPayload,
            ErrorCode::kOverloaded, ErrorCode::kShuttingDown,
            ErrorCode::kInternal}) {
        if (code->string == error_code_name(candidate)) {
          response.error = candidate;
          break;
        }
      }
    }
    if (const obs::json::Value* message = response.payload.find("message")) {
      response.error_message = message->string;
    }
  } else {
    response.ok = response.frame.type == response_for(request);
  }
  return response;
}

std::optional<Response> Client::ping() {
  return call(MessageType::kPing, "");
}

std::optional<Response> Client::classify_issuer(std::string_view issuer_dn) {
  Writer writer;
  writer.begin_object();
  writer.key("issuer");
  writer.value_string(issuer_dn);
  writer.end_object();
  return call(MessageType::kClassifyIssuer, writer.str());
}

std::optional<Response> Client::categorize_chain_pem(
    std::string_view pem_bundle) {
  Writer writer;
  writer.begin_object();
  writer.key("pem");
  writer.value_string(pem_bundle);
  writer.end_object();
  return call(MessageType::kCategorizeChain, writer.str());
}

std::optional<Response> Client::categorize_chain_rows(
    const std::vector<std::string>& x509_rows) {
  Writer writer;
  writer.begin_object();
  writer.key("x509_rows");
  writer.begin_array();
  for (const std::string& row : x509_rows) writer.value_string(row);
  writer.end_array();
  writer.end_object();
  return call(MessageType::kCategorizeChain, writer.str());
}

std::optional<Response> Client::report_section(std::string_view section) {
  Writer writer;
  writer.begin_object();
  writer.key("section");
  writer.value_string(section);
  writer.end_object();
  return call(MessageType::kReportSection, writer.str());
}

std::optional<Response> Client::ingest_append(
    const std::vector<std::string>& ssl_rows,
    const std::vector<std::string>& x509_rows) {
  return call(MessageType::kIngestAppend,
              string_array_payload("ssl_rows", ssl_rows, "x509_rows", x509_rows));
}

std::optional<Response> Client::metrics() {
  return call(MessageType::kMetrics, "");
}

std::optional<Response> Client::shutdown() {
  return call(MessageType::kShutdown, "");
}

}  // namespace certchain::svc
