#include "svc/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace certchain::svc {

namespace {

using obs::json::Writer;

}  // namespace

bool Client::connect(const std::string& host, std::uint16_t port,
                     std::string* error) {
  close();
  host_ = host;
  port_ = port;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  apply_timeout();
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    if (error != nullptr) *error = "inet_pton(" + host + ") failed";
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    if (error != nullptr) *error = std::string("connect: ") + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_ = FrameReader();
}

bool Client::reconnect() {
  return !host_.empty() && connect(host_, port_, nullptr);
}

void Client::set_timeout_ms(std::uint32_t timeout_ms) {
  timeout_ms_ = timeout_ms;
  apply_timeout();
}

void Client::set_retry(const RetryOptions& options) {
  retry_ = options;
  rng_ = util::Rng(options.jitter_seed);
}

void Client::apply_timeout() {
  if (fd_ < 0 || timeout_ms_ == 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms_ / 1000;
  tv.tv_usec = static_cast<long>(timeout_ms_ % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void Client::backoff_sleep(std::size_t retry_index) {
  std::uint64_t backoff = retry_.base_backoff_ms;
  for (std::size_t i = 0;
       i < retry_index && backoff < retry_.max_backoff_ms; ++i) {
    backoff *= 2;
  }
  backoff = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(backoff, retry_.max_backoff_ms));
  // Half-to-full jitter: retries spread out instead of synchronizing, and
  // the seeded stream keeps the schedule reproducible in tests.
  const std::uint64_t low = backoff / 2;
  const std::uint64_t jittered = low + rng_.next_below(backoff - low + 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
}

bool Client::send_raw(std::string_view bytes) {
  if (fd_ < 0) return false;
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // timeout (EAGAIN under SO_SNDTIMEO) or dead peer
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<Frame> Client::read_frame() {
  if (fd_ < 0) return std::nullopt;
  char buffer[64 * 1024];
  for (;;) {
    DecodeResult decoded = reader_.next();
    if (decoded.status == DecodeResult::Status::kFrame) {
      return std::move(decoded.frame);
    }
    if (decoded.status == DecodeResult::Status::kError) {
      // A client that cannot trust its inbound framing must hang up,
      // recoverable or not — there is no one to send a typed error to.
      close();
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // EAGAIN/EWOULDBLOCK = SO_RCVTIMEO expired: same treatment as a dead
      // connection, because a half-read response cannot be resynchronized.
      close();
      return std::nullopt;
    }
    reader_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
}

std::optional<Response> Client::call(MessageType request,
                                     std::string_view payload) {
  if (!send_raw(encode_frame(request, payload))) {
    // A half-written request cannot be resumed; drop the connection so a
    // retry dials a fresh one instead of re-sending into a dead socket.
    close();
    return std::nullopt;
  }
  std::optional<Frame> frame = read_frame();
  if (!frame.has_value()) return std::nullopt;

  Response response;
  response.frame = std::move(*frame);
  if (!response.frame.payload.empty()) {
    if (auto parsed = obs::json::parse(response.frame.payload)) {
      response.payload = std::move(*parsed);
    }
  }
  if (response.frame.type == MessageType::kError) {
    if (const obs::json::Value* code = response.payload.find("code")) {
      for (const ErrorCode candidate :
           {ErrorCode::kBadMagic, ErrorCode::kBadVersion, ErrorCode::kBadType,
            ErrorCode::kOversized, ErrorCode::kBadPayload,
            ErrorCode::kOverloaded, ErrorCode::kShuttingDown,
            ErrorCode::kInternal, ErrorCode::kDeadlineExceeded,
            ErrorCode::kNotFound}) {
        if (code->string == error_code_name(candidate)) {
          response.error = candidate;
          break;
        }
      }
    }
    if (const obs::json::Value* message = response.payload.find("message")) {
      response.error_message = message->string;
    }
  } else {
    response.ok = response.frame.type == response_for(request);
  }
  return response;
}

std::optional<Response> Client::call_with_retry(MessageType request,
                                                std::string_view payload,
                                                bool idempotent) {
  const std::size_t attempts = std::max<std::size_t>(1, retry_.max_attempts);
  std::optional<Response> last;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_performed_;
      backoff_sleep(attempt - 1);
    }
    if (fd_ < 0 && !reconnect()) {
      // Connecting sent nothing, so another attempt is always safe.
      last = std::nullopt;
      continue;
    }
    last = call(request, payload);
    if (!last.has_value()) {
      // Transport failure mid-exchange: the server may or may not have
      // executed the request. Only an idempotent request may go again.
      if (!idempotent) return std::nullopt;
      continue;
    }
    const bool overloaded = last->frame.type == MessageType::kError &&
                            last->error == ErrorCode::kOverloaded;
    // OVERLOADED is rejected at admission, before execution — retrying is
    // safe for every request type. Any other answer is final.
    if (!overloaded) return last;
  }
  return last;
}

std::optional<Response> Client::ping() {
  return call_with_retry(MessageType::kPing, "", /*idempotent=*/true);
}

std::optional<Response> Client::classify_issuer(std::string_view issuer_dn) {
  Writer writer;
  writer.begin_object();
  writer.key("issuer");
  writer.value_string(issuer_dn);
  writer.end_object();
  return call_with_retry(MessageType::kClassifyIssuer, std::move(writer).str(),
                         /*idempotent=*/true);
}

std::optional<Response> Client::categorize_chain_pem(
    std::string_view pem_bundle) {
  Writer writer;
  writer.begin_object();
  writer.key("pem");
  writer.value_string(pem_bundle);
  writer.end_object();
  return call_with_retry(MessageType::kCategorizeChain, std::move(writer).str(),
                         /*idempotent=*/true);
}

std::optional<Response> Client::categorize_chain_rows(
    const std::vector<std::string>& x509_rows) {
  Writer writer;
  writer.begin_object();
  writer.key("x509_rows");
  writer.begin_array();
  for (const std::string& row : x509_rows) writer.value_string(row);
  writer.end_array();
  writer.end_object();
  return call_with_retry(MessageType::kCategorizeChain, std::move(writer).str(),
                         /*idempotent=*/true);
}

std::optional<Response> Client::report_section(std::string_view section) {
  Writer writer;
  writer.begin_object();
  writer.key("section");
  writer.value_string(section);
  writer.end_object();
  return call_with_retry(MessageType::kReportSection, std::move(writer).str(),
                         /*idempotent=*/true);
}

std::optional<Response> Client::ingest_append(
    const std::vector<std::string>& ssl_rows,
    const std::vector<std::string>& x509_rows,
    std::string_view idempotency_key) {
  Writer writer;
  writer.begin_object();
  writer.key("ssl_rows");
  writer.begin_array();
  for (const std::string& row : ssl_rows) writer.value_string(row);
  writer.end_array();
  writer.key("x509_rows");
  writer.begin_array();
  for (const std::string& row : x509_rows) writer.value_string(row);
  writer.end_array();
  if (!idempotency_key.empty()) {
    writer.key("idempotency_key");
    writer.value_string(idempotency_key);
  }
  writer.end_object();
  // Without a key a replayed append would double-fold; with one the server's
  // WAL-backed ledger makes the retry exact-once.
  return call_with_retry(MessageType::kIngestAppend, std::move(writer).str(),
                         /*idempotent=*/!idempotency_key.empty());
}

std::optional<Response> Client::ingest_append_epoch(
    const std::vector<std::string>& ssl_rows,
    const std::vector<std::string>& x509_rows,
    std::string_view idempotency_key, std::string_view fleet_epoch_json) {
  Writer writer;
  writer.begin_object();
  writer.key("ssl_rows");
  writer.begin_array();
  for (const std::string& row : ssl_rows) writer.value_string(row);
  writer.end_array();
  writer.key("x509_rows");
  writer.begin_array();
  for (const std::string& row : x509_rows) writer.value_string(row);
  writer.end_array();
  if (!idempotency_key.empty()) {
    writer.key("idempotency_key");
    writer.value_string(idempotency_key);
  }
  writer.key("fleet_epoch");
  writer.value_raw(fleet_epoch_json);
  writer.end_object();
  return call_with_retry(MessageType::kIngestAppend, std::move(writer).str(),
                         /*idempotent=*/!idempotency_key.empty());
}

std::optional<Response> Client::metrics() {
  return call_with_retry(MessageType::kMetrics, "", /*idempotent=*/true);
}

std::optional<Response> Client::ct_sth() {
  return call_with_retry(MessageType::kCtSth, "", /*idempotent=*/true);
}

std::optional<Response> Client::ct_prove_inclusion(std::string_view fingerprint,
                                                   std::string_view log_id) {
  Writer writer;
  writer.begin_object();
  writer.key("fingerprint");
  writer.value_string(fingerprint);
  if (!log_id.empty()) {
    writer.key("log_id");
    writer.value_string(log_id);
  }
  writer.end_object();
  return call_with_retry(MessageType::kCtProveInclusion,
                         std::move(writer).str(), /*idempotent=*/true);
}

std::optional<Response> Client::ct_monitor_status() {
  return call_with_retry(MessageType::kCtMonitorStatus, "", /*idempotent=*/true);
}

std::optional<Response> Client::fleet_status() {
  return call_with_retry(MessageType::kFleetStatus, "", /*idempotent=*/true);
}

std::optional<Response> Client::epoch_delta(std::optional<std::size_t> epoch) {
  std::string payload;
  if (epoch.has_value()) {
    Writer writer;
    writer.begin_object();
    writer.key("epoch");
    writer.value_uint(*epoch);
    writer.end_object();
    payload = std::move(writer).str();
  }
  return call_with_retry(MessageType::kEpochDelta, std::move(payload),
                         /*idempotent=*/true);
}

std::optional<Response> Client::shutdown() {
  // Never auto-retried: the expected aftermath of a successful shutdown is a
  // dead connection, which a retry would misread as failure.
  return call(MessageType::kShutdown, "");
}

}  // namespace certchain::svc
