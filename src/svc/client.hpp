// Blocking loopback client for the certchain.svc.wire protocol.
//
// One Client is one connection, used from one thread (the server serializes
// responses per connection, so a single-threaded request/response loop is
// the natural shape; concurrency tests open N Clients). The generic call()
// sends one request frame and blocks for the matching response; the typed
// helpers wrap the endpoint payload schemas from DESIGN.md §12.3. send_raw()
// exists so the protocol tests can feed the server deliberately damaged
// bytes.
//
// Resilience (DESIGN.md §13.4): set_timeout_ms bounds every socket
// send/recv so a stalled server cannot hang the caller, and set_retry arms
// call_with_retry — bounded exponential backoff with deterministic jitter.
// An OVERLOADED response is always retried (the server rejected the request
// at admission, before executing it); a transport failure is retried only
// for idempotent requests, because the server may have executed the request
// before the connection died. ingest_append becomes idempotent by carrying
// an idempotency key: the server's WAL-backed ledger folds a retried batch
// exactly once and answers the duplicate with the original result.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "svc/protocol.hpp"
#include "util/rng.hpp"

namespace certchain::svc {

/// One request/response exchange, decoded.
struct Response {
  Frame frame;                   // the raw response frame
  obs::json::Value payload;      // parsed JSON payload (null Value if none)
  bool ok = false;               // true when frame.type is the success type
  ErrorCode error = ErrorCode::kInternal;  // set when frame.type == kError
  std::string error_message;               // ditto
};

/// Retry policy for call_with_retry.
struct RetryOptions {
  std::size_t max_attempts = 1;       // total tries; 1 = never retry
  std::uint32_t base_backoff_ms = 50; // first retry's backoff ceiling
  std::uint32_t max_backoff_ms = 2000;
  /// Seeds the jitter stream, so tests replay the exact same sleep schedule.
  std::uint64_t jitter_seed = 0x5eedc0ffee;
};

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Client(Client&& other) noexcept
      : fd_(other.fd_),
        reader_(std::move(other.reader_)),
        host_(std::move(other.host_)),
        port_(other.port_),
        timeout_ms_(other.timeout_ms_),
        retry_(other.retry_),
        rng_(other.rng_),
        retries_performed_(other.retries_performed_) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      reader_ = std::move(other.reader_);
      host_ = std::move(other.host_);
      port_ = other.port_;
      timeout_ms_ = other.timeout_ms_;
      retry_ = other.retry_;
      rng_ = other.rng_;
      retries_performed_ = other.retries_performed_;
      other.fd_ = -1;
    }
    return *this;
  }

  bool connect(const std::string& host, std::uint16_t port,
               std::string* error = nullptr);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Bounds every socket send/recv (and, on Linux, connect) with
  /// SO_SNDTIMEO/SO_RCVTIMEO. 0 = block forever. Applies to the current
  /// connection and every later one.
  void set_timeout_ms(std::uint32_t timeout_ms);
  /// Arms call_with_retry; the typed helpers all route through it.
  void set_retry(const RetryOptions& options);
  /// How many retry attempts call_with_retry has made (test observability).
  std::uint64_t retries_performed() const { return retries_performed_; }

  /// Sends one request frame and blocks for one response frame. Returns
  /// nullopt on transport failure (connection closed / unrecoverable framing
  /// damage in the response stream / socket timeout).
  std::optional<Response> call(MessageType request, std::string_view payload);

  /// call() plus the retry policy: reconnects a dead connection, always
  /// retries OVERLOADED (rejected before execution), retries transport
  /// failures only when `idempotent`. Returns the last response (or nullopt
  /// when every attempt failed at the transport).
  std::optional<Response> call_with_retry(MessageType request,
                                          std::string_view payload,
                                          bool idempotent);

  /// Writes arbitrary bytes to the socket (protocol-damage tests).
  bool send_raw(std::string_view bytes);
  /// Reads the next frame off the socket, independent of any request.
  std::optional<Frame> read_frame();

  // --- typed endpoint helpers (DESIGN.md §12.3 schemas) -------------------
  std::optional<Response> ping();
  std::optional<Response> classify_issuer(std::string_view issuer_dn);
  std::optional<Response> categorize_chain_pem(std::string_view pem_bundle);
  std::optional<Response> categorize_chain_rows(
      const std::vector<std::string>& x509_rows);
  std::optional<Response> report_section(std::string_view section);
  /// A non-empty idempotency_key makes the append safe to retry: the server
  /// folds the batch once and answers every retry with the original result.
  std::optional<Response> ingest_append(
      const std::vector<std::string>& ssl_rows,
      const std::vector<std::string>& x509_rows,
      std::string_view idempotency_key = "");
  /// ingest_append with a fleet-epoch rider: the rows and the completed
  /// epoch's summary (pre-rendered JSON object, see
  /// core::write_epoch_summary_json) land in one request, so a retry
  /// re-feeds both idempotently.
  std::optional<Response> ingest_append_epoch(
      const std::vector<std::string>& ssl_rows,
      const std::vector<std::string>& x509_rows,
      std::string_view idempotency_key, std::string_view fleet_epoch_json);
  std::optional<Response> metrics();
  /// CT endpoints (§14.5): current tree heads of every log; an inclusion
  /// proof for a logged fingerprint (typed NOT_FOUND otherwise, searching
  /// one log by id or all when log_id is empty); monitor counters.
  std::optional<Response> ct_sth();
  std::optional<Response> ct_prove_inclusion(std::string_view fingerprint,
                                             std::string_view log_id = "");
  std::optional<Response> ct_monitor_status();
  /// Fleet endpoints (§17): completed-epoch registry and the delta ending at
  /// `epoch` (nullopt = latest; typed NOT_FOUND for unknown indices).
  std::optional<Response> fleet_status();
  std::optional<Response> epoch_delta(std::optional<std::size_t> epoch = {});
  std::optional<Response> shutdown();

 private:
  /// Re-dials the remembered host/port (used between retry attempts).
  bool reconnect();
  /// Stamps SO_RCVTIMEO/SO_SNDTIMEO on the current socket.
  void apply_timeout();
  /// Sleeps the bounded-exponential, jittered backoff for the given 0-based
  /// retry index.
  void backoff_sleep(std::size_t retry_index);

  int fd_ = -1;
  FrameReader reader_;
  std::string host_;
  std::uint16_t port_ = 0;
  std::uint32_t timeout_ms_ = 0;
  RetryOptions retry_;
  util::Rng rng_{RetryOptions{}.jitter_seed};
  std::uint64_t retries_performed_ = 0;
};

}  // namespace certchain::svc
