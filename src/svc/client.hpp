// Blocking loopback client for the certchain.svc.wire protocol.
//
// One Client is one connection, used from one thread (the server serializes
// responses per connection, so a single-threaded request/response loop is
// the natural shape; concurrency tests open N Clients). The generic call()
// sends one request frame and blocks for the matching response; the typed
// helpers wrap the endpoint payload schemas from DESIGN.md §12.3. send_raw()
// exists so the protocol tests can feed the server deliberately damaged
// bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "svc/protocol.hpp"

namespace certchain::svc {

/// One request/response exchange, decoded.
struct Response {
  Frame frame;                   // the raw response frame
  obs::json::Value payload;      // parsed JSON payload (null Value if none)
  bool ok = false;               // true when frame.type is the success type
  ErrorCode error = ErrorCode::kInternal;  // set when frame.type == kError
  std::string error_message;               // ditto
};

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Client(Client&& other) noexcept
      : fd_(other.fd_), reader_(std::move(other.reader_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      reader_ = std::move(other.reader_);
      other.fd_ = -1;
    }
    return *this;
  }

  bool connect(const std::string& host, std::uint16_t port,
               std::string* error = nullptr);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one request frame and blocks for one response frame. Returns
  /// nullopt on transport failure (connection closed / unrecoverable framing
  /// damage in the response stream).
  std::optional<Response> call(MessageType request, std::string_view payload);

  /// Writes arbitrary bytes to the socket (protocol-damage tests).
  bool send_raw(std::string_view bytes);
  /// Reads the next frame off the socket, independent of any request.
  std::optional<Frame> read_frame();

  // --- typed endpoint helpers (DESIGN.md §12.3 schemas) -------------------
  std::optional<Response> ping();
  std::optional<Response> classify_issuer(std::string_view issuer_dn);
  std::optional<Response> categorize_chain_pem(std::string_view pem_bundle);
  std::optional<Response> categorize_chain_rows(
      const std::vector<std::string>& x509_rows);
  std::optional<Response> report_section(std::string_view section);
  std::optional<Response> ingest_append(
      const std::vector<std::string>& ssl_rows,
      const std::vector<std::string>& x509_rows);
  std::optional<Response> metrics();
  std::optional<Response> shutdown();

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace certchain::svc
