#include "svc/handlers.hpp"

#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/stopwatch.hpp"
#include "x509/pem.hpp"
#include "zeek/joiner.hpp"
#include "zeek/log_io.hpp"

namespace certchain::svc {

namespace {

using obs::json::Value;
using obs::json::Writer;

/// Parses a request payload; an empty payload reads as an empty object so
/// parameterless endpoints (ping, metrics, shutdown) need no body.
std::optional<Value> parse_payload(const std::string& payload, std::string* error) {
  if (payload.empty()) {
    Value empty;
    empty.kind = Value::Kind::kObject;
    return empty;
  }
  return obs::json::parse(payload, error);
}

std::optional<std::vector<std::string>> string_array(const Value& object,
                                                     std::string_view key) {
  const Value* member = object.find(key);
  if (member == nullptr) return std::vector<std::string>{};  // absent = empty
  if (!member->is_array()) return std::nullopt;
  std::vector<std::string> out;
  out.reserve(member->array.size());
  for (const Value& item : member->array) {
    if (!item.is_string()) return std::nullopt;
    out.push_back(item.string);
  }
  return out;
}

void write_path_analysis(Writer& writer, const chain::PathAnalysis& paths) {
  writer.begin_object();
  writer.key("pairs");
  writer.value_uint(paths.match.pair_count());
  writer.key("mismatched_pairs");
  writer.value_uint(paths.match.mismatch_count());
  writer.key("complete_path");
  writer.value_bool(paths.complete_path.has_value());
  if (paths.complete_path.has_value()) {
    writer.key("path_begin");
    writer.value_uint(paths.complete_path->begin);
    writer.key("path_end");
    writer.value_uint(paths.complete_path->end);
  }
  writer.key("unnecessary_certificates");
  writer.begin_array();
  for (const std::size_t index : paths.unnecessary_certificates) {
    writer.value_uint(index);
  }
  writer.end_array();
  writer.end_object();
}

void write_lints(Writer& writer, const chain::LintReport& lints) {
  writer.begin_array();
  for (const chain::LintFinding& finding : lints.findings) {
    writer.begin_object();
    writer.key("code");
    writer.value_string(chain::lint_code_name(finding.code));
    writer.key("severity");
    writer.value_string(chain::lint_severity_name(finding.severity));
    if (finding.position != static_cast<std::size_t>(-1)) {
      writer.key("position");
      writer.value_uint(finding.position);
    }
    writer.key("message");
    writer.value_string(finding.message);
    writer.key("recommendation");
    writer.value_string(finding.recommendation);
    writer.end_object();
  }
  writer.end_array();
}

/// Resolves the submitted chain: {"pem": "<bundle>"} or
/// {"x509_rows": [<zeek X509.log body rows>, ...]} in delivery order.
std::optional<chain::CertificateChain> chain_from_request(const Value& object,
                                                          std::string* error) {
  const Value* pem = object.find("pem");
  if (pem != nullptr) {
    if (!pem->is_string()) {
      *error = "\"pem\" must be a string";
      return std::nullopt;
    }
    std::size_t malformed = 0;
    std::vector<x509::Certificate> certs =
        x509::decode_pem_bundle(pem->string, &malformed);
    if (certs.empty()) {
      *error = "PEM bundle contains no decodable certificate";
      return std::nullopt;
    }
    if (malformed != 0) {
      *error = "PEM bundle contains " + std::to_string(malformed) +
               " undecodable block(s)";
      return std::nullopt;
    }
    return chain::CertificateChain(std::move(certs));
  }

  const auto rows = string_array(object, "x509_rows");
  if (!rows.has_value()) {
    *error = "\"x509_rows\" must be an array of strings";
    return std::nullopt;
  }
  if (rows->empty()) {
    *error = "request carries neither \"pem\" nor \"x509_rows\"";
    return std::nullopt;
  }
  chain::CertificateChain chain;
  for (std::size_t i = 0; i < rows->size(); ++i) {
    std::string row_error;
    const auto record = zeek::parse_x509_row((*rows)[i], &row_error);
    if (!record.has_value()) {
      *error = "x509_rows[" + std::to_string(i) + "]: " + row_error;
      return std::nullopt;
    }
    chain.push_back(zeek::certificate_from_record(*record));
  }
  return chain;
}

/// Section selection for report_section; "full" mirrors the CLI default.
std::optional<core::ReportTextOptions> section_options(const std::string& name) {
  core::ReportTextOptions options;
  options.totals = false;
  options.categories = false;
  options.interception = false;
  options.hybrid = false;
  options.non_public = false;
  options.ct_compliance = false;
  options.graphs = false;
  options.data_quality = false;
  if (name == "totals") options.totals = true;
  else if (name == "categories") options.categories = true;
  else if (name == "interception") options.interception = true;
  else if (name == "hybrid") options.hybrid = true;
  else if (name == "non_public") options.non_public = true;
  else if (name == "ct") options.ct_compliance = true;
  else if (name == "graphs") options.graphs = true;
  else if (name == "full") options = core::ReportTextOptions{};
  else return std::nullopt;
  return options;
}

}  // namespace

std::string RequestHandlers::handle(const Frame& request,
                                    bool* shutdown_requested) const {
  const std::string endpoint(message_type_name(request.type));
  const obs::Stopwatch stopwatch;
  telemetry_->count("svc.endpoint." + endpoint + ".requests");
  std::string response;
  try {
    response = dispatch(request, shutdown_requested);
  } catch (const std::exception& error) {
    response = encode_error(ErrorCode::kInternal, error.what());
  } catch (...) {
    response = encode_error(ErrorCode::kInternal, "unknown handler failure");
  }
  if (static_cast<std::uint8_t>(response[5]) ==
      static_cast<std::uint8_t>(MessageType::kError)) {
    telemetry_->count("svc.endpoint." + endpoint + ".errors");
  }
  telemetry_->observe_timing("svc.endpoint." + endpoint + ".ms",
                             stopwatch.elapsed_ms());
  return response;
}

std::string RequestHandlers::dispatch(const Frame& request,
                                      bool* shutdown_requested) const {
  std::string parse_error;
  const std::optional<Value> payload = parse_payload(request.payload, &parse_error);
  if (!payload.has_value()) {
    return encode_error(ErrorCode::kBadPayload, "payload is not valid JSON: " + parse_error);
  }
  if (!payload->is_object()) {
    return encode_error(ErrorCode::kBadPayload, "payload must be a JSON object");
  }

  Writer writer;
  switch (request.type) {
    case MessageType::kPing: {
      // One snapshot acquisition: generation and unique_chains come from the
      // same published generation, never torn across a concurrent append.
      const ServiceState::SnapshotPtr snapshot = state_->acquire_snapshot();
      writer.begin_object();
      writer.key("ok");
      writer.value_bool(true);
      writer.key("schema");
      writer.value_string(kWireSchemaName);
      writer.key("version");
      writer.value_uint(kWireVersion);
      writer.key("generation");
      writer.value_uint(snapshot->generation);
      writer.key("unique_chains");
      writer.value_uint(snapshot->unique_chains);
      writer.end_object();
      return encode_frame(MessageType::kPingOk, writer.str());
    }

    case MessageType::kClassifyIssuer: {
      const Value* issuer = payload->find("issuer");
      if (issuer == nullptr || !issuer->is_string()) {
        return encode_error(ErrorCode::kBadPayload,
                            "classify_issuer needs a string \"issuer\" field");
      }
      const auto name = x509::DistinguishedName::parse(issuer->string);
      if (!name.has_value()) {
        return encode_error(ErrorCode::kBadPayload,
                            "\"issuer\" is not a parseable RFC 4514 DN");
      }
      const truststore::IssuerClass issuer_class = state_->classify_issuer(*name);
      writer.begin_object();
      writer.key("issuer");
      writer.value_string(name->to_string());
      writer.key("canonical");
      writer.value_string(name->canonical());
      writer.key("class");
      writer.value_string(truststore::issuer_class_name(issuer_class));
      writer.end_object();
      return encode_frame(MessageType::kClassifyIssuerOk, writer.str());
    }

    case MessageType::kCategorizeChain: {
      std::string chain_error;
      const auto submitted = chain_from_request(*payload, &chain_error);
      if (!submitted.has_value()) {
        return encode_error(ErrorCode::kBadPayload, chain_error);
      }
      const ChainVerdict verdict = state_->categorize_chain(*submitted);
      writer.begin_object();
      writer.key("category");
      writer.value_string(chain::chain_category_name(verdict.category));
      writer.key("length");
      writer.value_uint(submitted->length());
      writer.key("generation");
      writer.value_uint(verdict.generation);
      writer.key("paths");
      write_path_analysis(writer, verdict.paths);
      if (verdict.hybrid.has_value()) {
        writer.key("hybrid");
        writer.begin_object();
        writer.key("structure");
        writer.value_string(chain::hybrid_structure_name(verdict.hybrid->structure));
        if (verdict.hybrid->structure == chain::HybridStructure::kNoCompletePath) {
          writer.key("no_path_category");
          writer.value_string(
              chain::no_path_category_name(verdict.hybrid->no_path_category));
        }
        writer.key("public_leaf_without_issuer");
        writer.value_bool(verdict.hybrid->public_leaf_without_issuer);
        writer.end_object();
      }
      writer.key("lints");
      write_lints(writer, verdict.lints);
      writer.end_object();
      return encode_frame(MessageType::kCategorizeChainOk, writer.str());
    }

    case MessageType::kReportSection: {
      const Value* section = payload->find("section");
      const std::string name =
          section != nullptr && section->is_string() ? section->string : "full";
      // Generation and text render from the same snapshot: the reported
      // generation always labels exactly the corpus the text describes.
      const ServiceState::SnapshotPtr snapshot = state_->acquire_snapshot();
      std::string text;
      if (name == "fleet") {
        // The fleet section lives beside the StudyReport: it renders the
        // snapshot's epoch registry, not the corpus analyzers.
        text = core::render_fleet_section(snapshot->fleet_epochs);
      } else {
        const auto options = section_options(name);
        if (!options.has_value()) {
          return encode_error(ErrorCode::kBadPayload,
                              "unknown report section \"" + name + "\"");
        }
        text = core::render_report_text(snapshot->report, *options);
      }
      writer.begin_object();
      writer.key("section");
      writer.value_string(name);
      writer.key("generation");
      writer.value_uint(snapshot->generation);
      writer.key("text");
      writer.value_string(text);
      writer.end_object();
      return encode_frame(MessageType::kReportSectionOk, writer.str());
    }

    case MessageType::kIngestAppend: {
      const auto ssl_rows = string_array(*payload, "ssl_rows");
      const auto x509_rows = string_array(*payload, "x509_rows");
      if (!ssl_rows.has_value() || !x509_rows.has_value()) {
        return encode_error(
            ErrorCode::kBadPayload,
            "ingest_append needs \"ssl_rows\"/\"x509_rows\" string arrays");
      }
      if (ssl_rows->empty() && x509_rows->empty()) {
        return encode_error(ErrorCode::kBadPayload,
                            "ingest_append carries no rows");
      }
      const Value* key = payload->find("idempotency_key");
      if (key != nullptr && !key->is_string()) {
        return encode_error(ErrorCode::kBadPayload,
                            "\"idempotency_key\" must be a string");
      }
      const std::string idempotency_key = key != nullptr ? key->string : "";
      // Optional rider: a completed fleet epoch summary folded in the same
      // request as its rows. Validated before the append so a bad summary
      // rejects the whole request instead of half-applying it.
      const Value* epoch_field = payload->find("fleet_epoch");
      std::optional<core::EpochSummary> epoch;
      if (epoch_field != nullptr) {
        epoch = core::parse_epoch_summary(*epoch_field);
        if (!epoch.has_value()) {
          return encode_error(ErrorCode::kBadPayload,
                              "\"fleet_epoch\" is not a valid epoch summary");
        }
      }
      const AppendResult result =
          state_->ingest_append(*ssl_rows, *x509_rows, idempotency_key);
      if (epoch.has_value()) {
        // Runs on duplicates too: record_fleet_epoch is idempotent by epoch
        // index, so a retried or post-recovery re-fed epoch lands once.
        state_->record_fleet_epoch(*std::move(epoch));
        telemetry_->count("svc.ingest.fleet_epochs");
      }
      if (result.duplicate) {
        // A client retry of a batch already folded: answer with the original
        // result, count nothing into the ingest totals again.
        telemetry_->count("svc.ingest.duplicates");
      } else {
        telemetry_->count("svc.ingest.ssl_rows", result.ssl_added);
        telemetry_->count("svc.ingest.x509_rows", result.x509_added);
        telemetry_->count("svc.ingest.rows_malformed",
                          result.ssl_malformed + result.x509_malformed);
      }
      writer.begin_object();
      writer.key("ssl_added");
      writer.value_uint(result.ssl_added);
      writer.key("x509_added");
      writer.value_uint(result.x509_added);
      writer.key("ssl_malformed");
      writer.value_uint(result.ssl_malformed);
      writer.key("x509_malformed");
      writer.value_uint(result.x509_malformed);
      writer.key("generation");
      writer.value_uint(result.generation);
      writer.key("unique_chains");
      writer.value_uint(result.unique_chains);
      writer.key("connections");
      writer.value_uint(result.connections);
      writer.key("duplicate");
      writer.value_bool(result.duplicate);
      if (result.wal_seq != 0) {
        writer.key("wal_seq");
        writer.value_uint(result.wal_seq);
      }
      writer.end_object();
      return encode_frame(MessageType::kIngestAppendOk, writer.str());
    }

    case MessageType::kMetrics: {
      // The payload *is* the certchain.obs.metrics document.
      return encode_frame(MessageType::kMetricsOk, telemetry_->export_json());
    }

    case MessageType::kCtSth: {
      writer.begin_object();
      writer.key("logs");
      writer.begin_array();
      for (const auto& [log_id, head] : state_->ct_sths()) {
        writer.begin_object();
        writer.key("log_id");
        writer.value_string(log_id);
        writer.key("tree_size");
        writer.value_uint(head.tree_size);
        writer.key("root");
        writer.value_string(head.root.to_hex());
        writer.end_object();
      }
      writer.end_array();
      writer.end_object();
      return encode_frame(MessageType::kCtSthOk, writer.str());
    }

    case MessageType::kCtProveInclusion: {
      const Value* fingerprint = payload->find("fingerprint");
      if (fingerprint == nullptr || !fingerprint->is_string() ||
          fingerprint->string.empty()) {
        return encode_error(
            ErrorCode::kBadPayload,
            "ct_prove_inclusion needs a string \"fingerprint\" field");
      }
      const Value* log_id = payload->find("log_id");
      if (log_id != nullptr && !log_id->is_string()) {
        return encode_error(ErrorCode::kBadPayload,
                            "\"log_id\" must be a string");
      }
      const auto answer = state_->ct_prove_inclusion(
          fingerprint->string, log_id != nullptr ? log_id->string : "");
      if (!answer.has_value()) {
        // The typed miss: a well-formed query for a fingerprint no log
        // holds. Clients distinguish this from payload damage.
        return encode_error(ErrorCode::kNotFound,
                            "fingerprint is not logged: " + fingerprint->string);
      }
      writer.begin_object();
      writer.key("log_id");
      writer.value_string(answer->log_id);
      writer.key("index");
      writer.value_uint(answer->index);
      writer.key("tree_size");
      writer.value_uint(answer->tree_size);
      writer.key("root");
      writer.value_string(answer->root.to_hex());
      writer.key("proof");
      writer.begin_array();
      for (const ct::Digest256& node : answer->proof) {
        writer.value_string(node.to_hex());
      }
      writer.end_array();
      writer.end_object();
      return encode_frame(MessageType::kCtProveInclusionOk, writer.str());
    }

    case MessageType::kCtMonitorStatus: {
      const ct::Monitor* monitor = state_->ct_monitor();
      writer.begin_object();
      writer.key("armed");
      writer.value_bool(monitor != nullptr);
      if (monitor != nullptr) {
        const ct::MonitorStatus status = monitor->status();
        writer.key("polls");
        writer.value_uint(status.polls);
        writer.key("sth_verified");
        writer.value_uint(status.sth_verified);
        writer.key("inclusion_checks");
        writer.value_uint(status.inclusion_checks);
        writer.key("inclusion_failures");
        writer.value_uint(status.inclusion_failures);
        writer.key("violations");
        writer.value_uint(status.violation_count);
        writer.key("checkpoints");
        writer.begin_array();
        for (const auto& checkpoint : status.checkpoints) {
          writer.begin_object();
          writer.key("log_id");
          writer.value_string(checkpoint.log_id);
          writer.key("tree_size");
          writer.value_uint(checkpoint.tree_size);
          writer.key("root");
          writer.value_string(checkpoint.root.to_hex());
          writer.end_object();
        }
        writer.end_array();
      }
      writer.end_object();
      return encode_frame(MessageType::kCtMonitorStatusOk, writer.str());
    }

    case MessageType::kFleetStatus: {
      const ServiceState::SnapshotPtr snapshot = state_->acquire_snapshot();
      const std::vector<core::EpochSummary>& epochs = snapshot->fleet_epochs;
      writer.begin_object();
      writer.key("generation");
      writer.value_uint(snapshot->generation);
      writer.key("epochs");
      writer.value_uint(epochs.size());
      writer.key("summaries");
      writer.begin_array();
      for (const core::EpochSummary& epoch : epochs) {
        writer.begin_object();
        writer.key("index");
        writer.value_uint(epoch.index);
        writer.key("scanned");
        writer.value_uint(epoch.health.scanned);
        writer.key("reachable");
        writer.value_uint(epoch.reachable);
        writer.key("unreachable");
        writer.value_uint(epoch.health.unreachable);
        writer.key("lets_encrypt");
        writer.value_uint(epoch.lets_encrypt);
        writer.key("lets_encrypt_share");
        writer.value_number(epoch.lets_encrypt_share());
        writer.key("hierarchical_non_public");
        writer.value_uint(epoch.hierarchical_non_public);
        writer.end_object();
      }
      writer.end_array();
      writer.key("text");
      writer.value_string(core::render_fleet_section(epochs));
      writer.end_object();
      return encode_frame(MessageType::kFleetStatusOk, writer.str());
    }

    case MessageType::kEpochDelta: {
      const Value* epoch_field = payload->find("epoch");
      const ServiceState::SnapshotPtr snapshot = state_->acquire_snapshot();
      const std::vector<core::EpochSummary>& epochs = snapshot->fleet_epochs;
      // "epoch" selects the delta's destination index; absent = latest.
      std::size_t to_index;
      if (epoch_field == nullptr) {
        if (epochs.size() < 2) {
          return encode_error(ErrorCode::kNotFound,
                              "fewer than two completed epochs — no delta yet");
        }
        to_index = epochs.back().index;
      } else if (epoch_field->is_number() && epoch_field->num >= 0) {
        to_index = static_cast<std::size_t>(epoch_field->num);
      } else {
        return encode_error(ErrorCode::kBadPayload,
                            "\"epoch\" must be a non-negative number");
      }
      const core::EpochSummary* from = nullptr;
      const core::EpochSummary* to = nullptr;
      for (const core::EpochSummary& epoch : epochs) {
        if (to_index > 0 && epoch.index == to_index - 1) from = &epoch;
        if (epoch.index == to_index) to = &epoch;
      }
      if (to == nullptr || from == nullptr) {
        // The typed miss: a well-formed query for an epoch pair the fleet
        // has not completed (or index 0, which has no predecessor).
        return encode_error(ErrorCode::kNotFound,
                            "no delta for epoch " + std::to_string(to_index));
      }
      core::write_epoch_delta_json(writer, core::compute_epoch_delta(*from, *to));
      return encode_frame(MessageType::kEpochDeltaOk, writer.str());
    }

    case MessageType::kShutdown: {
      if (shutdown_requested != nullptr) *shutdown_requested = true;
      writer.begin_object();
      writer.key("ok");
      writer.value_bool(true);
      writer.key("draining");
      writer.value_bool(true);
      writer.end_object();
      return encode_frame(MessageType::kShutdownOk, writer.str());
    }

    default:
      return encode_error(ErrorCode::kBadType,
                          "frame type is not a request: " +
                              std::string(message_type_name(request.type)));
  }
}

}  // namespace certchain::svc
