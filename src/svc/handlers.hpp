// Request dispatch: one decoded wire frame in, one encoded response frame
// out (DESIGN.md §12.3).
//
// Handlers are pure request -> response computations over ServiceState; the
// server's worker threads call handle() concurrently, and all shared
// mutability lives behind ServiceState's reader/writer lock and the
// SyncTelemetry mutex. Every endpoint records a `svc.endpoint.<name>.requests`
// counter and a `svc.endpoint.<name>.ms` latency histogram (p50/p90/p99 via
// the registry's timing map); failures add `svc.endpoint.<name>.errors`.
#pragma once

#include <string>

#include "svc/protocol.hpp"
#include "svc/service_state.hpp"
#include "svc/telemetry.hpp"

namespace certchain::svc {

class RequestHandlers {
 public:
  RequestHandlers(ServiceState& state, SyncTelemetry& telemetry)
      : state_(&state), telemetry_(&telemetry) {}

  /// Handles one request frame and returns the complete encoded response
  /// frame (success or typed error — never throws). Sets
  /// `*shutdown_requested` when the request was a kShutdown.
  std::string handle(const Frame& request, bool* shutdown_requested) const;

 private:
  std::string dispatch(const Frame& request, bool* shutdown_requested) const;

  ServiceState* state_;
  SyncTelemetry* telemetry_;
};

}  // namespace certchain::svc
