#include "svc/protocol.hpp"

#include "obs/json.hpp"

namespace certchain::svc {

bool is_request_type(std::uint8_t type) { return type >= 0x01 && type <= 0x7E; }

bool is_known_request(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(MessageType::kPing) &&
         type <= static_cast<std::uint8_t>(MessageType::kEpochDelta);
}

MessageType response_for(MessageType request) {
  return static_cast<MessageType>(static_cast<std::uint8_t>(request) | 0x80);
}

std::string_view message_type_name(MessageType type) {
  switch (type) {
    case MessageType::kPing: return "ping";
    case MessageType::kClassifyIssuer: return "classify_issuer";
    case MessageType::kCategorizeChain: return "categorize_chain";
    case MessageType::kReportSection: return "report_section";
    case MessageType::kIngestAppend: return "ingest_append";
    case MessageType::kMetrics: return "metrics";
    case MessageType::kShutdown: return "shutdown";
    case MessageType::kCtSth: return "ct_sth";
    case MessageType::kCtProveInclusion: return "ct_prove_inclusion";
    case MessageType::kCtMonitorStatus: return "ct_monitor_status";
    case MessageType::kFleetStatus: return "fleet_status";
    case MessageType::kEpochDelta: return "epoch_delta";
    case MessageType::kPingOk: return "ping_ok";
    case MessageType::kClassifyIssuerOk: return "classify_issuer_ok";
    case MessageType::kCategorizeChainOk: return "categorize_chain_ok";
    case MessageType::kReportSectionOk: return "report_section_ok";
    case MessageType::kIngestAppendOk: return "ingest_append_ok";
    case MessageType::kMetricsOk: return "metrics_ok";
    case MessageType::kShutdownOk: return "shutdown_ok";
    case MessageType::kCtSthOk: return "ct_sth_ok";
    case MessageType::kCtProveInclusionOk: return "ct_prove_inclusion_ok";
    case MessageType::kCtMonitorStatusOk: return "ct_monitor_status_ok";
    case MessageType::kFleetStatusOk: return "fleet_status_ok";
    case MessageType::kEpochDeltaOk: return "epoch_delta_ok";
    case MessageType::kError: return "error";
  }
  return "unknown";
}

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadMagic: return "BAD_MAGIC";
    case ErrorCode::kBadVersion: return "BAD_VERSION";
    case ErrorCode::kBadType: return "BAD_TYPE";
    case ErrorCode::kOversized: return "OVERSIZED";
    case ErrorCode::kBadPayload: return "BAD_PAYLOAD";
    case ErrorCode::kOverloaded: return "OVERLOADED";
    case ErrorCode::kShuttingDown: return "SHUTTING_DOWN";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kNotFound: return "NOT_FOUND";
  }
  return "UNKNOWN";
}

std::string encode_frame(MessageType type, std::string_view payload) {
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  frame.append(kWireMagic);
  frame.push_back(static_cast<char>(kWireVersion));
  frame.push_back(static_cast<char>(type));
  frame.push_back('\0');
  frame.push_back('\0');
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<char>((length >> 24) & 0xFF));
  frame.push_back(static_cast<char>((length >> 16) & 0xFF));
  frame.push_back(static_cast<char>((length >> 8) & 0xFF));
  frame.push_back(static_cast<char>(length & 0xFF));
  frame.append(payload);
  return frame;
}

std::string encode_error(ErrorCode code, std::string_view message) {
  obs::json::Writer writer;
  writer.begin_object();
  writer.key("code");
  writer.value_string(error_code_name(code));
  writer.key("message");
  writer.value_string(message);
  writer.end_object();
  return encode_frame(MessageType::kError, writer.str());
}

DecodeResult FrameReader::next() {
  DecodeResult result;
  if (buffer_.size() < kHeaderBytes) {
    // A short buffer could still be damaged beyond doubt: reject a wrong
    // magic as soon as the prefix disagrees, without waiting for 12 bytes.
    const std::size_t check = std::min(buffer_.size(), kWireMagic.size());
    if (buffer_.compare(0, check, kWireMagic, 0, check) != 0) {
      result.status = DecodeResult::Status::kError;
      result.error = ErrorCode::kBadMagic;
      result.message = "frame header does not start with CSVC";
      result.recoverable = false;
      return result;
    }
    result.status = DecodeResult::Status::kNeedMore;
    return result;
  }

  if (buffer_.compare(0, kWireMagic.size(), kWireMagic) != 0) {
    result.status = DecodeResult::Status::kError;
    result.error = ErrorCode::kBadMagic;
    result.message = "frame header does not start with CSVC";
    result.recoverable = false;
    return result;
  }
  const std::uint8_t version = static_cast<std::uint8_t>(buffer_[4]);
  if (version != kWireVersion) {
    result.status = DecodeResult::Status::kError;
    result.error = ErrorCode::kBadVersion;
    result.message = "unsupported wire version " + std::to_string(version);
    result.recoverable = false;
    return result;
  }
  const std::uint64_t length =
      (static_cast<std::uint64_t>(static_cast<std::uint8_t>(buffer_[8])) << 24) |
      (static_cast<std::uint64_t>(static_cast<std::uint8_t>(buffer_[9])) << 16) |
      (static_cast<std::uint64_t>(static_cast<std::uint8_t>(buffer_[10])) << 8) |
      static_cast<std::uint64_t>(static_cast<std::uint8_t>(buffer_[11]));
  if (length > kMaxPayloadBytes) {
    result.status = DecodeResult::Status::kError;
    result.error = ErrorCode::kOversized;
    result.message = "declared payload length " + std::to_string(length) +
                     " exceeds limit " + std::to_string(kMaxPayloadBytes);
    result.recoverable = false;
    return result;
  }
  if (buffer_.size() < kHeaderBytes + length) {
    result.status = DecodeResult::Status::kNeedMore;
    return result;
  }

  const std::uint8_t type = static_cast<std::uint8_t>(buffer_[5]);
  result.frame.payload = buffer_.substr(kHeaderBytes, length);
  buffer_.erase(0, kHeaderBytes + length);
  if (!is_known_request(type) && type != static_cast<std::uint8_t>(MessageType::kError) &&
      !(type >= 0x81 && type <= 0x8C)) {
    // The frame was well-delimited, so the stream stays in sync: report the
    // unknown type as a recoverable error and keep decoding after it.
    result.status = DecodeResult::Status::kError;
    result.error = ErrorCode::kBadType;
    result.message = "unknown message type " + std::to_string(type);
    result.recoverable = true;
    return result;
  }
  result.status = DecodeResult::Status::kFrame;
  result.frame.type = static_cast<MessageType>(type);
  return result;
}

}  // namespace certchain::svc
