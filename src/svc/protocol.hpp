// The certchain.svc.wire v1 framed protocol (DESIGN.md §12.2).
//
// Every message on a service connection is one frame: a fixed 12-byte header
// followed by a JSON payload. The header is
//
//   bytes 0..3   magic "CSVC"
//   byte  4      wire version (kWireVersion)
//   byte  5      message type (MessageType)
//   bytes 6..7   reserved, must be zero
//   bytes 8..11  payload length, unsigned 32-bit big-endian
//
// Requests occupy 0x01..0x7E; each response type is its request type with the
// high bit set; 0xFF is the typed error frame, whose payload carries
// {"code": <ErrorCode slug>, "message": ...}. The decoder is incremental
// (FrameReader::feed + next) and classifies damage precisely: a malformed
// header (bad magic, bad version, oversized declared length) desynchronizes
// the byte stream and is fatal to the connection; an unknown type arrives in
// a well-delimited frame and is recoverable — the server answers with a typed
// error and keeps serving. Versioning rules live in DESIGN.md §12.5.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace certchain::svc {

inline constexpr std::string_view kWireSchemaName = "certchain.svc.wire";
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::string_view kWireMagic = "CSVC";
inline constexpr std::size_t kHeaderBytes = 12;
/// Upper bound on a declared payload length; anything larger is treated as a
/// framing attack/corruption, not an allocation request.
inline constexpr std::size_t kMaxPayloadBytes = 16 * 1024 * 1024;

enum class MessageType : std::uint8_t {
  // Requests.
  kPing = 0x01,
  kClassifyIssuer = 0x02,
  kCategorizeChain = 0x03,
  kReportSection = 0x04,
  kIngestAppend = 0x05,
  kMetrics = 0x06,
  kShutdown = 0x07,
  kCtSth = 0x08,
  kCtProveInclusion = 0x09,
  kCtMonitorStatus = 0x0A,
  kFleetStatus = 0x0B,
  kEpochDelta = 0x0C,
  // Responses: request type | 0x80.
  kPingOk = 0x81,
  kClassifyIssuerOk = 0x82,
  kCategorizeChainOk = 0x83,
  kReportSectionOk = 0x84,
  kIngestAppendOk = 0x85,
  kMetricsOk = 0x86,
  kShutdownOk = 0x87,
  kCtSthOk = 0x88,
  kCtProveInclusionOk = 0x89,
  kCtMonitorStatusOk = 0x8A,
  kFleetStatusOk = 0x8B,
  kEpochDeltaOk = 0x8C,
  kError = 0xFF,
};

/// True for the request range (0x01..0x7E).
bool is_request_type(std::uint8_t type);
/// True iff `type` is one of the defined request MessageTypes.
bool is_known_request(std::uint8_t type);
/// The success response type for a request.
MessageType response_for(MessageType request);
std::string_view message_type_name(MessageType type);

/// Typed failure classes carried by kError frames.
enum class ErrorCode : std::uint8_t {
  kBadMagic,      // header does not start with "CSVC"
  kBadVersion,    // unsupported wire version byte
  kBadType,       // unknown or non-request message type
  kOversized,     // declared payload length exceeds kMaxPayloadBytes
  kBadPayload,    // payload is not the JSON the endpoint expects
  kOverloaded,    // admission queue full — retry later (backpressure)
  kShuttingDown,  // server is draining; no new work accepted
  kInternal,      // handler failed unexpectedly
  kDeadlineExceeded,  // request (or its frame) missed the server's deadline
  kNotFound,      // the referenced entity (e.g. CT fingerprint) is not known
};

std::string_view error_code_name(ErrorCode code);

struct Frame {
  MessageType type = MessageType::kPing;
  std::string payload;
};

/// Serializes one frame (header + payload).
std::string encode_frame(MessageType type, std::string_view payload);

/// Serializes a kError frame with the standard {"code","message"} payload.
std::string encode_error(ErrorCode code, std::string_view message);

/// One step of incremental decoding.
struct DecodeResult {
  enum class Status {
    kNeedMore,  // not enough buffered bytes for a full frame
    kFrame,     // `frame` holds the next complete message
    kError,     // `error`/`message` describe the damage
  };
  Status status = Status::kNeedMore;
  Frame frame;
  ErrorCode error = ErrorCode::kInternal;
  std::string message;
  /// False when the byte stream lost framing (bad magic/version/oversized)
  /// and the connection cannot be re-synchronized; unknown-type frames are
  /// consumed whole and leave the stream usable.
  bool recoverable = false;
};

/// Incremental frame decoder over a TCP byte stream.
class FrameReader {
 public:
  void feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Extracts the next frame (or error) from the buffer. kNeedMore leaves
  /// the buffer untouched; kFrame and recoverable kError consume the frame's
  /// bytes; an unrecoverable kError leaves the buffer poisoned — callers
  /// must drop the connection.
  DecodeResult next();

  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

}  // namespace certchain::svc
