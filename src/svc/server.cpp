#include "svc/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

namespace certchain::svc {

namespace {

constexpr int kListenBacklog = 64;
constexpr std::size_t kReadChunkBytes = 64 * 1024;

using Clock = std::chrono::steady_clock;

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Milliseconds until `deadline`, clamped at 0 (for poll timeouts).
int ms_until(Clock::time_point deadline, Clock::time_point now) {
  const auto remaining =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count();
  if (remaining <= 0) return 0;
  if (remaining > 3600 * 1000) return 3600 * 1000;
  return static_cast<int>(remaining);
}

}  // namespace

Server::Server(ServiceState& state, SyncTelemetry& telemetry,
               ServerOptions options)
    : state_(&state),
      telemetry_(&telemetry),
      options_(std::move(options)),
      handlers_(state, telemetry) {}

Server::~Server() {
  request_stop();
  wait();
}

bool Server::start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    close_if_open(listen_fd_);
    close_if_open(wake_pipe_[0]);
    close_if_open(wake_pipe_[1]);
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    return fail("inet_pton(" + options_.host + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, kListenBacklog) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  if (::pipe(wake_pipe_) != 0) return fail("pipe");

  const std::size_t workers = par::resolve_threads(options_.workers);
  telemetry_->set_config("svc.host", options_.host);
  telemetry_->set_config("svc.port", std::to_string(port_));
  telemetry_->set_config("svc.workers", std::to_string(workers));
  telemetry_->set_config("svc.queue_capacity",
                         std::to_string(options_.queue_capacity));
  telemetry_->set_config("svc.wire_version", std::to_string(kWireVersion));
  telemetry_->set_config("svc.request_deadline_ms",
                         std::to_string(options_.request_deadline_ms));
  telemetry_->set_config("svc.idle_timeout_ms",
                         std::to_string(options_.idle_timeout_ms));
  telemetry_->set_gauge("svc.connections.active", 0.0);

  pool_ = std::make_unique<par::ThreadPool>(workers);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    live_workers_ = workers;
  }
  for (std::size_t i = 0; i < workers; ++i) {
    pool_->submit([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
  started_ = true;
  return true;
}

void Server::request_stop() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  // Wake the acceptor's poll(); the byte's value is irrelevant.
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  drain_cv_.notify_all();
}

void Server::wait() {
  if (!started_) return;
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this] { return draining(); });
    if (stopped_) return;
    if (teardown_in_progress_) {
      drain_cv_.wait(lock, [this] { return stopped_; });
      return;
    }
    teardown_in_progress_ = true;
  }

  // 1. No new connections: the acceptor exits once woken while draining.
  if (acceptor_.joinable()) acceptor_.join();

  // 2. No new requests: half-close every connection socket so blocked reads
  //    return 0 while responses still in flight can write, then join the
  //    reader threads.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (Connection& connection : connections_) {
      if (connection.fd >= 0) ::shutdown(connection.fd, SHUT_RD);
    }
  }
  for (;;) {
    Connection* next = nullptr;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      for (Connection& connection : connections_) {
        if (connection.thread.joinable()) {
          next = &connection;
          break;
        }
      }
    }
    if (next == nullptr) break;
    next->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (Connection& connection : connections_) close_if_open(connection.fd);
    connections_.clear();
    active_connections_ = 0;
  }
  telemetry_->set_gauge("svc.connections.active", 0.0);

  // 3. Everything admitted drains: workers finish the queue, then exit.
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    workers_stop_ = true;
    queue_cv_.notify_all();
    workers_done_cv_.wait(lock, [this] { return live_workers_ == 0; });
  }
  pool_.reset();

  close_if_open(listen_fd_);
  close_if_open(wake_pipe_[0]);
  close_if_open(wake_pipe_[1]);
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    stopped_ = true;
  }
  drain_cv_.notify_all();
}

void Server::acceptor_loop() {
  while (!draining()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (draining()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;  // EINTR/ECONNABORTED: poll again

    if (options_.request_deadline_ms > 0) {
      // A peer that stops reading cannot park a response write forever: the
      // send times out, write_all fails, the connection closes.
      timeval send_timeout{};
      send_timeout.tv_sec = options_.request_deadline_ms / 1000;
      send_timeout.tv_usec =
          static_cast<long>(options_.request_deadline_ms % 1000) * 1000;
      ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                   sizeof(send_timeout));
    }

    std::lock_guard<std::mutex> lock(connections_mutex_);
    reap_finished_connections_locked();
    if (active_connections_ >= options_.max_connections) {
      telemetry_->count("svc.connections.rejected");
      ::close(client);
      continue;
    }
    telemetry_->count("svc.connections.accepted");
    ++active_connections_;
    telemetry_->set_gauge("svc.connections.active",
                          static_cast<double>(active_connections_));
    connections_.emplace_back();
    Connection* connection = &connections_.back();
    connection->fd = client;
    connection->thread =
        std::thread([this, connection] { connection_loop(connection); });
  }
}

void Server::reap_finished_connections_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      close_if_open(it->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::connection_loop(Connection* connection) {
  const int fd = connection->fd;
  FrameReader reader;
  char buffer[kReadChunkBytes];
  bool open = true;

  // Two clocks bound this loop. frame_deadline arms when a frame starts
  // arriving (buffer empty -> nonempty) and re-arms per frame: a peer that
  // stalls or trickles mid-frame gets a typed error and a close.
  // last_activity drives the idle timeout between frames.
  bool frame_deadline_armed = false;
  Clock::time_point frame_deadline{};
  Clock::time_point last_activity = Clock::now();

  while (open) {
    const Clock::time_point now = Clock::now();
    int timeout_ms = -1;
    if (frame_deadline_armed) {
      if (now >= frame_deadline) {
        telemetry_->count("svc.connections.stalled_closed");
        write_all(fd, encode_error(ErrorCode::kDeadlineExceeded,
                                   "frame did not finish arriving within the "
                                   "request deadline"));
        break;
      }
      timeout_ms = ms_until(frame_deadline, now);
    } else if (options_.idle_timeout_ms > 0) {
      const Clock::time_point idle_deadline =
          last_activity + std::chrono::milliseconds(options_.idle_timeout_ms);
      if (now >= idle_deadline) {
        telemetry_->count("svc.connections.idle_closed");
        break;  // quiet close: an idle peer did nothing wrong
      }
      timeout_ms = ms_until(idle_deadline, now);
    }

    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // timed out — the loop head decides which kind

    ssize_t n;
    do {
      n = ::recv(fd, buffer, sizeof(buffer), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) break;  // EOF or error — either way the conversation is over
    reader.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    last_activity = Clock::now();

    bool completed_frame = false;
    while (open) {
      DecodeResult decoded = reader.next();
      if (decoded.status == DecodeResult::Status::kNeedMore) break;
      completed_frame = true;
      if (decoded.status == DecodeResult::Status::kError) {
        telemetry_->count("svc.frames.malformed");
        write_all(fd, encode_error(decoded.error, decoded.message));
        if (!decoded.recoverable) open = false;  // framing lost — hang up
        continue;
      }
      if (!serve_request(fd, std::move(decoded.frame))) open = false;
    }
    // Re-arm: each frame gets a fresh deadline, stamped when its first bytes
    // are buffered and cleared once the buffer drains.
    if (reader.buffered_bytes() == 0) {
      frame_deadline_armed = false;
      last_activity = Clock::now();
    } else if (!frame_deadline_armed || completed_frame) {
      frame_deadline_armed = options_.request_deadline_ms > 0;
      frame_deadline = Clock::now() +
                       std::chrono::milliseconds(options_.request_deadline_ms);
    }
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    // Close now (not at reap time) so the peer sees EOF as soon as the
    // conversation is over; reap/wait() skip the -1 fd.
    close_if_open(connection->fd);
    if (active_connections_ > 0) --active_connections_;
    telemetry_->set_gauge("svc.connections.active",
                          static_cast<double>(active_connections_));
  }
  telemetry_->count("svc.connections.closed");
  connection->done.store(true, std::memory_order_release);
}

bool Server::serve_request(int fd, Frame frame) {
  telemetry_->count("stage.svc.requests.in");
  if (draining()) {
    telemetry_->count("stage.svc.requests.dropped");
    return write_all(fd, encode_error(ErrorCode::kShuttingDown,
                                      "server is draining; no new work "
                                      "accepted"));
  }

  std::future<std::pair<std::string, bool>> response_future;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() >= options_.queue_capacity) {
      telemetry_->count("stage.svc.requests.dropped");
      return write_all(fd, encode_error(ErrorCode::kOverloaded,
                                        "admission queue full; retry later"));
    }
    telemetry_->count("stage.svc.requests.admitted");
    queue_.emplace_back();
    queue_.back().frame = std::move(frame);
    if (options_.request_deadline_ms > 0) {
      queue_.back().has_deadline = true;
      queue_.back().deadline =
          Clock::now() + std::chrono::milliseconds(options_.request_deadline_ms);
    }
    response_future = queue_.back().promise.get_future();
  }
  queue_cv_.notify_one();

  // This thread is the connection's only writer, and it holds at most one
  // request in flight — responses are ordered by construction.
  auto [response, shutdown_requested] = response_future.get();
  const bool wrote = write_all(fd, response);
  if (shutdown_requested) {
    request_stop();
    return false;  // response written; close our end so the client sees EOF
  }
  return wrote;  // a timed-out/failed write closes the connection
}

void Server::worker_loop() {
  for (;;) {
    PendingRequest request;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return workers_stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        // workers_stop_ and nothing left to drain.
        --live_workers_;
        if (live_workers_ == 0) workers_done_cv_.notify_all();
        return;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
    }
    // A request that waited out its deadline in the queue is answered with
    // the typed error instead of running the handler: the client has most
    // likely given up, and burning a worker on it only starves fresher work.
    // It stays an admitted request — the triple reconciles either way.
    if (request.has_deadline && Clock::now() > request.deadline) {
      telemetry_->count("svc.requests.deadline_exceeded");
      request.promise.set_value(
          {encode_error(ErrorCode::kDeadlineExceeded,
                        "request waited past its deadline in the admission "
                        "queue"),
           false});
      continue;
    }
    bool shutdown_requested = false;
    std::string response = handlers_.handle(request.frame, &shutdown_requested);
    request.promise.set_value({std::move(response), shutdown_requested});
  }
}

bool Server::write_all(int fd, std::string_view bytes) const {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // SO_SNDTIMEO expired mid-response: the peer stopped reading.
        telemetry_->count("svc.connections.stalled_closed");
      }
      return false;  // peer went away; nothing sensible left to do
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace certchain::svc
