#include "svc/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

namespace certchain::svc {

namespace {

constexpr int kListenBacklog = 1024;  // high-connection benches ramp fast
constexpr std::size_t kReadChunkBytes = 64 * 1024;
constexpr int kMaxPollerEvents = 256;

using Clock = std::chrono::steady_clock;

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Milliseconds until `deadline`, clamped at 0 (for poller timeouts).
int ms_until(Clock::time_point deadline, Clock::time_point now) {
  const auto remaining =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count();
  if (remaining <= 0) return 0;
  if (remaining > 3600 * 1000) return 3600 * 1000;
  return static_cast<int>(remaining);
}

}  // namespace

// ---------------------------------------------------------------------------
// Poller

#ifdef __linux__

Poller::Poller() : epoll_fd_(::epoll_create1(0)) {}

Poller::~Poller() { close_if_open(epoll_fd_); }

bool Poller::valid() const { return epoll_fd_ >= 0; }

const char* Poller::backend() { return "epoll"; }

void Poller::add(int fd, std::uint64_t key, bool want_read, bool want_write) {
  epoll_event event{};
  event.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  event.data.u64 = key;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
}

void Poller::modify(int fd, std::uint64_t key, bool want_read,
                    bool want_write) {
  epoll_event event{};
  event.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  event.data.u64 = key;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event);
}

void Poller::remove(int fd, std::uint64_t key) {
  (void)key;
  epoll_event event{};  // non-null for pre-2.6.9 kernels, unused since
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &event);
}

int Poller::wait(std::vector<Event>& events, int timeout_ms) {
  epoll_event ready[kMaxPollerEvents];
  const int n = ::epoll_wait(epoll_fd_, ready, kMaxPollerEvents, timeout_ms);
  events.clear();
  if (n <= 0) return n;
  events.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Event event;
    event.key = ready[i].data.u64;
    event.readable = (ready[i].events & EPOLLIN) != 0;
    event.writable = (ready[i].events & EPOLLOUT) != 0;
    event.broken = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    events.push_back(event);
  }
  return n;
}

#else  // poll(2) fallback for non-Linux hosts

Poller::Poller() = default;

Poller::~Poller() = default;

bool Poller::valid() const { return true; }

const char* Poller::backend() { return "poll"; }

void Poller::add(int fd, std::uint64_t key, bool want_read, bool want_write) {
  watched_.push_back(Watched{fd, key, want_read, want_write});
}

void Poller::modify(int fd, std::uint64_t key, bool want_read,
                    bool want_write) {
  for (Watched& watched : watched_) {
    if (watched.key == key) {
      watched.fd = fd;
      watched.want_read = want_read;
      watched.want_write = want_write;
      return;
    }
  }
}

void Poller::remove(int fd, std::uint64_t key) {
  (void)fd;
  watched_.erase(std::remove_if(watched_.begin(), watched_.end(),
                                [key](const Watched& watched) {
                                  return watched.key == key;
                                }),
                 watched_.end());
}

int Poller::wait(std::vector<Event>& events, int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(watched_.size());
  for (const Watched& watched : watched_) {
    pollfd pfd{};
    pfd.fd = watched.fd;
    pfd.events = static_cast<short>((watched.want_read ? POLLIN : 0) |
                                    (watched.want_write ? POLLOUT : 0));
    fds.push_back(pfd);
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  events.clear();
  if (n <= 0) return n;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    Event event;
    event.key = watched_[i].key;
    event.readable = (fds[i].revents & POLLIN) != 0;
    event.writable = (fds[i].revents & POLLOUT) != 0;
    event.broken = (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    events.push_back(event);
  }
  return n;
}

#endif

// ---------------------------------------------------------------------------
// Server

Server::Server(ServiceState& state, SyncTelemetry& telemetry,
               ServerOptions options)
    : state_(&state),
      telemetry_(&telemetry),
      options_(std::move(options)),
      handlers_(state, telemetry) {
  // Route snapshot lifecycle events (svc.snapshot.published / .live) into
  // the serving registry for as long as this server exists; wait() detaches
  // before the telemetry object can be destroyed underneath late releases.
  state_->attach_telemetry(telemetry_);
}

Server::~Server() {
  request_stop();
  wait();
  // Covers the never-started server too: wait() returns immediately then,
  // without running the teardown's detach.
  state_->attach_telemetry(nullptr);
}

bool Server::start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    close_if_open(listen_fd_);
    close_if_open(wake_pipe_[0]);
    close_if_open(wake_pipe_[1]);
    return false;
  };

  if (!poller_.valid()) return fail("poller");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (!set_nonblocking(listen_fd_)) return fail("fcntl(listen)");

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    return fail("inet_pton(" + options_.host + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, kListenBacklog) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  if (::pipe(wake_pipe_) != 0) return fail("pipe");
  if (!set_nonblocking(wake_pipe_[0]) || !set_nonblocking(wake_pipe_[1])) {
    return fail("fcntl(pipe)");
  }

  poller_.add(listen_fd_, kListenKey, /*want_read=*/true, /*want_write=*/false);
  poller_.add(wake_pipe_[0], kWakeKey, /*want_read=*/true,
              /*want_write=*/false);

  const std::size_t workers = par::resolve_threads(options_.workers);
  telemetry_->set_config("svc.host", options_.host);
  telemetry_->set_config("svc.port", std::to_string(port_));
  telemetry_->set_config("svc.workers", std::to_string(workers));
  telemetry_->set_config("svc.queue_capacity",
                         std::to_string(options_.queue_capacity));
  telemetry_->set_config("svc.max_connections",
                         std::to_string(options_.max_connections));
  telemetry_->set_config("svc.wire_version", std::to_string(kWireVersion));
  telemetry_->set_config("svc.request_deadline_ms",
                         std::to_string(options_.request_deadline_ms));
  telemetry_->set_config("svc.idle_timeout_ms",
                         std::to_string(options_.idle_timeout_ms));
  telemetry_->set_config("svc.eventloop.backend", Poller::backend());
  telemetry_->set_gauge("svc.connections.active", 0.0);

  pool_ = std::make_unique<par::ThreadPool>(workers);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    live_workers_ = workers;
  }
  for (std::size_t i = 0; i < workers; ++i) {
    pool_->submit([this] { worker_loop(); });
  }
  loop_thread_ = std::thread([this] { loop(); });
  started_ = true;
  return true;
}

void Server::request_stop() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  // Wake the loop's poller; the byte's value is irrelevant.
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  drain_cv_.notify_all();
}

void Server::wait() {
  if (!started_) return;
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this] { return draining(); });
    if (stopped_) return;
    if (teardown_in_progress_) {
      drain_cv_.wait(lock, [this] { return stopped_; });
      return;
    }
    teardown_in_progress_ = true;
  }

  // 1. Tell the loop to finish: stop reading everywhere, flush every
  //    response already claimed (workers still run, so everything admitted
  //    completes and writes), then close. The loop exits once no
  //    connections remain.
  teardown_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  telemetry_->set_gauge("svc.connections.active", 0.0);

  // 2. The queue is empty by now (every admitted request completed before
  //    its connection could flush and close): release the workers.
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    workers_stop_ = true;
    queue_cv_.notify_all();
    workers_done_cv_.wait(lock, [this] { return live_workers_ == 0; });
  }
  pool_.reset();
  state_->attach_telemetry(nullptr);

  close_if_open(listen_fd_);
  close_if_open(wake_pipe_[0]);
  close_if_open(wake_pipe_[1]);
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    stopped_ = true;
  }
  drain_cv_.notify_all();
}

void Server::loop() {
  std::vector<Poller::Event> events;
  bool teardown_applied = false;

  for (;;) {
    // Drain transition: stop accepting the moment a drain begins.
    if (accepting_ && draining()) {
      poller_.remove(listen_fd_, kListenKey);
      accepting_ = false;
    }
    // Teardown transition (wait() ran): no more reads anywhere, every
    // connection closes as soon as its claimed responses flush.
    if (!teardown_applied && teardown_.load(std::memory_order_acquire)) {
      teardown_applied = true;
      std::vector<std::uint64_t> ids;
      ids.reserve(connections_.size());
      for (const auto& [id, connection] : connections_) ids.push_back(id);
      for (const std::uint64_t id : ids) {
        auto it = connections_.find(id);
        if (it == connections_.end()) continue;
        Connection& connection = it->second;
        if (!connection.read_closed) {
          connection.read_closed = true;
          poller_.modify(connection.fd, id, /*want_read=*/false,
                         connection.want_write);
        }
        connection.close_after_flush = true;
        pump_output(it->second, id);  // may close + erase
      }
    }
    if (teardown_applied && connections_.empty()) break;

    const Clock::time_point now = Clock::now();
    enforce_deadlines(now);
    if (teardown_applied && connections_.empty()) break;

    const int timeout_ms = next_timeout_ms(Clock::now());
    const int ready = poller_.wait(events, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // poller broke: nothing sane left to serve
    }
    if (ready == 0) continue;  // a deadline matured — the loop head acts
    telemetry_->count("svc.eventloop.wakeups");

    for (const Poller::Event& event : events) {
      if (event.key == kWakeKey) {
        char scratch[256];
        while (::read(wake_pipe_[0], scratch, sizeof(scratch)) > 0) {
        }
        drain_completions();
        continue;
      }
      if (event.key == kListenKey) {
        if (accepting_) accept_ready();
        continue;
      }
      // A connection event. The id may already be gone (closed earlier in
      // this same batch) — that is the point of keying by id, not fd.
      auto it = connections_.find(event.key);
      if (it == connections_.end()) continue;
      if (event.broken) {
        close_connection(event.key);
        continue;
      }
      if (event.writable) {
        if (!pump_output(it->second, event.key)) continue;
        it = connections_.find(event.key);
        if (it == connections_.end()) continue;
      }
      if (event.readable) read_ready(event.key);
    }
  }
}

void Server::accept_ready() {
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient accept error: poll again
    }
    if (!set_nonblocking(client)) {
      ::close(client);
      continue;
    }
    if (connections_.size() >= options_.max_connections) {
      telemetry_->count("svc.connections.rejected");
      ::close(client);
      continue;
    }
    telemetry_->count("svc.connections.accepted");
    const std::uint64_t id = next_connection_id_++;
    Connection& connection = connections_[id];
    connection.fd = client;
    connection.last_activity = Clock::now();
    poller_.add(client, id, /*want_read=*/true, /*want_write=*/false);
    telemetry_->set_gauge("svc.connections.active",
                          static_cast<double>(connections_.size()));
  }
}

void Server::read_ready(std::uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection& connection = it->second;
  if (connection.read_closed) return;

  char buffer[kReadChunkBytes];
  bool saw_bytes = false;
  for (;;) {
    const ssize_t n = ::recv(connection.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      connection.reader.feed(
          std::string_view(buffer, static_cast<std::size_t>(n)));
      saw_bytes = true;
      continue;
    }
    if (n == 0) {
      // EOF: the peer is done talking. Responses still owed (claimed slots,
      // queued bytes) flush first; the close happens when they have.
      connection.read_closed = true;
      poller_.modify(connection.fd, id, /*want_read=*/false,
                     connection.want_write);
      connection.close_after_flush = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_connection(id);  // hard socket error: the conversation is over
    return;
  }
  if (saw_bytes) connection.last_activity = Clock::now();
  decode_buffered(connection, id);
  // decode_buffered may have emitted + flushed; the connection can be gone.
  it = connections_.find(id);
  if (it != connections_.end() && it->second.close_after_flush) {
    pump_output(it->second, id);
  }
}

void Server::decode_buffered(Connection& connection, std::uint64_t id) {
  bool completed_frame = false;
  while (!connection.close_after_flush) {
    DecodeResult decoded = connection.reader.next();
    if (decoded.status == DecodeResult::Status::kNeedMore) break;
    completed_frame = true;
    if (decoded.status == DecodeResult::Status::kError) {
      telemetry_->count("svc.frames.malformed");
      if (!decoded.recoverable) {
        // Framing lost — hang up, but only after the error (and everything
        // claimed before it) reaches the peer.
        connection.read_closed = true;
        poller_.modify(connection.fd, id, /*want_read=*/false,
                       connection.want_write);
        connection.close_after_flush = true;
      }
      if (!emit(connection, id, encode_error(decoded.error, decoded.message))) {
        return;  // closed underneath — `connection` is gone
      }
      continue;
    }
    if (!serve_frame(connection, id, std::move(decoded.frame))) return;
  }
  if (connection.close_after_flush) return;  // no deadlines on a closing conn
  // Re-arm: each frame gets a fresh deadline, stamped when its first bytes
  // are buffered and cleared once the buffer drains.
  if (connection.reader.buffered_bytes() == 0) {
    connection.frame_deadline_armed = false;
    connection.last_activity = Clock::now();
  } else if (!connection.frame_deadline_armed || completed_frame) {
    connection.frame_deadline_armed = options_.request_deadline_ms > 0;
    connection.frame_deadline =
        Clock::now() + std::chrono::milliseconds(options_.request_deadline_ms);
  }
}

bool Server::serve_frame(Connection& connection, std::uint64_t id,
                         Frame frame) {
  telemetry_->count("stage.svc.requests.in");
  if (draining()) {
    telemetry_->count("stage.svc.requests.dropped");
    return emit(connection, id,
                encode_error(ErrorCode::kShuttingDown,
                             "server is draining; no new work accepted"));
  }

  // Fast path: read-only requests run inline on the loop thread. An RCU
  // read is microseconds of work — cheaper than the two scheduler hops of
  // a worker round-trip — so ping/classify/report/metrics/CT queries are
  // answered right here. Mutating or unbounded work (ingest_append
  // re-analyzes the corpus, categorize_chain parses an arbitrary PEM
  // bundle, shutdown drains) still goes to the workers. Accounting is
  // identical either way (the request counts admitted), and a
  // zero-capacity queue still rejects everything: capacity zero means
  // "serve nothing", not "serve only the cheap stuff".
  const bool read_only = frame.type == MessageType::kPing ||
                         frame.type == MessageType::kClassifyIssuer ||
                         frame.type == MessageType::kReportSection ||
                         frame.type == MessageType::kMetrics ||
                         frame.type == MessageType::kCtSth ||
                         frame.type == MessageType::kCtProveInclusion ||
                         frame.type == MessageType::kCtMonitorStatus ||
                         frame.type == MessageType::kFleetStatus ||
                         frame.type == MessageType::kEpochDelta;
  if (read_only && options_.queue_capacity > 0) {
    telemetry_->count("stage.svc.requests.admitted");
    bool shutdown_requested = false;  // read-only handlers never set it
    std::string response = handlers_.handle(frame, &shutdown_requested);
    return emit(connection, id, std::move(response));
  }

  PendingRequest request;
  request.connection_id = id;
  request.seq = connection.next_seq;  // claimed below, after admission
  request.frame = std::move(frame);
  if (options_.request_deadline_ms > 0) {
    request.has_deadline = true;
    request.deadline =
        Clock::now() + std::chrono::milliseconds(options_.request_deadline_ms);
  }
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() < options_.queue_capacity) {
      telemetry_->count("stage.svc.requests.admitted");
      ++connection.next_seq;  // the worker's completion fills this slot
      queue_.push_back(std::move(request));
      admitted = true;
    }
  }
  if (!admitted) {
    telemetry_->count("stage.svc.requests.dropped");
    return emit(connection, id,
                encode_error(ErrorCode::kOverloaded,
                             "admission queue full; retry later"));
  }
  queue_cv_.notify_one();
  return true;
}

bool Server::emit(Connection& connection, std::uint64_t id, std::string bytes) {
  const std::uint64_t seq = connection.next_seq++;
  connection.ready.emplace(seq, std::move(bytes));
  return pump_output(connection, id);
}

bool Server::pump_output(Connection& connection, std::uint64_t id) {
  auto it = connection.ready.begin();
  while (it != connection.ready.end() &&
         it->first == connection.next_write_seq) {
    connection.outbox += it->second;
    it = connection.ready.erase(it);
    ++connection.next_write_seq;
  }
  if (!flush_outbox(connection, id)) return false;
  if (connection.close_after_flush && fully_flushed(connection)) {
    close_connection(id);
    return false;
  }
  return true;
}

bool Server::flush_outbox(Connection& connection, std::uint64_t id) {
  bool progressed = false;
  while (connection.outbox_offset < connection.outbox.size()) {
    const ssize_t n = ::send(
        connection.fd, connection.outbox.data() + connection.outbox_offset,
        connection.outbox.size() - connection.outbox_offset, MSG_NOSIGNAL);
    if (n > 0) {
      connection.outbox_offset += static_cast<std::size_t>(n);
      progressed = true;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_connection(id);  // peer went away; nothing sensible left to do
    return false;
  }

  if (connection.outbox_offset >= connection.outbox.size()) {
    connection.outbox.clear();
    connection.outbox_offset = 0;
    connection.write_deadline_armed = false;
    if (connection.want_write) {
      connection.want_write = false;
      poller_.modify(connection.fd, id, !connection.read_closed, false);
    }
    if (progressed) connection.last_activity = Clock::now();
    return true;
  }

  // The socket would block with bytes still queued: wait for EPOLLOUT and
  // start (or refresh, if we advanced at all) the write-progress deadline.
  telemetry_->count("svc.eventloop.partial_writes");
  if (!connection.want_write) {
    connection.want_write = true;
    poller_.modify(connection.fd, id, !connection.read_closed, true);
  }
  if (options_.request_deadline_ms > 0 &&
      (progressed || !connection.write_deadline_armed)) {
    connection.write_deadline_armed = true;
    connection.write_deadline =
        Clock::now() + std::chrono::milliseconds(options_.request_deadline_ms);
  }
  if (progressed) connection.last_activity = Clock::now();
  return true;
}

void Server::drain_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    telemetry_->count("svc.eventloop.completions");
    // A kShutdown drains the whole server even if its own connection died
    // before the response could route.
    if (completion.shutdown_requested) request_stop();
    auto it = connections_.find(completion.connection_id);
    if (it == connections_.end()) continue;  // closed while the worker ran
    Connection& connection = it->second;
    connection.ready.emplace(completion.seq, std::move(completion.response));
    if (completion.shutdown_requested) {
      // Response written, then EOF: the peer sees the ack and a clean close.
      if (!connection.read_closed) {
        connection.read_closed = true;
        poller_.modify(connection.fd, completion.connection_id,
                       /*want_read=*/false, connection.want_write);
      }
      connection.close_after_flush = true;
    }
    pump_output(connection, completion.connection_id);
  }
}

void Server::enforce_deadlines(Clock::time_point now) {
  // Frame and write deadlines arm only when request_deadline_ms > 0, so
  // with both options off nothing can ever expire — skip the O(connections)
  // scan that would otherwise run on every loop iteration.
  if (options_.request_deadline_ms == 0 && options_.idle_timeout_ms == 0) {
    return;
  }
  enum class Expiry { kFrameStall, kIdle, kWriteStall };
  std::vector<std::pair<std::uint64_t, Expiry>> expired;
  for (const auto& [id, connection] : connections_) {
    if (connection.write_deadline_armed && now >= connection.write_deadline) {
      expired.emplace_back(id, Expiry::kWriteStall);
      continue;
    }
    if (connection.frame_deadline_armed && now >= connection.frame_deadline) {
      expired.emplace_back(id, Expiry::kFrameStall);
      continue;
    }
    if (options_.idle_timeout_ms > 0 && !connection.read_closed &&
        !connection.close_after_flush &&
        connection.reader.buffered_bytes() == 0 &&
        fully_flushed(connection) &&
        now >= connection.last_activity +
                   std::chrono::milliseconds(options_.idle_timeout_ms)) {
      expired.emplace_back(id, Expiry::kIdle);
    }
  }
  for (const auto& [id, expiry] : expired) {
    auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    Connection& connection = it->second;
    switch (expiry) {
      case Expiry::kWriteStall:
        // No outbound progress for a whole deadline: the peer stopped
        // reading. Nothing more can reach it — close hard.
        telemetry_->count("svc.connections.stalled_closed");
        close_connection(id);
        break;
      case Expiry::kFrameStall:
        telemetry_->count("svc.connections.stalled_closed");
        connection.frame_deadline_armed = false;
        connection.read_closed = true;
        poller_.modify(connection.fd, id, /*want_read=*/false,
                       connection.want_write);
        connection.close_after_flush = true;
        emit(connection, id,
             encode_error(ErrorCode::kDeadlineExceeded,
                          "frame did not finish arriving within the "
                          "request deadline"));
        break;
      case Expiry::kIdle:
        telemetry_->count("svc.connections.idle_closed");
        close_connection(id);  // quiet close: an idle peer did nothing wrong
        break;
    }
  }
}

int Server::next_timeout_ms(Clock::time_point now) const {
  if (options_.request_deadline_ms == 0 && options_.idle_timeout_ms == 0) {
    return -1;  // nothing can arm a deadline: wait for socket events only
  }
  bool armed = false;
  Clock::time_point nearest{};
  const auto consider = [&](Clock::time_point deadline) {
    if (!armed || deadline < nearest) {
      nearest = deadline;
      armed = true;
    }
  };
  for (const auto& [id, connection] : connections_) {
    (void)id;
    if (connection.frame_deadline_armed) consider(connection.frame_deadline);
    if (connection.write_deadline_armed) consider(connection.write_deadline);
    if (options_.idle_timeout_ms > 0 && !connection.read_closed &&
        !connection.close_after_flush &&
        connection.reader.buffered_bytes() == 0 && fully_flushed(connection)) {
      consider(connection.last_activity +
               std::chrono::milliseconds(options_.idle_timeout_ms));
    }
  }
  return armed ? ms_until(nearest, now) : -1;
}

void Server::close_connection(std::uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  poller_.remove(it->second.fd, id);
  close_if_open(it->second.fd);
  connections_.erase(it);
  telemetry_->count("svc.connections.closed");
  telemetry_->set_gauge("svc.connections.active",
                        static_cast<double>(connections_.size()));
}

void Server::worker_loop() {
  for (;;) {
    PendingRequest request;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return workers_stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        // workers_stop_ and nothing left to drain.
        --live_workers_;
        if (live_workers_ == 0) workers_done_cv_.notify_all();
        return;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
    }
    Completion completion;
    completion.connection_id = request.connection_id;
    completion.seq = request.seq;
    // A request that waited out its deadline in the queue is answered with
    // the typed error instead of running the handler: the client has most
    // likely given up, and burning a worker on it only starves fresher work.
    // It stays an admitted request — the triple reconciles either way.
    if (request.has_deadline && Clock::now() > request.deadline) {
      telemetry_->count("svc.requests.deadline_exceeded");
      completion.response =
          encode_error(ErrorCode::kDeadlineExceeded,
                       "request waited past its deadline in the admission "
                       "queue");
    } else {
      completion.response =
          handlers_.handle(request.frame, &completion.shutdown_requested);
    }
    bool was_empty = false;
    {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      was_empty = completions_.empty();
      completions_.push_back(std::move(completion));
    }
    // Wake the loop only when this completion is the first in the batch: a
    // non-empty vector means a wake byte is already in flight, and the
    // loop drains the whole vector per wake regardless of byte counts.
    if (was_empty) {
      const char byte = 1;
      [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
    }
  }
}

}  // namespace certchain::svc
