// The concurrent query server behind certchain_serve (DESIGN.md §15).
//
// Thread model, end to end:
//
//   event-loop thread ── epoll/poll ──> owns the listen socket, the wake
//   pipe, and every connection socket (all non-blocking). It accepts,
//   reads, decodes frames incrementally (FrameReader), runs admission, and
//   writes responses — partial reads and partial writes are resumed where
//   they left off. Read-only frames (ping, classify, report, metrics, CT
//   queries) are answered inline on the loop thread — an RCU snapshot read
//   is microseconds of work, cheaper than a worker round-trip. Mutating or
//   unbounded frames (ingest_append, categorize_chain, shutdown) dispatch to
//   request workers (par::ThreadPool::submit loops) ── completion queue ──>
//   back to the loop, which serializes responses per connection in request
//   order (a per-connection sequence number; out-of-order completions wait
//   in a ready-map until contiguous, so pipelined requests on one
//   connection always answer in the order they arrived).
//
// Backpressure is explicit: every decoded request counts into the
// `stage.svc.requests.in` counter and then either enters the bounded
// admission queue (`...admitted`) or is answered immediately with a typed
// OVERLOADED / SHUTTING_DOWN error (`...dropped`), so the obs::RunManifest
// triple reconciles exactly (in == admitted + dropped) at any instant the
// registry is read. Admission runs on the loop thread, so the triple is
// updated in the same order frames arrive.
//
// Deadlines (request_deadline_ms / idle_timeout_ms) bound every way a peer
// can hold server state: a frame that stalls mid-arrival earns a typed
// DEADLINE_EXCEEDED and a close, an idle connection (nothing buffered,
// nothing in flight) is closed quietly, an admitted request that waited out
// its deadline in the queue is answered DEADLINE_EXCEEDED by the worker
// (still admitted, so the triple reconciles), and a connection whose
// outbound bytes make no progress within the request deadline (the peer
// stopped reading) is closed — the non-blocking analogue of the old
// SO_SNDTIMEO send timeout.
//
// Graceful drain (request_stop, then wait): the loop stops accepting,
// frames already decoded or still arriving are answered SHUTTING_DOWN, the
// workers finish everything already admitted, the loop flushes every
// pending response, and only then do connections close and threads join. A
// kShutdown request triggers the same sequence from its worker's
// completion.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "par/thread_pool.hpp"
#include "svc/handlers.hpp"
#include "svc/protocol.hpp"
#include "svc/service_state.hpp"
#include "svc/telemetry.hpp"

namespace certchain::svc {

/// Readiness poller behind the event loop: epoll(7) on Linux, poll(2)
/// everywhere else. Fds are registered under an opaque u64 key (the loop
/// uses monotonic connection ids, never raw fds, so a recycled fd number
/// can never route events to the wrong connection).
class Poller {
 public:
  struct Event {
    std::uint64_t key = 0;
    bool readable = false;
    bool writable = false;
    bool broken = false;  // error/hangup: the fd is beyond use
  };

  Poller();
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  bool valid() const;
  void add(int fd, std::uint64_t key, bool want_read, bool want_write);
  void modify(int fd, std::uint64_t key, bool want_read, bool want_write);
  void remove(int fd, std::uint64_t key);
  /// Fills `events`; returns the number ready (0 on timeout, -1 on error).
  int wait(std::vector<Event>& events, int timeout_ms);
  /// Which backend compiled in ("epoll" or "poll") — exported as config.
  static const char* backend();

 private:
#ifdef __linux__
  int epoll_fd_ = -1;
#else
  struct Watched {
    int fd;
    std::uint64_t key;
    bool want_read;
    bool want_write;
  };
  std::vector<Watched> watched_;
#endif
};

struct ServerOptions {
  std::string host = "127.0.0.1";  // loopback only by design
  std::uint16_t port = 0;          // 0 = kernel-assigned ephemeral port
  std::size_t workers = 0;         // request workers; 0 = hardware concurrency
  std::size_t queue_capacity = 64; // admission queue bound (0 = reject all)
  std::size_t max_connections = 64;
  /// Per-request deadline, 0 = none. Covers (a) the time a started frame may
  /// take to finish arriving — a peer that trickles or stalls mid-frame gets
  /// a typed DEADLINE_EXCEEDED and a close instead of pinning loop state
  /// forever — (b) the time an admitted request may sit in the queue
  /// before a worker picks it up, and (c) outbound progress: queued response
  /// bytes that advance by nothing for a whole deadline mean the peer
  /// stopped reading, and the connection closes.
  std::uint32_t request_deadline_ms = 0;
  /// Close connections with no started frame after this long, 0 = never.
  /// Idle closes are quiet (no error frame): an idle peer did nothing wrong.
  std::uint32_t idle_timeout_ms = 0;
};

class Server {
 public:
  Server(ServiceState& state, SyncTelemetry& telemetry,
         ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event loop + request workers. Returns
  /// false (with `error` filled) when the socket setup fails.
  bool start(std::string* error = nullptr);

  /// The bound port (resolves option port 0 after start()).
  std::uint16_t port() const { return port_; }

  /// True once a drain began (kShutdown request or request_stop()).
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Begins the graceful drain; safe to call from any thread, repeatedly.
  void request_stop();

  /// Blocks until the drain completed and every thread joined. Returns
  /// immediately if the server never started.
  void wait();

 private:
  using Clock = std::chrono::steady_clock;

  /// An admitted request travelling to the workers.
  struct PendingRequest {
    std::uint64_t connection_id = 0;
    std::uint64_t seq = 0;  // per-connection response slot
    Frame frame;
    // Queue-wait deadline: a worker that dequeues the request past this
    // point answers DEADLINE_EXCEEDED instead of running the handler. The
    // request stays "admitted" — the triple still reconciles.
    Clock::time_point deadline{};
    bool has_deadline = false;
  };

  /// A finished response travelling back to the loop.
  struct Completion {
    std::uint64_t connection_id = 0;
    std::uint64_t seq = 0;
    std::string response;
    bool shutdown_requested = false;
  };

  /// Everything the loop knows about one connection. Owned by the loop
  /// thread exclusively — no lock guards any of it.
  struct Connection {
    int fd = -1;
    FrameReader reader;
    // Outbound bytes not yet accepted by the socket. offset avoids
    // erase-from-front churn; the buffer compacts when fully drained.
    std::string outbox;
    std::size_t outbox_offset = 0;
    // Response ordering: every emitted frame (worker response, typed
    // rejection, loop-generated error) claims the next slot of next_seq;
    // slots append to the outbox strictly in order (next_write_seq), and
    // worker completions that finish out of order wait in `ready`.
    std::uint64_t next_seq = 0;
    std::uint64_t next_write_seq = 0;
    std::map<std::uint64_t, std::string> ready;
    bool frame_deadline_armed = false;
    Clock::time_point frame_deadline{};
    Clock::time_point last_activity{};
    // Outbound progress deadline; armed while the outbox holds bytes,
    // re-armed every time a send accepts at least one byte.
    bool write_deadline_armed = false;
    Clock::time_point write_deadline{};
    bool read_closed = false;       // EOF seen, or the loop stopped reading
    bool close_after_flush = false; // close once every claimed slot is sent
    bool want_write = false;        // EPOLLOUT currently armed in the poller
  };

  void loop();
  void accept_ready();
  void read_ready(std::uint64_t id);
  void drain_completions();
  /// Admission for one decoded frame: typed rejection or worker dispatch.
  /// Returns false when the connection was closed (and erased) underneath.
  bool serve_frame(Connection& connection, std::uint64_t id, Frame frame);
  /// Claims the next response slot on the connection for `bytes` and pumps.
  /// Returns false when the connection was closed (and erased) underneath.
  bool emit(Connection& connection, std::uint64_t id, std::string bytes);
  /// Appends newly contiguous ready slots to the outbox and flushes.
  /// Returns false when the connection was closed (and erased) underneath.
  bool pump_output(Connection& connection, std::uint64_t id);
  /// Non-blocking send of whatever the socket accepts; arms EPOLLOUT and
  /// the write-progress deadline when bytes remain. Returns false when the
  /// connection was closed (and erased) underneath.
  bool flush_outbox(Connection& connection, std::uint64_t id);
  /// Applies frame/idle/write deadlines; closes what expired.
  void enforce_deadlines(Clock::time_point now);
  /// Nearest poller timeout across every armed deadline (-1 = forever).
  int next_timeout_ms(Clock::time_point now) const;
  void decode_buffered(Connection& connection, std::uint64_t id);
  void close_connection(std::uint64_t id);
  bool fully_flushed(const Connection& connection) const {
    return connection.next_write_seq == connection.next_seq &&
           connection.outbox_offset >= connection.outbox.size();
  }
  void worker_loop();

  ServiceState* state_;
  SyncTelemetry* telemetry_;
  ServerOptions options_;
  RequestHandlers handlers_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: workers/stop wake the poller
  std::uint16_t port_ = 0;
  bool started_ = false;

  std::thread loop_thread_;
  std::unique_ptr<par::ThreadPool> pool_;

  // Loop-thread-private state (no locks): connections keyed by monotonic id.
  Poller poller_;
  std::unordered_map<std::uint64_t, Connection> connections_;
  std::uint64_t next_connection_id_ = kFirstConnectionKey;
  bool accepting_ = true;

  static constexpr std::uint64_t kListenKey = 0;
  static constexpr std::uint64_t kWakeKey = 1;
  static constexpr std::uint64_t kFirstConnectionKey = 16;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;
  bool workers_stop_ = false;
  std::size_t live_workers_ = 0;
  std::condition_variable workers_done_cv_;

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> teardown_{false};  // wait() ordered every conn to finish
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  bool teardown_in_progress_ = false;  // exactly one wait() runs the teardown
  bool stopped_ = false;  // wait() finished tearing everything down
};

}  // namespace certchain::svc
