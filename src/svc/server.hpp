// The concurrent query server behind certchain_serve (DESIGN.md §12.4).
//
// Thread model, end to end:
//
//   acceptor thread ── accept() ──> one reader thread per connection
//   reader thread ── FrameReader ──> admission queue (bounded) ── pop ──>
//   request workers (par::ThreadPool::submit loops) ── promise ──> reader
//   thread writes the response (single writer per socket, so responses on a
//   connection always match request order without correlation ids)
//
// Backpressure is explicit: every decoded request counts into the
// `stage.svc.requests.in` counter and then either enters the bounded
// admission queue (`...admitted`) or is answered immediately with a typed
// OVERLOADED / SHUTTING_DOWN error (`...dropped`), so the obs::RunManifest
// triple reconciles exactly (in == admitted + dropped) at any instant the
// registry is read.
//
// Deadlines (request_deadline_ms / idle_timeout_ms) bound every way a peer
// can hold a reader thread: the read loop polls instead of blocking, a frame
// that stalls mid-arrival earns a typed DEADLINE_EXCEEDED and a close, an
// idle connection is closed quietly, an admitted request that waited out its
// deadline in the queue is answered DEADLINE_EXCEEDED by the worker (still
// admitted, so the triple reconciles), and a send timeout keeps a peer that
// stopped reading from blocking response writes.
//
// Graceful drain (request_stop, then wait): the acceptor stops accepting,
// connection sockets get shutdown(SHUT_RD) so blocked reads return while
// in-flight responses still write, the workers finish everything already
// admitted, and only then do the threads join and the sockets close. A
// kShutdown request triggers the same sequence from inside a worker.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "par/thread_pool.hpp"
#include "svc/handlers.hpp"
#include "svc/protocol.hpp"
#include "svc/service_state.hpp"
#include "svc/telemetry.hpp"

namespace certchain::svc {

struct ServerOptions {
  std::string host = "127.0.0.1";  // loopback only by design
  std::uint16_t port = 0;          // 0 = kernel-assigned ephemeral port
  std::size_t workers = 0;         // request workers; 0 = hardware concurrency
  std::size_t queue_capacity = 64; // admission queue bound (0 = reject all)
  std::size_t max_connections = 64;
  /// Per-request deadline, 0 = none. Covers (a) the time a started frame may
  /// take to finish arriving — a peer that trickles or stalls mid-frame gets
  /// a typed DEADLINE_EXCEEDED and a close instead of pinning the reader
  /// thread forever — (b) the time an admitted request may sit in the queue
  /// before a worker picks it up, and (c) the socket send timeout, so a peer
  /// that stops reading cannot block a response write indefinitely.
  std::uint32_t request_deadline_ms = 0;
  /// Close connections with no started frame after this long, 0 = never.
  /// Idle closes are quiet (no error frame): an idle peer did nothing wrong.
  std::uint32_t idle_timeout_ms = 0;
};

class Server {
 public:
  Server(ServiceState& state, SyncTelemetry& telemetry,
         ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor + request workers. Returns
  /// false (with `error` filled) when the socket setup fails.
  bool start(std::string* error = nullptr);

  /// The bound port (resolves option port 0 after start()).
  std::uint16_t port() const { return port_; }

  /// True once a drain began (kShutdown request or request_stop()).
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Begins the graceful drain; safe to call from any thread, repeatedly.
  void request_stop();

  /// Blocks until the drain completed and every thread joined. Returns
  /// immediately if the server never started.
  void wait();

 private:
  struct PendingRequest {
    Frame frame;
    // Queue-wait deadline: a worker that dequeues the request past this
    // point answers DEADLINE_EXCEEDED instead of running the handler. The
    // request stays "admitted" — the triple still reconciles.
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
    // (encoded response frame, shutdown requested by this request)
    std::promise<std::pair<std::string, bool>> promise;
  };

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void acceptor_loop();
  void connection_loop(Connection* connection);
  void worker_loop();
  /// Handles one decoded request frame on a connection: admission, typed
  /// rejection, or enqueue + wait + write. Returns false when the connection
  /// should close (a shutdown response was just written).
  bool serve_request(int fd, Frame frame);
  void reap_finished_connections_locked();
  bool write_all(int fd, std::string_view bytes) const;

  ServiceState* state_;
  SyncTelemetry* telemetry_;
  ServerOptions options_;
  RequestHandlers handlers_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: wakes the acceptor's poll()
  std::uint16_t port_ = 0;
  bool started_ = false;

  std::thread acceptor_;
  std::unique_ptr<par::ThreadPool> pool_;

  std::mutex connections_mutex_;
  std::list<Connection> connections_;
  std::size_t active_connections_ = 0;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;
  bool workers_stop_ = false;
  std::size_t live_workers_ = 0;
  std::condition_variable workers_done_cv_;

  std::atomic<bool> draining_{false};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  bool teardown_in_progress_ = false;  // exactly one wait() runs the teardown
  bool stopped_ = false;  // wait() finished tearing everything down
};

}  // namespace certchain::svc
